//! The Figure 1 study end to end: generate a DBLP-like corpus, count
//! keyword trends, verify the paper's claims.
//!
//! ```sh
//! cargo run --example bibliometrics
//! ```

use kgq::biblio::{
    check_figure1_claims, figure1_series, generate_corpus, overlap_fraction, CorpusParams, KEYWORDS,
};

fn main() {
    let corpus = generate_corpus(&CorpusParams::default());
    println!("{} simulated publications (2010–2020)", corpus.len());

    let fig = figure1_series(&corpus);
    println!(
        "\n{:<6}{}",
        "year",
        KEYWORDS.map(|k| format!("{k:>17}")).join("")
    );
    for (yi, year) in fig.years.iter().enumerate() {
        let cells: String = (0..KEYWORDS.len())
            .map(|ki| format!("{:>17}", fig.series[ki][yi]))
            .collect();
        println!("{year:<6}{cells}");
    }

    println!(
        "\nknowledge-graph papers also about RDF/SPARQL: {:.0}% in 2015, {:.0}% in 2020",
        100.0 * overlap_fraction(&corpus, 2015),
        100.0 * overlap_fraction(&corpus, 2020)
    );

    let violations = check_figure1_claims(&corpus);
    if violations.is_empty() {
        println!("every Figure 1 claim from the paper holds on the simulated corpus ✓");
    } else {
        println!("violated claims: {violations:?}");
    }
}
