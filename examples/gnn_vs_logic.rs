//! Declarative vs procedural node extraction (§4.3): the same query as
//! a regular expression, a two-variable formula, and a hand-built graph
//! neural network — all returning the same nodes.
//!
//! ```sh
//! cargo run --example gnn_vs_logic
//! ```

use kgq::core::{matching_starts, parse_expr, LabeledView};
use kgq::gnn::builder::{psi_network, PSI_VOCAB};
use kgq::gnn::{wl_colors, AcGnn};
use kgq::graph::generate::{contact_network, ContactParams};
use kgq::logic::{compile_fo2, eval_bounded, Var};

fn main() {
    let pg = contact_network(&ContactParams {
        people: 30,
        buses: 3,
        infected_fraction: 0.2,
        seed: 77,
        ..ContactParams::default()
    });
    let mut g = pg.into_labeled();
    println!("graph: {} nodes, {} edges", g.node_count(), g.edge_count());

    // 1. Declarative: the regular path query.
    let expr = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);
    let from_rpq = matching_starts(&view, &expr);

    // 2. Logical: compile to the two-variable formula ψ(x) and evaluate
    //    with binary tables only.
    let psi = compile_fo2(&expr).unwrap();
    println!(
        "ψ(x) uses {} variables and {} quantifiers",
        psi.width(),
        psi.quantifier_count()
    );
    let from_logic = eval_bounded(&g, &psi, Var(0));

    // 3. Procedural: a four-layer AC-GNN with hand-set weights.
    let gnn = psi_network();
    let feats = AcGnn::one_hot_features(&g, &PSI_VOCAB);
    let cls = gnn.classify(&g, &feats);
    let from_gnn: Vec<_> = g.base().nodes().filter(|n| cls[n.index()]).collect();

    println!("\nanswers (RPQ = FO² = GNN):");
    for n in &from_rpq {
        println!("  {}", g.node_name(*n));
    }
    assert_eq!(from_rpq, from_logic);
    assert_eq!(from_rpq, from_gnn);
    println!("\nall three formalisms agree on {} nodes ✓", from_rpq.len());

    // The expressiveness boundary: the GNN cannot distinguish nodes that
    // Weisfeiler–Lehman cannot.
    let wl = wl_colors(&g, gnn.depth());
    println!(
        "1-WL refinement: {} classes after {} rounds (GNN outputs are a \
         function of these classes)",
        wl.color_count, wl.rounds
    );
}
