//! Quickstart: build a graph, query it three ways.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use kgq::analytics::{bc_r_exact, betweenness_undirected};
use kgq::core::{count_paths, enumerate_paths, parse_expr, Evaluator, LabeledView};
use kgq::graph::figures::{figure2_labeled, figure2_property, figure2_vector};

fn main() {
    // 1. The paper's Figure 2 scenario as a labeled graph.
    let mut g = figure2_labeled();
    println!(
        "Figure 2: {} nodes, {} edges, labels {:?}",
        g.node_count(),
        g.edge_count(),
        g.node_label_alphabet()
            .iter()
            .map(|&l| g.label_name(l))
            .collect::<Vec<_>>()
    );

    // 2. Who might be infected? People sharing a bus with an infected
    //    person — the paper's expression from §4.3.
    let expr = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut())
        .expect("valid expression");
    let view = LabeledView::new(&g);
    let ev = Evaluator::new(&view, &expr);
    println!("\npossibly exposed riders:");
    for n in ev.matching_starts() {
        println!("  {}", g.node_name(n));
    }

    // 3. A concrete witness path, and all answers of length 2.
    let n1 = g.node_named("n1").unwrap();
    let n2 = g.node_named("n2").unwrap();
    let witness = ev.shortest_witness(n1, n2).expect("a path exists");
    println!("\nwitness: {}", witness.render(&g));
    let paths = enumerate_paths(&view, &expr, 2);
    println!("all {} exposure paths:", paths.len());
    for p in &paths {
        println!("  {}", p.render(&g));
    }
    assert_eq!(paths.len() as u128, count_paths(&view, &expr, 2).unwrap());

    // 4. Which node is the critical transport hub?
    let transport = parse_expr("?person/rides/?bus/rides^-/?person", g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);
    let bc = betweenness_undirected(&g);
    let bcr = bc_r_exact(&view, &transport);
    println!("\ncentrality (bc = label-blind, bc_r = transport-only):");
    for n in g.base().nodes() {
        if bc[n.index()] > 0.0 || bcr[n.index()] > 0.0 {
            println!(
                "  {:3}  bc = {:5.1}   bc_r = {:5.1}",
                g.node_name(n),
                bc[n.index()],
                bcr[n.index()]
            );
        }
    }

    // 5. The same question in Cypher-style MATCH syntax (§3 cites Cypher
    //    as the practical query language for property graphs).
    let pg = figure2_property();
    let q = kgq::cypher::parse_query(
        "MATCH (p:person)-[:rides]->(b:bus), (i:infected)-[:rides]->(b) RETURN p.name, b",
    )
    .expect("valid query");
    println!("\nCypher MATCH answers:");
    for row in kgq::cypher::execute(&pg, &q) {
        println!("  {} rides the exposed bus {}", row[0], row[1]);
    }

    // 6. The same data in the other two models.
    let julia = pg.labeled().node_named("n1").unwrap();
    println!(
        "\nproperty model: n1 is {} (age {})",
        pg.node_prop_str(julia, "name").unwrap(),
        pg.node_prop_str(julia, "age").unwrap()
    );
    let vg = figure2_vector();
    println!(
        "vector model: d = {}, λ(n1) = {:?}",
        vg.dim(),
        vg.node_vector(julia)
            .iter()
            .map(|&s| vg.consts().resolve(s))
            .collect::<Vec<_>>()
    );
}
