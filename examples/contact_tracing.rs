//! Contact tracing at scale — the paper's epidemiological scenario.
//!
//! Builds a synthetic contact network (people, buses, addresses), then:
//! 1. extracts possibly-exposed people with the §4 path expressions,
//! 2. counts and uniformly samples exposure chains (§4.1 toolbox),
//! 3. ranks buses by their role in propagation with `bc_r` (§4.2).
//!
//! ```sh
//! cargo run --release --example contact_tracing
//! ```

use kgq::analytics::{bc_r_exact, BcrParams};
use kgq::core::{
    approx_count, parse_expr, ApproxParams, Evaluator, ExactCounter, LabeledView, UniformSampler,
};
use kgq::graph::generate::{contact_network, ContactParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let params = ContactParams {
        people: 80,
        buses: 6,
        addresses: 30,
        rides_per_person: 2,
        contacts_per_person: 2,
        infected_fraction: 0.1,
        seed: 2024,
    };
    let pg = contact_network(&params);
    let mut g = pg.into_labeled();
    println!(
        "contact network: {} nodes, {} edges ({} infected)",
        g.node_count(),
        g.edge_count(),
        g.nodes_with_label(g.sym("infected").unwrap()).len()
    );

    // Direct exposure: shared a bus with an infected person.
    let direct = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);
    let directly_exposed = Evaluator::new(&view, &direct).matching_starts();
    println!(
        "\ndirectly exposed (shared a bus): {}",
        directly_exposed.len()
    );

    // Extended exposure: bus contact, then household/contact chains —
    // the paper's r1 read in reverse (starting from the healthy person).
    let extended = parse_expr(
        "?person/(( lives + lives^- + contact + contact^- ))*/?person/rides/?bus/rides^-/?infected",
        g.consts_mut(),
    )
    .unwrap();
    let view = LabeledView::new(&g);
    let extended_exposed = Evaluator::new(&view, &extended).matching_starts();
    println!(
        "exposed via household/contact chains: {}",
        extended_exposed.len()
    );

    // Counting exposure chains of each length.
    let counter = ExactCounter::new(&view, &direct);
    println!("\nexposure chains by length:");
    for (k, c) in counter.count_by_length(4).unwrap().iter().enumerate() {
        if *c > 0 {
            println!("  length {k}: {c} chains");
        }
    }
    let k = 2;
    let exact = counter.count(k).unwrap();
    let approx = approx_count(
        &view,
        &direct,
        k,
        &ApproxParams {
            epsilon: 0.2,
            ..ApproxParams::default()
        },
    );
    println!("  exact Count(G, r, {k}) = {exact}, FPRAS estimate = {approx:.1}");

    // Uniformly sample a few chains for case investigation.
    let sampler = UniformSampler::new(&view, &direct, k).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    println!("\nrandomly audited exposure chains:");
    for _ in 0..5 {
        if let Some(p) = sampler.sample(&mut rng) {
            println!("  {}", p.render(&g));
        }
    }

    // Which bus matters most for propagation?
    let transport = parse_expr("?person/rides/?bus/rides^-/?person", g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);
    let bcr = bc_r_exact(&view, &transport);
    let mut buses: Vec<_> = g
        .nodes_with_label(g.sym("bus").unwrap())
        .into_iter()
        .map(|n| (g.node_name(n).to_owned(), bcr[n.index()]))
        .collect();
    buses.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nbuses ranked by transport centrality bc_r:");
    for (name, score) in &buses {
        println!("  {name}: {score:.1}");
    }
    let _ = BcrParams::default(); // see exp_bcr for the sampled variant
}
