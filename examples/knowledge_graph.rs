//! A small knowledge graph: RDF triples, pattern matching, and path
//! queries through the labeled-graph correspondence (§3).
//!
//! ```sh
//! cargo run --example knowledge_graph
//! ```

use kgq::core::{matching_starts, parse_expr, LabeledView};
use kgq::embed::{evaluate, train_store, TrainConfig};
use kgq::rdf::{
    materialize_rdfs, parse_ntriples, rdf_to_labeled, write_ntriples, Bgp, RDFS_SUBCLASS,
    RDFS_SUBPROPERTY, RDF_TYPE,
};

fn main() {
    // Load a tiny knowledge graph from N-Triples.
    let data = r#"
<marie_curie> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Scientist> .
<pierre_curie> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Scientist> .
<irene_joliot_curie> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Scientist> .
<nobel_physics_1903> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Prize> .
<nobel_chemistry_1911> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Prize> .
<nobel_chemistry_1935> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Prize> .
<marie_curie> <won> <nobel_physics_1903> .
<marie_curie> <won> <nobel_chemistry_1911> .
<pierre_curie> <won> <nobel_physics_1903> .
<irene_joliot_curie> <won> <nobel_chemistry_1935> .
<marie_curie> <spouse> <pierre_curie> .
<marie_curie> <child> <irene_joliot_curie> .
<marie_curie> <name> "Marie Curie" .
"#;
    let mut st = parse_ntriples(data).expect("valid N-Triples");
    println!("loaded {} triples", st.len());

    // BGP: scientists who share a prize (SPARQL-style conjunctive query).
    let mut q = Bgp::new();
    q.add(&mut st, "?a", "won", "?prize");
    q.add(&mut st, "?b", "won", "?prize");
    q.add(&mut st, "?a", RDF_TYPE, "Scientist");
    q.add(&mut st, "?b", RDF_TYPE, "Scientist");
    println!("\nscientists sharing a prize:");
    for binding in q.solve(&st) {
        let a = st.term_str(binding["a"]);
        let b = st.term_str(binding["b"]);
        if a < b {
            println!("  {a} and {b} ({})", st.term_str(binding["prize"]));
        }
    }

    // Path query via the labeled-graph view: laureates connected to
    // Marie Curie by family links.
    let mut g = rdf_to_labeled(&st).expect("convertible");
    let expr = parse_expr(
        "?Scientist/(spouse + spouse^- + child + child^-)*/won/?Prize",
        g.consts_mut(),
    )
    .unwrap();
    let view = LabeledView::new(&g);
    let family_laureates = matching_starts(&view, &expr);
    println!("\nscientists in a laureate family network:");
    for n in family_laureates {
        println!("  {}", g.node_name(n));
    }

    // Produce new knowledge (§2.3): RDFS schema + forward chaining.
    st.insert_strs("Scientist", RDFS_SUBCLASS, "Person");
    st.insert_strs("spouse", RDFS_SUBPROPERTY, "relatedTo");
    st.insert_strs("child", RDFS_SUBPROPERTY, "relatedTo");
    let before = st.len();
    let stats = materialize_rdfs(&mut st);
    println!(
        "\nRDFS inference: {} → {} triples ({} derived in {} rounds)",
        before,
        st.len(),
        stats.inferred,
        stats.rounds
    );
    let mut q = Bgp::new();
    q.add(&mut st, "?x", "relatedTo", "?y");
    println!("derived relatedTo facts: {}", q.solve(&st).len());

    // Complete the graph (§2.3): TransE link prediction suggests who
    // else might be connected.
    let report = train_store(
        &st,
        &TrainConfig {
            dim: 16,
            epochs: 150,
            ..TrainConfig::default()
        },
    );
    let lp = evaluate(&report.model, &report.triples, &report.triples);
    println!(
        "TransE fit on the KG: mean rank {:.1} over {} entities (1.0 = perfect memorization)",
        lp.mean_rank,
        report.model.entity_count()
    );
    if let (Some(h), Some(r)) = (report.entity_id("marie_curie"), report.relation_id("won")) {
        let suggestions = report.model.predict_tails(h, r, 3);
        println!("completion: top candidates for (marie_curie, won, ?):");
        for (t, score) in suggestions {
            println!("  {} (score {:.2})", report.entities[t], score);
        }
    }

    // Round-trip the store.
    let out = write_ntriples(&st);
    let again = parse_ntriples(&out).expect("round trip");
    assert_eq!(again.len(), st.len());
    println!(
        "\nround-tripped {} triples through N-Triples ✓",
        again.len()
    );
}
