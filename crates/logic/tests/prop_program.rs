//! Property-based tests for Horn-rule program analysis: on random base
//! stores and random (always-safe) rule programs, the analyzer's
//! verdicts must agree with materialization — the round bound never
//! truncates a fixpoint, rules proven dead really derive nothing, the
//! termination bound dominates actual derivations, and the governed
//! evaluator with an unlimited budget matches the ungoverned one.

use kgq_core::govern::{Budget, Completion, Governor};
use kgq_logic::{analyze_program, fixpoint, fixpoint_governed, parse_program};
use kgq_rdf::{lftj, TripleStore};
use proptest::prelude::*;

const TERMS: usize = 5;
const PREDS: usize = 4;
const VARS: usize = 3;

/// Subject/object slot of a generated atom.
#[derive(Clone, Debug)]
enum Term {
    Var(usize),
    Const(usize),
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        3 => (0..VARS).prop_map(Term::Var),
        1 => (0..TERMS).prop_map(Term::Const),
    ]
}

/// A random body atom: constant predicate, random subject/object.
fn atom() -> impl Strategy<Value = (usize, Term, Term)> {
    (0..PREDS, term(), term())
}

/// A random rule spec: body atoms plus head slot picks. Head variables
/// are chosen by index into the body's variable list at build time, so
/// every generated rule is range-restricted by construction.
#[derive(Clone, Debug)]
struct RuleSpec {
    body: Vec<(usize, Term, Term)>,
    head_pred: usize,
    head_s: Term,
    head_o: Term,
}

fn rule_spec() -> impl Strategy<Value = RuleSpec> {
    (
        proptest::collection::vec(atom(), 1..3),
        0..PREDS,
        term(),
        term(),
    )
        .prop_map(|(body, head_pred, head_s, head_o)| RuleSpec {
            body,
            head_pred,
            head_s,
            head_o,
        })
}

fn spell(t: &Term) -> String {
    match t {
        Term::Var(v) => format!("?v{v}"),
        Term::Const(c) => format!("t{c}"),
    }
}

/// A head slot: reuse the drawn variable when the body binds it,
/// otherwise degrade to a constant so the rule stays safe.
fn spell_head(t: &Term, body_vars: &[usize]) -> String {
    match t {
        Term::Var(v) if body_vars.contains(v) => format!("?v{v}"),
        Term::Var(v) => format!("t{}", v % TERMS),
        Term::Const(c) => format!("t{c}"),
    }
}

/// Renders specs as a textual program for [`parse_program`].
fn program_text(specs: &[RuleSpec]) -> String {
    let mut out = String::new();
    for spec in specs {
        let mut body_vars: Vec<usize> = Vec::new();
        for (_, s, o) in &spec.body {
            for t in [s, o] {
                if let Term::Var(v) = t {
                    if !body_vars.contains(v) {
                        body_vars.push(*v);
                    }
                }
            }
        }
        let head = format!(
            "{} p{} {}",
            spell_head(&spec.head_s, &body_vars),
            spec.head_pred,
            spell_head(&spec.head_o, &body_vars)
        );
        let body: Vec<String> = spec
            .body
            .iter()
            .map(|(p, s, o)| format!("{} p{} {}", spell(s), *p, spell(o)))
            .collect();
        out.push_str(&format!("{head} :- {} .\n", body.join(", ")));
    }
    out
}

fn base_store(triples: &[(usize, usize, usize)]) -> TripleStore {
    let mut st = TripleStore::new();
    for &(s, p, o) in triples {
        st.insert_strs(&format!("t{s}"), &format!("p{p}"), &format!("t{o}"));
    }
    st
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The analyzer's round bound never truncates materialization: after
    /// one [`fixpoint`] run, a second run derives nothing — the store
    /// really is saturated. And the termination bound dominates the
    /// triples actually derived.
    #[test]
    fn fixpoint_saturates_within_the_analyzed_bounds(
        triples in proptest::collection::vec((0..TERMS, 0..PREDS, 0..TERMS), 0..25),
        specs in proptest::collection::vec(rule_spec(), 1..5),
    ) {
        let mut st = base_store(&triples);
        let rules = parse_program(&mut st, &program_text(&specs))
            .expect("generated programs are well-formed and safe");
        let analysis = analyze_program(&st, &rules);
        prop_assert!(!analysis.denied(), "generated rules are safe by construction");

        let first = fixpoint(&mut st, &rules);
        prop_assert!(
            (first.derived as u64) <= analysis.derivation_bound,
            "derived {} triples but the analyzer bounded derivations at {}",
            first.derived,
            analysis.derivation_bound
        );
        let second = fixpoint(&mut st, &rules);
        prop_assert_eq!(
            second.derived, 0,
            "a second run derived more: the round bound truncated the first"
        );
    }

    /// Rules the analyzer proves dead agree with execution: after full
    /// saturation their bodies still match nothing, so skipping them
    /// changed no answers.
    #[test]
    fn dead_rules_never_fire(
        triples in proptest::collection::vec((0..TERMS, 0..PREDS, 0..TERMS), 0..25),
        specs in proptest::collection::vec(rule_spec(), 1..5),
    ) {
        let mut st = base_store(&triples);
        let rules = parse_program(&mut st, &program_text(&specs))
            .expect("generated programs are well-formed and safe");
        let analysis = analyze_program(&st, &rules);
        fixpoint(&mut st, &rules);
        for &i in &analysis.dead_rules {
            let matches = lftj::solve(&st, &rules[i].body);
            prop_assert!(
                matches.rows.is_empty(),
                "rule {} was declared dead but its body matches {} binding(s) \
                 after saturation",
                i,
                matches.rows.len()
            );
        }
    }

    /// The governed fixpoint under an unlimited budget completes with
    /// the same derivation count and the same final store size as the
    /// ungoverned one — the analysis gate (Deny refusal, dead-rule
    /// skipping, round cap) perturbs nothing on safe programs.
    #[test]
    fn unlimited_governed_fixpoint_matches_ungoverned(
        triples in proptest::collection::vec((0..TERMS, 0..PREDS, 0..TERMS), 0..25),
        specs in proptest::collection::vec(rule_spec(), 1..4),
    ) {
        let mut plain = base_store(&triples);
        let rules = parse_program(&mut plain, &program_text(&specs))
            .expect("generated programs are well-formed and safe");
        let stats = fixpoint(&mut plain, &rules);

        let mut governed_st = base_store(&triples);
        let rules2 = parse_program(&mut governed_st, &program_text(&specs))
            .expect("same text parses the same way");
        let gov = Governor::new(&Budget::unlimited());
        let got = fixpoint_governed(&mut governed_st, &rules2, &gov)
            .expect("safe programs are never refused");
        prop_assert!(matches!(got.completion, Completion::Complete));
        prop_assert_eq!(got.value.derived, stats.derived);
        prop_assert_eq!(
            governed_st.count(None, None, None),
            plain.count(None, None, None)
        );
    }
}
