//! Property-based equivalence of the two FO evaluators on random
//! formulas and random graphs.

use kgq_graph::{LabeledGraph, NodeId, Sym};
use kgq_logic::{eval_bounded, eval_naive, Formula, Var};
use proptest::prelude::*;

const NODE_LABELS: [&str; 2] = ["a", "b"];
const EDGE_LABELS: [&str; 2] = ["p", "q"];

#[derive(Clone, Debug)]
struct GraphSpec {
    node_labels: Vec<usize>,
    edges: Vec<(usize, usize, usize)>,
}

fn graph_strategy() -> impl Strategy<Value = GraphSpec> {
    (2usize..6).prop_flat_map(|n| {
        (
            proptest::collection::vec(0..NODE_LABELS.len(), n),
            proptest::collection::vec((0..n, 0..n, 0..EDGE_LABELS.len()), 0..10),
        )
            .prop_map(|(node_labels, edges)| GraphSpec { node_labels, edges })
    })
}

fn build(spec: &GraphSpec) -> LabeledGraph {
    let mut g = LabeledGraph::new();
    // Intern every label up front so strategies can reference them even
    // when a random graph does not use one.
    for l in NODE_LABELS.iter().chain(EDGE_LABELS.iter()) {
        g.intern(l);
    }
    let nodes: Vec<NodeId> = spec
        .node_labels
        .iter()
        .enumerate()
        .map(|(i, &l)| g.add_node(&format!("n{i}"), NODE_LABELS[l]).unwrap())
        .collect();
    for (i, &(s, d, l)) in spec.edges.iter().enumerate() {
        g.add_edge(&format!("e{i}"), nodes[s], nodes[d], EDGE_LABELS[l])
            .unwrap();
    }
    g
}

/// Random formulas over two variables whose only free variable is x
/// (every y occurrence sits under ∃y).
fn formula_strategy(nl: Vec<Sym>, el: Vec<Sym>) -> impl Strategy<Value = Formula> {
    let (x, y) = (Var(0), Var(1));
    // Leaves over x only.
    let leaf_x = {
        let nl = nl.clone();
        let el = el.clone();
        prop_oneof![
            (0..nl.len()).prop_map({
                let nl = nl.clone();
                move |i| Formula::Unary(nl[i], x)
            }),
            (0..el.len()).prop_map({
                let el = el.clone();
                move |i| Formula::Binary(el[i], x, x)
            }),
        ]
    };
    // Bodies over {x, y} (used inside ∃y).
    let leaf_xy = prop_oneof![
        (0..nl.len()).prop_map({
            let nl = nl.clone();
            move |i| Formula::Unary(nl[i], y)
        }),
        (0..el.len()).prop_map({
            let el = el.clone();
            move |i| Formula::Binary(el[i], x, y)
        }),
        (0..el.len()).prop_map({
            let el = el.clone();
            move |i| Formula::Binary(el[i], y, x)
        }),
        Just(Formula::Eq(x, y)),
    ];
    let body = leaf_xy.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    });
    let quantified = body.prop_map(move |b| b.exists(y));
    let base = prop_oneof![leaf_x, quantified];
    base.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn naive_and_bounded_agree(
        (spec, formula) in graph_strategy().prop_flat_map(|spec| {
            let g = build(&spec);
            let nl: Vec<Sym> = NODE_LABELS.iter().map(|l| g.sym(l).unwrap()).collect();
            let el: Vec<Sym> = EDGE_LABELS.iter().map(|l| g.sym(l).unwrap()).collect();
            (Just(spec), formula_strategy(nl, el))
        })
    ) {
        let g = build(&spec);
        prop_assert!(formula.free_vars().iter().all(|v| *v == Var(0)));
        let naive = eval_naive(&g, &formula, Var(0));
        let bounded = eval_bounded(&g, &formula, Var(0));
        prop_assert_eq!(naive, bounded);
    }
}
