//! First-order formulas over graph signatures.
//!
//! Signature: every node label is a unary predicate, every edge label a
//! binary predicate (§4.3 of the paper). Variables are small integers;
//! the *width* of a formula — the number of distinct variables — is the
//! resource that bounded-variable evaluation exploits.

use kgq_graph::Sym;
use std::collections::BTreeSet;

/// A first-order variable (formulas with width `k` use `Var(0..k)`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub u8);

/// A first-order formula over the graph signature.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Formula {
    /// `label(x)` — node `x` carries this label.
    Unary(Sym, Var),
    /// `label(x, y)` — an edge labeled `label` from `x` to `y`.
    Binary(Sym, Var, Var),
    /// `x = y`.
    Eq(Var, Var),
    /// `¬φ`.
    Not(Box<Formula>),
    /// `φ ∧ ψ`.
    And(Box<Formula>, Box<Formula>),
    /// `φ ∨ ψ`.
    Or(Box<Formula>, Box<Formula>),
    /// `∃x φ`.
    Exists(Var, Box<Formula>),
}

impl Formula {
    /// `self ∧ other`.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// `self ∨ other`.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// `∃v self`.
    pub fn exists(self, v: Var) -> Formula {
        Formula::Exists(v, Box::new(self))
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        match self {
            Formula::Unary(_, x) => BTreeSet::from([*x]),
            Formula::Binary(_, x, y) | Formula::Eq(x, y) => BTreeSet::from([*x, *y]),
            Formula::Not(f) => f.free_vars(),
            Formula::And(a, b) | Formula::Or(a, b) => {
                let mut s = a.free_vars();
                s.extend(b.free_vars());
                s
            }
            Formula::Exists(v, f) => {
                let mut s = f.free_vars();
                s.remove(v);
                s
            }
        }
    }

    /// All variables occurring (free or bound).
    pub fn all_vars(&self) -> BTreeSet<Var> {
        match self {
            Formula::Unary(_, x) => BTreeSet::from([*x]),
            Formula::Binary(_, x, y) | Formula::Eq(x, y) => BTreeSet::from([*x, *y]),
            Formula::Not(f) => f.all_vars(),
            Formula::And(a, b) | Formula::Or(a, b) => {
                let mut s = a.all_vars();
                s.extend(b.all_vars());
                s
            }
            Formula::Exists(v, f) => {
                let mut s = f.all_vars();
                s.insert(*v);
                s
            }
        }
    }

    /// The width: number of distinct variables. The key complexity
    /// parameter of §4.3 (Vardi \[68\]).
    pub fn width(&self) -> usize {
        self.all_vars().len()
    }

    /// Number of quantifiers (drives the naive evaluator's exponent).
    pub fn quantifier_count(&self) -> usize {
        match self {
            Formula::Unary(..) | Formula::Binary(..) | Formula::Eq(..) => 0,
            Formula::Not(f) => f.quantifier_count(),
            Formula::And(a, b) | Formula::Or(a, b) => a.quantifier_count() + b.quantifier_count(),
            Formula::Exists(_, f) => 1 + f.quantifier_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_graph::Interner;

    fn paper_psi() -> (Formula, Interner) {
        // ψ(x) = person(x) ∧ ∃y (rides(x,y) ∧ bus(y) ∧ ∃x (rides(x,y) ∧ infected(x)))
        let mut it = Interner::new();
        let person = it.intern("person");
        let rides = it.intern("rides");
        let bus = it.intern("bus");
        let infected = it.intern("infected");
        let (x, y) = (Var(0), Var(1));
        let inner = Formula::Binary(rides, x, y)
            .and(Formula::Unary(infected, x))
            .exists(x);
        let psi = Formula::Unary(person, x).and(
            Formula::Binary(rides, x, y)
                .and(Formula::Unary(bus, y))
                .and(inner)
                .exists(y),
        );
        (psi, it)
    }

    #[test]
    fn psi_has_width_two() {
        let (psi, _) = paper_psi();
        assert_eq!(psi.width(), 2);
        assert_eq!(psi.quantifier_count(), 2);
        assert_eq!(psi.free_vars(), BTreeSet::from([Var(0)]));
    }

    #[test]
    fn exists_binds() {
        let f = Formula::Eq(Var(0), Var(1)).exists(Var(1));
        assert_eq!(f.free_vars(), BTreeSet::from([Var(0)]));
        assert_eq!(f.all_vars(), BTreeSet::from([Var(0), Var(1)]));
    }

    #[test]
    fn width_counts_distinct_not_occurrences() {
        let mut it = Interner::new();
        let p = it.intern("p");
        let f = Formula::Binary(p, Var(0), Var(1))
            .and(Formula::Binary(p, Var(1), Var(0)))
            .and(Formula::Binary(p, Var(0), Var(0)));
        assert_eq!(f.width(), 2);
    }
}
