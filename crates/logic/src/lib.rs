//! # kgq-logic — bounded-variable first-order logic over graphs
//!
//! Section 4.3 of the reproduced paper evaluates regular expressions by
//! translating them into first-order logic over the graph signature —
//! node labels as unary predicates, edge labels as binary predicates —
//! and observes that expressions like
//!
//! ```text
//! φ(x) = person(x) ∧ ∃y ∃z (rides(x,y) ∧ bus(y) ∧ rides(z,y) ∧ infected(z))
//! ```
//!
//! can be rewritten to *reuse* variables:
//!
//! ```text
//! ψ(x) = person(x) ∧ ∃y (rides(x,y) ∧ bus(y) ∧ ∃x (rides(x,y) ∧ infected(x)))
//! ```
//!
//! so that evaluation only ever manipulates binary tables (Vardi \[68\]:
//! FO with a bounded number of variables is tractable). This crate
//! implements:
//!
//! * [`formula`] — the FO fragment (unary/binary atoms, boolean
//!   connectives, equality, ∃) with named variables;
//! * [`eval`] — two evaluators: [`eval::eval_naive`], which enumerates
//!   assignments (`O(n^{quantifier depth})`), and [`eval::eval_bounded`],
//!   the bottom-up relational pipeline whose intermediate relations have
//!   arity at most the number of *distinct* variables;
//! * [`compile`] — the regex → FO² translation for star-free node
//!   extraction, producing exactly ψ-style reuse of two variables;
//! * [`rules`] — Horn rules over triple stores whose bodies are matched
//!   by `kgq-rdf`'s worst-case optimal leapfrog triejoin, run to a
//!   governed or ungoverned fixpoint;
//! * [`analyze`] — static analysis of rule programs (safety, dead
//!   rules, recursion/strata, θ-subsumption, termination bounds) that
//!   both fixpoints consult before executing.

// Several hot loops index multiple parallel arrays at once; the
// iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
pub mod analyze;
pub mod compile;
pub mod eval;
pub mod formula;
pub mod rules;

pub use analyze::{analyze_program, ProgramReport};
pub use compile::{compile_fo2, compile_wide, CompileError};
pub use eval::{eval_bounded, eval_naive, GraphStructure};
pub use formula::{Formula, Var};
pub use rules::{
    fixpoint, fixpoint_governed, parse_program, FixpointStats, Rule, RuleError, RuleParseError,
};
