//! Two evaluators for first-order formulas over a labeled graph.
//!
//! * [`eval_naive`] — the textbook semantics: try every assignment,
//!   looping over all `n` nodes at each quantifier. Time
//!   `O(n^{q+|free|} · |φ|)` where `q` is the number of quantifiers: the
//!   baseline the paper's §4.3 improves upon.
//! * [`eval_bounded`] — bottom-up relational evaluation. Every subformula
//!   is compiled to a table over its free variables; conjunction is a
//!   hash join, disjunction a union after cylindrification, negation a
//!   complement over the node domain, and ∃ a projection. All
//!   intermediates have arity ≤ width(φ), which for the FO² rewriting ψ
//!   means *binary tables only* — "the result of any join is always a
//!   binary table, so no auxiliary relations with an arbitrary number of
//!   columns need to be stored."

use crate::formula::{Formula, Var};
use kgq_graph::{LabeledGraph, NodeId, Sym};
use std::collections::{HashMap, HashSet};

/// A labeled graph viewed as a finite relational structure.
pub struct GraphStructure<'a> {
    g: &'a LabeledGraph,
    /// Binary relations per edge label: sorted `(src, dst)` pairs.
    edges_by_label: HashMap<Sym, Vec<(NodeId, NodeId)>>,
    /// Unary relations per node label.
    nodes_by_label: HashMap<Sym, Vec<NodeId>>,
}

impl<'a> GraphStructure<'a> {
    /// Indexes `g` by node and edge label.
    pub fn new(g: &'a LabeledGraph) -> Self {
        let mut edges_by_label: HashMap<Sym, Vec<(NodeId, NodeId)>> = HashMap::new();
        for e in g.base().edges() {
            let (s, d) = g.base().endpoints(e);
            edges_by_label
                .entry(g.edge_label(e))
                .or_default()
                .push((s, d));
        }
        for list in edges_by_label.values_mut() {
            list.sort_unstable();
            list.dedup();
        }
        let mut nodes_by_label: HashMap<Sym, Vec<NodeId>> = HashMap::new();
        for n in g.base().nodes() {
            nodes_by_label.entry(g.node_label(n)).or_default().push(n);
        }
        GraphStructure {
            g,
            edges_by_label,
            nodes_by_label,
        }
    }

    fn holds_unary(&self, label: Sym, n: NodeId) -> bool {
        self.g.node_label(n) == label
    }

    fn holds_binary(&self, label: Sym, a: NodeId, b: NodeId) -> bool {
        self.edges_by_label
            .get(&label)
            .is_some_and(|list| list.binary_search(&(a, b)).is_ok())
    }

    fn n(&self) -> usize {
        self.g.node_count()
    }
}

// ---------------------------------------------------------------- naive

fn naive_holds(s: &GraphStructure<'_>, f: &Formula, env: &mut HashMap<Var, NodeId>) -> bool {
    match f {
        Formula::Unary(l, x) => s.holds_unary(*l, env[x]),
        Formula::Binary(l, x, y) => s.holds_binary(*l, env[x], env[y]),
        Formula::Eq(x, y) => env[x] == env[y],
        Formula::Not(g) => !naive_holds(s, g, env),
        Formula::And(a, b) => naive_holds(s, a, env) && naive_holds(s, b, env),
        Formula::Or(a, b) => naive_holds(s, a, env) || naive_holds(s, b, env),
        Formula::Exists(v, g) => {
            let saved = env.get(v).copied();
            let mut found = false;
            for n in 0..s.n() as u32 {
                env.insert(*v, NodeId(n));
                if naive_holds(s, g, env) {
                    found = true;
                    break;
                }
            }
            match saved {
                Some(old) => {
                    env.insert(*v, old);
                }
                None => {
                    env.remove(v);
                }
            }
            found
        }
    }
}

/// Naive evaluation of a unary query `φ(x)`: the set of nodes `a` with
/// `G ⊨ φ(a)`, by assignment enumeration.
///
/// # Panics
/// Panics if `φ` has free variables other than `x`.
pub fn eval_naive(g: &LabeledGraph, f: &Formula, x: Var) -> Vec<NodeId> {
    let free = f.free_vars();
    assert!(
        free.iter().all(|v| *v == x),
        "query must have at most the free variable {x:?}, got {free:?}"
    );
    let s = GraphStructure::new(g);
    let mut result = Vec::new();
    let mut env = HashMap::new();
    for n in 0..s.n() as u32 {
        env.insert(x, NodeId(n));
        if naive_holds(&s, f, &mut env) {
            result.push(NodeId(n));
        }
    }
    result
}

// -------------------------------------------------------------- bounded

/// A relation over a sorted list of variables (columns).
#[derive(Clone, Debug)]
struct Rel {
    vars: Vec<Var>,
    rows: HashSet<Vec<NodeId>>,
}

impl Rel {
    fn arity(&self) -> usize {
        self.vars.len()
    }

    /// The nullary relation: `{}` (false) or `{()}` (true).
    fn nullary(truth: bool) -> Rel {
        let mut rows = HashSet::new();
        if truth {
            rows.insert(Vec::new());
        }
        Rel {
            vars: Vec::new(),
            rows,
        }
    }

    /// Cylindrify: extend to a superset of columns, crossing with the
    /// full node domain for the new columns.
    fn extend_to(&self, vars: &[Var], n: usize) -> Rel {
        if self.vars == vars {
            return self.clone();
        }
        let positions: Vec<Option<usize>> = vars
            .iter()
            .map(|v| self.vars.iter().position(|w| w == v))
            .collect();
        let new_cols: Vec<usize> = positions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| i)
            .collect();
        let mut rows = HashSet::new();
        for row in &self.rows {
            // Enumerate the cross product over new columns.
            let mut stack: Vec<Vec<NodeId>> = vec![Vec::new()];
            for _ in &new_cols {
                let mut next = Vec::new();
                for partial in stack {
                    for v in 0..n as u32 {
                        let mut p = partial.clone();
                        p.push(NodeId(v));
                        next.push(p);
                    }
                }
                stack = next;
            }
            for fill in stack {
                let mut out = Vec::with_capacity(vars.len());
                let mut fi = 0;
                for p in &positions {
                    match p {
                        Some(i) => out.push(row[*i]),
                        None => {
                            out.push(fill[fi]);
                            fi += 1;
                        }
                    }
                }
                rows.insert(out);
            }
        }
        Rel {
            vars: vars.to_vec(),
            rows,
        }
    }

    /// Natural join on shared variables.
    fn join(&self, other: &Rel) -> Rel {
        let mut vars: Vec<Var> = self.vars.clone();
        for v in &other.vars {
            if !vars.contains(v) {
                vars.push(*v);
            }
        }
        vars.sort_unstable();
        let shared: Vec<Var> = self
            .vars
            .iter()
            .copied()
            .filter(|v| other.vars.contains(v))
            .collect();
        // Build hash index on the smaller side.
        let (probe, build) = if self.rows.len() >= other.rows.len() {
            (self, other)
        } else {
            (other, self)
        };
        let key_of = |rel: &Rel, row: &[NodeId]| -> Vec<NodeId> {
            shared
                .iter()
                .map(|v| row[rel.vars.iter().position(|w| w == v).expect("shared var")])
                .collect()
        };
        let mut index: HashMap<Vec<NodeId>, Vec<&Vec<NodeId>>> = HashMap::new();
        for row in &build.rows {
            index.entry(key_of(build, row)).or_default().push(row);
        }
        let mut rows = HashSet::new();
        for prow in &probe.rows {
            if let Some(matches) = index.get(&key_of(probe, prow)) {
                for brow in matches {
                    let mut out = Vec::with_capacity(vars.len());
                    for v in &vars {
                        let val = probe
                            .vars
                            .iter()
                            .position(|w| w == v)
                            .map(|i| prow[i])
                            .or_else(|| build.vars.iter().position(|w| w == v).map(|i| brow[i]))
                            .expect("var in one side");
                        out.push(val);
                    }
                    rows.insert(out);
                }
            }
        }
        Rel { vars, rows }
    }

    /// Project out variable `v` (∃).
    fn project_out(&self, v: Var) -> Rel {
        match self.vars.iter().position(|w| *w == v) {
            None => self.clone(),
            Some(i) => {
                let mut vars = self.vars.clone();
                vars.remove(i);
                let mut rows = HashSet::new();
                for row in &self.rows {
                    let mut r = row.clone();
                    r.remove(i);
                    rows.insert(r);
                }
                Rel { vars, rows }
            }
        }
    }

    /// Complement over the node domain.
    fn complement(&self, n: usize) -> Rel {
        let mut rows = HashSet::new();
        let arity = self.arity();
        let mut stack: Vec<Vec<NodeId>> = vec![Vec::new()];
        for _ in 0..arity {
            let mut next = Vec::new();
            for partial in stack {
                for v in 0..n as u32 {
                    let mut p = partial.clone();
                    p.push(NodeId(v));
                    next.push(p);
                }
            }
            stack = next;
        }
        for row in stack {
            if !self.rows.contains(&row) {
                rows.insert(row);
            }
        }
        Rel {
            vars: self.vars.clone(),
            rows,
        }
    }
}

/// Tracks the maximum intermediate arity seen during bounded evaluation —
/// exposed so experiments can verify the "binary tables only" claim.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalStats {
    /// Largest relation arity materialized.
    pub max_arity: usize,
    /// Largest relation cardinality materialized.
    pub max_rows: usize,
}

fn eval_rel(s: &GraphStructure<'_>, f: &Formula, stats: &mut EvalStats) -> Rel {
    let rel = match f {
        Formula::Unary(l, x) => {
            let rows: HashSet<Vec<NodeId>> = s
                .nodes_by_label
                .get(l)
                .map(|list| list.iter().map(|&n| vec![n]).collect())
                .unwrap_or_default();
            Rel {
                vars: vec![*x],
                rows,
            }
        }
        Formula::Binary(l, x, y) => {
            if x == y {
                // Self-loop pattern p(x, x).
                let rows: HashSet<Vec<NodeId>> = s
                    .edges_by_label
                    .get(l)
                    .map(|list| {
                        list.iter()
                            .filter(|(a, b)| a == b)
                            .map(|&(a, _)| vec![a])
                            .collect()
                    })
                    .unwrap_or_default();
                Rel {
                    vars: vec![*x],
                    rows,
                }
            } else {
                let swap = x > y;
                let rows: HashSet<Vec<NodeId>> = s
                    .edges_by_label
                    .get(l)
                    .map(|list| {
                        list.iter()
                            .map(|&(a, b)| if swap { vec![b, a] } else { vec![a, b] })
                            .collect()
                    })
                    .unwrap_or_default();
                let vars = if swap { vec![*y, *x] } else { vec![*x, *y] };
                Rel { vars, rows }
            }
        }
        Formula::Eq(x, y) => {
            if x == y {
                Rel::nullary(true)
            } else {
                let rows: HashSet<Vec<NodeId>> = (0..s.n() as u32)
                    .map(|v| vec![NodeId(v), NodeId(v)])
                    .collect();
                let mut vars = vec![*x, *y];
                vars.sort_unstable();
                Rel { vars, rows }
            }
        }
        Formula::Not(g) => {
            let inner = eval_rel(s, g, stats);
            inner.complement(s.n())
        }
        Formula::And(a, b) => {
            let ra = eval_rel(s, a, stats);
            let rb = eval_rel(s, b, stats);
            ra.join(&rb)
        }
        Formula::Or(a, b) => {
            let ra = eval_rel(s, a, stats);
            let rb = eval_rel(s, b, stats);
            let mut vars: Vec<Var> = ra.vars.clone();
            for v in &rb.vars {
                if !vars.contains(v) {
                    vars.push(*v);
                }
            }
            vars.sort_unstable();
            let ea = ra.extend_to(&vars, s.n());
            let eb = rb.extend_to(&vars, s.n());
            let mut rows = ea.rows;
            rows.extend(eb.rows);
            Rel { vars, rows }
        }
        Formula::Exists(v, g) => {
            let inner = eval_rel(s, g, stats);
            inner.project_out(*v)
        }
    };
    stats.max_arity = stats.max_arity.max(rel.arity());
    stats.max_rows = stats.max_rows.max(rel.rows.len());
    rel
}

/// Bounded-variable evaluation of a unary query `φ(x)` with statistics.
pub fn eval_bounded_stats(g: &LabeledGraph, f: &Formula, x: Var) -> (Vec<NodeId>, EvalStats) {
    let free = f.free_vars();
    assert!(
        free.iter().all(|v| *v == x),
        "query must have at most the free variable {x:?}, got {free:?}"
    );
    let s = GraphStructure::new(g);
    let mut stats = EvalStats::default();
    let rel = eval_rel(&s, f, &mut stats);
    let rel = rel.extend_to(&[x], s.n());
    let mut result: Vec<NodeId> = rel.rows.into_iter().map(|r| r[0]).collect();
    result.sort_unstable();
    result
        .windows(2)
        .for_each(|w| debug_assert!(w[0] != w[1], "set semantics"));
    (result, stats)
}

/// Bounded-variable evaluation of a unary query `φ(x)`.
pub fn eval_bounded(g: &LabeledGraph, f: &Formula, x: Var) -> Vec<NodeId> {
    eval_bounded_stats(g, f, x).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_graph::figures::figure2_labeled;
    use kgq_graph::generate::gnm_labeled;
    use kgq_graph::LabeledGraph;

    fn paper_psi(g: &mut LabeledGraph) -> Formula {
        let person = g.intern("person");
        let rides = g.intern("rides");
        let bus = g.intern("bus");
        let infected = g.intern("infected");
        let (x, y) = (Var(0), Var(1));
        let inner = Formula::Binary(rides, x, y)
            .and(Formula::Unary(infected, x))
            .exists(x);
        Formula::Unary(person, x).and(
            Formula::Binary(rides, x, y)
                .and(Formula::Unary(bus, y))
                .and(inner)
                .exists(y),
        )
    }

    fn paper_phi(g: &mut LabeledGraph) -> Formula {
        // Three-variable version: ∃y∃z (rides(x,y) ∧ bus(y) ∧ rides(z,y) ∧ infected(z))
        let person = g.intern("person");
        let rides = g.intern("rides");
        let bus = g.intern("bus");
        let infected = g.intern("infected");
        let (x, y, z) = (Var(0), Var(1), Var(2));
        Formula::Unary(person, x).and(
            Formula::Binary(rides, x, y)
                .and(Formula::Unary(bus, y))
                .and(Formula::Binary(rides, z, y).and(Formula::Unary(infected, z)))
                .exists(z)
                .exists(y),
        )
    }

    #[test]
    fn psi_and_phi_agree_on_figure2() {
        let mut g = figure2_labeled();
        let psi = paper_psi(&mut g);
        let phi = paper_phi(&mut g);
        let a = eval_bounded(&g, &psi, Var(0));
        let b = eval_naive(&g, &phi, Var(0));
        let c = eval_naive(&g, &psi, Var(0));
        let d = eval_bounded(&g, &phi, Var(0));
        let names = |v: &Vec<kgq_graph::NodeId>| -> Vec<&str> {
            v.iter().map(|&n| g.node_name(n)).collect()
        };
        assert_eq!(names(&a), vec!["n1", "n4"]);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, d);
    }

    #[test]
    fn bounded_psi_uses_only_binary_tables() {
        let mut g = figure2_labeled();
        let psi = paper_psi(&mut g);
        let (_, stats) = eval_bounded_stats(&g, &psi, Var(0));
        assert!(stats.max_arity <= 2, "arity {}", stats.max_arity);
    }

    #[test]
    fn naive_and_bounded_agree_on_random_formulas() {
        let mut g = gnm_labeled(8, 20, &["a", "b"], &["p", "q"], 13);
        let pa = g.intern("a");
        let p = g.intern("p");
        let q = g.intern("q");
        let (x, y) = (Var(0), Var(1));
        let formulas = [
            // a(x) ∧ ∃y p(x,y)
            Formula::Unary(pa, x).and(Formula::Binary(p, x, y).exists(y)),
            // ∃y (p(x,y) ∧ ¬q(x,y))
            Formula::Binary(p, x, y)
                .and(Formula::Binary(q, x, y).not())
                .exists(y),
            // ∃y (p(x,y) ∨ q(y,x))
            Formula::Binary(p, x, y)
                .or(Formula::Binary(q, y, x))
                .exists(y),
            // ¬∃y p(y,x)
            Formula::Binary(p, y, x).exists(y).not(),
            // ∃y (p(x,y) ∧ x = y)  — self loop
            Formula::Binary(p, x, y).and(Formula::Eq(x, y)).exists(y),
        ];
        for (i, f) in formulas.iter().enumerate() {
            let a = eval_naive(&g, f, x);
            let b = eval_bounded(&g, f, x);
            assert_eq!(a, b, "formula #{i}");
        }
    }

    #[test]
    fn negation_is_domain_complement() {
        let mut g = figure2_labeled();
        let bus = g.intern("bus");
        let f = Formula::Unary(bus, Var(0)).not();
        let res = eval_bounded(&g, &f, Var(0));
        assert_eq!(res.len(), 7); // all but n3
        assert_eq!(eval_naive(&g, &f, Var(0)), res);
    }

    #[test]
    fn self_loop_atom() {
        let mut g = LabeledGraph::new();
        let a = g.add_node("a", "x").unwrap();
        let b = g.add_node("b", "x").unwrap();
        g.add_edge("e1", a, a, "p").unwrap();
        g.add_edge("e2", a, b, "p").unwrap();
        let p = g.intern("p");
        let f = Formula::Binary(p, Var(0), Var(0));
        assert_eq!(eval_bounded(&g, &f, Var(0)), vec![a]);
        assert_eq!(eval_naive(&g, &f, Var(0)), vec![a]);
    }

    #[test]
    fn free_variable_mismatch_panics() {
        let mut g = figure2_labeled();
        let p = g.intern("rides");
        let f = Formula::Binary(p, Var(0), Var(1));
        let r = std::panic::catch_unwind(|| eval_bounded(&g, &f, Var(0)));
        assert!(r.is_err());
    }
}
