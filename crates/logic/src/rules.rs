//! Horn rules over triple stores, with bodies matched by the
//! worst-case optimal join engine.
//!
//! The paper's §2.3 "producing new knowledge" facet is rule application:
//! a Datalog-style rule `head ← body` derives the head triple for every
//! binding of its body — a conjunction of triple patterns, i.e. exactly
//! a BGP. Bodies are therefore matched through `kgq-rdf`'s leapfrog
//! triejoin ([`kgq_rdf::lftj`]): cyclic rule bodies (the expensive case
//! for the old backtracking matcher) evaluate within the AGM bound, and
//! each fixpoint round bulk-inserts its derivations with one sort per
//! ordering instead of per-triple splices.
//!
//! Rules must be *range-restricted* (every head variable occurs in the
//! body), the classic safety condition guaranteeing derived triples are
//! ground.

use kgq_core::govern::{Completion, EvalError, Governed, Governor};
use kgq_rdf::bgp::{Bgp, TermPattern, TriplePattern};
use kgq_rdf::store::{Triple, TripleStore};
use kgq_rdf::{lftj, Binding};
use std::fmt;

/// A Horn rule: derive `head` for every match of `body`.
#[derive(Clone, Debug)]
pub struct Rule {
    /// The derived triple pattern (constants and body variables only).
    pub head: TriplePattern,
    /// The condition: a conjunction of triple patterns.
    pub body: Bgp,
}

/// Why a rule was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuleError {
    /// A head variable does not occur in the body, so the derived triple
    /// would not be ground.
    NotRangeRestricted(String),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::NotRangeRestricted(v) => {
                write!(f, "head variable ?{v} does not occur in the rule body")
            }
        }
    }
}

impl std::error::Error for RuleError {}

fn body_vars(body: &Bgp) -> Vec<&str> {
    let mut vars = Vec::new();
    for pat in &body.patterns {
        for t in [&pat.s, &pat.p, &pat.o] {
            if let TermPattern::Var(v) = t {
                if !vars.contains(&v.as_str()) {
                    vars.push(v.as_str());
                }
            }
        }
    }
    vars
}

impl Rule {
    /// Validates range restriction and builds the rule.
    pub fn new(head: TriplePattern, body: Bgp) -> Result<Rule, RuleError> {
        let vars = body_vars(&body);
        for t in [&head.s, &head.p, &head.o] {
            if let TermPattern::Var(v) = t {
                if !vars.contains(&v.as_str()) {
                    return Err(RuleError::NotRangeRestricted(v.clone()));
                }
            }
        }
        Ok(Rule { head, body })
    }

    /// Convenience constructor with the `?var` string convention of
    /// [`Bgp::add`]: `Rule::parse(st, ("?x", "knows", "?z"),
    /// &[("?x", "knows", "?y"), ("?y", "knows", "?z")])`.
    pub fn parse(
        st: &mut TripleStore,
        head: (&str, &str, &str),
        body: &[(&str, &str, &str)],
    ) -> Result<Rule, RuleError> {
        let mut head_bgp = Bgp::new();
        head_bgp.add(st, head.0, head.1, head.2);
        let mut body_bgp = Bgp::new();
        for (s, p, o) in body {
            body_bgp.add(st, s, p, o);
        }
        let head_pat = head_bgp.patterns.remove(0);
        Rule::new(head_pat, body_bgp)
    }

    /// Instantiates the head under one body match.
    fn instantiate(&self, binding: &Binding) -> Option<Triple> {
        let value = |t: &TermPattern| match t {
            TermPattern::Const(c) => Some(*c),
            TermPattern::Var(v) => binding.get(v).copied(),
        };
        Some(Triple {
            s: value(&self.head.s)?,
            p: value(&self.head.p)?,
            o: value(&self.head.o)?,
        })
    }
}

/// Result of running rules to a fixpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixpointStats {
    /// Triples added by rule application.
    pub derived: usize,
    /// Rounds executed (the last one derives nothing new).
    pub rounds: usize,
}

/// Applies `rules` to a fixpoint, materializing derived triples into
/// `st`. Every body is matched by the leapfrog triejoin; each round's
/// derivations are bulk-inserted ([`TripleStore::extend`]).
pub fn fixpoint(st: &mut TripleStore, rules: &[Rule]) -> FixpointStats {
    let mut derived = 0usize;
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut fresh: Vec<Triple> = Vec::new();
        for rule in rules {
            let sol = lftj::solve(st, &rule.body);
            for binding in sol.bindings() {
                if let Some(t) = rule.instantiate(&binding) {
                    fresh.push(t);
                }
            }
        }
        let added = st.extend(fresh);
        derived += added;
        if added == 0 {
            break;
        }
    }
    FixpointStats { derived, rounds }
}

/// [`fixpoint`] under a governor. Body matching charges the governor
/// through every trie seek; when a round's matching is interrupted, the
/// triples derived so far are still sound (rule application is
/// monotone), so they stay materialized and the result reports
/// `Partial` with the interrupt reason.
pub fn fixpoint_governed(
    st: &mut TripleStore,
    rules: &[Rule],
    gov: &Governor,
) -> Result<Governed<FixpointStats>, EvalError> {
    let mut derived = 0usize;
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut fresh: Vec<Triple> = Vec::new();
        let mut interrupted = None;
        for rule in rules {
            let governed = lftj::solve_governed(st, &rule.body, gov)?;
            for binding in governed.value.bindings() {
                if let Some(t) = rule.instantiate(&binding) {
                    fresh.push(t);
                }
            }
            if let Completion::Partial(why) = governed.completion {
                interrupted = Some(why);
                break;
            }
        }
        let added = st.extend(fresh);
        derived += added;
        let stats = FixpointStats { derived, rounds };
        if let Some(why) = interrupted {
            return Ok(Governed::partial(stats, why));
        }
        if added == 0 {
            return Ok(Governed::complete(stats));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_core::govern::{Budget, Interrupt};

    fn chain_store(n: usize) -> TripleStore {
        let mut st = TripleStore::new();
        for i in 0..n {
            st.insert_strs(&format!("n{i}"), "edge", &format!("n{}", i + 1));
        }
        st
    }

    #[test]
    fn transitive_closure_via_fixpoint() {
        let mut st = chain_store(4);
        let rules = vec![
            Rule::parse(&mut st, ("?x", "path", "?y"), &[("?x", "edge", "?y")]).unwrap(),
            Rule::parse(
                &mut st,
                ("?x", "path", "?z"),
                &[("?x", "path", "?y"), ("?y", "edge", "?z")],
            )
            .unwrap(),
        ];
        let stats = fixpoint(&mut st, &rules);
        // Chain n0→…→n4: 4+3+2+1 = 10 path triples.
        assert_eq!(stats.derived, 10);
        assert!(stats.rounds >= 3, "closure needs chaining, got {stats:?}");
        let path = st.get_term("path").unwrap();
        assert_eq!(st.count(None, Some(path), None), 10);
    }

    #[test]
    fn cyclic_body_rule() {
        // Mutual acquaintance: both directions present.
        let mut st = TripleStore::new();
        st.insert_strs("a", "knows", "b");
        st.insert_strs("b", "knows", "a");
        st.insert_strs("b", "knows", "c");
        let rule = Rule::parse(
            &mut st,
            ("?x", "friend", "?y"),
            &[("?x", "knows", "?y"), ("?y", "knows", "?x")],
        )
        .unwrap();
        let stats = fixpoint(&mut st, &[rule]);
        assert_eq!(stats.derived, 2); // (a,b) and (b,a)
        let friend = st.get_term("friend").unwrap();
        assert_eq!(st.count(None, Some(friend), None), 2);
    }

    #[test]
    fn head_constants_are_allowed() {
        let mut st = TripleStore::new();
        st.insert_strs("ana", "advises", "ben");
        let rule = Rule::parse(
            &mut st,
            ("?x", "type", "Advisor"),
            &[("?x", "advises", "?y")],
        )
        .unwrap();
        fixpoint(&mut st, &[rule]);
        let t = Triple {
            s: st.get_term("ana").unwrap(),
            p: st.get_term("type").unwrap(),
            o: st.get_term("Advisor").unwrap(),
        };
        assert!(st.contains(t));
    }

    #[test]
    fn unsafe_rule_is_rejected() {
        let mut st = TripleStore::new();
        let err = Rule::parse(&mut st, ("?x", "p", "?ghost"), &[("?x", "q", "?y")]).unwrap_err();
        assert_eq!(err, RuleError::NotRangeRestricted("ghost".to_owned()));
    }

    #[test]
    fn fixpoint_is_idempotent() {
        let mut st = chain_store(3);
        let rules = vec![
            Rule::parse(&mut st, ("?x", "path", "?y"), &[("?x", "edge", "?y")]).unwrap(),
            Rule::parse(
                &mut st,
                ("?x", "path", "?z"),
                &[("?x", "path", "?y"), ("?y", "edge", "?z")],
            )
            .unwrap(),
        ];
        fixpoint(&mut st, &rules);
        let size = st.len();
        let again = fixpoint(&mut st, &rules);
        assert_eq!(again.derived, 0);
        assert_eq!(st.len(), size);
    }

    #[test]
    fn governed_fixpoint_unlimited_matches_plain() {
        let mut a = chain_store(4);
        let mut b = chain_store(4);
        let mk = |st: &mut TripleStore| {
            vec![
                Rule::parse(st, ("?x", "path", "?y"), &[("?x", "edge", "?y")]).unwrap(),
                Rule::parse(
                    st,
                    ("?x", "path", "?z"),
                    &[("?x", "path", "?y"), ("?y", "edge", "?z")],
                )
                .unwrap(),
            ]
        };
        let ra = mk(&mut a);
        let rb = mk(&mut b);
        let plain = fixpoint(&mut a, &ra);
        let gov = Governor::unlimited();
        let governed = fixpoint_governed(&mut b, &rb, &gov).unwrap();
        assert!(governed.completion.is_complete());
        assert_eq!(governed.value, plain);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn governed_fixpoint_interrupts_soundly() {
        let mut st = chain_store(6);
        let rules = vec![
            Rule::parse(&mut st, ("?x", "path", "?y"), &[("?x", "edge", "?y")]).unwrap(),
            Rule::parse(
                &mut st,
                ("?x", "path", "?z"),
                &[("?x", "path", "?y"), ("?y", "edge", "?z")],
            )
            .unwrap(),
        ];
        let before = st.len();
        let gov = Governor::new(&Budget::unlimited().with_max_results(3));
        let out = fixpoint_governed(&mut st, &rules, &gov).unwrap();
        assert_eq!(out.completion, Completion::Partial(Interrupt::ResultBudget));
        // Everything materialized is a genuine derivation: all derived
        // triples use the `path` predicate and connect chain nodes.
        let path = st.get_term("path").unwrap();
        let derived: Vec<Triple> = st.scan(None, Some(path), None).collect();
        assert_eq!(st.len(), before + derived.len());
        assert!(!derived.is_empty());
    }
}
