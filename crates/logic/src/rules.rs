//! Horn rules over triple stores, with bodies matched by the
//! worst-case optimal join engine.
//!
//! The paper's §2.3 "producing new knowledge" facet is rule application:
//! a Datalog-style rule `head ← body` derives the head triple for every
//! binding of its body — a conjunction of triple patterns, i.e. exactly
//! a BGP. Bodies are therefore matched through `kgq-rdf`'s leapfrog
//! triejoin ([`kgq_rdf::lftj`]): cyclic rule bodies (the expensive case
//! for the old backtracking matcher) evaluate within the AGM bound, and
//! each fixpoint round bulk-inserts its derivations with one sort per
//! ordering instead of per-triple splices.
//!
//! Rules must be *range-restricted* (every head variable occurs in the
//! body), the classic safety condition guaranteeing derived triples are
//! ground.

use kgq_core::govern::{Completion, EvalError, Governed, Governor, Interrupt};
use kgq_rdf::bgp::{Bgp, TermPattern, TriplePattern};
use kgq_rdf::store::{Triple, TripleStore};
use kgq_rdf::{lftj, Binding};
use std::fmt;

/// A Horn rule: derive `head` for every match of `body`.
#[derive(Clone, Debug)]
pub struct Rule {
    /// The derived triple pattern (constants and body variables only).
    pub head: TriplePattern,
    /// The condition: a conjunction of triple patterns.
    pub body: Bgp,
}

/// Why a rule was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuleError {
    /// A head variable does not occur in the body, so the derived triple
    /// would not be ground.
    NotRangeRestricted(String),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::NotRangeRestricted(v) => {
                write!(f, "head variable ?{v} does not occur in the rule body")
            }
        }
    }
}

impl std::error::Error for RuleError {}

fn body_vars(body: &Bgp) -> Vec<&str> {
    let mut vars = Vec::new();
    for pat in &body.patterns {
        for t in [&pat.s, &pat.p, &pat.o] {
            if let TermPattern::Var(v) = t {
                if !vars.contains(&v.as_str()) {
                    vars.push(v.as_str());
                }
            }
        }
    }
    vars
}

impl Rule {
    /// Validates range restriction and builds the rule.
    pub fn new(head: TriplePattern, body: Bgp) -> Result<Rule, RuleError> {
        let vars = body_vars(&body);
        for t in [&head.s, &head.p, &head.o] {
            if let TermPattern::Var(v) = t {
                if !vars.contains(&v.as_str()) {
                    return Err(RuleError::NotRangeRestricted(v.clone()));
                }
            }
        }
        Ok(Rule { head, body })
    }

    /// Convenience constructor with the `?var` string convention of
    /// [`Bgp::add`]: `Rule::parse(st, ("?x", "knows", "?z"),
    /// &[("?x", "knows", "?y"), ("?y", "knows", "?z")])`.
    pub fn parse(
        st: &mut TripleStore,
        head: (&str, &str, &str),
        body: &[(&str, &str, &str)],
    ) -> Result<Rule, RuleError> {
        let mut head_bgp = Bgp::new();
        head_bgp.add(st, head.0, head.1, head.2);
        let mut body_bgp = Bgp::new();
        for (s, p, o) in body {
            body_bgp.add(st, s, p, o);
        }
        let head_pat = head_bgp.patterns.remove(0);
        Rule::new(head_pat, body_bgp)
    }

    /// Instantiates the head under one body match.
    fn instantiate(&self, binding: &Binding) -> Option<Triple> {
        let value = |t: &TermPattern| match t {
            TermPattern::Const(c) => Some(*c),
            TermPattern::Var(v) => binding.get(v).copied(),
        };
        Some(Triple {
            s: value(&self.head.s)?,
            p: value(&self.head.p)?,
            o: value(&self.head.o)?,
        })
    }
}

/// Result of running rules to a fixpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixpointStats {
    /// Triples added by rule application.
    pub derived: usize,
    /// Rounds executed (the last one derives nothing new).
    pub rounds: usize,
}

/// Applies `rules` to a fixpoint, materializing derived triples into
/// `st`. Every body is matched by the leapfrog triejoin; each round's
/// derivations are bulk-inserted ([`TripleStore::extend`]).
///
/// The program is statically analyzed first
/// ([`crate::analyze::analyze_program`]): rules the analyzer proves dead
/// are skipped (they can never fire, so skipping is sound), and the
/// iteration is capped at the analyzer's round bound — a defensive
/// backstop that turns a bound-analysis bug into early termination of a
/// monotone (hence still sound, merely incomplete) materialization
/// rather than an infinite loop.
pub fn fixpoint(st: &mut TripleStore, rules: &[Rule]) -> FixpointStats {
    let analysis = crate::analyze::analyze_program(st, rules);
    let live: Vec<&Rule> = rules
        .iter()
        .enumerate()
        .filter(|(i, _)| !analysis.dead_rules.contains(i))
        .map(|(_, r)| r)
        .collect();
    let mut derived = 0usize;
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut fresh: Vec<Triple> = Vec::new();
        for rule in &live {
            let sol = lftj::solve(st, &rule.body);
            for binding in sol.bindings() {
                if let Some(t) = rule.instantiate(&binding) {
                    fresh.push(t);
                }
            }
        }
        let added = st.extend(fresh);
        derived += added;
        if added == 0 || rounds as u64 >= analysis.round_bound {
            break;
        }
    }
    FixpointStats { derived, rounds }
}

/// [`fixpoint`] under a governor. Body matching charges the governor
/// through every trie seek; when a round's matching is interrupted, the
/// triples derived so far are still sound (rule application is
/// monotone), so they stay materialized and the result reports
/// `Partial` with the interrupt reason.
///
/// Like [`fixpoint`], consults the static program analysis first: a
/// [`kgq_core::analyze::Severity::Deny`] verdict (an unsafe rule built
/// by hand around [`Rule::new`]) is refused up front as
/// [`EvalError::InvalidInput`], dead rules are skipped, and the round
/// bound pre-sizes the iteration budget.
pub fn fixpoint_governed(
    st: &mut TripleStore,
    rules: &[Rule],
    gov: &Governor,
) -> Result<Governed<FixpointStats>, EvalError> {
    let analysis = crate::analyze::analyze_program(st, rules);
    if let Some(denied) = analysis
        .diagnostics
        .iter()
        .find(|d| d.severity == kgq_core::analyze::Severity::Deny)
    {
        return Err(EvalError::InvalidInput(denied.message.clone()));
    }
    let live: Vec<&Rule> = rules
        .iter()
        .enumerate()
        .filter(|(i, _)| !analysis.dead_rules.contains(i))
        .map(|(_, r)| r)
        .collect();
    let mut derived = 0usize;
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut fresh: Vec<Triple> = Vec::new();
        let mut interrupted = None;
        for rule in &live {
            let governed = lftj::solve_governed(st, &rule.body, gov)?;
            for binding in governed.value.bindings() {
                if let Some(t) = rule.instantiate(&binding) {
                    fresh.push(t);
                }
            }
            if let Completion::Partial(why) = governed.completion {
                interrupted = Some(why);
                break;
            }
        }
        let added = st.extend(fresh);
        derived += added;
        let stats = FixpointStats { derived, rounds };
        if let Some(why) = interrupted {
            return Ok(Governed::partial(stats, why));
        }
        if added == 0 {
            return Ok(Governed::complete(stats));
        }
        // Defensive: the analyzer's round bound is the iteration budget.
        // A sound bound is never hit (every productive round derives at
        // least one triple); hitting it means a bound-analysis bug, and
        // the monotone partial materialization is reported honestly.
        if rounds as u64 >= analysis.round_bound {
            return Ok(Governed::partial(stats, Interrupt::StepBudget));
        }
    }
}

/// Why a rule program text failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleParseError {
    /// 1-based line number of the offending rule.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RuleParseError {}

fn rule_tokens(line: usize, atom: &str) -> Result<[String; 3], RuleParseError> {
    let toks: Vec<&str> = atom.split_whitespace().collect();
    if toks.len() != 3 {
        return Err(RuleParseError {
            line,
            message: format!(
                "atom `{}` must have exactly three terms, found {}",
                atom.trim(),
                toks.len()
            ),
        });
    }
    Ok([0, 1, 2].map(|i| {
        let t = toks[i];
        // `<iri>` brackets are cosmetic; strip them like the N-Triples
        // reader so rule constants line up with loaded data.
        match t.strip_prefix('<').and_then(|u| u.strip_suffix('>')) {
            Some(inner) => inner.to_owned(),
            None => t.to_owned(),
        }
    }))
}

/// Parses a rule program in the textual syntax used by `kgq analyze
/// rules` and the `ANALYZE` server verb: one rule per line,
///
/// ```text
/// # transitive closure
/// ?x path ?y :- ?x edge ?y .
/// ?x path ?z :- ?x path ?y, ?y edge ?z .
/// ```
///
/// Terms are whitespace-separated; `?name` is a variable, `<iri>`
/// brackets are stripped, anything else is a constant. `#` starts a
/// comment, the trailing `.` is optional, blank lines are skipped. Every
/// rule is validated by [`Rule::new`] (range restriction).
pub fn parse_program(st: &mut TripleStore, text: &str) -> Result<Vec<Rule>, RuleParseError> {
    let mut rules = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let stripped = match raw.split_once('#') {
            Some((code, _comment)) => code,
            None => raw,
        };
        let stripped = stripped.trim();
        let stripped = stripped.strip_suffix('.').unwrap_or(stripped).trim();
        if stripped.is_empty() {
            continue;
        }
        let Some((head_text, body_text)) = stripped.split_once(":-") else {
            return Err(RuleParseError {
                line,
                message: "expected `head :- body` (missing `:-`)".to_owned(),
            });
        };
        let head = rule_tokens(line, head_text)?;
        let mut head_holder = Bgp::new();
        head_holder.add(st, &head[0], &head[1], &head[2]);
        let head_pat = head_holder.patterns.remove(0);
        let mut body = Bgp::new();
        for atom in body_text.split(',') {
            if atom.trim().is_empty() {
                return Err(RuleParseError {
                    line,
                    message: "empty atom in rule body".to_owned(),
                });
            }
            let t = rule_tokens(line, atom)?;
            body.add(st, &t[0], &t[1], &t[2]);
        }
        if body.patterns.is_empty() {
            return Err(RuleParseError {
                line,
                message: "rule body needs at least one atom".to_owned(),
            });
        }
        let rule = Rule::new(head_pat, body).map_err(|e| RuleParseError {
            line,
            message: e.to_string(),
        })?;
        rules.push(rule);
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_core::govern::{Budget, Interrupt};

    fn chain_store(n: usize) -> TripleStore {
        let mut st = TripleStore::new();
        for i in 0..n {
            st.insert_strs(&format!("n{i}"), "edge", &format!("n{}", i + 1));
        }
        st
    }

    #[test]
    fn transitive_closure_via_fixpoint() {
        let mut st = chain_store(4);
        let rules = vec![
            Rule::parse(&mut st, ("?x", "path", "?y"), &[("?x", "edge", "?y")]).unwrap(),
            Rule::parse(
                &mut st,
                ("?x", "path", "?z"),
                &[("?x", "path", "?y"), ("?y", "edge", "?z")],
            )
            .unwrap(),
        ];
        let stats = fixpoint(&mut st, &rules);
        // Chain n0→…→n4: 4+3+2+1 = 10 path triples.
        assert_eq!(stats.derived, 10);
        assert!(stats.rounds >= 3, "closure needs chaining, got {stats:?}");
        let path = st.get_term("path").unwrap();
        assert_eq!(st.count(None, Some(path), None), 10);
    }

    #[test]
    fn cyclic_body_rule() {
        // Mutual acquaintance: both directions present.
        let mut st = TripleStore::new();
        st.insert_strs("a", "knows", "b");
        st.insert_strs("b", "knows", "a");
        st.insert_strs("b", "knows", "c");
        let rule = Rule::parse(
            &mut st,
            ("?x", "friend", "?y"),
            &[("?x", "knows", "?y"), ("?y", "knows", "?x")],
        )
        .unwrap();
        let stats = fixpoint(&mut st, &[rule]);
        assert_eq!(stats.derived, 2); // (a,b) and (b,a)
        let friend = st.get_term("friend").unwrap();
        assert_eq!(st.count(None, Some(friend), None), 2);
    }

    #[test]
    fn head_constants_are_allowed() {
        let mut st = TripleStore::new();
        st.insert_strs("ana", "advises", "ben");
        let rule = Rule::parse(
            &mut st,
            ("?x", "type", "Advisor"),
            &[("?x", "advises", "?y")],
        )
        .unwrap();
        fixpoint(&mut st, &[rule]);
        let t = Triple {
            s: st.get_term("ana").unwrap(),
            p: st.get_term("type").unwrap(),
            o: st.get_term("Advisor").unwrap(),
        };
        assert!(st.contains(t));
    }

    #[test]
    fn unsafe_rule_is_rejected() {
        let mut st = TripleStore::new();
        let err = Rule::parse(&mut st, ("?x", "p", "?ghost"), &[("?x", "q", "?y")]).unwrap_err();
        assert_eq!(err, RuleError::NotRangeRestricted("ghost".to_owned()));
    }

    #[test]
    fn fixpoint_is_idempotent() {
        let mut st = chain_store(3);
        let rules = vec![
            Rule::parse(&mut st, ("?x", "path", "?y"), &[("?x", "edge", "?y")]).unwrap(),
            Rule::parse(
                &mut st,
                ("?x", "path", "?z"),
                &[("?x", "path", "?y"), ("?y", "edge", "?z")],
            )
            .unwrap(),
        ];
        fixpoint(&mut st, &rules);
        let size = st.len();
        let again = fixpoint(&mut st, &rules);
        assert_eq!(again.derived, 0);
        assert_eq!(st.len(), size);
    }

    #[test]
    fn governed_fixpoint_unlimited_matches_plain() {
        let mut a = chain_store(4);
        let mut b = chain_store(4);
        let mk = |st: &mut TripleStore| {
            vec![
                Rule::parse(st, ("?x", "path", "?y"), &[("?x", "edge", "?y")]).unwrap(),
                Rule::parse(
                    st,
                    ("?x", "path", "?z"),
                    &[("?x", "path", "?y"), ("?y", "edge", "?z")],
                )
                .unwrap(),
            ]
        };
        let ra = mk(&mut a);
        let rb = mk(&mut b);
        let plain = fixpoint(&mut a, &ra);
        let gov = Governor::unlimited();
        let governed = fixpoint_governed(&mut b, &rb, &gov).unwrap();
        assert!(governed.completion.is_complete());
        assert_eq!(governed.value, plain);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn parse_program_round_trips_closure() {
        let mut st = chain_store(4);
        let text = "# transitive closure\n\
                    ?x path ?y :- ?x edge ?y .\n\
                    \n\
                    ?x path ?z :- ?x path ?y, ?y edge ?z .\n";
        let rules = parse_program(&mut st, text).unwrap();
        assert_eq!(rules.len(), 2);
        let stats = fixpoint(&mut st, &rules);
        assert_eq!(stats.derived, 10);
    }

    #[test]
    fn parse_program_strips_iri_brackets() {
        let mut st = TripleStore::new();
        st.insert_strs("http://x.test/a", "http://x.test/p", "b");
        let rules = parse_program(
            &mut st,
            "?s <http://x.test/q> ?o :- ?s <http://x.test/p> ?o",
        )
        .unwrap();
        let stats = fixpoint(&mut st, &rules);
        assert_eq!(stats.derived, 1);
        let q = st.get_term("http://x.test/q").unwrap();
        assert_eq!(st.count(None, Some(q), None), 1);
    }

    #[test]
    fn parse_program_reports_errors_with_lines() {
        let mut st = TripleStore::new();
        let err = parse_program(&mut st, "\n?x p ?y ?z :- ?x q ?y").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("three terms"));
        let err = parse_program(&mut st, "?x p ?y").unwrap_err();
        assert!(err.message.contains(":-"));
        let err = parse_program(&mut st, "?x p ?ghost :- ?x q ?y").unwrap_err();
        assert!(err.message.contains("?ghost"));
        let err = parse_program(&mut st, "?x p ?y :- ?x q ?y,").unwrap_err();
        assert!(err.message.contains("empty atom"));
    }

    #[test]
    fn fixpoint_skips_dead_rules_without_changing_results() {
        let mut st = chain_store(3);
        let rules = vec![
            Rule::parse(&mut st, ("?x", "hop", "?y"), &[("?x", "edge", "?y")]).unwrap(),
            // Dead: `ghost` never appears and nothing derives it.
            Rule::parse(&mut st, ("?x", "haunt", "?y"), &[("?x", "ghost", "?y")]).unwrap(),
        ];
        let stats = fixpoint(&mut st, &rules);
        assert_eq!(stats.derived, 3);
        assert!(
            st.get_term("haunt").is_none() || {
                let h = st.get_term("haunt").unwrap();
                st.count(None, Some(h), None) == 0
            }
        );
    }

    #[test]
    fn governed_fixpoint_denies_hand_built_unsafe_rule() {
        let mut st = chain_store(2);
        let mut body = Bgp::new();
        body.add(&mut st, "?x", "edge", "?y");
        let mut head_holder = Bgp::new();
        head_holder.add(&mut st, "?x", "edge", "?ghost");
        let rule = Rule {
            head: head_holder.patterns.remove(0),
            body,
        };
        let gov = Governor::unlimited();
        let err = fixpoint_governed(&mut st, &[rule], &gov).unwrap_err();
        assert!(matches!(err, EvalError::InvalidInput(_)));
        assert!(err.to_string().contains("?ghost"));
    }

    #[test]
    fn governed_fixpoint_interrupts_soundly() {
        let mut st = chain_store(6);
        let rules = vec![
            Rule::parse(&mut st, ("?x", "path", "?y"), &[("?x", "edge", "?y")]).unwrap(),
            Rule::parse(
                &mut st,
                ("?x", "path", "?z"),
                &[("?x", "path", "?y"), ("?y", "edge", "?z")],
            )
            .unwrap(),
        ];
        let before = st.len();
        let gov = Governor::new(&Budget::unlimited().with_max_results(3));
        let out = fixpoint_governed(&mut st, &rules, &gov).unwrap();
        assert_eq!(out.completion, Completion::Partial(Interrupt::ResultBudget));
        // Everything materialized is a genuine derivation: all derived
        // triples use the `path` predicate and connect chain nodes.
        let path = st.get_term("path").unwrap();
        let derived: Vec<Triple> = st.scan(None, Some(path), None).collect();
        assert_eq!(st.len(), before + derived.len());
        assert!(!derived.is_empty());
    }
}
