//! Static analysis of Horn-rule programs, mirroring the BGP and RPQ
//! analyzers: typed [`Diagnostic`]s on the shared severity ladder plus a
//! termination-bound verdict the governed fixpoint consults before
//! spending budget.
//!
//! Checks:
//!
//! * `unsafe-rule` (deny) — a head variable does not occur in the body.
//!   [`crate::rules::Rule::new`] already rejects this, but the fields of
//!   [`Rule`] are public, so the analyzer re-derives safety for rules
//!   built directly.
//! * `dead-rule` (warn) — a body pattern names a constant predicate that
//!   is neither in the store vocabulary nor derivable by any live rule,
//!   so the rule can never fire. Computed to a fixpoint: rules that only
//!   feed dead rules die with them.
//! * `recursive-program` (note) — the predicate dependency graph has a
//!   cycle; the fixpoint must iterate rather than finish in one stratum.
//! * `subsumed-rule` / `duplicate-rule` (note) — θ-subsumption: some
//!   other rule derives everything this rule derives (a substitution
//!   maps its head onto this head and its body into this body), so the
//!   rule is redundant.
//!
//! The verdict part: a predicate stratification (informational — Horn
//! programs without negation always stratify), and a derivation bound —
//! the maximum number of triples the program can ever derive (product of
//! active-domain sizes over non-constant head positions, summed over
//! rules), from which the round bound `derivations + 1` follows because
//! every productive round derives at least one new triple.

use crate::rules::Rule;
use kgq_core::analyze::{Diagnostic, Severity};
use kgq_graph::Sym;
use kgq_rdf::bgp::{TermPattern, TriplePattern};
use kgq_rdf::store::TripleStore;

/// The static verdict for one rule program against one store.
#[derive(Clone, Debug, Default)]
pub struct ProgramReport {
    /// Findings, most severe first.
    pub diagnostics: Vec<Diagnostic>,
    /// Indices of rules that can never fire on this store (their body
    /// mentions an underivable predicate). The fixpoint skips them.
    pub dead_rules: Vec<usize>,
    /// True when the predicate dependency graph is cyclic.
    pub recursive: bool,
    /// Derived predicates with their stratum (1-based; a predicate's
    /// stratum exceeds every predicate it depends on, cycles share one).
    pub strata: Vec<(String, usize)>,
    /// Upper bound on the number of triples the program can derive.
    pub derivation_bound: u64,
    /// Upper bound on fixpoint rounds (`derivation_bound + 1`: every
    /// productive round derives at least one new triple, plus the final
    /// empty round). The governed fixpoint consults this to pre-size its
    /// iteration budget.
    pub round_bound: u64,
}

impl ProgramReport {
    /// True when any finding is [`Severity::Deny`].
    pub fn denied(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// Renders diagnostics and verdict — the `kgq analyze rules` and
    /// `ANALYZE` surface.
    pub fn render(&self) -> String {
        let mut out = String::from("== diagnostics ==\n");
        if self.diagnostics.is_empty() {
            out.push_str("(none)\n");
        } else {
            for d in &self.diagnostics {
                out.push_str(&format!("{d}\n"));
            }
        }
        out.push_str("== verdict ==\n");
        out.push_str(&format!(
            "dead rules: {}\n",
            if self.dead_rules.is_empty() {
                "(none)".to_owned()
            } else {
                format!("{:?}", self.dead_rules)
            }
        ));
        out.push_str(&format!(
            "recursive: {}\n",
            if self.recursive { "yes" } else { "no" }
        ));
        if self.strata.is_empty() {
            out.push_str("strata: (none)\n");
        } else {
            let parts: Vec<String> = self
                .strata
                .iter()
                .map(|(p, s)| format!("{p}={s}"))
                .collect();
            out.push_str(&format!("strata: {}\n", parts.join(" ")));
        }
        out.push_str(&format!(
            "derivation bound: {} triples\nround bound: {}\n",
            self.derivation_bound, self.round_bound
        ));
        out
    }
}

fn body_var_names(rule: &Rule) -> Vec<&str> {
    let mut vars = Vec::new();
    for pat in &rule.body.patterns {
        for t in [&pat.s, &pat.p, &pat.o] {
            if let TermPattern::Var(v) = t {
                if !vars.contains(&v.as_str()) {
                    vars.push(v.as_str());
                }
            }
        }
    }
    vars
}

fn const_pred(p: &TriplePattern) -> Option<Sym> {
    match p.p {
        TermPattern::Const(c) => Some(c),
        TermPattern::Var(_) => None,
    }
}

/// θ-subsumption term match: `a`'s variables map to arbitrary terms of
/// `b`, consistently across the whole rule.
fn match_term<'a>(
    a: &'a TermPattern,
    b: &TermPattern,
    theta: &mut Vec<(&'a str, TermPattern)>,
) -> bool {
    match a {
        TermPattern::Const(x) => matches!(b, TermPattern::Const(y) if x == y),
        TermPattern::Var(v) => match theta.iter().find(|(u, _)| u == v) {
            Some((_, t)) => t == b,
            None => {
                theta.push((v.as_str(), b.clone()));
                true
            }
        },
    }
}

fn match_pattern<'a>(
    a: &'a TriplePattern,
    b: &TriplePattern,
    theta: &mut Vec<(&'a str, TermPattern)>,
) -> bool {
    match_term(&a.s, &b.s, theta) && match_term(&a.p, &b.p, theta) && match_term(&a.o, &b.o, theta)
}

fn match_body<'a>(
    av: &'a [TriplePattern],
    bv: &[TriplePattern],
    theta: &mut Vec<(&'a str, TermPattern)>,
) -> bool {
    let Some(first) = av.first() else {
        return true;
    };
    for bp in bv {
        let mut attempt = theta.clone();
        if match_pattern(first, bp, &mut attempt) && match_body(&av[1..], bv, &mut attempt) {
            *theta = attempt;
            return true;
        }
    }
    false
}

/// True when `a` θ-subsumes `b`: a substitution maps `a`'s head onto
/// `b`'s head and `a`'s body into `b`'s body, so every triple `b`
/// derives, `a` derives too.
fn subsumes(a: &Rule, b: &Rule) -> bool {
    let mut theta: Vec<(&str, TermPattern)> = Vec::new();
    match_pattern(&a.head, &b.head, &mut theta)
        && match_body(&a.body.patterns, &b.body.patterns, &mut theta)
}

/// Analyzes a rule program against a store: safety, dead rules,
/// recursion/strata, redundancy, and the termination bound. Both
/// [`crate::rules::fixpoint`] and [`crate::rules::fixpoint_governed`]
/// consult the result before executing.
pub fn analyze_program(st: &TripleStore, rules: &[Rule]) -> ProgramReport {
    let mut report = ProgramReport::default();

    // Safety (range restriction), re-derived for directly-built rules.
    for (i, rule) in rules.iter().enumerate() {
        let vars = body_var_names(rule);
        for t in [&rule.head.s, &rule.head.p, &rule.head.o] {
            if let TermPattern::Var(v) = t {
                if !vars.contains(&v.as_str()) {
                    report.diagnostics.push(Diagnostic {
                        severity: Severity::Deny,
                        code: "unsafe-rule",
                        message: format!(
                            "rule {i}: head variable ?{v} does not occur in the body; derived triples would not be ground"
                        ),
                        span: None,
                    });
                }
            }
        }
    }

    // Predicate dependency graph over constant predicates. A variable
    // head predicate makes the derivable set unknowable, so dead-rule
    // detection is skipped conservatively in that case.
    let any_var_head = rules
        .iter()
        .any(|r| matches!(r.head.p, TermPattern::Var(_)));
    let mut preds: Vec<Sym> = Vec::new();
    let add_pred = |preds: &mut Vec<Sym>, s: Sym| {
        if !preds.contains(&s) {
            preds.push(s);
        }
    };
    for rule in rules {
        if let Some(h) = const_pred(&rule.head) {
            add_pred(&mut preds, h);
        }
        for pat in &rule.body.patterns {
            if let Some(b) = const_pred(pat) {
                add_pred(&mut preds, b);
            }
        }
    }
    // depends[i][j]: predicate i's derivation reads predicate j.
    let np = preds.len();
    let mut depends = vec![vec![false; np]; np];
    for rule in rules {
        let Some(h) = const_pred(&rule.head) else {
            continue;
        };
        let Some(hi) = preds.iter().position(|&p| p == h) else {
            continue;
        };
        for pat in &rule.body.patterns {
            if let Some(b) = const_pred(pat) {
                if let Some(bi) = preds.iter().position(|&p| p == b) {
                    depends[hi][bi] = true;
                }
            }
        }
    }
    // Transitive closure (programs are tiny).
    for k in 0..np {
        for i in 0..np {
            if depends[i][k] {
                for j in 0..np {
                    if depends[k][j] {
                        depends[i][j] = true;
                    }
                }
            }
        }
    }
    let recursive_preds: Vec<Sym> = (0..np)
        .filter(|&i| depends[i][i])
        .map(|i| preds[i])
        .collect();
    // A rule whose body reads its own (variable-predicate-free) head
    // counts, and so does a variable head predicate joined with a
    // variable body predicate — conservatively recursive.
    report.recursive = !recursive_preds.is_empty()
        || (any_var_head
            && rules
                .iter()
                .any(|r| r.body.patterns.iter().any(|p| const_pred(p).is_none())));
    if !recursive_preds.is_empty() {
        let names: Vec<&str> = recursive_preds.iter().map(|&p| st.term_str(p)).collect();
        report.diagnostics.push(Diagnostic {
            severity: Severity::Note,
            code: "recursive-program",
            message: format!(
                "predicate dependency cycle through {{{}}}; the fixpoint iterates up to the round bound",
                names.join(", ")
            ),
            span: None,
        });
    }

    // Dead rules, to a fixpoint: start from vocabulary + every head, keep
    // removing heads whose rules cannot fire.
    if !any_var_head {
        let mut dead: Vec<usize> = Vec::new();
        loop {
            let mut derivable: Vec<Sym> = preds
                .iter()
                .copied()
                .filter(|&p| st.count(None, Some(p), None) > 0)
                .collect();
            for (i, rule) in rules.iter().enumerate() {
                if dead.contains(&i) {
                    continue;
                }
                if let Some(h) = const_pred(&rule.head) {
                    if !derivable.contains(&h) {
                        derivable.push(h);
                    }
                }
            }
            let next_dead: Vec<usize> = rules
                .iter()
                .enumerate()
                .filter(|(_, rule)| {
                    rule.body
                        .patterns
                        .iter()
                        .any(|pat| const_pred(pat).is_some_and(|b| !derivable.contains(&b)))
                })
                .map(|(i, _)| i)
                .collect();
            if next_dead == dead {
                break;
            }
            dead = next_dead;
        }
        for &i in &dead {
            report.diagnostics.push(Diagnostic {
                severity: Severity::Warn,
                code: "dead-rule",
                message: format!(
                    "rule {i} can never fire: its body reads a predicate that is neither in the store vocabulary nor derivable"
                ),
                span: None,
            });
        }
        report.dead_rules = dead;
    }

    // Stratification: every derived predicate one stratum above the
    // derived predicates it reads, cycle members sharing a stratum.
    let derived: Vec<usize> = (0..np)
        .filter(|&i| rules.iter().any(|r| const_pred(&r.head) == Some(preds[i])))
        .collect();
    let mut stratum = vec![1usize; np];
    for _ in 0..=np {
        for &hi in &derived {
            for &bi in &derived {
                if hi != bi && depends[hi][bi] && !(depends[bi][hi]) {
                    stratum[hi] = stratum[hi].max(stratum[bi] + 1);
                }
                // Cycle members share the maximum stratum of the cycle.
                if hi != bi && depends[hi][bi] && depends[bi][hi] {
                    let m = stratum[hi].max(stratum[bi]);
                    stratum[hi] = m;
                    stratum[bi] = m;
                }
            }
        }
    }
    report.strata = derived
        .iter()
        .map(|&i| (st.term_str(preds[i]).to_owned(), stratum[i]))
        .collect();

    // Redundancy: θ-subsumption between rule pairs. Flag the subsumed
    // rule; for mutually-subsuming (renaming-equivalent) pairs flag the
    // later one only.
    for i in 0..rules.len() {
        for j in 0..rules.len() {
            if i == j {
                continue;
            }
            if subsumes(&rules[i], &rules[j]) && (i < j || !subsumes(&rules[j], &rules[i])) {
                let equal = rules[i].head == rules[j].head
                    && rules[i].body.patterns == rules[j].body.patterns;
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Note,
                    code: if equal {
                        "duplicate-rule"
                    } else {
                        "subsumed-rule"
                    },
                    message: format!(
                        "rule {j} is {} rule {i}; it derives nothing rule {i} does not",
                        if equal {
                            "a duplicate of"
                        } else {
                            "subsumed by"
                        }
                    ),
                    span: None,
                });
            }
        }
    }

    // Termination bound: per rule, the product over head positions of 1
    // (constant) or the active-domain size (variable); summed, saturating.
    let adom = st.terms().len() as u64;
    let mut bound = 0u64;
    for rule in rules {
        let mut per_rule = 1u64;
        for t in [&rule.head.s, &rule.head.p, &rule.head.o] {
            per_rule = per_rule.saturating_mul(match t {
                TermPattern::Const(_) => 1,
                TermPattern::Var(_) => adom.max(1),
            });
        }
        bound = bound.saturating_add(per_rule);
    }
    report.derivation_bound = bound;
    report.round_bound = bound.saturating_add(1);

    report
        .diagnostics
        .sort_by_key(|d| std::cmp::Reverse(d.severity));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_rdf::bgp::Bgp;

    fn chain_store(n: usize) -> TripleStore {
        let mut st = TripleStore::new();
        for i in 0..n {
            st.insert_strs(&format!("n{i}"), "edge", &format!("n{}", i + 1));
        }
        st
    }

    fn closure_rules(st: &mut TripleStore) -> Vec<Rule> {
        vec![
            Rule::parse(st, ("?x", "path", "?y"), &[("?x", "edge", "?y")]).unwrap(),
            Rule::parse(
                st,
                ("?x", "path", "?z"),
                &[("?x", "path", "?y"), ("?y", "edge", "?z")],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn closure_program_is_recursive_and_clean() {
        let mut st = chain_store(4);
        let rules = closure_rules(&mut st);
        let rep = analyze_program(&st, &rules);
        assert!(rep.recursive);
        assert!(!rep.denied());
        assert!(rep.dead_rules.is_empty());
        assert!(rep
            .diagnostics
            .iter()
            .any(|d| d.code == "recursive-program"));
        // path depends on edge (base) and itself; single derived pred.
        assert_eq!(rep.strata, vec![("path".to_owned(), 1)]);
        assert!(rep.render().contains("recursive: yes"));
    }

    #[test]
    fn empty_program_has_zero_bound() {
        let st = chain_store(2);
        let rep = analyze_program(&st, &[]);
        assert!(!rep.recursive);
        assert_eq!(rep.derivation_bound, 0);
        assert_eq!(rep.round_bound, 1);
        assert!(rep.diagnostics.is_empty());
    }

    #[test]
    fn dead_rule_is_detected_transitively() {
        let mut st = chain_store(2);
        // ghost is neither stored nor derived; the wraith rule only feeds
        // on ghost, so it is dead too — transitively.
        let rules = vec![
            Rule::parse(&mut st, ("?x", "haunt", "?y"), &[("?x", "ghost", "?y")]).unwrap(),
            Rule::parse(&mut st, ("?x", "wraith", "?y"), &[("?x", "haunt", "?y")]).unwrap(),
            Rule::parse(&mut st, ("?x", "hop", "?y"), &[("?x", "edge", "?y")]).unwrap(),
        ];
        let rep = analyze_program(&st, &rules);
        assert_eq!(rep.dead_rules, vec![0, 1]);
        assert_eq!(
            rep.diagnostics
                .iter()
                .filter(|d| d.code == "dead-rule")
                .count(),
            2
        );
    }

    #[test]
    fn unsafe_directly_built_rule_is_denied() {
        let mut st = chain_store(2);
        let mut body = Bgp::new();
        body.add(&mut st, "?x", "edge", "?y");
        let mut head_holder = Bgp::new();
        head_holder.add(&mut st, "?x", "edge", "?ghost");
        // Bypasses Rule::new on purpose: fields are public.
        let rule = Rule {
            head: head_holder.patterns.remove(0),
            body,
        };
        let rep = analyze_program(&st, &[rule]);
        assert!(rep.denied());
        assert!(rep
            .diagnostics
            .iter()
            .any(|d| d.code == "unsafe-rule" && d.message.contains("?ghost")));
    }

    #[test]
    fn renamed_rule_is_flagged_once_as_duplicate() {
        let mut st = chain_store(2);
        let rules = vec![
            Rule::parse(&mut st, ("?x", "hop", "?y"), &[("?x", "edge", "?y")]).unwrap(),
            Rule::parse(&mut st, ("?a", "hop", "?b"), &[("?a", "edge", "?b")]).unwrap(),
        ];
        let rep = analyze_program(&st, &rules);
        let notes: Vec<_> = rep
            .diagnostics
            .iter()
            .filter(|d| d.code == "subsumed-rule" || d.code == "duplicate-rule")
            .collect();
        assert_eq!(notes.len(), 1);
        assert!(notes[0].message.contains("rule 1"));
    }

    #[test]
    fn more_general_rule_subsumes_specialized_one() {
        let mut st = chain_store(2);
        st.insert_strs("n0", "tag", "special");
        let rules = vec![
            Rule::parse(&mut st, ("?x", "hop", "?y"), &[("?x", "edge", "?y")]).unwrap(),
            // Same head shape, stricter body: subsumed by rule 0.
            Rule::parse(
                &mut st,
                ("?x", "hop", "?y"),
                &[("?x", "edge", "?y"), ("?x", "tag", "special")],
            )
            .unwrap(),
        ];
        let rep = analyze_program(&st, &rules);
        assert!(rep
            .diagnostics
            .iter()
            .any(|d| d.code == "subsumed-rule" && d.message.contains("rule 1")));
    }

    #[test]
    fn strata_order_layered_programs() {
        let mut st = chain_store(3);
        let rules = vec![
            Rule::parse(&mut st, ("?x", "hop", "?y"), &[("?x", "edge", "?y")]).unwrap(),
            Rule::parse(
                &mut st,
                ("?x", "skip", "?z"),
                &[("?x", "hop", "?y"), ("?y", "hop", "?z")],
            )
            .unwrap(),
        ];
        let rep = analyze_program(&st, &rules);
        assert!(!rep.recursive);
        let hop = rep.strata.iter().find(|(p, _)| p == "hop").unwrap().1;
        let skip = rep.strata.iter().find(|(p, _)| p == "skip").unwrap().1;
        assert!(skip > hop, "skip={skip} hop={hop}");
    }

    #[test]
    fn termination_bound_dominates_actual_derivations() {
        let mut st = chain_store(4);
        let rules = closure_rules(&mut st);
        let rep = analyze_program(&st, &rules);
        let stats = crate::rules::fixpoint(&mut st, &rules);
        assert!(rep.derivation_bound >= stats.derived as u64);
        assert!(rep.round_bound >= stats.rounds as u64);
    }
}
