//! Regex → first-order logic compilation (§4.3).
//!
//! For star-free path expressions, node extraction ("which nodes start a
//! matching path?") is first-order expressible. [`compile_fo2`] produces
//! the paper's ψ-style formula that *reuses two variables* by swapping
//! the roles of `x` and `y` at every edge step — "values of variables can
//! be forgotten, allowing them to be reused". [`compile_wide`] produces
//! the naive φ-style formula with a fresh variable per step, used by the
//! experiments to contrast evaluation costs at different widths.
//!
//! Limitations (returned as [`CompileError`]):
//!
//! * Kleene star is not first-order expressible (transitive closure);
//! * property/feature tests are outside the label signature;
//! * negated or conjunctive *edge* tests cannot be translated faithfully
//!   on multigraphs (¬ℓ(x,y) says "no ℓ-edge from x to y", not "some
//!   non-ℓ edge"), so edge tests must be positive disjunctions of labels.

use crate::formula::{Formula, Var};
use kgq_core::expr::{PathExpr, Test};
use std::fmt;

/// Why an expression could not be compiled to first-order logic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The expression contains `*` (not FO-expressible).
    Star,
    /// A property or feature test appears (outside the label signature).
    NonLabelTest,
    /// An edge test uses negation/conjunction (ambiguous on multigraphs).
    EdgeTestNotPositive,
    /// More than 255 variables would be needed.
    WidthOverflow,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Star => write!(f, "Kleene star is not first-order expressible"),
            CompileError::NonLabelTest => {
                write!(
                    f,
                    "property/feature tests are outside the FO label signature"
                )
            }
            CompileError::EdgeTestNotPositive => write!(
                f,
                "edge tests must be positive disjunctions of labels for FO translation"
            ),
            CompileError::WidthOverflow => write!(f, "too many variables required"),
        }
    }
}

impl std::error::Error for CompileError {}

fn node_test_formula(t: &Test, v: Var) -> Result<Formula, CompileError> {
    match t {
        Test::Label(l) => Ok(Formula::Unary(*l, v)),
        Test::Prop(..) | Test::Feature(..) => Err(CompileError::NonLabelTest),
        Test::Not(inner) => Ok(node_test_formula(inner, v)?.not()),
        Test::And(a, b) => Ok(node_test_formula(a, v)?.and(node_test_formula(b, v)?)),
        Test::Or(a, b) => Ok(node_test_formula(a, v)?.or(node_test_formula(b, v)?)),
    }
}

/// Edge tests must be positive label disjunctions; produces
/// `ℓ₁(a,b) ∨ ℓ₂(a,b) ∨ …`.
fn edge_test_formula(t: &Test, a: Var, b: Var) -> Result<Formula, CompileError> {
    match t {
        Test::Label(l) => Ok(Formula::Binary(*l, a, b)),
        Test::Or(x, y) => Ok(edge_test_formula(x, a, b)?.or(edge_test_formula(y, a, b)?)),
        Test::Prop(..) | Test::Feature(..) => Err(CompileError::NonLabelTest),
        Test::Not(_) | Test::And(_, _) => Err(CompileError::EdgeTestNotPositive),
    }
}

/// Flattened step sequence of a star-free expression.
enum Step<'a> {
    Node(&'a Test),
    Fwd(&'a Test),
    Bwd(&'a Test),
    Branch(&'a PathExpr, &'a PathExpr),
}

fn flatten<'a>(e: &'a PathExpr, out: &mut Vec<Step<'a>>) -> Result<(), CompileError> {
    match e {
        PathExpr::NodeTest(t) => out.push(Step::Node(t)),
        PathExpr::Forward(t) => out.push(Step::Fwd(t)),
        PathExpr::Backward(t) => out.push(Step::Bwd(t)),
        PathExpr::Concat(a, b) => {
            flatten(a, out)?;
            flatten(b, out)?;
        }
        PathExpr::Alt(a, b) => out.push(Step::Branch(a, b)),
        PathExpr::Star(_) => return Err(CompileError::Star),
    }
    Ok(())
}

/// Variable allocation strategy.
trait VarAlloc {
    /// Variable to use after stepping away from `cur`.
    fn next(&mut self, cur: Var) -> Result<Var, CompileError>;
}

/// Two-variable reuse: always "the other one" of {0, 1}.
struct TwoVars;
impl VarAlloc for TwoVars {
    fn next(&mut self, cur: Var) -> Result<Var, CompileError> {
        Ok(if cur == Var(0) { Var(1) } else { Var(0) })
    }
}

/// Fresh variable per step.
struct FreshVars {
    counter: u8,
}
impl VarAlloc for FreshVars {
    fn next(&mut self, _cur: Var) -> Result<Var, CompileError> {
        if self.counter == u8::MAX {
            return Err(CompileError::WidthOverflow);
        }
        self.counter += 1;
        Ok(Var(self.counter))
    }
}

fn compile_steps(
    steps: &[Step<'_>],
    cur: Var,
    alloc: &mut dyn VarAlloc,
) -> Result<Formula, CompileError> {
    match steps.split_first() {
        None => Ok(Formula::Eq(cur, cur)), // ⊤ with free var cur
        Some((step, rest)) => match step {
            Step::Node(t) => Ok(node_test_formula(t, cur)?.and(compile_steps(rest, cur, alloc)?)),
            Step::Fwd(t) => {
                let nv = alloc.next(cur)?;
                let edge = edge_test_formula(t, cur, nv)?;
                Ok(edge.and(compile_steps(rest, nv, alloc)?).exists(nv))
            }
            Step::Bwd(t) => {
                let nv = alloc.next(cur)?;
                let edge = edge_test_formula(t, nv, cur)?;
                Ok(edge.and(compile_steps(rest, nv, alloc)?).exists(nv))
            }
            Step::Branch(a, b) => {
                let mut left = Vec::new();
                flatten(a, &mut left)?;
                let mut lsteps = left;
                lsteps.extend(flatten_rest(rest));
                let mut right = Vec::new();
                flatten(b, &mut right)?;
                let mut rsteps = right;
                rsteps.extend(flatten_rest(rest));
                Ok(compile_steps(&lsteps, cur, alloc)?.or(compile_steps(&rsteps, cur, alloc)?))
            }
        },
    }
}

fn flatten_rest<'a>(rest: &[Step<'a>]) -> Vec<Step<'a>> {
    rest.iter()
        .map(|s| match s {
            Step::Node(t) => Step::Node(t),
            Step::Fwd(t) => Step::Fwd(t),
            Step::Bwd(t) => Step::Bwd(t),
            Step::Branch(a, b) => Step::Branch(a, b),
        })
        .collect()
}

/// Compiles a star-free expression to the two-variable formula ψ(x):
/// "some path matching `expr` starts at `x`". Free variable: `Var(0)`.
pub fn compile_fo2(expr: &PathExpr) -> Result<Formula, CompileError> {
    let mut steps = Vec::new();
    flatten(expr, &mut steps)?;
    compile_steps(&steps, Var(0), &mut TwoVars)
}

/// Compiles with a fresh variable per step — the φ-style wide formula
/// with the same answers as [`compile_fo2`] but width `O(|expr|)`.
pub fn compile_wide(expr: &PathExpr) -> Result<Formula, CompileError> {
    let mut steps = Vec::new();
    flatten(expr, &mut steps)?;
    compile_steps(&steps, Var(0), &mut FreshVars { counter: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_bounded, eval_bounded_stats, eval_naive};
    use kgq_core::eval::matching_starts;
    use kgq_core::model::LabeledView;
    use kgq_core::parser::parse_expr;
    use kgq_graph::figures::figure2_labeled;
    use kgq_graph::generate::gnm_labeled;

    #[test]
    fn paper_expression_compiles_to_width_two() {
        let mut g = figure2_labeled();
        let e = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
        let psi = compile_fo2(&e).unwrap();
        assert_eq!(psi.width(), 2);
        let phi = compile_wide(&e).unwrap();
        assert_eq!(phi.width(), 3); // x plus two edge steps
    }

    #[test]
    fn compiled_formula_agrees_with_rpq_engine() {
        let mut g = figure2_labeled();
        let e = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
        let psi = compile_fo2(&e).unwrap();
        let from_logic = eval_bounded(&g, &psi, Var(0));
        let view = LabeledView::new(&g);
        let from_rpq = matching_starts(&view, &e);
        assert_eq!(from_logic, from_rpq);
        let phi = compile_wide(&e).unwrap();
        assert_eq!(eval_naive(&g, &phi, Var(0)), from_rpq);
    }

    #[test]
    fn fo2_evaluation_stays_binary() {
        let mut g = figure2_labeled();
        let e = parse_expr(
            "?person/rides/?bus/rides^-/?person/contact/?infected",
            g.consts_mut(),
        )
        .unwrap();
        let psi = compile_fo2(&e).unwrap();
        assert_eq!(psi.width(), 2);
        let (_, stats) = eval_bounded_stats(&g, &psi, Var(0));
        assert!(stats.max_arity <= 2);
    }

    #[test]
    fn random_star_free_expressions_agree() {
        for seed in 0..3 {
            let mut g = gnm_labeled(10, 28, &["a", "b"], &["p", "q"], seed);
            for text in [
                "p/q",
                "?a/p/?b",
                "p^-/q",
                "(p + q)/?a",
                "?a/(p + q^-)/?b",
                "{p | q}/?a",
            ] {
                let e = parse_expr(text, g.consts_mut()).unwrap();
                let psi = compile_fo2(&e).unwrap();
                let from_logic = eval_bounded(&g, &psi, Var(0));
                let view = LabeledView::new(&g);
                let from_rpq = matching_starts(&view, &e);
                assert_eq!(from_logic, from_rpq, "seed={seed} expr={text}");
            }
        }
    }

    #[test]
    fn star_is_rejected() {
        let mut g = figure2_labeled();
        let e = parse_expr("(contact)*", g.consts_mut()).unwrap();
        assert_eq!(compile_fo2(&e), Err(CompileError::Star));
    }

    #[test]
    fn property_tests_are_rejected() {
        let mut g = figure2_labeled();
        let e = parse_expr("[date='3/4/21']", g.consts_mut()).unwrap();
        assert_eq!(compile_fo2(&e), Err(CompileError::NonLabelTest));
        let e = parse_expr("?[age=33]", g.consts_mut()).unwrap();
        assert_eq!(compile_fo2(&e), Err(CompileError::NonLabelTest));
    }

    #[test]
    fn negated_edge_tests_are_rejected() {
        let mut g = figure2_labeled();
        let e = parse_expr("{!rides}", g.consts_mut()).unwrap();
        assert_eq!(compile_fo2(&e), Err(CompileError::EdgeTestNotPositive));
        // Negated *node* tests are fine.
        let e = parse_expr("?{!bus}/rides", g.consts_mut()).unwrap();
        assert!(compile_fo2(&e).is_ok());
    }
}
