//! Criterion group `logic` — FO evaluation strategies (§4.3).

use criterion::{criterion_group, criterion_main, Criterion};
use kgq_core::{matching_starts, parse_expr, LabeledView};
use kgq_graph::generate::{contact_network, ContactParams};
use kgq_logic::{compile_fo2, compile_wide, eval_bounded, eval_naive, Var};
use std::hint::black_box;
use std::time::Duration;

fn bench_logic(c: &mut Criterion) {
    let pg = contact_network(&ContactParams {
        people: 120,
        buses: 10,
        ..ContactParams::default()
    });
    let mut g = pg.into_labeled();
    let expr = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
    let psi = compile_fo2(&expr).unwrap();
    let phi = compile_wide(&expr).unwrap();
    let view = LabeledView::new(&g);

    let mut group = c.benchmark_group("logic");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(20);

    group.bench_function("fo2_pipeline", |b| {
        b.iter(|| black_box(eval_bounded(&g, &psi, Var(0))))
    });
    group.bench_function("fo2_naive", |b| {
        b.iter(|| black_box(eval_naive(&g, &psi, Var(0))))
    });
    group.bench_function("wide_naive", |b| {
        b.iter(|| black_box(eval_naive(&g, &phi, Var(0))))
    });
    group.bench_function("rpq_product", |b| {
        b.iter(|| black_box(matching_starts(&view, &expr)))
    });
    group.finish();
}

criterion_group!(benches, bench_logic);
criterion_main!(benches);
