//! Criterion group `product` — the flat-CSR product evaluation pipeline:
//! multi-source `pairs()` at several thread counts against its sequential
//! reference, and compiled-query cache cold-miss vs warm-hit.
//!
//! Thread counts above the machine's core count cannot speed anything up
//! (the scans are CPU-bound); the interesting comparison on a small
//! machine is that the parallel path costs about the same as the
//! sequential one — the speedup numbers come from `exp_parallel`.

use criterion::{criterion_group, criterion_main, Criterion};
use kgq_core::parallel::set_threads;
use kgq_core::{parse_expr, Evaluator, LabeledView, QueryCache};
use kgq_graph::generate::barabasi_albert;
use std::hint::black_box;
use std::time::Duration;

fn bench_product(c: &mut Criterion) {
    // ~100k edges: each node past the seed clique attaches 4 edges.
    let mut g = barabasi_albert(25_004, 4, "v", "link", 7);
    assert!(
        g.edge_count() >= 100_000,
        "graph too small: {}",
        g.edge_count()
    );
    let expr = parse_expr("link/link", g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);
    let ev = Evaluator::new(&view, &expr);

    let mut group = c.benchmark_group("product");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);

    group.bench_function("pairs_sequential", |b| {
        b.iter(|| black_box(ev.pairs_sequential()))
    });
    for threads in [1usize, 2, 4] {
        group.bench_function(&format!("pairs_{threads}_threads"), |b| {
            set_threads(threads);
            b.iter(|| black_box(ev.pairs()))
        });
    }
    set_threads(1);

    group.bench_function("query_cold_compile", |b| {
        b.iter(|| {
            let cache = QueryCache::new();
            black_box(cache.get_or_compile(&view, 0, &expr))
        })
    });
    group.bench_function("query_warm_hit", |b| {
        let cache = QueryCache::new();
        cache.get_or_compile(&view, 0, &expr);
        b.iter(|| black_box(cache.get_or_compile(&view, 0, &expr)));
        assert_eq!(cache.misses(), 1, "warm iterations must all hit");
    });
    group.finish();
}

criterion_group!(benches, bench_product);
criterion_main!(benches);
