//! Criterion group `analytics` — the §4.2 toolbox plus bc_r.

use criterion::{criterion_group, criterion_main, Criterion};
use kgq_analytics::{
    bc_r_approx, bc_r_exact, betweenness, densest_subgraph, pagerank, BcrParams, PageRankParams,
};
use kgq_core::{parse_expr, LabeledView};
use kgq_graph::generate::{barabasi_albert, contact_network, ContactParams};
use std::hint::black_box;
use std::time::Duration;

fn bench_analytics(c: &mut Criterion) {
    let g = barabasi_albert(300, 3, "v", "e", 8);

    let mut group = c.benchmark_group("analytics");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(15);

    group.bench_function("pagerank_ba300", |b| {
        b.iter(|| black_box(pagerank(&g, &PageRankParams::default())))
    });
    group.bench_function("betweenness_ba300", |b| {
        b.iter(|| black_box(betweenness(&g)))
    });
    group.bench_function("densest_ba300", |b| {
        b.iter(|| black_box(densest_subgraph(&g)))
    });

    let pg = contact_network(&ContactParams {
        people: 25,
        buses: 3,
        ..ContactParams::default()
    });
    let mut cg = pg.into_labeled();
    let expr = parse_expr("?person/rides/?bus/rides^-/?person", cg.consts_mut()).unwrap();
    let view = LabeledView::new(&cg);
    group.bench_function("bcr_exact_contact25", |b| {
        b.iter(|| black_box(bc_r_exact(&view, &expr)))
    });
    group.bench_function("bcr_approx_contact25", |b| {
        b.iter(|| {
            black_box(bc_r_approx(
                &view,
                &expr,
                &BcrParams {
                    samples_per_pair: 16,
                    seed: 1,
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_analytics);
criterion_main!(benches);
