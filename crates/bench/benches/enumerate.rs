//! Criterion group `enumerate` — polynomial-delay enumeration and
//! uniform generation microbenchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use kgq_core::{parse_expr, LabeledView, PathEnumerator, UniformSampler};
use kgq_graph::generate::gnm_labeled;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_enumerate(c: &mut Criterion) {
    let mut g = gnm_labeled(30, 110, &["a"], &["p", "q"], 11);
    let expr = parse_expr("(p+q)*", g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);

    let mut group = c.benchmark_group("enumerate");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(20);

    group.bench_function("preprocess_k4", |b| {
        b.iter(|| black_box(PathEnumerator::new(&view, &expr, 4)))
    });
    group.bench_function("first_100_answers_k4", |b| {
        b.iter(|| {
            let it = PathEnumerator::new(&view, &expr, 4);
            black_box(it.take(100).count())
        })
    });
    group.bench_function("full_enumeration_k3", |b| {
        b.iter(|| black_box(PathEnumerator::new(&view, &expr, 3).count()))
    });

    let sampler = UniformSampler::new(&view, &expr, 4).unwrap();
    group.bench_function("uniform_sample_k4", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(sampler.sample(&mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_enumerate);
criterion_main!(benches);
