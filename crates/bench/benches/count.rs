//! Criterion group `count` — Count(G, r, k) microbenchmarks:
//! determinization cost, exact DP per query, naive DFS, FPRAS.

use criterion::{criterion_group, criterion_main, Criterion};
use kgq_core::{
    approx_count, count_paths_naive, parse_expr, ApproxParams, ExactCounter, LabeledView,
};
use kgq_graph::generate::gnm_labeled;
use std::hint::black_box;
use std::time::Duration;

fn bench_count(c: &mut Criterion) {
    let mut g = gnm_labeled(20, 60, &["a", "b"], &["p", "q"], 3);
    let expr = parse_expr("(p+q)*", g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);
    let counter = ExactCounter::new(&view, &expr);

    let mut group = c.benchmark_group("count");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(20);

    group.bench_function("determinize_G20", |b| {
        b.iter(|| black_box(ExactCounter::new(&view, &expr)))
    });
    group.bench_function("exact_dp_k6", |b| {
        b.iter(|| black_box(counter.count(black_box(6)).unwrap()))
    });
    group.bench_function("naive_dfs_k4", |b| {
        b.iter(|| black_box(count_paths_naive(&view, &expr, black_box(4))))
    });
    let params = ApproxParams {
        epsilon: 0.3,
        trials: Some(512),
        ..ApproxParams::default()
    };
    group.bench_function("fpras_k6_t512", |b| {
        b.iter(|| black_box(approx_count(&view, &expr, black_box(6), &params)))
    });
    group.finish();
}

criterion_group!(benches, bench_count);
criterion_main!(benches);
