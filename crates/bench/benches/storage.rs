//! Criterion group `storage` — data-layout ablations called out in
//! DESIGN.md: label-sorted CSR adjacency vs linear filtering, and
//! index-selected triple scans vs full-scan filtering.

use criterion::{criterion_group, criterion_main, Criterion};
use kgq_graph::generate::gnm_labeled;
use kgq_graph::{LabelIndex, NodeId};
use kgq_rdf::TripleStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn bench_storage(c: &mut Criterion) {
    // 16 labels so per-node label ranges are selective.
    let labels: Vec<String> = (0..16).map(|i| format!("l{i}")).collect();
    let label_refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
    let g = gnm_labeled(500, 20_000, &["v"], &label_refs, 23);
    let idx = LabelIndex::build(&g);
    let target = g.sym("l3").unwrap();

    let mut group = c.benchmark_group("storage");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(20);

    // Ablation: binary-searched label range vs linear scan of out-edges.
    group.bench_function("label_range_scan", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for v in 0..g.node_count() as u32 {
                total += idx.out_with_label(NodeId(v), target).len();
            }
            black_box(total)
        })
    });
    group.bench_function("linear_label_filter", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for v in 0..g.node_count() as u32 {
                total += g
                    .base()
                    .out_edges(NodeId(v))
                    .iter()
                    .filter(|&&e| g.edge_label(e) == target)
                    .count();
            }
            black_box(total)
        })
    });

    // Triple-store: index-backed pattern scan vs full-scan filter.
    let mut st = TripleStore::new();
    let mut rng = StdRng::seed_from_u64(5);
    for i in 0..20_000 {
        let s = format!("s{}", rng.gen_range(0..2000));
        let p = format!("p{}", rng.gen_range(0..20));
        let o = format!("o{}", rng.gen_range(0..2000));
        st.insert_strs(&s, &p, &o);
        let _ = i;
    }
    let p3 = st.get_term("p3").unwrap();
    group.bench_function("rdf_index_scan_p", |b| {
        b.iter(|| black_box(st.scan(None, Some(p3), None).count()))
    });
    group.bench_function("rdf_full_scan_filter_p", |b| {
        b.iter(|| black_box(st.iter().filter(|t| t.p == p3).count()))
    });
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
