//! Criterion group `joins` — relational joins vs native traversal (§2.2).

use criterion::{criterion_group, criterion_main, Criterion};
use kgq_core::{parse_expr, Evaluator, LabeledView};
use kgq_graph::generate::gnm_labeled;
use kgq_relbase::rpq_join_pairs;
use std::hint::black_box;
use std::time::Duration;

fn bench_joins(c: &mut Criterion) {
    let mut g = gnm_labeled(150, 750, &["v"], &["p", "q"], 17);
    let path4 = parse_expr("p/p/p/p", g.consts_mut()).unwrap();
    let closure = parse_expr("(p)*", g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);

    let mut group = c.benchmark_group("joins");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(15);

    group.bench_function("relational_path4", |b| {
        b.iter(|| black_box(rpq_join_pairs(&view, &path4).unwrap()))
    });
    group.bench_function("native_path4", |b| {
        b.iter(|| black_box(Evaluator::new(&view, &path4).pairs()))
    });
    group.bench_function("relational_closure", |b| {
        b.iter(|| black_box(rpq_join_pairs(&view, &closure).unwrap()))
    });
    group.bench_function("native_closure", |b| {
        b.iter(|| black_box(Evaluator::new(&view, &closure).pairs()))
    });
    group.finish();
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
