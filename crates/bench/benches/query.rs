//! Criterion group `query` — the same co-rider question across the four
//! query formalisms of the workspace.

use criterion::{criterion_group, criterion_main, Criterion};
use kgq_core::{eval_pairs, parse_expr, PropertyView};
use kgq_cypher::{execute, parse_query};
use kgq_graph::generate::{contact_network, ContactParams};
use kgq_rdf::{labeled_to_rdf, Bgp, RDF_TYPE};
use kgq_relbase::rpq_join_pairs;
use std::hint::black_box;
use std::time::Duration;

fn bench_query(c: &mut Criterion) {
    let pg = contact_network(&ContactParams {
        people: 80,
        buses: 6,
        infected_fraction: 0.15,
        ..ContactParams::default()
    });
    let mut g = pg.clone();
    let expr = parse_expr(
        "?person/rides/?bus/rides^-/?infected",
        g.labeled_mut().consts_mut(),
    )
    .unwrap();
    let cypher_q =
        parse_query("MATCH (p:person)-[:rides]->(b:bus), (i:infected)-[:rides]->(b) RETURN p, i")
            .unwrap();
    let mut st = labeled_to_rdf(pg.labeled());
    let mut bgp = Bgp::new();
    bgp.add(&mut st, "?p", RDF_TYPE, "person");
    bgp.add(&mut st, "?i", RDF_TYPE, "infected");
    bgp.add(&mut st, "?b", RDF_TYPE, "bus");
    bgp.add(&mut st, "?p", "rides", "?b");
    bgp.add(&mut st, "?i", "rides", "?b");

    let mut group = c.benchmark_group("query");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(20);

    group.bench_function("rpq_product", |b| {
        let view = PropertyView::new(&g);
        b.iter(|| black_box(eval_pairs(&view, &expr)))
    });
    group.bench_function("cypher_match", |b| {
        b.iter(|| black_box(execute(&pg, &cypher_q)))
    });
    group.bench_function("sparql_bgp", |b| b.iter(|| black_box(bgp.solve(&st))));
    group.bench_function("relational_joins", |b| {
        let view = PropertyView::new(&g);
        b.iter(|| black_box(rpq_join_pairs(&view, &expr).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
