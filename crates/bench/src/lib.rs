//! # kgq-bench — experiment harness
//!
//! One binary per experiment of `DESIGN.md` §3 (run with
//! `cargo run -p kgq-bench --release --bin <exp_id>`), plus criterion
//! micro-benchmarks under `benches/`. This library hosts the shared
//! table-printing and timing helpers so every experiment prints the same
//! kind of aligned, self-describing output recorded in `EXPERIMENTS.md`.

use std::time::{Duration, Instant};

/// Prints an aligned text table with a header rule.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        line(row);
    }
}

/// Times a closure once, returning its value and the wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed())
}

/// Formats a duration with adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2}s", nanos as f64 / 1e9)
    }
}

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Percentile (nearest-rank) of a sample.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let rank = ((p / 100.0) * s.len() as f64).ceil().max(1.0) as usize;
    s[rank.min(s.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500ns");
        assert!(fmt_duration(Duration::from_micros(42)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(42)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }

    #[test]
    fn stats_helpers() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn timed_returns_value() {
        let (v, d) = timed(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
