//! Experiment `exp_enum` (E6) — polynomial-delay enumeration.
//!
//! Measures the inter-answer delay of the pruned-DFS enumerator across
//! answer-set sizes: the *maximum* delay should stay flat (bounded by a
//! polynomial in the instance, not by the number of answers), and the
//! time-to-first-answer should be far below materializing everything.

use kgq_bench::{fmt_duration, print_table, timed};
use kgq_core::{count_paths, parse_expr, LabeledView, PathEnumerator};
use kgq_graph::generate::gnm_labeled;
use std::time::{Duration, Instant};

fn main() {
    let mut rows = Vec::new();
    for (n, m, k) in [
        (10usize, 20usize, 3usize),
        (20, 60, 4),
        (40, 160, 5),
        (60, 300, 5),
    ] {
        let mut g = gnm_labeled(n, m, &["a"], &["p", "q"], 11);
        let expr = parse_expr("(p+q)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let total = count_paths(&view, &expr, k).unwrap();

        let (mut it, prep) = timed(|| PathEnumerator::new(&view, &expr, k));
        // Time to first answer.
        let t0 = Instant::now();
        let first = it.next();
        let ttfa = t0.elapsed();
        assert!(first.is_some());
        // Delays between consecutive answers.
        let mut delays: Vec<Duration> = Vec::new();
        let mut count = 1u128;
        loop {
            let t = Instant::now();
            match it.next() {
                Some(_) => {
                    delays.push(t.elapsed());
                    count += 1;
                }
                None => break,
            }
        }
        assert_eq!(count, total, "enumerator must be complete");
        let max_delay = delays.iter().max().copied().unwrap_or_default();
        let p999 = {
            let mut d = delays.clone();
            d.sort_unstable();
            d.get((d.len() as f64 * 0.999) as usize)
                .or_else(|| d.last())
                .copied()
                .unwrap_or_default()
        };
        let mean_delay = if delays.is_empty() {
            Duration::ZERO
        } else {
            delays.iter().sum::<Duration>() / delays.len() as u32
        };
        // Baseline: materialize everything, then look at the first.
        let (all, t_material) = timed(|| PathEnumerator::new(&view, &expr, k).collect::<Vec<_>>());
        assert_eq!(all.len() as u128, total);
        rows.push(vec![
            format!("G({n},{m}) k={k}"),
            total.to_string(),
            fmt_duration(prep),
            fmt_duration(ttfa),
            fmt_duration(mean_delay),
            fmt_duration(p999),
            fmt_duration(max_delay),
            fmt_duration(t_material),
        ]);
    }
    print_table(
        "Polynomial-delay enumeration of ⟦(p+q)*⟧ answers of length k",
        &[
            "instance",
            "answers",
            "preprocess",
            "first answer",
            "mean delay",
            "p99.9 delay",
            "max delay",
            "materialize-all",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: answers grow by orders of magnitude while the \
         max inter-answer delay stays roughly flat, and the first answer \
         arrives ~immediately vs. materializing the full set."
    );
}
