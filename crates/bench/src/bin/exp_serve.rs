//! Experiment `exp_serve` — sustained mixed traffic against the
//! concurrent query server, emitted as `BENCH_serve.json`.
//!
//! Boots a `kgq-serve` server (in-process by default; `--addr H:P`
//! drives an already-running `kgq serve` binary instead), then runs a
//! fleet of concurrent clients over real TCP:
//!
//! - well-behaved clients issue a rotating mix of RPQ, Cypher and
//!   SPARQL requests and assert every response is **byte-identical** to
//!   a solo baseline of the same query;
//! - one deliberate **budget-tripping** client hammers an expensive
//!   reachability query under a tiny result cap and asserts every
//!   response is a typed exact-prefix `Partial` (CLI trailer format);
//! - sustained QPS plus p50/p99 latency, trip/error counts and shared
//!   cache hit rates are recorded in the JSON report.
//!
//! In in-process mode the run finishes with a clean [`ServerHandle::
//! shutdown`] and asserts **no leaked threads** via `/proc/self/status`
//! — the same bar the serve-smoke CI job enforces. Any divergence
//! (wrong bytes, missing partial, leaked thread) aborts with a nonzero
//! exit, so the binary doubles as a smoke test. `--quick` trims the
//! fleet and the per-client request count; `--shutdown` additionally
//! sends the `SHUTDOWN` verb at the end (used against an external
//! server to prove the binary exits cleanly).

use kgq_graph::generate::{contact_network, ContactParams};
use kgq_rdf::parse_ntriples;
use kgq_serve::stats::percentile;
use kgq_serve::{process_thread_count, serve, stat, Caps, Client, ServerConfig, Verb};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const NT: &str = "<a> <knows> <b> .\n<b> <knows> <c> .\n<c> <knows> <a> .\n\
                  <a> <type> <P> .\n<b> <type> <P> .\n<c> <rel> <a> .\n";

const RPQ_EXPR: &str = "?person/rides/?bus/rides^-/?infected";
const TRIP_EXPR: &str = "(rides + contact + lives)*";
const CYPHER_Q: &str = "MATCH (p:person)-[:rides]->(b:bus) RETURN p, b";
const SPARQL_Q: &str = "SELECT ?x ?y WHERE { ?x <knows> ?y . ?y <type> <P> . }";

struct Baselines {
    rpq: String,
    trip_full: String,
    cypher: String,
    sparql: String,
}

/// Exits with a message instead of panicking: a failed experiment run
/// should read like a diagnosis, not a backtrace.
fn orfail<T, E: std::fmt::Display>(result: Result<T, E>, what: &str) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("exp_serve: {what}: {e}");
        std::process::exit(1);
    })
}

fn connect(addr: &str) -> Client {
    let c = orfail(Client::connect(addr), "connect");
    orfail(
        c.set_timeout(Some(Duration::from_secs(120))),
        "set socket timeout",
    );
    c
}

fn str_flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let external_addr = str_flag(&args, "--addr").map(String::from);
    let send_shutdown = args.iter().any(|a| a == "--shutdown");
    let (clients, rounds) = if quick { (4, 12) } else { (8, 40) };
    let workers = 4;

    let baseline_threads = process_thread_count();
    // In-process server unless --addr points at a running one.
    let (handle, addr) = if let Some(addr) = external_addr.clone() {
        (None, addr)
    } else {
        let g = contact_network(&ContactParams {
            people: if quick { 60 } else { 200 },
            buses: 8,
            addresses: 25,
            seed: 31,
            ..ContactParams::default()
        });
        let st = orfail(parse_ntriples(NT), "parse embedded N-Triples");
        let handle = orfail(
            serve(
                g,
                st,
                ServerConfig {
                    addr: "127.0.0.1:0".into(),
                    workers,
                    caps: kgq_core::Budget::unlimited(),
                },
            ),
            "boot server",
        );
        let addr = handle.addr().to_string();
        (Some(handle), addr)
    };
    eprintln!("exp_serve: driving {addr} with {clients} clients x {rounds} rounds");

    // Solo baselines over the wire — the byte-identity reference.
    let mut solo = connect(&addr);
    let base = Baselines {
        rpq: expect_ok(solo.rpq("pairs", RPQ_EXPR, &Caps::none())),
        trip_full: expect_ok(solo.rpq("pairs", TRIP_EXPR, &Caps::none())),
        cypher: expect_ok(solo.cypher(CYPHER_Q, &Caps::none())),
        sparql: expect_ok(solo.sparql(SPARQL_Q, &Caps::none())),
    };
    assert!(
        !base.rpq.is_empty() && !base.trip_full.is_empty(),
        "baselines must be non-empty for the prefix checks to mean anything"
    );

    // The storm: `clients` well-behaved + 1 tripper, all concurrent.
    let latencies = Mutex::new(Vec::<u64>::new());
    let sent = AtomicU64::new(0);
    let tripper_partials = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..clients {
            let (addr, base, latencies, sent) = (&addr, &base, &latencies, &sent);
            scope.spawn(move || {
                let mut c = connect(addr);
                let mut local = Vec::with_capacity(rounds);
                for r in 0..rounds {
                    let t0 = Instant::now();
                    let (resp, want) = match (t + r) % 3 {
                        0 => (c.rpq("pairs", RPQ_EXPR, &Caps::none()), &base.rpq),
                        1 => (c.cypher(CYPHER_Q, &Caps::none()), &base.cypher),
                        _ => (c.sparql(SPARQL_Q, &Caps::none()), &base.sparql),
                    };
                    local.push(t0.elapsed().as_micros() as u64);
                    let resp = orfail(resp, "transport");
                    assert!(resp.ok, "client {t} round {r}: {}", resp.body);
                    assert_eq!(
                        &resp.body, want,
                        "client {t} round {r}: bytes diverged from the solo baseline"
                    );
                    sent.fetch_add(1, Ordering::Relaxed);
                }
                latencies
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend(local);
            });
        }
        // The deliberate budget-tripper.
        let (addr, base, sent, tripper_partials) = (&addr, &base, &sent, &tripper_partials);
        scope.spawn(move || {
            let mut c = connect(addr);
            let caps = Caps {
                max_results: Some(5),
                ..Caps::default()
            };
            for r in 0..rounds {
                let resp = orfail(c.rpq("pairs", TRIP_EXPR, &caps), "transport");
                assert!(resp.ok, "tripper round {r}: {}", resp.body);
                assert!(resp.is_partial(), "tripper round {r}: budget did not trip");
                let trailer = "# partial: result budget reached\n";
                let prefix = resp
                    .body
                    .strip_suffix(trailer)
                    .unwrap_or_else(|| panic!("tripper round {r}: unexpected trailer"));
                assert!(
                    base.trip_full.starts_with(prefix),
                    "tripper round {r}: partial is not an exact prefix"
                );
                sent.fetch_add(1, Ordering::Relaxed);
                tripper_partials.fetch_add(1, Ordering::Relaxed);
            }
        });
    });
    let wall = started.elapsed().as_secs_f64();
    let total = sent.load(Ordering::Relaxed);
    let qps = total as f64 / wall.max(1e-9);
    let mut lat = latencies.into_inner().unwrap_or_else(|e| e.into_inner());
    lat.sort_unstable();
    let (p50, p99) = (percentile(&lat, 50), percentile(&lat, 99));

    // Server-side counters (includes the solo + storm requests).
    let mut c = connect(&addr);
    let stats = orfail(c.stats(), "fetch server stats");
    let grab = |k| stat(&stats, k).unwrap_or(0);
    let (srv_partials, srv_errors) = (grab("partials"), grab("errors"));
    let (cache_hits, cache_misses) = (grab("cache_hits"), grab("cache_misses"));
    assert!(
        srv_partials >= rounds as u64,
        "server saw {srv_partials} partials, expected at least the tripper's {rounds}"
    );
    assert_eq!(srv_errors, 0, "no request in the mix should hard-error");
    assert!(
        cache_hits > 0,
        "repeated identical queries must hit the shared cache"
    );
    if send_shutdown {
        let _ = c.request(Verb::Shutdown, &Caps::none(), "");
    }
    drop(c);
    drop(solo);

    // Clean shutdown + leak check (in-process mode only: for --addr the
    // server's own exit status is the check, enforced by the CI job).
    if let Some(handle) = handle {
        handle.shutdown();
        if let (Some(before), Some(after)) = (baseline_threads, process_thread_count()) {
            assert_eq!(
                after, before,
                "thread leak: {before} threads before the server, {after} after shutdown"
            );
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if external_addr.is_some() {
            "external"
        } else {
            "in-process"
        }
    );
    let _ = writeln!(json, "  \"clients\": {},", clients + 1);
    let _ = writeln!(json, "  \"trippers\": 1,");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"rounds_per_client\": {rounds},");
    let _ = writeln!(json, "  \"requests\": {total},");
    let _ = writeln!(json, "  \"wall_s\": {wall:.6},");
    let _ = writeln!(json, "  \"qps\": {qps:.2},");
    let _ = writeln!(json, "  \"p50_us\": {p50},");
    let _ = writeln!(json, "  \"p99_us\": {p99},");
    let _ = writeln!(
        json,
        "  \"tripper_partials\": {},",
        tripper_partials.load(Ordering::Relaxed)
    );
    let _ = writeln!(json, "  \"server_partials\": {srv_partials},");
    let _ = writeln!(json, "  \"server_errors\": {srv_errors},");
    let _ = writeln!(json, "  \"cache_hits\": {cache_hits},");
    let _ = writeln!(json, "  \"cache_misses\": {cache_misses}");
    json.push_str("}\n");

    let out = str_flag(&args, "--out").unwrap_or("BENCH_serve.json");
    orfail(std::fs::write(out, &json), "write report");
    print!("{json}");
    eprintln!(
        "exp_serve: {total} requests in {wall:.2}s ({qps:.0} QPS), \
         p50 {p50}us p99 {p99}us, {srv_partials} partials, clean shutdown"
    );
}

fn expect_ok(resp: std::io::Result<kgq_serve::Response>) -> String {
    let resp = orfail(resp, "transport");
    assert!(resp.ok, "baseline failed: {}", resp.body);
    resp.body
}
