//! Experiment `exp_embed` (E13) — knowledge-graph completion (§2.3).
//!
//! Trains TransE on a synthetic multi-relational knowledge graph with
//! 20% of triples held out, and reports filtered link-prediction metrics
//! against the random-scorer baseline — the "refinement and completion"
//! use of embeddings the paper highlights \[19, 36, 43, 52\].

use kgq_bench::{fmt_duration, print_table, timed};
use kgq_embed::eval::random_baseline_mean_rank;
use kgq_embed::{evaluate, train_triples, TrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthetic KG: people work in cities, cities in countries, people know
/// colleagues in the same city — enough regularity for a translation
/// model to exploit.
fn synthetic_kg(
    people: usize,
    cities: usize,
    countries: usize,
    seed: u64,
) -> (Vec<(usize, usize, usize)>, usize, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let city0 = people;
    let country0 = people + cities;
    let n_entities = people + cities + countries;
    let mut triples = Vec::new();
    let mut city_of = Vec::with_capacity(people);
    for p in 0..people {
        let c = rng.gen_range(0..cities);
        city_of.push(c);
        triples.push((p, 0, city0 + c)); // worksIn
    }
    for c in 0..cities {
        triples.push((city0 + c, 1, country0 + c % countries)); // cityIn
    }
    for p in 0..people {
        // Two colleagues from the same city.
        for _ in 0..2 {
            let q = rng.gen_range(0..people);
            if q != p && city_of[q] == city_of[p] {
                triples.push((p, 2, q)); // knows
            }
        }
    }
    triples.sort_unstable();
    triples.dedup();
    (triples, n_entities, 3)
}

fn main() {
    let (all, n_entities, n_relations) = synthetic_kg(120, 8, 3, 11);
    println!(
        "synthetic KG: {} entities, {} relations, {} triples",
        n_entities,
        n_relations,
        all.len()
    );
    // 80/20 split, deterministic.
    let mut rng = StdRng::seed_from_u64(5);
    let mut shuffled = all.clone();
    for i in (1..shuffled.len()).rev() {
        shuffled.swap(i, rng.gen_range(0..=i));
    }
    let cut = shuffled.len() / 5;
    let test = &shuffled[..cut];
    let train = &shuffled[cut..];

    let mut rows = Vec::new();
    for (dim, epochs) in [(8usize, 60usize), (24, 60), (24, 240), (48, 240)] {
        let cfg = TrainConfig {
            dim,
            epochs,
            ..TrainConfig::default()
        };
        let ((model, losses), t_train) =
            timed(|| train_triples(train, n_entities, n_relations, &cfg));
        let report = evaluate(&model, test, &all);
        rows.push(vec![
            format!("d={dim} ep={epochs}"),
            format!("{:.3}", losses.last().unwrap()),
            format!("{:.1}", report.mean_rank),
            format!("{:.3}", report.mrr),
            format!("{:.2}", report.hits_at_1),
            format!("{:.2}", report.hits_at_3),
            format!("{:.2}", report.hits_at_10),
            fmt_duration(t_train),
        ]);
    }
    let random = random_baseline_mean_rank(n_entities, 1.0);
    rows.push(vec![
        "random scorer".to_owned(),
        "—".to_owned(),
        format!("{random:.1}"),
        format!(
            "{:.3}",
            (1..=n_entities).map(|r| 1.0 / r as f64).sum::<f64>() / n_entities as f64
        ),
        format!("{:.2}", 1.0 / n_entities as f64),
        format!("{:.2}", 3.0 / n_entities as f64),
        format!("{:.2}", 10.0 / n_entities as f64),
        "—".to_owned(),
    ]);
    print_table(
        "TransE link prediction (filtered), 20% held-out tails",
        &[
            "config",
            "final loss",
            "mean rank",
            "MRR",
            "hits@1",
            "hits@3",
            "hits@10",
            "train time",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: loss decreases with epochs; mean rank far below \
         the random baseline; more dimensions/epochs improve hits@k with \
         diminishing returns."
    );
}
