//! Experiment `exp_fig1` — reproduce Figure 1 (publication trends).
//!
//! Generates the simulated DBLP corpus, recounts keyword occurrences in
//! titles per year, prints the series, and mechanically verifies every
//! claim the paper states about the figure.

use kgq_bench::print_table;
use kgq_biblio::{
    check_figure1_claims, figure1_series, generate_corpus, overlap_fraction, CorpusParams, KEYWORDS,
};

fn main() {
    let params = CorpusParams::default();
    let corpus = generate_corpus(&params);
    println!(
        "simulated corpus: {} publications, seed {}",
        corpus.len(),
        params.seed
    );

    let fig = figure1_series(&corpus);
    let mut rows = Vec::new();
    for (yi, year) in fig.years.iter().enumerate() {
        let mut row = vec![year.to_string()];
        for ki in 0..KEYWORDS.len() {
            row.push(fig.series[ki][yi].to_string());
        }
        rows.push(row);
    }
    let mut headers = vec!["year"];
    headers.extend(KEYWORDS.iter());
    print_table(
        "Figure 1: titles containing keyword, per year",
        &headers,
        &rows,
    );

    let rows = vec![
        vec![
            "2015".to_owned(),
            format!("{:.0}%", 100.0 * overlap_fraction(&corpus, 2015)),
            "70% (paper)".to_owned(),
        ],
        vec![
            "2020".to_owned(),
            format!("{:.0}%", 100.0 * overlap_fraction(&corpus, 2020)),
            "14% (paper)".to_owned(),
        ],
    ];
    print_table(
        "Knowledge-graph papers also about RDF/SPARQL",
        &["year", "measured", "reference"],
        &rows,
    );

    let violations = check_figure1_claims(&corpus);
    if violations.is_empty() {
        println!("\nall Figure 1 shape claims hold ✓");
    } else {
        println!("\nVIOLATED CLAIMS:");
        for v in &violations {
            println!("  - {v}");
        }
        std::process::exit(1);
    }
}
