//! Experiment `exp_fpras` (E4) — accuracy of the approximate counter.
//!
//! Fixes `(G, r, k)` with a known exact count and sweeps the target
//! error ε, reporting the observed relative error distribution over many
//! seeds and the build time. The paper's claim: relative error ≤ ε with
//! very high probability, in time polynomial in `1/ε`.

use kgq_bench::{fmt_duration, mean, percentile, print_table, timed};
use kgq_core::{approx_count, count_paths, parse_expr, ApproxParams, LabeledView};
use kgq_graph::generate::gnm_labeled;

fn main() {
    let mut g = gnm_labeled(14, 36, &["a", "b"], &["p", "q"], 3);
    let expr = parse_expr("(p + p/p)*", g.consts_mut()).unwrap();
    println!("G(14, 36), r = (p + p/p)* (ambiguous: every run of p-edges parses many ways)");
    let view = LabeledView::new(&g);
    let k = 5;
    let exact = count_paths(&view, &expr, k).unwrap();
    println!("k = {k}, exact Count = {exact}");

    let trials_per_eps: u32 = 24;
    let mut rows = Vec::new();
    for eps in [0.5, 0.3, 0.2, 0.1] {
        let mut errors = Vec::new();
        let mut total_time = std::time::Duration::ZERO;
        for seed in 0..u64::from(trials_per_eps) {
            let params = ApproxParams {
                epsilon: eps,
                seed,
                ..ApproxParams::default()
            };
            let (est, t) = timed(|| approx_count(&view, &expr, k, &params));
            total_time += t;
            errors.push((est - exact as f64).abs() / exact as f64);
        }
        let within = errors.iter().filter(|&&e| e <= eps).count();
        rows.push(vec![
            format!("{eps:.2}"),
            format!("{:.3}", mean(&errors)),
            format!("{:.3}", percentile(&errors, 95.0)),
            format!("{within}/{trials_per_eps}"),
            fmt_duration(total_time / trials_per_eps),
        ]);
    }
    print_table(
        "FPRAS relative error vs ε (24 independent seeds each)",
        &["ε", "mean err", "p95 err", "within ε", "avg time"],
        &rows,
    );
    println!(
        "\nexpected shape: mean error falls with ε, time grows ~1/ε² \
         (trials per layer), nearly all runs within ε."
    );
}
