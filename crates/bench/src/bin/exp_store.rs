//! Experiment `exp_store` — the durable write path under honest fsync,
//! emitted as `BENCH_store.json`.
//!
//! Four measurements over `kgq-store` (DESIGN.md §13), all on a single
//! box against a real filesystem:
//!
//! 1. **batched append throughput** — triples committed per second when
//!    ops are batched before each fsynced commit, plus WAL bytes per
//!    op. This is the bulk-load shape.
//! 2. **single-op commit latency** — p50/p99 µs for a commit of one
//!    triple. Each commit pays a full fsync, so this is the *honest*
//!    durability floor of the box, not a page-cache number.
//! 3. **recovery time vs WAL length** — wall time for
//!    [`DurableStore::open`] (scan + CRC check + replay) at increasing
//!    committed WAL sizes, and the same store reopened after
//!    compaction (segment load, near-empty WAL).
//! 4. **overlay read overhead** — full scans and pattern counts through
//!    the delta overlay (base segment + added + tombstoned) versus the
//!    same state materialized into a plain [`TripleStore`], reported as
//!    a ratio.
//!
//! Correctness is asserted before anything is timed: every recovery
//! must reproduce the exact committed triple set, and the overlay scan
//! must agree with its materialization byte-for-byte. `--quick` trims
//! sizes for CI; `--out FILE` overrides the report path.

use kgq_bench::{fmt_duration, mean, percentile, print_table, timed};
use kgq_store::DurableStore;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Exits with a message instead of panicking: a failed experiment run
/// should read like a diagnosis, not a backtrace.
fn orfail<T, E: std::fmt::Display>(result: Result<T, E>, what: &str) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("exp_store: {what}: {e}");
        std::process::exit(1);
    })
}

fn str_flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic triple `i` over a closed vocabulary: enough distinct
/// subjects to exercise the orderings, few predicates (as in RDF data).
fn triple(i: u64) -> (String, String, String) {
    let mut s = i.wrapping_mul(0x0360_3AB5);
    let r = splitmix64(&mut s);
    (
        format!("s{}", r % 5_000),
        format!("p{}", (r >> 16) % 12),
        format!("o{i}"),
    )
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kgq-exp-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &Path) -> DurableStore {
    orfail(DurableStore::open(dir), "open store").0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // (batches, ops per batch, single-op commits, overlay base size)
    let (batches, batch_ops, singles, base_n) = if quick {
        (60, 50, 60, 20_000)
    } else {
        (200, 100, 200, 100_000)
    };

    // -- 1. batched append throughput ------------------------------------
    let dir = fresh_dir("append");
    let mut store = open(&dir);
    let mut next = 0u64;
    let start = Instant::now();
    for _ in 0..batches {
        for _ in 0..batch_ops {
            let (s, p, o) = triple(next);
            store.stage_insert(&s, &p, &o);
            next += 1;
        }
        orfail(store.commit(), "commit batch");
    }
    let append_wall = start.elapsed();
    let total_ops = (batches * batch_ops) as f64;
    let append_ops_s = total_ops / append_wall.as_secs_f64();
    let wal_bytes = store.wal_len();
    let bytes_per_op = wal_bytes as f64 / total_ops;
    let committed_len = store.len();

    // -- 2. single-op commit latency (one fsync per triple) ---------------
    let mut lat_us = Vec::with_capacity(singles);
    for i in 0..singles {
        let (s, p, o) = triple(1_000_000 + i as u64);
        store.stage_insert(&s, &p, &o);
        let (r, d) = timed(|| store.commit());
        orfail(r, "single-op commit");
        lat_us.push(d.as_micros() as f64);
    }
    let p50 = percentile(&lat_us, 50.0);
    let p99 = percentile(&lat_us, 99.0);
    let expected = store.scan_all();
    let expected_generation = store.generation();
    drop(store);

    // -- 3. recovery time vs WAL length -----------------------------------
    // Reopen the same directory at increasing replay lengths by copying
    // WAL prefixes: recovery cost must scale with the log, not the data.
    let mut recovery_rows = Vec::new();
    let mut recovery_json = String::new();
    let wal = orfail(std::fs::read(dir.join("wal.log")), "read wal");
    for frac in [0.25f64, 0.5, 1.0] {
        let keep = kgq_store::wal::scan(&wal[..(wal.len() as f64 * frac) as usize], 0);
        let cut_dir = fresh_dir(&format!("recover-{}", (frac * 100.0) as u32));
        orfail(std::fs::create_dir_all(&cut_dir), "create recovery dir");
        orfail(
            std::fs::write(cut_dir.join("wal.log"), &wal[..keep.committed_len as usize]),
            "write wal prefix",
        );
        let ((recovered, replay), d) =
            timed(|| orfail(DurableStore::open(&cut_dir), "recover prefix"));
        let ops: usize = replay.batches.iter().map(|(_, b)| b.len()).sum();
        if frac == 1.0 {
            let got = recovered.scan_all();
            assert_eq!(
                got, expected,
                "full-WAL recovery diverged from writer state"
            );
            assert_eq!(recovered.generation(), expected_generation);
        }
        recovery_rows.push(vec![
            format!("{}%", (frac * 100.0) as u32),
            keep.committed_len.to_string(),
            ops.to_string(),
            fmt_duration(d),
            format!("{:.0}", ops as f64 / d.as_secs_f64().max(1e-9)),
        ]);
        let _ = writeln!(
            recovery_json,
            "    {{ \"wal_bytes\": {}, \"ops\": {}, \"recover_ms\": {:.3} }},",
            keep.committed_len,
            ops,
            d.as_secs_f64() * 1e3
        );
        let _ = std::fs::remove_dir_all(&cut_dir);
    }
    // After compaction the same state must reopen from the segment in
    // near-constant time regardless of how long the log had grown.
    let mut store = open(&dir);
    orfail(store.compact(), "compact");
    drop(store);
    let ((compacted, _), seg_open) = timed(|| orfail(DurableStore::open(&dir), "reopen segment"));
    assert_eq!(compacted.scan_all(), expected, "compacted state diverged");
    drop(compacted);

    // -- 4. overlay read overhead ----------------------------------------
    // A compacted base of `base_n` triples, then 10% inserts and 10%
    // deletes living in the overlay — the steady state between flushes.
    let dir2 = fresh_dir("overlay");
    let mut store = open(&dir2);
    for i in 0..base_n as u64 {
        let (s, p, o) = triple(i);
        store.stage_insert(&s, &p, &o);
    }
    orfail(store.commit(), "commit base");
    orfail(store.compact(), "compact base");
    let tenth = (base_n / 10) as u64;
    for i in 0..tenth {
        let (s, p, o) = triple(2_000_000 + i);
        store.stage_insert(&s, &p, &o);
        let (s, p, o) = triple(i * 7 % base_n as u64);
        store.stage_delete(&s, &p, &o);
    }
    orfail(store.commit(), "commit overlay");
    let plain = store.materialize();
    let (via_overlay, scan_overlay) = timed(|| store.scan_all());
    let (via_plain, scan_plain) = timed(|| {
        let mut v: Vec<(String, String, String)> = plain
            .iter()
            .map(|t| {
                (
                    plain.term_str(t.s).to_string(),
                    plain.term_str(t.p).to_string(),
                    plain.term_str(t.o).to_string(),
                )
            })
            .collect();
        v.sort();
        v
    });
    assert_eq!(
        via_overlay, via_plain,
        "overlay scan diverged from materialization"
    );
    let probes: Vec<(String, Option<String>)> = (0..1_000u64)
        .map(|i| {
            let (s, p, _) = triple(i * 97 % base_n as u64);
            (s, if i % 2 == 0 { Some(p) } else { None })
        })
        .collect();
    let (n_overlay, count_overlay) = timed(|| {
        probes
            .iter()
            .map(|(s, p)| store.count(Some(s.as_str()), p.as_deref(), None))
            .sum::<usize>()
    });
    let (n_plain, count_plain) = timed(|| {
        probes
            .iter()
            .map(|(s, p)| {
                let sym = plain.get_term(s);
                let psym = p.as_deref().map(|p| plain.get_term(p));
                match (sym, psym) {
                    (None, _) | (_, Some(None)) => 0,
                    (Some(s), p) => plain.count(Some(s), p.flatten(), None),
                }
            })
            .sum::<usize>()
    });
    assert_eq!(
        n_overlay, n_plain,
        "overlay counts diverged from materialization"
    );
    let scan_ratio = scan_overlay.as_secs_f64() / scan_plain.as_secs_f64().max(1e-9);
    let count_ratio = count_overlay.as_secs_f64() / count_plain.as_secs_f64().max(1e-9);

    // -- report -----------------------------------------------------------
    print_table(
        "durable append path (fsync on every commit)",
        &["metric", "value"],
        &[
            vec!["batched ops/s".into(), format!("{append_ops_s:.0}")],
            vec!["WAL bytes/op".into(), format!("{bytes_per_op:.1}")],
            vec!["triples after load".into(), committed_len.to_string()],
            vec!["1-op commit p50".into(), format!("{p50:.0}µs")],
            vec!["1-op commit p99".into(), format!("{p99:.0}µs")],
            vec!["reopen after compact".into(), fmt_duration(seg_open)],
        ],
    );
    print_table(
        "recovery time vs WAL length",
        &["wal", "bytes", "ops", "open", "ops/s"],
        &recovery_rows,
    );
    print_table(
        "overlay read overhead (vs materialized store)",
        &["operation", "overlay", "plain", "ratio"],
        &[
            vec![
                "full sorted scan".into(),
                fmt_duration(scan_overlay),
                fmt_duration(scan_plain),
                format!("{scan_ratio:.2}x"),
            ],
            vec![
                "1000 pattern counts".into(),
                fmt_duration(count_overlay),
                fmt_duration(count_plain),
                format!("{count_ratio:.2}x"),
            ],
        ],
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"append_batches\": {batches},");
    let _ = writeln!(json, "  \"append_batch_ops\": {batch_ops},");
    let _ = writeln!(json, "  \"append_ops_per_s\": {append_ops_s:.1},");
    let _ = writeln!(json, "  \"wal_bytes_per_op\": {bytes_per_op:.2},");
    let _ = writeln!(json, "  \"commit_1op_p50_us\": {p50:.0},");
    let _ = writeln!(json, "  \"commit_1op_p99_us\": {p99:.0},");
    let _ = writeln!(json, "  \"commit_1op_mean_us\": {:.1},", mean(&lat_us));
    let _ = writeln!(json, "  \"recovery\": [");
    json.push_str(recovery_json.trim_end().trim_end_matches(','));
    json.push_str("\n  ],\n");
    let _ = writeln!(
        json,
        "  \"segment_reopen_ms\": {:.3},",
        seg_open.as_secs_f64() * 1e3
    );
    let _ = writeln!(json, "  \"overlay_base_triples\": {base_n},");
    let _ = writeln!(json, "  \"overlay_scan_ratio\": {scan_ratio:.3},");
    let _ = writeln!(json, "  \"overlay_count_ratio\": {count_ratio:.3}");
    json.push_str("}\n");

    let out = str_flag(&args, "--out").unwrap_or("BENCH_store.json");
    orfail(std::fs::write(out, &json), "write report");
    print!("{json}");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}
