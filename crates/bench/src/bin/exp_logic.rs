//! Experiment `exp_logic` (E8) — bounded-variable evaluation (§4.3).
//!
//! Evaluates the infection query on growing contact networks four ways:
//! the two-variable formula ψ with the relational pipeline, ψ with naive
//! assignment enumeration, the wide (fresh-variable) formula φ with
//! naive enumeration, and the RPQ product engine. All agree on answers;
//! the table shows the cost separation that motivates variable reuse —
//! naive evaluation scales with `n^{quantifiers}`, the pipeline with the
//! sizes of binary relations.

use kgq_bench::{fmt_duration, print_table, timed};
use kgq_core::{matching_starts, parse_expr, LabeledView};
use kgq_graph::generate::{contact_network, ContactParams};
use kgq_logic::eval::eval_bounded_stats;
use kgq_logic::{compile_fo2, compile_wide, eval_naive, Var};

fn main() {
    let expr_text = "?person/rides/?bus/rides^-/?infected";
    println!("query: {expr_text}");
    let mut rows = Vec::new();
    for people in [50usize, 100, 200, 400] {
        let pg = contact_network(&ContactParams {
            people,
            buses: people / 10,
            addresses: people / 3,
            rides_per_person: 2,
            contacts_per_person: 2,
            infected_fraction: 0.1,
            seed: 2,
        });
        let mut g = pg.into_labeled();
        let expr = parse_expr(expr_text, g.consts_mut()).unwrap();
        let psi = compile_fo2(&expr).unwrap();
        let phi = compile_wide(&expr).unwrap();

        let ((psi_answers, stats), t_pipeline) = timed(|| eval_bounded_stats(&g, &psi, Var(0)));
        let (naive_psi, t_naive_psi) = timed(|| eval_naive(&g, &psi, Var(0)));
        let (naive_phi, t_naive_phi) = timed(|| eval_naive(&g, &phi, Var(0)));
        let view = LabeledView::new(&g);
        let (rpq, t_rpq) = timed(|| matching_starts(&view, &expr));

        assert_eq!(psi_answers, naive_psi);
        assert_eq!(psi_answers, naive_phi);
        assert_eq!(psi_answers, rpq);
        assert!(stats.max_arity <= 2, "pipeline must stay binary");

        rows.push(vec![
            g.node_count().to_string(),
            psi_answers.len().to_string(),
            fmt_duration(t_pipeline),
            fmt_duration(t_naive_psi),
            fmt_duration(t_naive_phi),
            fmt_duration(t_rpq),
        ]);
    }
    print_table(
        "node extraction: ψ pipeline (FO², binary tables) vs naive vs RPQ engine",
        &[
            "nodes",
            "answers",
            "ψ pipeline",
            "ψ naive",
            "φ naive (3 vars)",
            "RPQ product",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: naive evaluation blows up with n (it loops over \
         all nodes per quantifier); the binary-table pipeline and the \
         product-automaton engine stay near-linear — the §4.3 argument for \
         bounded-variable logics."
    );
}
