//! Experiment `exp_scale` — the compressed out-of-core data plane,
//! emitted as `BENCH_scale.json`.
//!
//! Two halves:
//!
//! 1. **Decode overhead** on the BENCH_kernel graphs (ER n=2000
//!    m=10000, BA n=2000): the label-only scale sweep is timed over the
//!    raw [`LabelIndex`] and over the bit-packed blob, after asserting
//!    the two answers byte-identical at 1/2/4 chunks. The packed/raw
//!    ratio must stay within ~1.3× — compression must not tax the
//!    in-memory hot path.
//! 2. **Scale pipeline**: generate a Barabási–Albert edge stream
//!    (`--quick`: 10⁶ edges; full: 10⁸ edges), pack it without edge-id
//!    streams, write it as the packed section of a `KGQSEG01` segment,
//!    reopen through the CRC-validated [`SegmentMap`] mmap reader, and
//!    run a governed RPQ (`pairs` + `matching_starts`) and the
//!    wedge-closing triangle count straight off the mapping, under a
//!    `MemMeter` budget set to a quarter of the raw label-CSR
//!    footprint. Records edges/sec per stage and bytes/edge against the
//!    raw structures ([`Csr`], [`LabelIndex`]); the packed blob must be
//!    ≥4× smaller than the label-aware CSR the evaluator would
//!    otherwise need.
//!
//! In `--quick` mode the same graph is additionally rebuilt as an
//! in-memory `LabeledGraph` and every scale answer is checked against
//! the raw-adjacency path, so CI can use this binary as an end-to-end
//! parity smoke test for the packed + mmap stack.

use kgq_bench::timed;
use kgq_core::govern::{Budget, Governor};
use kgq_core::parallel::set_threads;
use kgq_core::parser::parse_expr;
use kgq_core::scale::{
    triangle_count, LabelAdjacency, LabelDfa, PackedAdjacency, RawAdjacency, ScaleEvaluator,
};
use kgq_graph::generate::{ba_edge_stream, barabasi_albert, gnm_labeled};
use kgq_graph::packed::{PackOptions, PackedLabelIndex, PackedView, Quad};
use kgq_graph::{Interner, LabelIndex, LabeledGraph};
use kgq_store::segment::{write_atomic, Segment};
use kgq_store::SegmentMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Exits with a message instead of panicking: a failed experiment run
/// should read like a diagnosis, not a backtrace.
fn orfail<T, E: std::fmt::Display>(result: Result<T, E>, what: &str) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("exp_scale: {what}: {e}");
        std::process::exit(1);
    })
}

fn median_secs<T>(mut f: impl FnMut() -> T, reps: usize) -> f64 {
    let mut times: Vec<Duration> = (0..reps).map(|_| timed(&mut f).1).collect();
    times.sort();
    times[times.len() / 2].as_secs_f64()
}

/// Time two competing implementations with their reps *interleaved*
/// and take each side's minimum. A ratio of A-then-B medians is at the
/// mercy of whatever else the box does during one of the two blocks
/// (page-cache flushes from an earlier phase, a cron tick); interleaved
/// minima make a transient hit one rep of each side equally, and the
/// min rejects it entirely. This is what the overhead ratio is built
/// from, so it must be noise-proof, not merely noise-resistant.
fn min_secs_paired<A, B>(
    mut fa: impl FnMut() -> A,
    mut fb: impl FnMut() -> B,
    reps: usize,
) -> (f64, f64) {
    let mut ta = Duration::MAX;
    let mut tb = Duration::MAX;
    for _ in 0..reps {
        ta = ta.min(timed(&mut fa).1);
        tb = tb.min(timed(&mut fb).1);
    }
    (ta.as_secs_f64(), tb.as_secs_f64())
}

// -------------------------------------------------------------------
// Half 1: decode overhead on the BENCH_kernel cases
// -------------------------------------------------------------------

struct OverheadCase {
    graph: &'static str,
    expr: String,
    pairs: usize,
    t_raw: f64,
    t_packed: f64,
}

fn overhead_case(
    graph: &'static str,
    g: &LabeledGraph,
    expr_text: &str,
    reps: usize,
) -> OverheadCase {
    let mut g = g.clone();
    let expr = orfail(parse_expr(expr_text, g.consts_mut()), "parse");
    let idx = LabelIndex::build(&g);
    let packed = orfail(PackedLabelIndex::from_labeled(&g), "pack");
    let dfa = orfail(LabelDfa::compile(&expr, |s| idx.dense_id(s)), "compile");
    let n = g.node_count() as u32;

    let raw = RawAdjacency(&idx);
    let view = packed.view();
    let pk = PackedAdjacency(view);
    let ev_raw = ScaleEvaluator::new(&raw, dfa.clone());
    let ev_pk = ScaleEvaluator::new(&pk, dfa);

    // Parity before timing: raw and packed must agree byte-for-byte at
    // every chunk count, or the numbers are meaningless.
    let reference = ev_raw.pairs(0..n, 1);
    let ref_starts = ev_raw.matching_starts(0..n, 1);
    for chunks in [1usize, 2, 4] {
        assert_eq!(
            ev_pk.pairs(0..n, chunks),
            reference,
            "packed pairs diverged ({graph}, {expr_text}, chunks={chunks})"
        );
        assert_eq!(
            ev_pk.matching_starts(0..n, chunks),
            ref_starts,
            "packed starts diverged ({graph}, {expr_text}, chunks={chunks})"
        );
    }

    let (t_raw, t_packed) = min_secs_paired(
        || ev_raw.pairs(0..n, 1).len(),
        || ev_pk.pairs(0..n, 1).len(),
        reps,
    );
    OverheadCase {
        graph,
        expr: expr_text.to_owned(),
        pairs: reference.len(),
        t_raw,
        t_packed,
    }
}

// -------------------------------------------------------------------
// Half 2: the scale pipeline
// -------------------------------------------------------------------

/// Exact heap footprint of [`Csr`] for an `n`-node, `m`-edge graph:
/// two offset arrays and two `(EdgeId, NodeId)` lists.
fn csr_bytes(n: u64, m: u64) -> u64 {
    2 * (n + 1) * 4 + 2 * m * 8
}

/// Heap footprint of [`LabelIndex`] for an `n`-node, `m`-edge,
/// `l`-label graph with densely interned label symbols: two offset
/// arrays, two `(Sym, EdgeId, NodeId)` lists, the dense label table and
/// two `(L+1)·n` slot tables. The real structure also carries a
/// `label_id` array indexed by raw `Sym`, whose length depends on
/// interner history, so the quick-mode cross-check allows a small
/// interner-dependent surplus.
fn label_index_bytes(n: u64, m: u64, l: u64) -> u64 {
    2 * (n + 1) * 4 + 2 * m * 12 + 2 * n * (l + 1) * 4 + l * 4
}

struct QueryStat {
    expr: String,
    window: u32,
    rows: usize,
    seconds: f64,
    complete: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 7 };
    // One worker: the numbers are per-core, not core-count dependent.
    set_threads(1);

    // ---- decode overhead on the BENCH_kernel graphs ----------------
    let er = gnm_labeled(2_000, 10_000, &["v"], &["p", "q"], 11);
    let ba = barabasi_albert(2_000, 5, "v", "link", 11);
    let mut overhead = Vec::new();
    for e in ["(p+q)*", "p/(p+q)*/q"] {
        overhead.push(overhead_case("er", &er, e, reps));
    }
    for e in ["link*", "link/link*/link"] {
        overhead.push(overhead_case("ba", &ba, e, reps));
    }
    let overhead_max = overhead
        .iter()
        .map(|c| c.t_packed / c.t_raw.max(1e-9))
        .fold(0.0f64, f64::max);

    // ---- scale pipeline --------------------------------------------
    // Full mode: 10⁸ edges as BA(n=5M, m=20). Doubling the run length
    // (vs m=10) halves the per-run framing and index tax per edge,
    // and the smaller id space shrinks the delta widths — both are
    // what the format is designed to exploit.
    let (n_nodes, m_per) = if quick {
        (100_000u32, 10u32)
    } else {
        (5_000_000, 20)
    };
    let n_labels = 1u32;
    let seed = 42u64;

    let (stream, t_gen) = timed(|| ba_edge_stream(n_nodes, m_per, n_labels, seed));
    let n_edges = stream.len() as u64;
    let quads: Vec<Quad> = stream
        .iter()
        .enumerate()
        .map(|(i, &(s, l, d))| (s, l, d, i as u32))
        .collect();

    // Quick mode keeps the raw structures around as the parity oracle
    // and to cross-check the analytic footprint formulas.
    let raw_graph = quick.then(|| {
        let mut g = LabeledGraph::new();
        for i in 0..n_nodes {
            orfail(g.add_node(&format!("n{i}"), "v"), "add_node");
        }
        for (i, &(s, _, d)) in stream.iter().enumerate() {
            orfail(
                g.add_edge(
                    &format!("e{i}"),
                    kgq_graph::NodeId(s),
                    kgq_graph::NodeId(d),
                    "l0",
                ),
                "add_edge",
            );
        }
        g
    });
    drop(stream);

    let labels = vec!["l0".to_string()];
    let opts = PackOptions {
        edge_ids: false,
        inverse: true,
    };
    let (packed, t_pack) = timed(|| {
        orfail(
            PackedLabelIndex::from_quads(n_nodes, &labels, quads, opts),
            "from_quads",
        )
    });
    let packed_bytes = packed.as_bytes().len() as u64;

    let raw_csr = csr_bytes(n_nodes as u64, n_edges);
    let raw_label = label_index_bytes(n_nodes as u64, n_edges, n_labels as u64);
    if let Some(g) = &raw_graph {
        // The analytic formulas must match the real structures exactly,
        // so the full-scale baselines (too big to materialize) are
        // trustworthy.
        assert_eq!(
            kgq_graph::Csr::build(g.base()).heap_bytes(),
            raw_csr,
            "analytic Csr footprint diverged from the real structure"
        );
        let real = LabelIndex::build(g).heap_bytes();
        assert!(
            real >= raw_label && (real - raw_label) as f64 <= raw_label as f64 * 0.05,
            "analytic LabelIndex footprint diverged from the real structure \
             (analytic {raw_label}, real {real})"
        );
    }

    let seg_path = std::env::temp_dir().join("exp_scale.kgqseg");
    let blob = packed.as_bytes().to_vec();
    let t_write = median_secs(
        || {
            let seg = Segment {
                generation: 1,
                triples: Vec::new(),
                edges: Vec::new(),
                packed: Some(blob.clone()),
            };
            orfail(write_atomic(&seg_path, &seg), "segment write");
        },
        1,
    );
    drop(blob);
    drop(packed);

    let (map, t_open) = timed(|| orfail(SegmentMap::open(&seg_path), "segment open"));
    let packed_section = map.packed_bytes().unwrap_or_else(|| {
        eprintln!("exp_scale: segment has no packed section");
        std::process::exit(1);
    });
    let view = orfail(PackedView::parse(packed_section), "packed parse");
    assert_eq!(view.edge_count(), n_edges);

    // Governance: a quarter of the raw label-CSR footprint — the point
    // is querying under a budget the raw structures could not even load
    // into.
    let budget_bytes = raw_label / 4;
    let budget = Budget::unlimited().with_max_memory(budget_bytes);

    let mut interner = Interner::new();
    let expr = orfail(parse_expr("l0/l0", &mut interner), "parse");
    let dfa = orfail(
        LabelDfa::compile(&expr, |s| view.label_by_name(interner.resolve(s))),
        "compile",
    );
    let adj = PackedAdjacency(view);
    let ev = ScaleEvaluator::new(&adj, dfa);

    let window = if quick { n_nodes } else { 1_000_000u32 };
    let gov = Governor::new(&budget);
    let (pairs_res, t_pairs) = timed(|| orfail(ev.pairs_governed(0..window, 1, &gov), "pairs"));
    let rpq = QueryStat {
        expr: "l0/l0".into(),
        window,
        rows: pairs_res.value.len(),
        seconds: t_pairs.as_secs_f64(),
        complete: pairs_res.completion.is_complete(),
    };

    let gov = Governor::new(&budget);
    let (starts_res, t_starts) =
        timed(|| orfail(ev.matching_starts_governed(0..window, 1, &gov), "starts"));
    let starts = QueryStat {
        expr: "l0/l0".into(),
        window,
        rows: starts_res.value.len(),
        seconds: t_starts.as_secs_f64(),
        complete: starts_res.completion.is_complete(),
    };

    let apexes = if quick { n_nodes } else { 1_000_000u32 };
    let gov = Governor::new(&budget);
    let (tri_res, t_tri) = timed(|| {
        orfail(
            triangle_count(&adj, (0, 0, 0), 0..apexes, 1, &gov, 10),
            "triangles",
        )
    });

    // Quick-mode parity: the whole packed + mmap answer set against the
    // raw in-memory adjacency.
    if let Some(g) = &raw_graph {
        let idx = LabelIndex::build(g);
        let raw = RawAdjacency(&idx);
        let ev_raw = ScaleEvaluator::new(&raw, ev.dfa().clone());
        assert_eq!(
            ev_raw.pairs(0..window, 1),
            pairs_res.value,
            "mmap'd packed pairs diverged from the raw adjacency"
        );
        assert_eq!(
            ev_raw.matching_starts(0..window, 1),
            starts_res.value,
            "mmap'd packed starts diverged from the raw adjacency"
        );
        let tri_raw = orfail(
            triangle_count(&raw, (0, 0, 0), 0..apexes, 1, &Governor::unlimited(), 10),
            "raw triangles",
        );
        assert_eq!(
            tri_raw.value.count, tri_res.value.count,
            "mmap'd packed triangle count diverged from the raw adjacency"
        );
        // Degree spot-check straight off the mapping.
        for v in [0u32, n_nodes / 2, n_nodes - 1] {
            assert_eq!(adj.out_degree(v, 0), raw.out_degree(v, 0));
        }
    }

    // ---- JSON ------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"overhead_cases\": [\n");
    let entries: Vec<String> = overhead
        .iter()
        .map(|c| {
            format!(
                "    {{\"graph\": \"{}\", \"expr\": \"{}\", \"pairs\": {}, \
                 \"raw_s\": {:.6}, \"packed_s\": {:.6}, \"overhead\": {:.3}}}",
                c.graph,
                c.expr,
                c.pairs,
                c.t_raw,
                c.t_packed,
                c.t_packed / c.t_raw.max(1e-9)
            )
        })
        .collect();
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  ],\n");
    let _ = writeln!(json, "  \"overhead_max\": {overhead_max:.3},");
    json.push_str("  \"scale\": {\n");
    let _ = writeln!(
        json,
        "    \"nodes\": {n_nodes}, \"m_per\": {m_per}, \"labels\": {n_labels}, \"edges\": {n_edges},"
    );
    let _ = writeln!(
        json,
        "    \"gen_s\": {:.3}, \"pack_s\": {:.3}, \"write_s\": {:.3}, \"open_s\": {:.6}, \"mmap\": {},",
        t_gen.as_secs_f64(),
        t_pack.as_secs_f64(),
        t_write,
        t_open.as_secs_f64(),
        map.is_mapped()
    );
    let pipeline_s = t_gen.as_secs_f64() + t_pack.as_secs_f64() + t_write;
    let _ = writeln!(
        json,
        "    \"gen_edges_per_s\": {:.0}, \"pack_edges_per_s\": {:.0}, \"pipeline_edges_per_s\": {:.0},",
        n_edges as f64 / t_gen.as_secs_f64().max(1e-9),
        n_edges as f64 / t_pack.as_secs_f64().max(1e-9),
        n_edges as f64 / pipeline_s.max(1e-9)
    );
    let _ = writeln!(
        json,
        "    \"packed_bytes\": {packed_bytes}, \"packed_bytes_per_edge\": {:.3},",
        packed_bytes as f64 / n_edges as f64
    );
    let _ = writeln!(
        json,
        "    \"raw_csr_bytes\": {raw_csr}, \"raw_csr_bytes_per_edge\": {:.3},",
        raw_csr as f64 / n_edges as f64
    );
    let _ = writeln!(
        json,
        "    \"raw_label_index_bytes\": {raw_label}, \"raw_label_index_bytes_per_edge\": {:.3},",
        raw_label as f64 / n_edges as f64
    );
    let reduction_csr = raw_csr as f64 / packed_bytes as f64;
    let reduction_label = raw_label as f64 / packed_bytes as f64;
    let _ = writeln!(
        json,
        "    \"reduction_vs_csr\": {reduction_csr:.3}, \"reduction_vs_label_index\": {reduction_label:.3},"
    );
    let _ = writeln!(json, "    \"memory_budget_bytes\": {budget_bytes},");
    for (name, q) in [("rpq_pairs", &rpq), ("rpq_starts", &starts)] {
        let _ = writeln!(
            json,
            "    \"{name}\": {{\"expr\": \"{}\", \"window\": {}, \"rows\": {}, \
             \"seconds\": {:.3}, \"rows_per_s\": {:.0}, \"complete\": {}}},",
            q.expr,
            q.window,
            q.rows,
            q.seconds,
            q.rows as f64 / q.seconds.max(1e-9),
            q.complete
        );
    }
    let _ = writeln!(
        json,
        "    \"triangles\": {{\"apexes\": {apexes}, \"count\": {}, \"seconds\": {:.3}, \
         \"apexes_per_s\": {:.0}, \"complete\": {}}}",
        tri_res.value.count,
        t_tri.as_secs_f64(),
        apexes as f64 / t_tri.as_secs_f64().max(1e-9),
        tri_res.completion.is_complete()
    );
    json.push_str("  }\n}\n");

    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_scale.json");
    orfail(std::fs::write(out, &json), "write BENCH_scale.json");
    print!("{json}");
    let _ = std::fs::remove_file(&seg_path);

    // Headline assertions mirroring the PR's acceptance bar.
    eprintln!("packed decode overhead (max over kernel cases): {overhead_max:.2}x");
    eprintln!(
        "bytes/edge: packed {:.2} vs raw label-CSR {:.2} ({reduction_label:.2}x) vs raw Csr {:.2} ({reduction_csr:.2}x)",
        packed_bytes as f64 / n_edges as f64,
        raw_label as f64 / n_edges as f64,
        raw_csr as f64 / n_edges as f64
    );
    assert!(
        budget_bytes < raw_csr && budget_bytes < raw_label,
        "memory budget must undercut the raw footprint"
    );
    assert!(
        reduction_label >= 4.0,
        "packed blob only {reduction_label:.2}x smaller than the raw label-CSR (bar: 4x)"
    );
    assert!(
        rpq.complete && starts.complete && tri_res.completion.is_complete(),
        "governed scale queries tripped under a quarter-of-raw budget"
    );
    if !quick {
        assert!(
            overhead_max <= 1.3,
            "packed decode overhead {overhead_max:.2}x exceeds the 1.3x bar"
        );
    }
}
