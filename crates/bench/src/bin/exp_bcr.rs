//! Experiment `exp_bcr` (E7) — knowledge-aware betweenness centrality.
//!
//! Reproduces the §4.2 bus example on Figure 2 and on scaled contact
//! networks: plain betweenness `bc` rewards the bus for *any* traffic
//! (including ownership paths), while `bc_r` with the transport pattern
//! `?person/rides/?bus/rides⁻/?person` counts only service paths. The
//! sampling approximation is compared against the exact values.

use kgq_analytics::{bc_r_approx, bc_r_exact, betweenness_undirected, BcrParams};
use kgq_bench::{fmt_duration, print_table, timed};
use kgq_core::{parse_expr, LabeledView};
use kgq_graph::figures::figure2_labeled;
use kgq_graph::generate::{contact_network, ContactParams};
use kgq_graph::NodeId;

fn main() {
    // Part 1: Figure 2.
    let mut g = figure2_labeled();
    let expr = parse_expr("?person/rides/?bus/rides^-/?person", g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);
    let bc = betweenness_undirected(&g);
    let bcr = bc_r_exact(&view, &expr);
    let mut rows: Vec<Vec<String>> = g
        .base()
        .nodes()
        .map(|n| {
            vec![
                g.node_name(n).to_owned(),
                g.label_name(g.node_label(n)).to_owned(),
                format!("{:.2}", bc[n.index()]),
                format!("{:.2}", bcr[n.index()]),
            ]
        })
        .collect();
    rows.sort_by(|a, b| b[3].partial_cmp(&a[3]).unwrap());
    print_table(
        "Figure 2: label-blind bc (both-way traversal) vs bc_r (transport pattern)",
        &["node", "label", "bc", "bc_r"],
        &rows,
    );
    let n3 = g.node_named("n3").unwrap();
    assert!(bcr[n3.index()] > 0.0, "the bus must be bc_r-central");
    assert!(
        bcr.iter()
            .enumerate()
            .all(|(i, &v)| i == n3.index() || v == 0.0),
        "only the bus is interior to transport paths"
    );

    // Part 2: scaling + approximation quality on contact networks.
    let mut rows = Vec::new();
    for people in [15usize, 25, 40] {
        let pg = contact_network(&ContactParams {
            people,
            buses: 3,
            addresses: people / 3,
            rides_per_person: 2,
            contacts_per_person: 1,
            infected_fraction: 0.15,
            seed: 5,
        });
        let mut g = pg.into_labeled();
        let expr = parse_expr("?person/rides/?bus/rides^-/?person", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let (exact, t_exact) = timed(|| bc_r_exact(&view, &expr));
        let (approx, t_approx) = timed(|| {
            bc_r_approx(
                &view,
                &expr,
                &BcrParams {
                    samples_per_pair: 24,
                    seed: 13,
                },
            )
        });
        // Error over nodes with nonzero exact centrality.
        let mut max_rel = 0.0f64;
        for (e, a) in exact.iter().zip(approx.iter()) {
            if *e > 0.0 {
                max_rel = max_rel.max((e - a).abs() / e);
            }
        }
        // Top bus by exact bc_r.
        let top = exact
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let top_approx = approx
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        rows.push(vec![
            format!("{} nodes", g.node_count()),
            g.node_name(NodeId(top as u32)).to_owned(),
            format!("{:.1}", exact[top]),
            format!("{:.1}", approx[top]),
            format!("{:.2}", max_rel),
            (top == top_approx).to_string(),
            fmt_duration(t_exact),
            fmt_duration(t_approx),
        ]);
    }
    print_table(
        "contact networks: exact vs sampled bc_r",
        &[
            "size",
            "top bus",
            "exact",
            "sampled",
            "max rel err",
            "same top?",
            "t_exact",
            "t_approx",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: the most-ridden bus tops bc_r in both methods; \
         sampling error stays small while the approximation avoids the \
         per-(x, source) deletion DPs of the exact algorithm."
    );
}
