//! Experiment `exp_joins` (E9) — "joins are expensive" (§2.2).
//!
//! Evaluates fixed-length path queries `p/p/…/p` and the closure `(p)*`
//! on the same graphs two ways: successive relational self-joins over
//! the edge table (the graphs-in-an-RDBMS baseline) and the native
//! product-automaton reachability of `kgq-core`. Both return identical
//! `(start, end)` pair sets; the join pipeline materializes every
//! intermediate pair set, which is where its cost explodes.

use kgq_bench::{fmt_duration, print_table, timed};
use kgq_core::{parse_expr, Evaluator, LabeledView};
use kgq_graph::generate::gnm_labeled;
use kgq_relbase::rpq_join_pairs;

fn main() {
    let mut g = gnm_labeled(300, 1500, &["v"], &["p", "q"], 17);
    println!(
        "G({}, {}), uniform labels p/q",
        g.node_count(),
        g.edge_count()
    );
    let mut rows = Vec::new();
    for len in 1..=6usize {
        let text = vec!["p"; len].join("/");
        let expr = parse_expr(&text, g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let (joined, t_join) = timed(|| rpq_join_pairs(&view, &expr).unwrap());
        let (native, t_native) = timed(|| {
            let mut pairs = Evaluator::new(&view, &expr).pairs();
            pairs.sort_unstable();
            pairs
        });
        assert_eq!(joined, native, "len={len}");
        rows.push(vec![
            text,
            joined.len().to_string(),
            fmt_duration(t_join),
            fmt_duration(t_native),
            format!(
                "{:.1}x",
                t_join.as_secs_f64() / t_native.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    // Transitive closure.
    let expr = parse_expr("(p)*", g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);
    let (joined, t_join) = timed(|| rpq_join_pairs(&view, &expr).unwrap());
    let (native, t_native) = timed(|| {
        let mut pairs = Evaluator::new(&view, &expr).pairs();
        pairs.sort_unstable();
        pairs
    });
    assert_eq!(joined, native);
    rows.push(vec![
        "(p)*".to_owned(),
        joined.len().to_string(),
        fmt_duration(t_join),
        fmt_duration(t_native),
        format!(
            "{:.1}x",
            t_join.as_secs_f64() / t_native.as_secs_f64().max(1e-9)
        ),
    ]);
    print_table(
        "path queries: relational joins vs product-automaton traversal",
        &["query", "pairs", "joins", "native", "joins/native"],
        &rows,
    );
    println!(
        "\nexpected shape: identical answers; the join pipeline's cost \
         grows with every materialized intermediate pair set, the native \
         engine's with the product size — the §2.2 motivation for graph \
         databases."
    );
}
