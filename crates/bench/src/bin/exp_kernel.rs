//! Experiment `exp_kernel` — bit-parallel reachability kernel vs the
//! per-source sequential baseline, plus automaton-minimization effect on
//! product size, emitted as `BENCH_kernel.json`.
//!
//! For each graph (Erdős–Rényi n=2000 m=10000, Barabási–Albert n=2000)
//! and three representative RPQs, the experiment measures wall time of
//!
//! * all-pairs evaluation: kernel [`Evaluator::pairs`] (64 BFS sources
//!   per sweep) vs per-source [`Evaluator::pairs_sequential`];
//! * start extraction: [`Evaluator::matching_starts`] vs its sequential
//!   reference;
//! * point lookups: bidirectional [`Evaluator::check`] vs a forward
//!   BFS baseline (`ends_from(a).contains(b)`);
//!
//! and records raw-NFA vs minimized-DFA product state counts. Every
//! timed kernel result is first checked byte-for-byte against its
//! sequential reference — any divergence aborts with a nonzero exit, so
//! CI can use this binary as a parity smoke test (`--quick` trims the
//! repetitions to fit a tight time box).

use kgq_bench::timed;
use kgq_core::parallel::set_threads;
use kgq_core::product::Product;
use kgq_core::{parse_expr, Evaluator, LabeledView, Nfa, PathExpr};
use kgq_graph::generate::{barabasi_albert, gnm_labeled};
use kgq_graph::{LabeledGraph, NodeId};
use std::fmt::Write as _;
use std::time::Duration;

fn median_secs<T>(mut f: impl FnMut() -> T, reps: usize) -> f64 {
    let mut times: Vec<Duration> = (0..reps).map(|_| timed(&mut f).1).collect();
    times.sort();
    times[times.len() / 2].as_secs_f64()
}

struct Case {
    graph: &'static str,
    expr: String,
    raw_states: usize,
    min_states: usize,
    pairs: usize,
    t_pairs_kernel: f64,
    t_pairs_baseline: f64,
    t_starts_kernel: f64,
    t_starts_baseline: f64,
    t_check_kernel: f64,
    t_check_baseline: f64,
}

fn run_case(graph: &'static str, g: &LabeledGraph, expr_text: &str, reps: usize) -> Case {
    let mut g = g.clone();
    let expr: PathExpr = parse_expr(expr_text, g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);

    // Product sizes: raw Thompson NFA vs minimized DFA.
    let raw_nfa = Nfa::compile(&expr);
    let min = Nfa::compile_min(&expr);
    let raw_product = Product::build(&view, &raw_nfa);
    let min_product = Product::build(&view, &min.nfa);
    let raw_states = raw_product.state_count();
    let min_states = min_product.state_count();

    let ev = Evaluator::new(&view, &expr);

    // Parity self-checks first: the kernel answers must be byte-identical
    // to the per-source references before any of them is worth timing.
    let reference_pairs = ev.pairs_sequential();
    assert_eq!(
        ev.pairs(),
        reference_pairs,
        "kernel pairs() diverged from the sequential reference ({graph}, {expr_text})"
    );
    let reference_starts = ev.matching_starts_sequential();
    assert_eq!(
        ev.matching_starts(),
        reference_starts,
        "kernel matching_starts() diverged ({graph}, {expr_text})"
    );

    // Point-lookup workload: a deterministic spread of (a, b) pairs.
    let n = g.node_count() as u32;
    let queries: Vec<(NodeId, NodeId)> = (0..64u32)
        .map(|i| (NodeId((i * 131) % n), NodeId((i * 7919 + 13) % n)))
        .collect();
    for &(a, b) in &queries {
        let baseline = ev.ends_from(a).binary_search(&b).is_ok();
        assert_eq!(
            ev.check(a, b),
            baseline,
            "bidirectional check() diverged ({graph}, {expr_text}, {a:?}->{b:?})"
        );
    }

    let t_pairs_kernel = median_secs(|| ev.pairs().len(), reps);
    let t_pairs_baseline = median_secs(|| ev.pairs_sequential().len(), reps);
    let t_starts_kernel = median_secs(|| ev.matching_starts().len(), reps);
    let t_starts_baseline = median_secs(|| ev.matching_starts_sequential().len(), reps);
    let t_check_kernel = median_secs(
        || queries.iter().filter(|&&(a, b)| ev.check(a, b)).count(),
        reps,
    );
    let t_check_baseline = median_secs(
        || {
            queries
                .iter()
                .filter(|&&(a, b)| ev.ends_from(a).binary_search(&b).is_ok())
                .count()
        },
        reps,
    );

    Case {
        graph,
        expr: expr_text.to_owned(),
        raw_states,
        min_states,
        pairs: reference_pairs.len(),
        t_pairs_kernel,
        t_pairs_baseline,
        t_starts_kernel,
        t_starts_baseline,
        t_check_kernel,
        t_check_baseline,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };
    // Timings compare the kernel's 64-way batching against per-source
    // scans at the same thread count, so the speedup is algorithmic, not
    // core-count dependent.
    set_threads(1);

    let er = gnm_labeled(2_000, 10_000, &["v"], &["p", "q"], 11);
    let ba = barabasi_albert(2_000, 5, "v", "link", 11);

    // Three representative shapes per graph: unbounded closure, a
    // concat-guarded closure, and an alternation with an inverse step.
    let er_exprs = ["(p+q)*", "p/(p+q)*/q", "(p/q) + (q/p^-)"];
    let ba_exprs = ["link*", "link/link*/link", "(link/link) + (link/link^-)"];

    let mut cases = Vec::new();
    for e in er_exprs {
        cases.push(run_case("er", &er, e, reps));
    }
    for e in ba_exprs {
        cases.push(run_case("ba", &ba, e, reps));
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"graphs\": {{\"er\": {{\"nodes\": {}, \"edges\": {}}}, \"ba\": {{\"nodes\": {}, \"edges\": {}}}}},",
        er.node_count(),
        er.edge_count(),
        ba.node_count(),
        ba.edge_count()
    );
    json.push_str("  \"cases\": [\n");
    let entries: Vec<String> = cases
        .iter()
        .map(|c| {
            format!(
                "    {{\"graph\": \"{}\", \"expr\": \"{}\", \
                 \"raw_product_states\": {}, \"min_product_states\": {}, \"pairs\": {}, \
                 \"pairs_kernel_s\": {:.6}, \"pairs_baseline_s\": {:.6}, \"pairs_speedup\": {:.3}, \
                 \"starts_kernel_s\": {:.6}, \"starts_baseline_s\": {:.6}, \"starts_speedup\": {:.3}, \
                 \"check_kernel_s\": {:.6}, \"check_baseline_s\": {:.6}, \"check_speedup\": {:.3}}}",
                c.graph,
                c.expr.replace('\\', "\\\\"),
                c.raw_states,
                c.min_states,
                c.pairs,
                c.t_pairs_kernel,
                c.t_pairs_baseline,
                c.t_pairs_baseline / c.t_pairs_kernel.max(1e-9),
                c.t_starts_kernel,
                c.t_starts_baseline,
                c.t_starts_baseline / c.t_starts_kernel.max(1e-9),
                c.t_check_kernel,
                c.t_check_baseline,
                c.t_check_baseline / c.t_check_kernel.max(1e-9),
            )
        })
        .collect();
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  ]\n}\n");

    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_kernel.json");
    std::fs::write(out, &json).expect("write BENCH_kernel.json");
    print!("{json}");

    // Headline assertions mirroring the PR's acceptance bar, so CI fails
    // loudly if a regression erodes the kernel's advantage.
    let er_allpairs = cases
        .iter()
        .find(|c| c.graph == "er" && c.expr == "(p+q)*")
        .unwrap();
    let speedup = er_allpairs.t_pairs_baseline / er_allpairs.t_pairs_kernel.max(1e-9);
    eprintln!("er all-pairs kernel speedup: {speedup:.2}x");
    let shrunk = cases
        .iter()
        .filter(|c| c.graph == "er")
        .filter(|c| c.min_states < c.raw_states)
        .count();
    eprintln!("er RPQs with smaller minimized products: {shrunk}/3");
    if !quick {
        assert!(
            speedup >= 5.0,
            "all-pairs kernel speedup {speedup:.2}x below the 5x bar"
        );
        assert!(shrunk >= 2, "minimization shrank only {shrunk}/3 products");
    }
}
