//! Experiment `exp_analytics` (E11) — the §4.2 analytics inventory.
//!
//! Sanity-checks and times the classical toolbox on ER and BA graphs:
//! components, diameter, PageRank, HITS, clustering, label propagation,
//! densest subgraph and Brandes betweenness. BA graphs should show a
//! denser core and a more skewed PageRank than ER graphs of equal size.

use kgq_analytics::{
    betweenness, clustering_coefficient, densest_subgraph, densest_subgraph_exact, diameter,
    label_propagation, pagerank, weakly_connected_components, PageRankParams,
};
use kgq_bench::{fmt_duration, print_table, timed};
use kgq_graph::generate::{barabasi_albert, gnm_labeled};
use kgq_graph::LabeledGraph;

fn skew(pr: &[f64]) -> f64 {
    // max / mean as a crude inequality measure.
    let mean = pr.iter().sum::<f64>() / pr.len() as f64;
    pr.iter().cloned().fold(0.0, f64::max) / mean
}

fn profile(name: &str, g: &LabeledGraph, rows: &mut Vec<Vec<String>>) {
    let (comp, t_cc) = timed(|| weakly_connected_components(g));
    let n_comp = comp.iter().max().map_or(0, |m| m + 1);
    let (diam, t_diam) = timed(|| diameter(g, false));
    let (pr, t_pr) = timed(|| pagerank(g, &PageRankParams::default()));
    let (cc, t_clust) = timed(|| clustering_coefficient(g));
    let (comm, t_lp) = timed(|| label_propagation(g, 30));
    let n_comm = comm.iter().max().map_or(0, |m| m + 1);
    let ((dense_nodes, density), t_ds) = timed(|| densest_subgraph(g));
    let (_bc, t_bc) = timed(|| betweenness(g));
    rows.push(vec![
        name.to_owned(),
        n_comp.to_string(),
        diam.map_or("∞".into(), |d| d.to_string()),
        format!("{:.2}", skew(&pr)),
        format!("{cc:.3}"),
        n_comm.to_string(),
        format!("{} @ {:.2}", dense_nodes.len(), density),
        format!(
            "cc {} diam {} pr {} clu {} lp {} ds {} bc {}",
            fmt_duration(t_cc),
            fmt_duration(t_diam),
            fmt_duration(t_pr),
            fmt_duration(t_clust),
            fmt_duration(t_lp),
            fmt_duration(t_ds),
            fmt_duration(t_bc)
        ),
    ]);
}

fn main() {
    let mut rows = Vec::new();
    for n in [200usize, 500] {
        let er = gnm_labeled(n, n * 4, &["v"], &["e"], 8);
        profile(&format!("ER({n},{})", n * 4), &er, &mut rows);
        let ba = barabasi_albert(n, 4, "v", "e", 8);
        profile(&format!("BA({n},4)"), &ba, &mut rows);
    }
    // Ablation: Charikar peeling vs Goldberg's exact flow-based optimum.
    let mut drows = Vec::new();
    for seed in [1u64, 2, 3] {
        let g = gnm_labeled(60, 240, &["v"], &["e"], seed);
        let ((_, peel), t_peel) = timed(|| densest_subgraph(&g));
        let ((_, exact), t_exact) = timed(|| densest_subgraph_exact(&g));
        drows.push(vec![
            format!("G(60,240) seed {seed}"),
            format!("{peel:.3}"),
            format!("{exact:.3}"),
            format!("{:.2}", peel / exact),
            fmt_duration(t_peel),
            fmt_duration(t_exact),
        ]);
    }
    print_table(
        "densest subgraph: greedy peeling (2-approx) vs exact max-flow (Goldberg)",
        &["graph", "peeling", "exact", "ratio", "t_peel", "t_exact"],
        &drows,
    );

    print_table(
        "classical analytics across graph families",
        &[
            "graph",
            "components",
            "diameter",
            "PR skew",
            "clustering",
            "communities",
            "densest",
            "times",
        ],
        &rows,
    );
    println!(
        "\nexpected shape: BA graphs show higher PageRank skew (hubs), a \
         denser densest-subgraph core, and smaller diameter than ER graphs \
         of the same size."
    );
}
