//! Experiment `exp_rdf` (E12) — the RDF model in practice (§3).
//!
//! Generates a university-flavored synthetic RDF graph (LUBM-like
//! shape: universities, departments, professors, students, courses),
//! runs basic graph patterns of increasing join depth at several scales,
//! and round-trips the data through the labeled-graph model to run a
//! path query.

use kgq_bench::{fmt_duration, print_table, timed};
use kgq_core::{matching_starts, parse_expr, LabeledView};
use kgq_rdf::{
    materialize_rdfs, rdf_to_labeled, Bgp, TripleStore, RDFS_DOMAIN, RDFS_RANGE, RDFS_SUBCLASS,
    RDFS_SUBPROPERTY, RDF_TYPE,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn university_graph(unis: usize, seed: u64) -> TripleStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut st = TripleStore::new();
    for u in 0..unis {
        let uni = format!("u{u}");
        st.insert_strs(&uni, RDF_TYPE, "University");
        for d in 0..4 {
            let dept = format!("u{u}d{d}");
            st.insert_strs(&dept, RDF_TYPE, "Department");
            st.insert_strs(&dept, "subOrganizationOf", &uni);
            for p in 0..5 {
                let prof = format!("u{u}d{d}p{p}");
                st.insert_strs(&prof, RDF_TYPE, "Professor");
                st.insert_strs(&prof, "worksFor", &dept);
                for c in 0..2 {
                    let course = format!("u{u}d{d}p{p}c{c}");
                    st.insert_strs(&course, RDF_TYPE, "Course");
                    st.insert_strs(&prof, "teaches", &course);
                }
            }
            for s in 0..20 {
                let student = format!("u{u}d{d}s{s}");
                st.insert_strs(&student, RDF_TYPE, "Student");
                st.insert_strs(&student, "memberOf", &dept);
                // Take 3 random courses of the department.
                for _ in 0..3 {
                    let p = rng.gen_range(0..5);
                    let c = rng.gen_range(0..2);
                    st.insert_strs(&student, "takes", &format!("u{u}d{d}p{p}c{c}"));
                }
                // Advised by a random professor.
                let p = rng.gen_range(0..5);
                st.insert_strs(&student, "advisedBy", &format!("u{u}d{d}p{p}"));
            }
        }
    }
    st
}

fn main() {
    let mut rows = Vec::new();
    for unis in [2usize, 5, 10, 20] {
        let (mut st, t_load) = timed(|| university_graph(unis, 4));
        // Q1: one pattern — all students.
        let mut q1 = Bgp::new();
        q1.add(&mut st, "?s", RDF_TYPE, "Student");
        let (r1, t1) = timed(|| q1.solve(&st));
        // Q2: two-way join — students and their advisors' departments.
        let mut q2 = Bgp::new();
        q2.add(&mut st, "?s", "advisedBy", "?p");
        q2.add(&mut st, "?p", "worksFor", "?d");
        let (r2, t2) = timed(|| q2.solve(&st));
        // Q3: triangle-ish — student takes a course taught by their advisor.
        let mut q3 = Bgp::new();
        q3.add(&mut st, "?s", "advisedBy", "?p");
        q3.add(&mut st, "?p", "teaches", "?c");
        q3.add(&mut st, "?s", "takes", "?c");
        let (r3, t3) = timed(|| q3.solve(&st));
        rows.push(vec![
            st.len().to_string(),
            fmt_duration(t_load),
            format!("{} ({})", r1.len(), fmt_duration(t1)),
            format!("{} ({})", r2.len(), fmt_duration(t2)),
            format!("{} ({})", r3.len(), fmt_duration(t3)),
        ]);
    }
    print_table(
        "BGP matching on synthetic university RDF",
        &[
            "triples",
            "load",
            "Q1 students",
            "Q2 advisor-dept join",
            "Q3 takes-own-advisor-course",
        ],
        &rows,
    );

    // Path query through the labeled-graph correspondence.
    let st = university_graph(5, 4);
    let (mut g, t_conv) = timed(|| rdf_to_labeled(&st).unwrap());
    let expr = parse_expr(
        "?Student/advisedBy/?Professor/teaches/?Course",
        g.consts_mut(),
    )
    .unwrap();
    let view = LabeledView::new(&g);
    let (starts, t_rpq) = timed(|| matching_starts(&view, &expr));
    println!(
        "\nRDF → labeled graph: {} nodes / {} edges in {}; path query \
         ?Student/advisedBy/?Professor/teaches/?Course matches {} students \
         in {}",
        g.node_count(),
        g.edge_count(),
        fmt_duration(t_conv),
        starts.len(),
        fmt_duration(t_rpq)
    );
    assert!(!starts.is_empty());

    // §2.3: produce new knowledge — RDFS materialization at scale.
    let mut rows = Vec::new();
    for unis in [2usize, 5, 10] {
        let mut st = university_graph(unis, 4);
        st.insert_strs("Professor", RDFS_SUBCLASS, "Faculty");
        st.insert_strs("Faculty", RDFS_SUBCLASS, "Agent");
        st.insert_strs("Student", RDFS_SUBCLASS, "Agent");
        st.insert_strs("advisedBy", RDFS_SUBPROPERTY, "knows");
        st.insert_strs("teaches", RDFS_DOMAIN, "Faculty");
        st.insert_strs("takes", RDFS_RANGE, "Course");
        let before = st.len();
        let (stats, t_inf) = timed(|| materialize_rdfs(&mut st));
        // Derived facts are visible to queries (entities keep all their
        // inferred types in the store).
        let mut qa = Bgp::new();
        qa.add(&mut st, "?x", RDF_TYPE, "Agent");
        let agents = qa.solve(&st);
        rows.push(vec![
            before.to_string(),
            stats.inferred.to_string(),
            stats.rounds.to_string(),
            agents.len().to_string(),
            fmt_duration(t_inf),
        ]);
    }
    print_table(
        "RDFS forward chaining (subclass/subproperty/domain/range)",
        &[
            "triples before",
            "inferred",
            "rounds",
            "derived Agents",
            "time",
        ],
        &rows,
    );
}
