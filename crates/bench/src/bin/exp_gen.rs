//! Experiment `exp_gen` (E5) — uniform generation of paths.
//!
//! Demonstrates the preprocessing/generation split of §4.1: one-time
//! data-structure construction, then cheap repeated sampling; validates
//! uniformity with a chi-square statistic against the fully enumerated
//! answer set, for both the exact sampler and the pool-based approximate
//! sampler.

use kgq_bench::{fmt_duration, print_table, timed};
use kgq_core::{
    enumerate_paths, parse_expr, ApproxCounter, ApproxParams, LabeledView, Path, UniformSampler,
};
use kgq_graph::generate::gnm_labeled;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn chi_square(freq: &HashMap<Path, usize>, categories: usize, draws: usize) -> f64 {
    let expected = draws as f64 / categories as f64;
    let observed_sum: f64 = freq
        .values()
        .map(|&o| {
            let d = o as f64 - expected;
            d * d / expected
        })
        .sum();
    // Categories never drawn still contribute (0 - e)² / e.
    let missing = categories - freq.len();
    observed_sum + missing as f64 * expected
}

fn main() {
    let mut g = gnm_labeled(12, 26, &["a", "b"], &["p", "q"], 9);
    let expr = parse_expr("(p+q)*", g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);
    let k = 3;
    let answers = enumerate_paths(&view, &expr, k);
    let c = answers.len();
    println!("G(12,26), r=(p+q)*, k={k}: {c} answers");
    let draws = 300 * c;

    let mut rows = Vec::new();

    // Exact sampler.
    let (sampler, prep) = timed(|| UniformSampler::new(&view, &expr, k).unwrap());
    let mut rng = StdRng::seed_from_u64(1);
    let mut freq: HashMap<Path, usize> = HashMap::new();
    let (_, gen_time) = timed(|| {
        for _ in 0..draws {
            let p = sampler.sample(&mut rng).expect("non-empty");
            *freq.entry(p).or_insert(0) += 1;
        }
    });
    for p in freq.keys() {
        assert!(answers.contains(p), "invalid sample");
    }
    let chi2 = chi_square(&freq, c, draws);
    rows.push(vec![
        "exact (DFA-DP)".to_owned(),
        fmt_duration(prep),
        fmt_duration(gen_time / draws as u32),
        format!("{}/{}", freq.len(), c),
        format!("{chi2:.1}"),
        format!("{:.1}", c as f64 - 1.0),
    ]);

    // Approximate sampler (pool-based, no determinization).
    let params = ApproxParams {
        epsilon: 0.2,
        seed: 5,
        pool_cap: 512,
        ..ApproxParams::default()
    };
    let (counter, prep) = timed(|| ApproxCounter::build(&view, &expr, k, &params));
    let mut rng = StdRng::seed_from_u64(2);
    let mut freq: HashMap<Path, usize> = HashMap::new();
    let (_, gen_time) = timed(|| {
        for _ in 0..draws {
            if let Some(p) = counter.sample(&mut rng) {
                *freq.entry(p).or_insert(0) += 1;
            }
        }
    });
    for p in freq.keys() {
        assert!(answers.contains(p), "invalid approx sample");
    }
    let chi2 = chi_square(&freq, c, draws);
    rows.push(vec![
        "approx (ACJR pools)".to_owned(),
        fmt_duration(prep),
        fmt_duration(gen_time / draws as u32),
        format!("{}/{}", freq.len(), c),
        format!("{chi2:.1}"),
        format!("{:.1}", c as f64 - 1.0),
    ]);

    print_table(
        &format!("Gen(G, r, k): preprocessing + {draws} draws"),
        &[
            "sampler",
            "preprocess",
            "per-sample",
            "coverage",
            "χ²",
            "E[χ²] if uniform",
        ],
        &rows,
    );
    println!(
        "\nexact sampler χ² should sit near its expectation; the approximate \
         sampler trades uniformity (bounded by pool bias) for avoiding \
         determinization."
    );
}
