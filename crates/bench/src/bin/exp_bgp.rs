//! Experiment `exp_bgp` — worst-case optimal BGP joins (leapfrog
//! triejoin) vs the backtracking baseline, emitted as `BENCH_bgp.json`.
//!
//! For each store (Erdős–Rényi and Barabási–Albert labeled graphs
//! converted to RDF) and four BGP families — triangle, directed
//! 4-clique, length-3 path, 3-arm star — the experiment measures wall
//! time of [`kgq_rdf::lftj::solve`] against [`Bgp::solve_baseline`],
//! the original backtracking matcher. Cyclic families (triangle,
//! clique) are where the AGM bound bites: the baseline enumerates every
//! open path before discovering the closing edge is absent, while the
//! triejoin intersects all patterns variable-at-a-time.
//!
//! Every timed answer is first checked against the baseline as a
//! multiset of bindings — any divergence aborts with a nonzero exit, so
//! CI can use this binary as a parity smoke test (`--quick` trims sizes
//! and repetitions to fit a tight time box).

use kgq_bench::timed;
use kgq_core::parallel::set_threads;
use kgq_graph::generate::{barabasi_albert, gnm_labeled};
use kgq_rdf::bgp::{Bgp, Binding};
use kgq_rdf::{labeled_to_rdf, lftj, TripleStore};
use std::fmt::Write as _;
use std::time::Duration;

fn median_secs<T>(mut f: impl FnMut() -> T, reps: usize) -> f64 {
    let mut times: Vec<Duration> = (0..reps).map(|_| timed(&mut f).1).collect();
    times.sort();
    times[times.len() / 2].as_secs_f64()
}

/// Canonical multiset form of an answer, for the parity check.
fn canon(bindings: Vec<Binding>) -> Vec<Vec<(String, u32)>> {
    let mut v: Vec<Vec<(String, u32)>> = bindings
        .into_iter()
        .map(|b| {
            let mut row: Vec<(String, u32)> = b.into_iter().map(|(k, s)| (k, s.0)).collect();
            row.sort();
            row
        })
        .collect();
    v.sort();
    v
}

/// The four query families over the converted edge predicate `e`.
fn bgp_for(st: &mut TripleStore, family: &str) -> Bgp {
    let mut q = Bgp::new();
    match family {
        "triangle" => {
            q.add(st, "?a", "e", "?b");
            q.add(st, "?b", "e", "?c");
            q.add(st, "?c", "e", "?a");
        }
        "clique4" => {
            q.add(st, "?a", "e", "?b");
            q.add(st, "?a", "e", "?c");
            q.add(st, "?a", "e", "?d");
            q.add(st, "?b", "e", "?c");
            q.add(st, "?b", "e", "?d");
            q.add(st, "?c", "e", "?d");
        }
        "path3" => {
            q.add(st, "?a", "e", "?b");
            q.add(st, "?b", "e", "?c");
            q.add(st, "?c", "e", "?d");
        }
        "star3" => {
            q.add(st, "?hub", "e", "?x");
            q.add(st, "?hub", "e", "?y");
            q.add(st, "?hub", "e", "?z");
        }
        other => panic!("unknown BGP family {other}"),
    }
    q
}

struct Case {
    store: &'static str,
    family: &'static str,
    patterns: usize,
    rows: usize,
    t_lftj: f64,
    t_baseline: f64,
}

fn run_case(store: &'static str, st: &mut TripleStore, family: &'static str, reps: usize) -> Case {
    let q = bgp_for(st, family);
    let st = &*st;

    // Parity first: timing a wrong answer is worthless.
    let fast = lftj::solve(st, &q);
    let slow = q.solve_baseline(st);
    assert_eq!(
        canon(fast.bindings()),
        canon(slow),
        "LFTJ diverged from the backtracking baseline ({store}, {family})"
    );
    let rows = fast.rows.len();

    let t_lftj = median_secs(|| lftj::solve(st, &q).rows.len(), reps);
    let t_baseline = median_secs(|| q.solve_baseline(st).len(), reps);

    Case {
        store,
        family,
        patterns: q.patterns.len(),
        rows,
        t_lftj,
        t_baseline,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };
    // Single-thread timings: the speedup is algorithmic (AGM bound +
    // flat rows vs per-candidate HashMap clones), not core-count.
    set_threads(1);

    let (er_n, er_m, ba_n) = if quick {
        (400, 3_200, 400)
    } else {
        (1_000, 8_000, 1_000)
    };
    let er = gnm_labeled(er_n, er_m, &["v"], &["e"], 17);
    let ba = barabasi_albert(ba_n, 5, "v", "e", 17);
    let mut er_st = labeled_to_rdf(&er);
    let mut ba_st = labeled_to_rdf(&ba);

    let families = ["triangle", "clique4", "path3", "star3"];
    let mut cases = Vec::new();
    for f in families {
        cases.push(run_case("er", &mut er_st, f, reps));
    }
    for f in families {
        cases.push(run_case("ba", &mut ba_st, f, reps));
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"stores\": {{\"er\": {{\"nodes\": {}, \"edges\": {}, \"triples\": {}}}, \
         \"ba\": {{\"nodes\": {}, \"edges\": {}, \"triples\": {}}}}},",
        er.node_count(),
        er.edge_count(),
        er_st.len(),
        ba.node_count(),
        ba.edge_count(),
        ba_st.len()
    );
    json.push_str("  \"cases\": [\n");
    let entries: Vec<String> = cases
        .iter()
        .map(|c| {
            format!(
                "    {{\"store\": \"{}\", \"family\": \"{}\", \"patterns\": {}, \"rows\": {}, \
                 \"lftj_s\": {:.6}, \"baseline_s\": {:.6}, \"speedup\": {:.3}}}",
                c.store,
                c.family,
                c.patterns,
                c.rows,
                c.t_lftj,
                c.t_baseline,
                c.t_baseline / c.t_lftj.max(1e-9),
            )
        })
        .collect();
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  ]\n}\n");

    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_bgp.json");
    std::fs::write(out, &json).expect("write BENCH_bgp.json");
    print!("{json}");

    // Headline assertions mirroring the PR's acceptance bar: the cyclic
    // families must clear 10x on the skewed (BA) store — the case the
    // AGM bound is about. On uniform ER data greedy backtracking is
    // near-optimal and the gap is structurally smaller; those numbers
    // are reported but not gated.
    for family in ["triangle", "clique4"] {
        for store in ["ba", "er"] {
            let c = cases
                .iter()
                .find(|c| c.store == store && c.family == family)
                .expect("case present");
            let speedup = c.t_baseline / c.t_lftj.max(1e-9);
            eprintln!("{store} {family} LFTJ speedup: {speedup:.2}x");
            if !quick && store == "ba" {
                assert!(
                    speedup >= 10.0,
                    "{store} {family} speedup {speedup:.2}x below the 10x bar"
                );
            }
        }
    }
}
