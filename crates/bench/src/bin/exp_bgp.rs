//! Experiment `exp_bgp` — worst-case optimal BGP joins (leapfrog
//! triejoin) vs the backtracking baseline, plus a planner A/B between
//! the sketch-driven cost model and the greedy exact-count oracle,
//! emitted as `BENCH_bgp.json`.
//!
//! For each store (Erdős–Rényi and Barabási–Albert labeled graphs
//! converted to RDF) and four BGP families — triangle, directed
//! 4-clique, length-3 path, 3-arm star — the experiment measures wall
//! time of the triejoin against [`Bgp::solve_baseline`], the original
//! backtracking matcher. Cyclic families (triangle, clique) are where
//! the AGM bound bites: the baseline enumerates every open path before
//! discovering the closing edge is absent, while the triejoin
//! intersects all patterns variable-at-a-time.
//!
//! On top of the engine-vs-baseline comparison, every case times the
//! same triejoin under both planners: `greedy_plan_s` executes the
//! exact-prefix-count greedy order, `sketch_plan_s` the order chosen by
//! the two-level sketch cost model ([`kgq_rdf::StoreSketch`]). Sketch
//! construction is excluded — it is built once per store generation and
//! amortized across queries. A `skew` store (hub-heavy two-predicate
//! graph where one-level counts mislead the greedy planner) shows the
//! cost model's advantage; the binary asserts the sketch order never
//! regresses >10% on any case and beats greedy ≥1.5× on the skew case.
//!
//! Every timed answer is first checked against the baseline as a
//! multiset of bindings — any divergence aborts with a nonzero exit, so
//! CI can use this binary as a parity smoke test (`--quick` trims sizes
//! and repetitions to fit a tight time box).

use kgq_bench::timed;
use kgq_core::parallel::set_threads;
use kgq_graph::generate::{barabasi_albert, gnm_labeled};
use kgq_rdf::bgp::{Bgp, Binding};
use kgq_rdf::{labeled_to_rdf, lftj, StoreSketch, TripleStore};
use std::fmt::Write as _;
use std::time::Duration;

fn median_secs<T>(mut f: impl FnMut() -> T, reps: usize) -> f64 {
    let mut times: Vec<Duration> = (0..reps).map(|_| timed(&mut f).1).collect();
    times.sort();
    times[times.len() / 2].as_secs_f64()
}

/// Canonical multiset form of an answer, for the parity check.
fn canon(bindings: Vec<Binding>) -> Vec<Vec<(String, u32)>> {
    let mut v: Vec<Vec<(String, u32)>> = bindings
        .into_iter()
        .map(|b| {
            let mut row: Vec<(String, u32)> = b.into_iter().map(|(k, s)| (k, s.0)).collect();
            row.sort();
            row
        })
        .collect();
    v.sort();
    v
}

/// The query families over the converted edge predicate `e`, plus the
/// two-predicate `hubpair` family over the skew store.
fn bgp_for(st: &mut TripleStore, family: &str) -> Bgp {
    let mut q = Bgp::new();
    match family {
        "triangle" => {
            q.add(st, "?a", "e", "?b");
            q.add(st, "?b", "e", "?c");
            q.add(st, "?c", "e", "?a");
        }
        "clique4" => {
            q.add(st, "?a", "e", "?b");
            q.add(st, "?a", "e", "?c");
            q.add(st, "?a", "e", "?d");
            q.add(st, "?b", "e", "?c");
            q.add(st, "?b", "e", "?d");
            q.add(st, "?c", "e", "?d");
        }
        "path3" => {
            q.add(st, "?a", "e", "?b");
            q.add(st, "?b", "e", "?c");
            q.add(st, "?c", "e", "?d");
        }
        "star3" => {
            q.add(st, "?hub", "e", "?x");
            q.add(st, "?hub", "e", "?y");
            q.add(st, "?hub", "e", "?z");
        }
        // Pairs of leaves under the same hub that are near the same
        // center. Every pattern has the same one-level cardinality, so
        // the greedy planner tie-breaks to `?a < ?c < ?b < ?h` and
        // enumerates every leaf; the sketch planner sees 8 distinct
        // `spoke` subjects in the heavy-hitter buckets and leads with
        // `?h`.
        "hubpair" => {
            q.add(st, "?a", "near", "?c");
            q.add(st, "?b", "near", "?c");
            q.add(st, "?h", "spoke", "?a");
            q.add(st, "?h", "spoke", "?b");
        }
        other => panic!("unknown BGP family {other}"),
    }
    q
}

/// The skew-adversarial store: `hubs` hubs own contiguous ranges of
/// `leaves` leaves (`spoke` edges), and leaf `i` is `near` center
/// `i % centers`. One-level prefix counts are identical across all
/// patterns of the `hubpair` query, so only degree statistics reveal
/// that leading with the 8-subject `spoke` predicate collapses the
/// search space.
fn skew_store(leaves: usize, hubs: usize, centers: usize) -> TripleStore {
    let mut st = TripleStore::new();
    let per_hub = leaves / hubs;
    for i in 0..leaves {
        st.insert_strs(&format!("h{}", i / per_hub), "spoke", &format!("n{i}"));
        st.insert_strs(&format!("n{i}"), "near", &format!("c{}", i % centers));
    }
    st
}

struct Case {
    store: &'static str,
    family: &'static str,
    patterns: usize,
    rows: usize,
    t_baseline: f64,
    t_greedy: f64,
    t_sketch: f64,
    agree: bool,
}

fn run_case(store: &'static str, st: &mut TripleStore, family: &'static str, reps: usize) -> Case {
    let q = bgp_for(st, family);
    let st = &*st;

    let gplan = lftj::plan(st, &q);
    let sk = StoreSketch::build(st);
    let sp = lftj::plan_sketched(st, &sk, &q);
    if let Err(e) = lftj::verify_plan(st, &q, &sp.plan) {
        panic!("sketch plan failed verification ({store}, {family}): {e}");
    }
    let agree = sp.plan.vars == gplan.vars;

    // Parity first: timing a wrong answer is worthless. Both planners'
    // orders must reproduce the backtracking oracle as a multiset.
    let greedy_run = lftj::solve_planned(st, &q, &gplan, 1);
    let sketch_run = lftj::solve_planned(st, &q, &sp.plan, 1);
    let oracle = canon(q.solve_baseline(st));
    assert_eq!(
        canon(greedy_run.bindings()),
        oracle,
        "greedy-planned LFTJ diverged from the backtracking baseline ({store}, {family})"
    );
    assert_eq!(
        canon(sketch_run.bindings()),
        oracle,
        "sketch-planned LFTJ diverged from the backtracking baseline ({store}, {family})"
    );
    let rows = greedy_run.rows.len();

    let t_greedy = median_secs(|| lftj::solve_planned(st, &q, &gplan, 1).rows.len(), reps);
    // Identical orders execute identically — reuse the measurement so
    // timer noise cannot fake a planner gap in either direction.
    let t_sketch = if agree {
        t_greedy
    } else {
        median_secs(|| lftj::solve_planned(st, &q, &sp.plan, 1).rows.len(), reps)
    };
    let t_baseline = median_secs(|| q.solve_baseline(st).len(), reps);

    Case {
        store,
        family,
        patterns: q.patterns.len(),
        rows,
        t_baseline,
        t_greedy,
        t_sketch,
        agree,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };
    // Single-thread timings: the speedup is algorithmic (AGM bound +
    // flat rows vs per-candidate HashMap clones), not core-count.
    set_threads(1);

    let (er_n, er_m, ba_n) = if quick {
        (400, 3_200, 400)
    } else {
        (1_000, 8_000, 1_000)
    };
    let (leaves, hubs, centers) = if quick {
        (4_000, 8, 100)
    } else {
        (16_000, 8, 400)
    };
    let er = gnm_labeled(er_n, er_m, &["v"], &["e"], 17);
    let ba = barabasi_albert(ba_n, 5, "v", "e", 17);
    let mut er_st = labeled_to_rdf(&er);
    let mut ba_st = labeled_to_rdf(&ba);
    let mut skew_st = skew_store(leaves, hubs, centers);

    let families = ["triangle", "clique4", "path3", "star3"];
    let mut cases = Vec::new();
    for f in families {
        cases.push(run_case("er", &mut er_st, f, reps));
    }
    for f in families {
        cases.push(run_case("ba", &mut ba_st, f, reps));
    }
    cases.push(run_case("skew", &mut skew_st, "hubpair", reps));

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"stores\": {{\"er\": {{\"nodes\": {}, \"edges\": {}, \"triples\": {}}}, \
         \"ba\": {{\"nodes\": {}, \"edges\": {}, \"triples\": {}}}, \
         \"skew\": {{\"leaves\": {leaves}, \"hubs\": {hubs}, \"centers\": {centers}, \
         \"triples\": {}}}}},",
        er.node_count(),
        er.edge_count(),
        er_st.len(),
        ba.node_count(),
        ba.edge_count(),
        ba_st.len(),
        skew_st.len()
    );
    json.push_str("  \"cases\": [\n");
    let entries: Vec<String> = cases
        .iter()
        .map(|c| {
            format!(
                "    {{\"store\": \"{}\", \"family\": \"{}\", \"patterns\": {}, \"rows\": {}, \
                 \"lftj_s\": {:.6}, \"baseline_s\": {:.6}, \"speedup\": {:.3}, \
                 \"sketch_plan_s\": {:.6}, \"greedy_plan_s\": {:.6}, \"plans_agree\": {}}}",
                c.store,
                c.family,
                c.patterns,
                c.rows,
                c.t_greedy,
                c.t_baseline,
                c.t_baseline / c.t_greedy.max(1e-9),
                c.t_sketch,
                c.t_greedy,
                c.agree,
            )
        })
        .collect();
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  ]\n}\n");

    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_bgp.json");
    std::fs::write(out, &json).expect("write BENCH_bgp.json");
    print!("{json}");

    // Headline assertions mirroring the PR's acceptance bar: the cyclic
    // families must clear 10x on the skewed (BA) store — the case the
    // AGM bound is about. On uniform ER data greedy backtracking is
    // near-optimal and the gap is structurally smaller; those numbers
    // are reported but not gated.
    for family in ["triangle", "clique4"] {
        for store in ["ba", "er"] {
            let c = cases
                .iter()
                .find(|c| c.store == store && c.family == family)
                .expect("case present");
            let speedup = c.t_baseline / c.t_greedy.max(1e-9);
            eprintln!("{store} {family} LFTJ speedup: {speedup:.2}x");
            if !quick && store == "ba" {
                assert!(
                    speedup >= 10.0,
                    "{store} {family} speedup {speedup:.2}x below the 10x bar"
                );
            }
        }
    }

    // Planner A/B gates. The relative bar is the acceptance criterion;
    // the small absolute slack keeps sub-millisecond cases from failing
    // on timer noise alone.
    for c in &cases {
        eprintln!(
            "{} {} planner A/B: sketch {:.4}s vs greedy {:.4}s (agree: {})",
            c.store, c.family, c.t_sketch, c.t_greedy, c.agree
        );
        assert!(
            c.t_sketch <= c.t_greedy * 1.10 + 0.02,
            "{} {}: sketch-planned run {:.4}s regressed >10% vs greedy {:.4}s",
            c.store,
            c.family,
            c.t_sketch,
            c.t_greedy
        );
    }
    if let Some(c) = cases.iter().find(|c| c.store == "skew") {
        let gain = c.t_greedy / c.t_sketch.max(1e-9);
        eprintln!("skew hubpair sketch-planner gain: {gain:.2}x");
        if !quick {
            assert!(
                gain >= 1.5,
                "skew hubpair: sketch plan gain {gain:.2}x below the 1.5x bar"
            );
        }
    }
}
