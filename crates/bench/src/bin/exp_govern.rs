//! Experiment `exp_govern` — overhead of resource-governed execution
//! with an *unlimited* budget (target: <3% slowdown), emitted as JSON.
//!
//! Workload: the Figure 1 corpus (simulated DBLP, ~10.9k publications)
//! recast as a graph query. Publications and keywords become nodes of a
//! bipartite labeled graph with a `mentions` edge wherever a title
//! contains a keyword, so `?pub/mentions/?kw` *pairs* is exactly the
//! publication–keyword incidence that `figure1_series` counts — the
//! cross-check below asserts the two totals agree. Each operation
//! (pairs, matching_starts, exact count) is then timed ungoverned vs
//! governed-with-unlimited-budget; with batched tickers (one shared
//! consultation per 1024 local work units) the governed path should be
//! indistinguishable from the free-running one.

use kgq_bench::timed;
use kgq_biblio::analysis::title_contains;
use kgq_biblio::{figure1_series, generate_corpus, CorpusParams, KEYWORDS};
use kgq_core::{
    count_paths, count_paths_governed, parse_expr, Budget, CancelToken, Evaluator, Governor,
    LabeledView,
};
use kgq_graph::LabeledGraph;
use std::time::Duration;

/// Best-of-`reps` wall time: the minimum is the standard noise-resistant
/// statistic for same-work/same-input timing comparisons.
fn best_secs<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    let mut times: Vec<Duration> = (0..reps).map(|_| timed(&mut f).1).collect();
    times.sort();
    times[0].as_secs_f64()
}

fn overhead_pct(ungoverned: f64, governed: f64) -> f64 {
    (governed - ungoverned) / ungoverned * 100.0
}

fn main() {
    let params = CorpusParams::default();
    let corpus = generate_corpus(&params);
    let fig = figure1_series(&corpus);
    let incidence: usize = fig.series.iter().map(|s| s.iter().sum::<usize>()).sum();

    // Bipartite publication–keyword graph: `mentions` edges reproduce
    // the Figure 1 counting as a reachability query.
    let mut g = LabeledGraph::new();
    let kw_nodes: Vec<_> = KEYWORDS
        .iter()
        .enumerate()
        .map(|(i, _)| g.add_node(&format!("k{i}"), "kw").unwrap())
        .collect();
    let mut edges = 0usize;
    for (pi, publication) in corpus.iter().enumerate() {
        let p = g.add_node(&format!("p{pi}"), "pub").unwrap();
        for (ki, kw) in KEYWORDS.iter().enumerate() {
            if title_contains(&publication.title, kw) {
                g.add_edge(&format!("e{edges}"), p, kw_nodes[ki], "mentions")
                    .unwrap();
                edges += 1;
            }
        }
    }
    let expr = parse_expr("?pub/mentions/?kw", g.consts_mut()).unwrap();
    // Counting workload: co-mentions (pub →kw→ pub, length-2 paths),
    // a heavier DP than the 1-edge incidence expression.
    let co_expr = parse_expr("mentions/mentions^-", g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);
    let ev = Evaluator::new(&view, &expr);

    // The graph query really is the Figure 1 recount.
    let pairs = ev.pairs();
    assert_eq!(
        pairs.len(),
        incidence,
        "pairs must equal the Figure 1 keyword–publication incidence"
    );
    let governed = ev.pairs_governed(&Governor::unlimited()).unwrap();
    assert!(!governed.is_partial());
    assert_eq!(
        governed.value, pairs,
        "unlimited governor changed the answer"
    );

    let k = 2;
    let exact = count_paths(&view, &co_expr, k).unwrap();

    let reps = 9;
    let mut rows = Vec::new();

    let t0 = best_secs(
        || {
            std::hint::black_box(ev.pairs().len());
        },
        reps,
    );
    let t1 = best_secs(
        || {
            std::hint::black_box(
                ev.pairs_governed(&Governor::unlimited())
                    .unwrap()
                    .value
                    .len(),
            );
        },
        reps,
    );
    rows.push(("pairs", t0, t1));

    let t0 = best_secs(
        || {
            std::hint::black_box(ev.matching_starts().len());
        },
        reps,
    );
    let t1 = best_secs(
        || {
            std::hint::black_box(
                ev.matching_starts_governed(&Governor::unlimited())
                    .unwrap()
                    .value
                    .len(),
            );
        },
        reps,
    );
    rows.push(("matching_starts", t0, t1));

    // A single count runs in single-digit milliseconds — batch it above
    // the timer noise floor.
    let batch = 10;
    let t0 = best_secs(
        || {
            for _ in 0..batch {
                std::hint::black_box(count_paths(&view, &co_expr, k).unwrap());
            }
        },
        reps,
    );
    let t1 = best_secs(
        || {
            for _ in 0..batch {
                let res = count_paths_governed(
                    &view,
                    &co_expr,
                    k,
                    &Budget::default(),
                    CancelToken::new(),
                )
                .unwrap();
                assert!(!res.degraded);
                std::hint::black_box(res);
            }
        },
        reps,
    );
    rows.push(("count_exact", t0, t1));

    println!("{{");
    println!(
        "  \"workload\": {{\"corpus\": \"figure1\", \"publications\": {}, \"nodes\": {}, \"mentions_edges\": {}, \"incidence_pairs\": {incidence}, \"comention_count_k{k}\": {exact}}},",
        corpus.len(),
        g.node_count(),
        edges
    );
    println!("  \"expr\": \"?pub/mentions/?kw\",");
    println!("  \"count_expr\": \"mentions/mentions^-\",");
    println!("  \"results\": [");
    let lines: Vec<String> = rows
        .iter()
        .map(|(op, t0, t1)| {
            format!(
                "    {{\"op\": \"{op}\", \"ungoverned_seconds\": {t0:.6}, \"governed_seconds\": {t1:.6}, \"overhead_pct\": {:.2}}}",
                overhead_pct(*t0, *t1)
            )
        })
        .collect();
    println!("{}", lines.join(",\n"));
    println!("  ]");
    println!("}}");
}
