//! Experiment `exp_fig2` — the running example of Figure 2 in all three
//! data models, with the paper's expressions (2) and (3) evaluated on
//! each model.

use kgq_bench::print_table;
use kgq_core::{eval_pairs, parse_expr, LabeledView, PropertyView, VectorView};
use kgq_graph::figures::{figure2_labeled, figure2_property, figure2_vector};
use kgq_graph::Sym;

fn main() {
    // (a) labeled graph
    let mut lg = figure2_labeled();
    println!(
        "Figure 2(a) labeled graph: {} nodes, {} edges",
        lg.node_count(),
        lg.edge_count()
    );
    let rows: Vec<Vec<String>> = lg
        .base()
        .nodes()
        .map(|n| {
            vec![
                lg.node_name(n).to_owned(),
                lg.label_name(lg.node_label(n)).to_owned(),
            ]
        })
        .collect();
    print_table("nodes", &["id", "λ"], &rows);

    let expr = parse_expr("?person/rides/?bus/rides^-/?infected", lg.consts_mut()).unwrap();
    let view = LabeledView::new(&lg);
    let pairs = eval_pairs(&view, &expr);
    let rows: Vec<Vec<String>> = pairs
        .iter()
        .map(|&(a, b)| vec![lg.node_name(a).to_owned(), lg.node_name(b).to_owned()])
        .collect();
    print_table(
        "expression (2): ?person/rides/?bus/rides^- /?infected",
        &["start", "end"],
        &rows,
    );

    // (b) property graph with the dated expression (3)
    let mut pg = figure2_property();
    let expr3 = parse_expr(
        "?person/{contact & [date='3/4/21']}/?infected",
        pg.labeled_mut().consts_mut(),
    )
    .unwrap();
    let pview = PropertyView::new(&pg);
    let pairs3 = eval_pairs(&pview, &expr3);
    let lgr = pg.labeled();
    let rows: Vec<Vec<String>> = pairs3
        .iter()
        .map(|&(a, b)| vec![lgr.node_name(a).to_owned(), lgr.node_name(b).to_owned()])
        .collect();
    print_table(
        "expression (3): ?person/(contact ∧ date=3/4/21)/?infected",
        &["start", "end"],
        &rows,
    );

    // (c) vector-labeled graph with the feature rewriting
    let vg = figure2_vector();
    println!(
        "\nFigure 2(c) vector-labeled graph: d = {}, rows = {:?}",
        vg.dim(),
        vg.feature_names()
    );
    let rows: Vec<Vec<String>> = vg
        .base()
        .nodes()
        .map(|n| {
            let mut row = vec![vg.node_name(n).to_owned()];
            for i in 0..vg.dim() {
                let f = vg.node_feature(n, i);
                row.push(if f == Sym::BOTTOM {
                    "⊥".to_owned()
                } else {
                    vg.consts().resolve(f).to_owned()
                });
            }
            row
        })
        .collect();
    let mut headers = vec!["id"];
    let names: Vec<&str> = vg.feature_names().iter().map(|s| s.as_str()).collect();
    headers.extend(names.iter());
    print_table("node feature vectors", &headers, &rows);

    // The date column is feature #3 (1-based) in the sorted schema
    // [label, age, date, name, zip]; the paper writes it as f5 in its own
    // ordering — the rewriting is the same.
    let date_idx = vg
        .feature_names()
        .iter()
        .position(|n| n == "date")
        .expect("date feature")
        + 1;
    let mut vg = vg;
    let rewritten =
        format!("?[#1=person]/{{[#1=contact] & [#{date_idx}='3/4/21']}}/?[#1=infected]");
    let expr_v = parse_expr(&rewritten, vg.consts_mut()).unwrap();
    let vview = VectorView::new(&vg);
    let pairs_v = eval_pairs(&vview, &expr_v);
    println!(
        "\nvector rewriting {rewritten}: {} answers (matches (3): {})",
        pairs_v.len(),
        pairs_v.len() == pairs3.len()
    );
    assert_eq!(pairs_v.len(), pairs3.len(), "models must agree");
    println!("\nall three models agree ✓");
}
