//! Experiment `exp_count` (E3) — `Count(G, r, k)`: exact DP vs naive
//! enumeration vs FPRAS, runtime scaling with `k`.
//!
//! The naive baseline explores all length-`k` walks (`Θ(d^k)`); the
//! exact counter pays determinization once and then `O(k · |det|)` per
//! query; the FPRAS stays polynomial without determinization. The table
//! shows the naive time exploding while exact/FPRAS stay flat — the
//! paper's motivation for §4.1.

use kgq_bench::{fmt_duration, print_table, timed};
use kgq_core::{approx_count, count_paths_naive, ApproxParams, ExactCounter, LabeledView};
use kgq_graph::generate::{contact_network, ContactParams};

fn main() {
    let pg = contact_network(&ContactParams {
        people: 24,
        buses: 3,
        addresses: 8,
        rides_per_person: 2,
        contacts_per_person: 2,
        infected_fraction: 0.2,
        seed: 42,
    });
    let mut g = pg.into_labeled();
    println!(
        "contact network: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    );
    let expr_text = "?infected/rides/?bus/rides^-/(?person/(lives+contact))*/?person";
    let expr = kgq_core::parse_expr(expr_text, g.consts_mut()).unwrap();
    println!("r = {expr_text}");
    let view = LabeledView::new(&g);

    let (counter, det_time) = timed(|| ExactCounter::new(&view, &expr));
    println!(
        "determinization: {} states, {}",
        counter.det().state_count(),
        fmt_duration(det_time)
    );

    let params = ApproxParams {
        epsilon: 0.25,
        seed: 7,
        ..ApproxParams::default()
    };
    let naive_cutoff = 6;
    let mut rows = Vec::new();
    for k in [2usize, 3, 4, 5, 6, 8, 10] {
        let (exact, t_exact) = timed(|| counter.count(k).expect("no overflow"));
        let (naive, t_naive) = if k <= naive_cutoff {
            let (n, t) = timed(|| count_paths_naive(&view, &expr, k));
            (Some(n), Some(t))
        } else {
            (None, None)
        };
        let (approx, t_approx) = timed(|| approx_count(&view, &expr, k, &params));
        if let Some(n) = naive {
            assert_eq!(n, exact, "naive and exact disagree at k={k}");
        }
        rows.push(vec![
            k.to_string(),
            exact.to_string(),
            naive.map_or("—".into(), |n| n.to_string()),
            format!("{approx:.1}"),
            fmt_duration(t_exact),
            t_naive.map_or("— (skipped)".into(), fmt_duration),
            fmt_duration(t_approx),
        ]);
    }
    print_table(
        "Count(G, r, k): counts and per-query times",
        &[
            "k",
            "exact",
            "naive",
            "FPRAS ε=0.25",
            "t_exact",
            "t_naive",
            "t_fpras",
        ],
        &rows,
    );
    println!(
        "\nnote: naive time grows with the number of length-k walks; exact \
         per-k time is flat after the one-time determinization; the FPRAS \
         never determinizes."
    );
}
