//! Experiment `exp_wl_gnn` (E10) — declarative vs procedural (§4.3).
//!
//! Three demonstrations of the logic ↔ GNN correspondence:
//!
//! 1. the hand-built AC-GNN for ψ(x) agrees with the FO² evaluator and
//!    the RPQ engine on every node of every tested graph;
//! 2. WL-equal nodes receive identical GNN features (the expressiveness
//!    upper bound of \[50, 71\]);
//! 3. the WL graph hash cannot separate C6 from 2×C3 — the classic
//!    limit, shared by every message-passing GNN.

use kgq_bench::print_table;
use kgq_core::{matching_starts, parse_expr, LabeledView};
use kgq_gnn::builder::{psi_network, PSI_VOCAB};
use kgq_gnn::{random_network, train, GnnExample, GnnTrainConfig};
use kgq_gnn::{wl2_graph_hash, wl_colors, wl_graph_hash, AcGnn};
use kgq_graph::generate::{contact_network, cycle_graph, ContactParams};
use kgq_graph::LabeledGraph;
use kgq_logic::{compile_fo2, eval_bounded, Var};

fn main() {
    // 1. Agreement GNN ≡ FO² ≡ RPQ.
    let mut rows = Vec::new();
    for seed in [1u64, 7, 21, 42] {
        let pg = contact_network(&ContactParams {
            people: 60,
            buses: 5,
            infected_fraction: 0.15,
            seed,
            ..ContactParams::default()
        });
        let mut g = pg.into_labeled();
        let gnn = psi_network();
        let feats = AcGnn::one_hot_features(&g, &PSI_VOCAB);
        let cls = gnn.classify(&g, &feats);

        let expr = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
        let psi = compile_fo2(&expr).unwrap();
        let from_logic: std::collections::HashSet<usize> = eval_bounded(&g, &psi, Var(0))
            .into_iter()
            .map(|n| n.index())
            .collect();
        let view = LabeledView::new(&g);
        let from_rpq: std::collections::HashSet<usize> = matching_starts(&view, &expr)
            .into_iter()
            .map(|n| n.index())
            .collect();
        let agree_gnn_logic = (0..g.node_count())
            .filter(|&i| cls[i] == from_logic.contains(&i))
            .count();
        assert_eq!(from_logic, from_rpq, "logic and RPQ must agree");
        rows.push(vec![
            format!("seed {seed}"),
            g.node_count().to_string(),
            from_logic.len().to_string(),
            format!("{}/{}", agree_gnn_logic, g.node_count()),
        ]);
        assert_eq!(agree_gnn_logic, g.node_count(), "GNN ≠ ψ on seed {seed}");
    }
    print_table(
        "ψ(x): hand-built AC-GNN vs FO² evaluator vs RPQ engine",
        &["graph", "nodes", "positives", "GNN agreement"],
        &rows,
    );

    // 2. WL bound: per WL class, GNN outputs constant.
    let pg = contact_network(&ContactParams {
        people: 50,
        seed: 3,
        ..ContactParams::default()
    });
    let g = pg.into_labeled();
    let gnn = psi_network();
    let feats = AcGnn::one_hot_features(&g, &PSI_VOCAB);
    let out = gnn.forward(&g, &feats);
    let wl = wl_colors(&g, gnn.depth());
    let mut violations = 0usize;
    for i in 0..g.node_count() {
        for j in (i + 1)..g.node_count() {
            if wl.colors[i] == wl.colors[j]
                && out[i]
                    .iter()
                    .zip(out[j].iter())
                    .any(|(a, b)| (a - b).abs() > 1e-9)
            {
                violations += 1;
            }
        }
    }
    println!(
        "\nWL bound: {} WL classes after {} rounds, {} violations of \
         'WL-equal ⇒ same GNN output' (must be 0)",
        wl.color_count, wl.rounds, violations
    );
    assert_eq!(violations, 0);

    // 3. The WL limit: C6 vs 2×C3.
    let c6 = cycle_graph(6, "v", "next");
    let mut two_c3 = LabeledGraph::new();
    let ids: Vec<_> = (0..6)
        .map(|i| two_c3.add_node(&format!("v{i}"), "v").unwrap())
        .collect();
    for (i, (a, b)) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        .iter()
        .enumerate()
    {
        two_c3
            .add_edge(&format!("e{i}"), ids[*a], ids[*b], "next")
            .unwrap();
    }
    let same = wl_graph_hash(&c6) == wl_graph_hash(&two_c3);
    println!(
        "WL limit: hash(C6) == hash(C3 ⊎ C3): {same} — 1-WL (and hence any \
         AC-GNN) cannot separate them"
    );
    assert!(same);
    let separated = wl2_graph_hash(&c6) != wl2_graph_hash(&two_c3);
    println!(
        "WL hierarchy: 2-WL separates them: {separated} — the higher-order \
         step the paper's citations [22, 50] describe"
    );
    assert!(separated);
    // 4. Learning (§2.3): a randomly initialized network with the same
    //    architecture recovers ψ from labeled examples and transfers to
    //    an unseen graph.
    let make = |seed: u64| {
        contact_network(&ContactParams {
            people: 30,
            buses: 3,
            infected_fraction: 0.2,
            seed,
            ..ContactParams::default()
        })
        .into_labeled()
    };
    let (train_graphs, test_graph) = ((make(1), make(2)), make(9));
    let reference = psi_network();
    let ex = |g: &kgq_graph::LabeledGraph| {
        let feats = AcGnn::one_hot_features(g, &PSI_VOCAB);
        let targets = reference.classify(g, &feats);
        (feats, targets)
    };
    let (f1, t1) = ex(&train_graphs.0);
    let (f2, t2) = ex(&train_graphs.1);
    let (f3, t3) = ex(&test_graph);
    let config = GnnTrainConfig {
        epochs: 600,
        ..GnnTrainConfig::default()
    };
    let mut learned = random_network(3, &["rides"], &config);
    let losses = train(
        &mut learned,
        &[
            GnnExample {
                graph: &train_graphs.0,
                features: f1,
                targets: t1,
            },
            GnnExample {
                graph: &train_graphs.1,
                features: f2,
                targets: t2,
            },
        ],
        &config,
    );
    let predicted = learned.classify(&test_graph, &f3);
    let correct = predicted
        .iter()
        .zip(t3.iter())
        .filter(|(p, t)| p == t)
        .count();
    println!(
        "\nlearned GNN (random init, {} epochs): BCE {:.3} → {:.3}; held-out \
         accuracy {}/{} on an unseen graph",
        config.epochs,
        losses[0],
        losses.last().unwrap(),
        correct,
        t3.len()
    );
    assert!(correct as f64 / t3.len() as f64 >= 0.8);

    println!("\nall §4.3 correspondence checks hold ✓");
}
