//! Experiment `exp_parallel` — multi-source `pairs()` speedup vs thread
//! count on a ~100k-edge Barabási–Albert graph, emitted as JSON.
//!
//! The parallel scan splits the source-node range into contiguous
//! per-thread chunks and concatenates results in index order, so the
//! output is identical at every thread count (asserted below). Speedups
//! are relative to the sequential reference implementation and bounded
//! by the machine's core count — on a single-core machine every ratio
//! is honestly ~1.0.

use kgq_bench::timed;
use kgq_core::parallel::set_threads;
use kgq_core::{parse_expr, Evaluator, LabeledView};
use kgq_graph::generate::barabasi_albert;
use std::time::Duration;

fn median_secs<F: FnMut() -> usize>(mut f: F, reps: usize) -> f64 {
    let mut times: Vec<Duration> = (0..reps).map(|_| timed(&mut f).1).collect();
    times.sort();
    times[times.len() / 2].as_secs_f64()
}

fn main() {
    let mut g = barabasi_albert(25_004, 4, "v", "link", 7);
    let expr = parse_expr("link/link", g.consts_mut()).unwrap();
    let view = LabeledView::new(&g);
    let ev = Evaluator::new(&view, &expr);
    let reference = ev.pairs_sequential();
    let reps = 3;
    let t_seq = median_secs(|| ev.pairs_sequential().len(), reps);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut entries = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        set_threads(threads);
        assert_eq!(ev.pairs(), reference, "thread count changed the answer");
        let t_par = median_secs(|| ev.pairs().len(), reps);
        entries.push(format!(
            "    {{\"threads\": {threads}, \"seconds\": {t_par:.6}, \"speedup\": {:.3}}}",
            t_seq / t_par
        ));
    }
    set_threads(1);

    println!("{{");
    println!(
        "  \"graph\": {{\"model\": \"barabasi_albert\", \"nodes\": {}, \"edges\": {}}},",
        g.node_count(),
        g.edge_count()
    );
    println!("  \"expr\": \"link/link\",");
    println!("  \"pairs\": {},", reference.len());
    println!("  \"machine_cores\": {cores},");
    println!("  \"sequential_seconds\": {t_seq:.6},");
    println!("  \"results\": [");
    println!("{}", entries.join(",\n"));
    println!("  ]");
    println!("}}");
}
