//! Link-prediction evaluation with the standard filtered ranking
//! protocol: for each test triple `(h, r, t)`, rank the true tail among
//! all entities (excluding other known-true tails) and aggregate mean
//! rank, mean reciprocal rank and hits@k.

use crate::model::TransE;
use std::collections::HashMap;

/// Aggregated link-prediction metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkPredictionReport {
    /// Mean rank of the true tail (1 is perfect).
    pub mean_rank: f64,
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Fraction of test triples whose true tail ranks ≤ 1 / ≤ 3 / ≤ 10.
    pub hits_at_1: f64,
    /// Hits@3.
    pub hits_at_3: f64,
    /// Hits@10.
    pub hits_at_10: f64,
    /// Number of test triples evaluated.
    pub tested: usize,
}

/// Evaluates tail prediction for `test` triples, filtering the other
/// known-true tails in `known` (train ∪ test).
pub fn evaluate(
    model: &TransE,
    test: &[(usize, usize, usize)],
    known: &[(usize, usize, usize)],
) -> LinkPredictionReport {
    // (h, r) → all true tails, for filtering.
    let mut true_tails: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for &(h, r, t) in known {
        true_tails.entry((h, r)).or_default().push(t);
    }
    let mut ranks = Vec::with_capacity(test.len());
    for &(h, r, t) in test {
        let filter: Vec<usize> = true_tails
            .get(&(h, r))
            .map(|v| v.iter().copied().filter(|&x| x != t).collect())
            .unwrap_or_default();
        ranks.push(model.tail_rank(h, r, t, &filter));
    }
    let n = ranks.len().max(1) as f64;
    LinkPredictionReport {
        mean_rank: ranks.iter().sum::<usize>() as f64 / n,
        mrr: ranks.iter().map(|&r| 1.0 / r as f64).sum::<f64>() / n,
        hits_at_1: ranks.iter().filter(|&&r| r <= 1).count() as f64 / n,
        hits_at_3: ranks.iter().filter(|&&r| r <= 3).count() as f64 / n,
        hits_at_10: ranks.iter().filter(|&&r| r <= 10).count() as f64 / n,
        tested: ranks.len(),
    }
}

/// Mean rank a uniformly random scorer would achieve: `(candidates+1)/2`
/// where candidates excludes the filtered entities.
pub fn random_baseline_mean_rank(entity_count: usize, avg_filtered: f64) -> f64 {
    ((entity_count as f64 - avg_filtered) + 1.0) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_triples, TrainConfig};

    /// Two-type KG: persons work in cities, cities sit in countries.
    fn kg() -> (Vec<(usize, usize, usize)>, usize, usize) {
        // 12 persons (0..12), 4 cities (12..16), 2 countries (16..18)
        let mut t = Vec::new();
        for p in 0..12usize {
            t.push((p, 0, 12 + p % 4)); // worksIn
        }
        for c in 0..4usize {
            t.push((12 + c, 1, 16 + c % 2)); // cityIn
        }
        (t, 18, 2)
    }

    #[test]
    fn trained_model_beats_random_baseline() {
        let (all, ne, nr) = kg();
        // Hold out one worksIn triple per city.
        let test: Vec<_> = all[..4].to_vec();
        let train: Vec<_> = all[4..].to_vec();
        let (model, _) = train_triples(
            &train,
            ne,
            nr,
            &TrainConfig {
                epochs: 250,
                ..TrainConfig::default()
            },
        );
        let report = evaluate(&model, &test, &all);
        let random = random_baseline_mean_rank(ne, 2.0);
        assert!(
            report.mean_rank < random,
            "mean rank {} not better than random {}",
            report.mean_rank,
            random
        );
        assert!(report.hits_at_10 > 0.5);
        assert_eq!(report.tested, 4);
    }

    #[test]
    fn perfect_model_gets_rank_one() {
        // Hand-build a model where h + r = t exactly.
        use crate::model::TransE;
        let model = TransE::new(2, vec![0.0, 0.0, 1.0, 0.0, 0.5, 0.9], vec![1.0, 0.0]);
        let report = evaluate(&model, &[(0, 0, 1)], &[(0, 0, 1)]);
        assert_eq!(report.mean_rank, 1.0);
        assert_eq!(report.mrr, 1.0);
        assert_eq!(report.hits_at_1, 1.0);
    }

    #[test]
    fn filtering_removes_competing_true_tails() {
        use crate::model::TransE;
        // e1 and e2 both "true" tails for (e0, r0); e2 scores better.
        let model = TransE::new(1, vec![0.0, 0.9, 1.0], vec![1.0]);
        let known = vec![(0, 0, 1), (0, 0, 2)];
        // Unfiltered, e1 ranks 2 (behind the closer e2)…
        assert_eq!(model.tail_rank(0, 0, 1, &[]), 2);
        // …but the filtered protocol removes the other true tail e2.
        let report = evaluate(&model, &[(0, 0, 1)], &known);
        assert_eq!(report.mean_rank, 1.0);
    }

    #[test]
    fn empty_test_set_is_safe() {
        let (all, ne, nr) = kg();
        let (model, _) = train_triples(
            &all,
            ne,
            nr,
            &TrainConfig {
                epochs: 5,
                ..TrainConfig::default()
            },
        );
        let report = evaluate(&model, &[], &all);
        assert_eq!(report.tested, 0);
        assert_eq!(report.mean_rank, 0.0);
    }
}
