//! # kgq-embed — knowledge-graph embeddings
//!
//! Section 2.3 of the reproduced paper: knowledge graphs produce new
//! knowledge by "learning, through new data and learning algorithms",
//! highlighting "the rapid development of knowledge graph embeddings
//! \[19, 21\], and its use in the refinement and completion of knowledge
//! graphs \[36, 43, 52, 56\]".
//!
//! This crate implements TransE (Bordes et al. \[19\]) from scratch:
//! entities and relations are embedded in `ℝ^d` so that `h + r ≈ t` for
//! true triples, trained by margin-ranking SGD with negative sampling.
//!
//! * [`model::TransE`] — the trained model: scoring, link prediction
//!   (`predict_tails` / `predict_heads`), completion suggestions;
//! * [`train`] — the training loop over a [`kgq_rdf::TripleStore`] or a
//!   raw triple list;
//! * [`eval`] — ranking-based link-prediction evaluation (mean rank,
//!   mean reciprocal rank, hits@k) with the standard *filtered* setting.

// Several hot loops index multiple parallel arrays at once; the
// iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
//! ```
//! use kgq_embed::{train_store, TrainConfig};
//! use kgq_rdf::TripleStore;
//!
//! let mut st = TripleStore::new();
//! st.insert_strs("paris", "locatedIn", "france");
//! st.insert_strs("lyon", "locatedIn", "france");
//! let report = train_store(&st, &TrainConfig { dim: 8, epochs: 20, ..TrainConfig::default() });
//! let paris = report.entity_id("paris").unwrap();
//! let located = report.relation_id("locatedIn").unwrap();
//! let top = report.model.predict_tails(paris, located, 1);
//! assert_eq!(top.len(), 1);
//! ```

pub mod eval;
pub mod model;
pub mod train;

pub use eval::{evaluate, LinkPredictionReport};
pub use model::TransE;
pub use train::{train_store, train_triples, TrainConfig, TrainReport};
