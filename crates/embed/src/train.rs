//! TransE training: margin-ranking SGD with uniform negative sampling
//! (Bordes et al. \[19\], "unif" variant).

use crate::model::TransE;
use kgq_rdf::TripleStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Training hyperparameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Number of passes over the training triples.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Margin γ of the ranking loss.
    pub margin: f64,
    /// RNG seed (training is deterministic per seed).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            dim: 24,
            epochs: 120,
            learning_rate: 0.02,
            margin: 1.0,
            seed: 7,
        }
    }
}

/// Outcome of training: the model, the vocabulary mapping, and the loss
/// trajectory.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// The trained model (entity/relation ids are indices into the
    /// vocabulary vectors below).
    pub model: TransE,
    /// Entity id → term string.
    pub entities: Vec<String>,
    /// Relation id → term string.
    pub relations: Vec<String>,
    /// Mean margin loss per epoch.
    pub loss_per_epoch: Vec<f64>,
    /// The training triples as id triples.
    pub triples: Vec<(usize, usize, usize)>,
}

impl TrainReport {
    /// Looks up an entity id by its term string.
    pub fn entity_id(&self, term: &str) -> Option<usize> {
        self.entities.iter().position(|e| e == term)
    }

    /// Looks up a relation id by its term string.
    pub fn relation_id(&self, term: &str) -> Option<usize> {
        self.relations.iter().position(|r| r == term)
    }
}

/// Trains on all triples of a store (predicates become relations,
/// subjects/objects entities).
pub fn train_store(st: &TripleStore, config: &TrainConfig) -> TrainReport {
    let mut entities: Vec<String> = Vec::new();
    let mut relations: Vec<String> = Vec::new();
    let mut e_ids: HashMap<String, usize> = HashMap::new();
    let mut r_ids: HashMap<String, usize> = HashMap::new();
    let mut triples = Vec::with_capacity(st.len());
    for t in st.iter() {
        let h = *e_ids
            .entry(st.term_str(t.s).to_owned())
            .or_insert_with_key(|k| {
                entities.push(k.clone());
                entities.len() - 1
            });
        let r = *r_ids
            .entry(st.term_str(t.p).to_owned())
            .or_insert_with_key(|k| {
                relations.push(k.clone());
                relations.len() - 1
            });
        let tl = *e_ids
            .entry(st.term_str(t.o).to_owned())
            .or_insert_with_key(|k| {
                entities.push(k.clone());
                entities.len() - 1
            });
        triples.push((h, r, tl));
    }
    let (model, loss) = train_ids(&triples, entities.len(), relations.len(), config);
    TrainReport {
        model,
        entities,
        relations,
        loss_per_epoch: loss,
        triples,
    }
}

/// Trains directly on id triples over `n_entities` / `n_relations`.
pub fn train_triples(
    triples: &[(usize, usize, usize)],
    n_entities: usize,
    n_relations: usize,
    config: &TrainConfig,
) -> (TransE, Vec<f64>) {
    train_ids(triples, n_entities, n_relations, config)
}

fn train_ids(
    triples: &[(usize, usize, usize)],
    n_entities: usize,
    n_relations: usize,
    config: &TrainConfig,
) -> (TransE, Vec<f64>) {
    assert!(n_entities > 1, "need at least two entities");
    assert!(n_relations > 0 && !triples.is_empty());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let dim = config.dim;
    let bound = 6.0 / (dim as f64).sqrt();
    let init = |rng: &mut StdRng, count: usize| -> Vec<f64> {
        (0..count * dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect()
    };
    let mut model = TransE::new(dim, init(&mut rng, n_entities), init(&mut rng, n_relations));
    model.normalize_entities();

    let known: HashSet<(usize, usize, usize)> = triples.iter().copied().collect();
    let mut order: Vec<usize> = (0..triples.len()).collect();
    let mut losses = Vec::with_capacity(config.epochs);
    for _epoch in 0..config.epochs {
        // Deterministic shuffle.
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut epoch_loss = 0.0;
        for &i in &order {
            let (h, r, t) = triples[i];
            // Corrupt head or tail, avoiding known triples.
            let corrupt_tail = rng.gen_bool(0.5);
            let (ch, ct) = loop {
                let cand = rng.gen_range(0..n_entities);
                let (ch, ct) = if corrupt_tail { (h, cand) } else { (cand, t) };
                if !known.contains(&(ch, r, ct)) {
                    break (ch, ct);
                }
            };
            let pos = model.score(h, r, t);
            let neg = model.score(ch, r, ct);
            let loss = (config.margin + pos - neg).max(0.0);
            epoch_loss += loss;
            if loss <= 0.0 {
                continue;
            }
            // Gradient of ‖h + r − t‖₂ w.r.t. its arguments.
            let lr = config.learning_rate;
            let step =
                |model: &mut TransE, h: usize, r: usize, t: usize, sign: f64, rng_den: f64| {
                    let mut grad = vec![0.0; dim];
                    {
                        let (hv, rv, tv) = (model.entity(h), model.relation(r), model.entity(t));
                        let norm = {
                            let mut s = 0.0;
                            for i in 0..dim {
                                let d = hv[i] + rv[i] - tv[i];
                                s += d * d;
                            }
                            s.sqrt().max(rng_den)
                        };
                        for i in 0..dim {
                            grad[i] = (hv[i] + rv[i] - tv[i]) / norm;
                        }
                    }
                    for i in 0..dim {
                        model.entity_mut(h)[i] -= sign * lr * grad[i];
                        model.relation_mut(r)[i] -= sign * lr * grad[i];
                        model.entity_mut(t)[i] += sign * lr * grad[i];
                    }
                };
            // Descend on the positive, ascend on the negative.
            step(&mut model, h, r, t, 1.0, 1e-9);
            step(&mut model, ch, r, ct, -1.0, 1e-9);
        }
        model.normalize_entities();
        losses.push(epoch_loss / triples.len() as f64);
    }
    (model, losses)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A structured toy KG: a ring of cities each `locatedIn` one of two
    /// countries, each country `partOf` one continent.
    fn toy_triples() -> (Vec<(usize, usize, usize)>, usize, usize) {
        // entities: 0..8 cities, 8..10 countries, 10 continent
        let mut t = Vec::new();
        for city in 0..8usize {
            let country = 8 + city % 2;
            t.push((city, 0, country)); // locatedIn
        }
        t.push((8, 1, 10)); // partOf
        t.push((9, 1, 10));
        (t, 11, 2)
    }

    #[test]
    fn loss_decreases() {
        let (triples, ne, nr) = toy_triples();
        let cfg = TrainConfig {
            epochs: 80,
            ..TrainConfig::default()
        };
        let (_, losses) = train_triples(&triples, ne, nr, &cfg);
        let early: f64 = losses[..10].iter().sum::<f64>() / 10.0;
        let late: f64 = losses[losses.len() - 10..].iter().sum::<f64>() / 10.0;
        assert!(late < early * 0.7, "early {early:.3} late {late:.3}");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (triples, ne, nr) = toy_triples();
        let cfg = TrainConfig::default();
        let (m1, l1) = train_triples(&triples, ne, nr, &cfg);
        let (m2, l2) = train_triples(&triples, ne, nr, &cfg);
        assert_eq!(l1, l2);
        assert_eq!(m1.entity(3), m2.entity(3));
    }

    #[test]
    fn learned_model_ranks_true_tails_well() {
        let (triples, ne, nr) = toy_triples();
        let cfg = TrainConfig {
            epochs: 200,
            ..TrainConfig::default()
        };
        let (model, _) = train_triples(&triples, ne, nr, &cfg);
        // For every city, the true country should rank in the top 3 of
        // 11 entities (random would average rank ~5.5).
        let mut total_rank = 0usize;
        for &(h, r, t) in &triples[..8] {
            total_rank += model.tail_rank(h, r, t, &[]);
        }
        let mean_rank = total_rank as f64 / 8.0;
        assert!(mean_rank <= 3.0, "mean rank {mean_rank}");
    }

    #[test]
    fn train_from_store_builds_vocabulary() {
        let mut st = TripleStore::new();
        st.insert_strs("paris", "locatedIn", "france");
        st.insert_strs("lyon", "locatedIn", "france");
        st.insert_strs("berlin", "locatedIn", "germany");
        let report = train_store(
            &st,
            &TrainConfig {
                dim: 8,
                epochs: 30,
                ..TrainConfig::default()
            },
        );
        assert_eq!(report.relations, vec!["locatedIn".to_owned()]);
        assert_eq!(report.model.entity_count(), 5);
        assert!(report.entity_id("paris").is_some());
        assert_eq!(report.triples.len(), 3);
        assert_eq!(report.loss_per_epoch.len(), 30);
    }
}
