//! The TransE embedding model: `score(h, r, t) = ‖h + r − t‖` (lower is
//! more plausible). Entities and relations are dense ids into flattened
//! vector tables; the vocabulary mapping to **Const** terms lives in
//! [`crate::train`].

/// A trained TransE model.
#[derive(Clone, Debug)]
pub struct TransE {
    dim: usize,
    entities: Vec<f64>,
    relations: Vec<f64>,
}

impl TransE {
    /// Creates a model with the given (already initialized) tables.
    pub(crate) fn new(dim: usize, entities: Vec<f64>, relations: Vec<f64>) -> TransE {
        debug_assert_eq!(entities.len() % dim, 0);
        debug_assert_eq!(relations.len() % dim, 0);
        TransE {
            dim,
            entities,
            relations,
        }
    }

    /// Embedding dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of entities.
    pub fn entity_count(&self) -> usize {
        self.entities.len() / self.dim
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len() / self.dim
    }

    /// The embedding vector of entity `e`.
    pub fn entity(&self, e: usize) -> &[f64] {
        &self.entities[e * self.dim..(e + 1) * self.dim]
    }

    /// The embedding vector of relation `r`.
    pub fn relation(&self, r: usize) -> &[f64] {
        &self.relations[r * self.dim..(r + 1) * self.dim]
    }

    pub(crate) fn entity_mut(&mut self, e: usize) -> &mut [f64] {
        &mut self.entities[e * self.dim..(e + 1) * self.dim]
    }

    pub(crate) fn relation_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.relations[r * self.dim..(r + 1) * self.dim]
    }

    /// `‖h + r − t‖₂` — the implausibility score (lower = more likely).
    pub fn score(&self, h: usize, r: usize, t: usize) -> f64 {
        let (hv, rv, tv) = (self.entity(h), self.relation(r), self.entity(t));
        let mut s = 0.0;
        for i in 0..self.dim {
            let d = hv[i] + rv[i] - tv[i];
            s += d * d;
        }
        s.sqrt()
    }

    /// Renormalizes every entity embedding to the unit sphere (the
    /// constraint TransE imposes after each epoch).
    pub(crate) fn normalize_entities(&mut self) {
        let dim = self.dim;
        for e in 0..self.entity_count() {
            let v = &mut self.entities[e * dim..(e + 1) * dim];
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-12 {
                v.iter_mut().for_each(|x| *x /= norm);
            }
        }
    }

    /// Ranks all entities as tails for `(h, r, ?)`, best first.
    pub fn predict_tails(&self, h: usize, r: usize, top_k: usize) -> Vec<(usize, f64)> {
        let mut scored: Vec<(usize, f64)> = (0..self.entity_count())
            .map(|t| (t, self.score(h, r, t)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN scores"));
        scored.truncate(top_k);
        scored
    }

    /// Ranks all entities as heads for `(?, r, t)`, best first.
    pub fn predict_heads(&self, r: usize, t: usize, top_k: usize) -> Vec<(usize, f64)> {
        let mut scored: Vec<(usize, f64)> = (0..self.entity_count())
            .map(|h| (h, self.score(h, r, t)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN scores"));
        scored.truncate(top_k);
        scored
    }

    /// Rank (1-based) of `t` among all entities as the tail of `(h, r, ?)`,
    /// excluding the entities in `filter_out` (the "filtered" protocol).
    pub fn tail_rank(&self, h: usize, r: usize, t: usize, filter_out: &[usize]) -> usize {
        let target = self.score(h, r, t);
        let mut rank = 1;
        for cand in 0..self.entity_count() {
            if cand == t || filter_out.contains(&cand) {
                continue;
            }
            if self.score(h, r, cand) < target {
                rank += 1;
            }
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TransE {
        // 2 relations, 3 entities in 2D, hand-placed: e0 + r0 = e1.
        TransE::new(
            2,
            vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0, 1.0],
        )
    }

    #[test]
    fn score_is_translation_distance() {
        let m = toy();
        assert!(m.score(0, 0, 1) < 1e-12); // 0 + r0 == e1
        assert!((m.score(0, 0, 2) - (2.0f64).sqrt()).abs() < 1e-12);
        assert!(m.score(0, 1, 2) < 1e-12); // 0 + r1 == e2
    }

    #[test]
    fn prediction_ranks_by_score() {
        let m = toy();
        let tails = m.predict_tails(0, 0, 3);
        assert_eq!(tails[0].0, 1);
        let heads = m.predict_heads(1, 2, 3);
        assert_eq!(heads[0].0, 0);
    }

    #[test]
    fn rank_with_filtering() {
        let m = toy();
        // Without filtering, e1 is rank 1 for (e0, r0, ?).
        assert_eq!(m.tail_rank(0, 0, 1, &[]), 1);
        // e2's rank for (e0, r1, ?) is 1; filtering e1 cannot hurt it.
        assert_eq!(m.tail_rank(0, 1, 2, &[1]), 1);
    }

    #[test]
    fn normalization_puts_entities_on_unit_sphere() {
        let mut m = TransE::new(2, vec![3.0, 4.0, 0.0, 0.0], vec![1.0, 0.0]);
        m.normalize_entities();
        let v = m.entity(0);
        assert!((v[0] - 0.6).abs() < 1e-12);
        assert!((v[1] - 0.8).abs() < 1e-12);
        // The zero vector stays zero rather than dividing by ~0.
        assert_eq!(m.entity(1), &[0.0, 0.0]);
    }
}
