//! Counting keywords in titles and checking the Figure 1 claims.

use crate::corpus::{Publication, KEYWORDS, YEARS};

/// Per-keyword yearly counts — the data behind Figure 1.
#[derive(Clone, Debug)]
pub struct Figure1 {
    /// Years in order (2010–2020).
    pub years: Vec<u32>,
    /// `series[i]` corresponds to [`KEYWORDS`]`[i]`, one count per year.
    pub series: Vec<Vec<usize>>,
}

/// Case-insensitive "keyword occurs in title", the paper's methodology.
pub fn title_contains(title: &str, keyword: &str) -> bool {
    title.to_lowercase().contains(&keyword.to_lowercase())
}

/// Counts titles containing each keyword, per year.
pub fn figure1_series(corpus: &[Publication]) -> Figure1 {
    let years: Vec<u32> = YEARS.collect();
    let mut series = vec![vec![0usize; years.len()]; KEYWORDS.len()];
    for p in corpus {
        if let Some(yi) = years.iter().position(|&y| y == p.year) {
            for (ki, kw) in KEYWORDS.iter().enumerate() {
                if title_contains(&p.title, kw) {
                    series[ki][yi] += 1;
                }
            }
        }
    }
    Figure1 { years, series }
}

/// Among knowledge-graph titles of `year`, the fraction also mentioning
/// RDF or SPARQL — the paper's 70% (2015) → 14% (2020) statistic.
pub fn overlap_fraction(corpus: &[Publication], year: u32) -> f64 {
    let kg: Vec<&Publication> = corpus
        .iter()
        .filter(|p| p.year == year && title_contains(&p.title, "knowledge graph"))
        .collect();
    if kg.is_empty() {
        return 0.0;
    }
    let both = kg
        .iter()
        .filter(|p| title_contains(&p.title, "RDF") || title_contains(&p.title, "SPARQL"))
        .count();
    both as f64 / kg.len() as f64
}

/// Mechanically verifies every Figure 1 claim quoted in the paper's
/// introduction. Returns the list of violated claims (empty = all hold).
pub fn check_figure1_claims(corpus: &[Publication]) -> Vec<String> {
    let fig = figure1_series(corpus);
    let year_idx = |y: u32| fig.years.iter().position(|&x| x == y).expect("year");
    let kw_idx = |k: &str| KEYWORDS.iter().position(|&x| x == k).expect("keyword");
    let count = |k: &str, y: u32| fig.series[kw_idx(k)][year_idx(y)];
    let mut violations = Vec::new();

    // 1. KG growth starting 2013: strictly more every year 2013→2020 and
    //    at least 10x from 2012 to 2020.
    let mut growing = true;
    for y in 2013..2020 {
        if count("knowledge graph", y + 1) <= count("knowledge graph", y) {
            growing = false;
        }
    }
    if !growing || count("knowledge graph", 2020) < 10 * count("knowledge graph", 2012).max(1) {
        violations.push("knowledge-graph growth from 2013 not observed".to_owned());
    }

    // 2. KG "dominates" by 2020: largest series that year.
    let kg2020 = count("knowledge graph", 2020);
    for k in KEYWORDS.iter().filter(|&&k| k != "knowledge graph") {
        if count(k, 2020) >= kg2020 {
            violations.push(format!("{k} not dominated by knowledge graph in 2020"));
        }
    }

    // 3. RDF and SPARQL stable: within ±35% of their 2010 level all years.
    for k in ["RDF", "SPARQL"] {
        let base = count(k, 2010) as f64;
        for &y in &fig.years {
            let c = count(k, y) as f64;
            if (c - base).abs() > 0.35 * base {
                violations.push(format!("{k} not stable in {y}"));
            }
        }
    }

    // 4. Graph database comparatively small: below RDF every year.
    for &y in &fig.years {
        if count("graph database", y) >= count("RDF", y) {
            violations.push(format!("graph database not comparatively small in {y}"));
        }
    }

    // 5. Property graph negligible: under 20 per year.
    for &y in &fig.years {
        if count("property graph", y) >= 20 {
            violations.push(format!("property graph not negligible in {y}"));
        }
    }

    // 6. Overlap 70% in 2015, 14% in 2020 (±10 points).
    let o15 = overlap_fraction(corpus, 2015);
    if (o15 - 0.70).abs() > 0.12 {
        violations.push(format!("2015 RDF/SPARQL overlap {o15:.2} not ≈ 0.70"));
    }
    let o20 = overlap_fraction(corpus, 2020);
    if (o20 - 0.14).abs() > 0.12 {
        violations.push(format!("2020 RDF/SPARQL overlap {o20:.2} not ≈ 0.14"));
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, CorpusParams};

    #[test]
    fn title_matching_is_case_insensitive() {
        assert!(title_contains(
            "Scalable Knowledge Graph Completion",
            "knowledge graph"
        ));
        assert!(title_contains("RDF stores revisited", "rdf"));
        assert!(!title_contains("Graph Neural Networks", "knowledge graph"));
    }

    #[test]
    fn default_corpus_satisfies_all_claims() {
        let corpus = generate_corpus(&CorpusParams::default());
        let violations = check_figure1_claims(&corpus);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn claims_hold_across_seeds() {
        for seed in [1u64, 2, 3] {
            let corpus = generate_corpus(&CorpusParams {
                seed,
                ..CorpusParams::default()
            });
            let violations = check_figure1_claims(&corpus);
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    #[test]
    fn series_has_five_keywords_and_eleven_years() {
        let corpus = generate_corpus(&CorpusParams::default());
        let fig = figure1_series(&corpus);
        assert_eq!(fig.series.len(), 5);
        assert_eq!(fig.years.len(), 11);
    }

    #[test]
    fn background_titles_do_not_pollute_counts() {
        let corpus = generate_corpus(&CorpusParams {
            scale: 0.0,
            background_per_year: 100,
            seed: 5,
        });
        let fig = figure1_series(&corpus);
        for s in &fig.series {
            assert!(s.iter().all(|&c| c == 0));
        }
    }

    #[test]
    fn a_broken_corpus_is_detected() {
        // A corpus where KG never grows must violate claim 1.
        let mut corpus = Vec::new();
        for year in crate::corpus::YEARS {
            corpus.push(Publication {
                year,
                title: "A Knowledge Graph Paper".to_owned(),
            });
            corpus.push(Publication {
                year,
                title: "An RDF Paper".to_owned(),
            });
        }
        let violations = check_figure1_claims(&corpus);
        assert!(!violations.is_empty());
    }
}
