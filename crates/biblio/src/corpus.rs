//! Synthetic DBLP-like corpus generation.
//!
//! Every publication is a `(year, title)` pair. Titles are assembled
//! from templates around zero or more tracked keywords; the expected
//! number of titles per (keyword, year) follows intensity curves
//! calibrated to the paper's narrative (see crate docs). Knowledge-graph
//! titles additionally mention RDF or SPARQL with a year-dependent
//! probability interpolating from 70% (2015) down to 14% (2020) — the
//! overlap statistic the paper highlights.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The five tracked keywords, exactly as in the paper.
pub const KEYWORDS: [&str; 5] = [
    "knowledge graph",
    "RDF",
    "SPARQL",
    "graph database",
    "property graph",
];

/// The studied year range (inclusive).
pub const YEARS: std::ops::RangeInclusive<u32> = 2010..=2020;

/// One simulated publication.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Publication {
    /// Publication year.
    pub year: u32,
    /// Title text.
    pub title: String,
}

/// Corpus generation parameters.
#[derive(Clone, Debug)]
pub struct CorpusParams {
    /// Global scale factor on all intensities (1.0 ≈ DBLP-like volumes).
    pub scale: f64,
    /// Number of keyword-free background papers per year.
    pub background_per_year: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusParams {
    fn default() -> Self {
        CorpusParams {
            scale: 1.0,
            background_per_year: 500,
            seed: 42,
        }
    }
}

/// Expected number of titles containing each keyword, per year.
/// Calibrated to the qualitative shape of the paper's Figure 1.
fn intensity(keyword: &str, year: u32) -> f64 {
    let t = (year - 2010) as f64;
    match keyword {
        // Flat and tiny before 2013, then rapid growth after the Google
        // announcement (mid-2012), dominating by 2020.
        "knowledge graph" => {
            if year < 2013 {
                8.0
            } else {
                let s = (year - 2013) as f64;
                30.0 * (1.5f64).powf(s)
            }
        }
        // Stable with a mild late decline.
        "RDF" => 230.0 - 4.0 * t,
        "SPARQL" => 110.0 - 2.0 * t,
        // Comparatively small, no significant growth.
        "graph database" => 35.0 + 0.8 * t,
        // Negligible.
        "property graph" => 4.0 + 0.3 * t,
        _ => 0.0,
    }
}

/// Probability that a knowledge-graph paper in `year` is "about
/// RDF/SPARQL" (mentions one of them in the title): 70% in 2015 → 14%
/// in 2020, linearly interpolated, higher before 2015.
fn kg_rdf_overlap(year: u32) -> f64 {
    match year {
        y if y <= 2015 => 0.70 + 0.02 * (2015 - y) as f64,
        y if y >= 2020 => 0.14,
        y => {
            let f = (y - 2015) as f64 / 5.0;
            0.70 + f * (0.14 - 0.70)
        }
    }
}

const ADJECTIVES: [&str; 8] = [
    "Efficient",
    "Scalable",
    "Distributed",
    "Incremental",
    "Adaptive",
    "Declarative",
    "Parallel",
    "Robust",
];
const TASKS: [&str; 8] = [
    "Query Answering",
    "Entity Resolution",
    "Data Integration",
    "Reasoning",
    "Embedding Learning",
    "Schema Discovery",
    "Path Enumeration",
    "Completion",
];
const DOMAINS: [&str; 6] = [
    "for the Life Sciences",
    "at Web Scale",
    "in the Enterprise",
    "over Streaming Data",
    "for Question Answering",
    "with Provenance",
];
const BACKGROUND: [&str; 6] = [
    "Cache-Aware Sorting on Modern Hardware",
    "A Survey of Stream Processing Engines",
    "Deep Learning for Program Synthesis",
    "Consensus in Asynchronous Networks",
    "Index Structures for Time Series",
    "Compilers for Quantum Circuits",
];

fn sample_poisson(rng: &mut StdRng, mean: f64) -> usize {
    // Knuth's method is fine for the small means used here.
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    if l > 0.0 {
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= rng.gen_range(0.0..1.0);
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
    // Large mean: normal approximation.
    let u: f64 = rng.gen_range(0.0..1.0);
    let v: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
    let z = (-2.0 * v.ln()).sqrt() * (2.0 * std::f64::consts::PI * u).cos();
    (mean + z * mean.sqrt()).round().max(0.0) as usize
}

fn make_title(rng: &mut StdRng, keyword: &str, extra: Option<&str>) -> String {
    let adj = ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())];
    let task = TASKS[rng.gen_range(0..TASKS.len())];
    let dom = DOMAINS[rng.gen_range(0..DOMAINS.len())];
    // Capitalize the keyword as a title word (matching is
    // case-insensitive in the analyzer, like the paper's string search).
    match extra {
        Some(e) => format!("{adj} {task} over {e} {keyword} Systems {dom}"),
        None => format!("{adj} {keyword} {task} {dom}"),
    }
}

/// Generates the corpus. Deterministic for a fixed seed.
pub fn generate_corpus(params: &CorpusParams) -> Vec<Publication> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut pubs = Vec::new();
    for year in YEARS {
        for keyword in KEYWORDS {
            let mean = intensity(keyword, year) * params.scale;
            let n = sample_poisson(&mut rng, mean);
            for _ in 0..n {
                if keyword == "knowledge graph" && rng.gen_bool(kg_rdf_overlap(year)) {
                    // A KG paper that is "about RDF/SPARQL".
                    let which = if rng.gen_bool(0.6) { "RDF" } else { "SPARQL" };
                    pubs.push(Publication {
                        year,
                        title: make_title(&mut rng, keyword, Some(which)),
                    });
                } else {
                    pubs.push(Publication {
                        year,
                        title: make_title(&mut rng, keyword, None),
                    });
                }
            }
        }
        for _ in 0..params.background_per_year {
            let t = BACKGROUND[rng.gen_range(0..BACKGROUND.len())];
            pubs.push(Publication {
                year,
                title: t.to_owned(),
            });
        }
    }
    pubs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = generate_corpus(&CorpusParams::default());
        let b = generate_corpus(&CorpusParams::default());
        assert_eq!(a, b);
        let c = generate_corpus(&CorpusParams {
            seed: 7,
            ..CorpusParams::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn covers_all_years() {
        let corpus = generate_corpus(&CorpusParams::default());
        for year in YEARS {
            assert!(corpus.iter().any(|p| p.year == year), "no papers in {year}");
        }
    }

    #[test]
    fn intensities_match_narrative_shape() {
        // Direct checks on the calibration curves.
        assert!(intensity("knowledge graph", 2012) < 20.0);
        assert!(intensity("knowledge graph", 2020) > intensity("RDF", 2020));
        assert!(intensity("RDF", 2010) > 200.0 && intensity("RDF", 2020) > 150.0);
        assert!(intensity("property graph", 2020) < 15.0);
        assert!(intensity("graph database", 2020) < 60.0);
    }

    #[test]
    fn overlap_curve_endpoints() {
        assert!((kg_rdf_overlap(2015) - 0.70).abs() < 1e-9);
        assert!((kg_rdf_overlap(2020) - 0.14).abs() < 1e-9);
        assert!(kg_rdf_overlap(2017) < 0.70 && kg_rdf_overlap(2017) > 0.14);
    }

    #[test]
    fn scale_shrinks_the_corpus() {
        let small = generate_corpus(&CorpusParams {
            scale: 0.1,
            background_per_year: 10,
            seed: 1,
        });
        let big = generate_corpus(&CorpusParams {
            scale: 1.0,
            background_per_year: 10,
            seed: 1,
        });
        assert!(small.len() < big.len() / 3);
    }
}
