//! # kgq-biblio — the bibliometric study behind Figure 1
//!
//! The paper's introduction analyzes DBLP: "papers in computer science …
//! having these strings in their titles" for five keywords — *graph
//! database*, *RDF*, *SPARQL*, *property graph*, *knowledge graph* —
//! from 2010 to 2020 (Figure 1). DBLP itself is not available offline,
//! so this crate **simulates** a publication corpus whose per-keyword
//! intensities are calibrated to the qualitative facts the paper states,
//! then *recounts titles from the generated corpus* with the same
//! count-titles-containing-keyword methodology:
//!
//! * "the growth of knowledge graph papers can be seen starting in 2013,
//!   which correlates with … Google's Knowledge Graph announcement";
//! * "publications about RDF and SPARQL continue to be stable";
//! * "papers about graph database are comparatively small and there is
//!   no significant growth";
//! * "papers about property graph are negligible";
//! * "in 2015, 70% of knowledge graphs papers were about RDF/SPARQL,
//!   while that went down to 14% in 2020".
//!
//! [`corpus::generate_corpus`] produces the titles, [`analysis`] counts
//! them, and [`analysis::check_figure1_claims`] verifies each quoted
//! claim mechanically (experiment `exp_fig1`).

//! ```
//! use kgq_biblio::{generate_corpus, check_figure1_claims, CorpusParams};
//!
//! let corpus = generate_corpus(&CorpusParams::default());
//! assert!(check_figure1_claims(&corpus).is_empty());
//! ```

pub mod analysis;
pub mod corpus;

pub use analysis::{check_figure1_claims, figure1_series, overlap_fraction, Figure1};
pub use corpus::{generate_corpus, CorpusParams, Publication, KEYWORDS, YEARS};
