//! Property-based tests for Weisfeiler–Lehman refinement: the graph hash
//! is invariant under node renaming/reordering (isomorphism), and color
//! classes are consistent with label information.

use kgq_gnn::{wl_colors, wl_graph_hash};
use kgq_graph::{LabeledGraph, NodeId};
use proptest::prelude::*;

const NODE_LABELS: [&str; 2] = ["a", "b"];
const EDGE_LABELS: [&str; 2] = ["p", "q"];

#[derive(Clone, Debug)]
struct GraphSpec {
    node_labels: Vec<usize>,
    edges: Vec<(usize, usize, usize)>,
}

fn graph_strategy() -> impl Strategy<Value = GraphSpec> {
    (2usize..9).prop_flat_map(|n| {
        (
            proptest::collection::vec(0..NODE_LABELS.len(), n),
            proptest::collection::vec((0..n, 0..n, 0..EDGE_LABELS.len()), 0..16),
        )
            .prop_map(|(node_labels, edges)| GraphSpec { node_labels, edges })
    })
}

fn build(spec: &GraphSpec, perm: &[usize]) -> LabeledGraph {
    // `perm[i]` = insertion position of original node i: permuting the
    // construction order (and renaming) produces an isomorphic graph.
    let n = spec.node_labels.len();
    let mut g = LabeledGraph::new();
    let mut ids: Vec<Option<NodeId>> = vec![None; n];
    for &orig in perm {
        ids[orig] = Some(
            g.add_node(
                &format!("x{}", perm.iter().position(|&p| p == orig).unwrap()),
                NODE_LABELS[spec.node_labels[orig]],
            )
            .unwrap(),
        );
    }
    for (i, &(s, d, l)) in spec.edges.iter().enumerate() {
        g.add_edge(
            &format!("e{i}"),
            ids[s].unwrap(),
            ids[d].unwrap(),
            EDGE_LABELS[l],
        )
        .unwrap();
    }
    g
}

fn permutation(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn graph_hash_is_isomorphism_invariant(
        (spec, perm) in graph_strategy().prop_flat_map(|spec| {
            let n = spec.node_labels.len();
            (Just(spec), permutation(n))
        })
    ) {
        let identity: Vec<usize> = (0..spec.node_labels.len()).collect();
        let g1 = build(&spec, &identity);
        let g2 = build(&spec, &perm);
        prop_assert_eq!(wl_graph_hash(&g1), wl_graph_hash(&g2));
    }

    #[test]
    fn color_classes_refine_labels(spec in graph_strategy()) {
        // Two nodes with different labels must never share a WL color.
        let identity: Vec<usize> = (0..spec.node_labels.len()).collect();
        let g = build(&spec, &identity);
        let wl = wl_colors(&g, g.node_count());
        for i in 0..g.node_count() {
            for j in (i + 1)..g.node_count() {
                if wl.colors[i] == wl.colors[j] {
                    prop_assert_eq!(spec.node_labels[i], spec.node_labels[j]);
                }
            }
        }
    }

    #[test]
    fn refinement_is_monotone(spec in graph_strategy()) {
        // More rounds can only refine (never merge) classes.
        let identity: Vec<usize> = (0..spec.node_labels.len()).collect();
        let g = build(&spec, &identity);
        let mut prev = 0usize;
        for rounds in 0..g.node_count() + 1 {
            let wl = wl_colors(&g, rounds);
            prop_assert!(wl.color_count >= prev, "rounds={} classes shrank", rounds);
            prev = wl.color_count;
        }
    }
}
