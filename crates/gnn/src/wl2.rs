//! 2-dimensional Weisfeiler–Lehman refinement.
//!
//! §4.3 cites Cai–Fürer–Immerman \[22\] and the `k`-WL hierarchy behind
//! higher-order GNNs \[50\]: `k`-WL colors `k`-tuples of nodes and is
//! strictly more expressive than `(k−1)`-WL. This module implements the
//! folklore 2-WL: colors live on *ordered pairs* `(u, v)`, initialized
//! from `(λ(u), λ(v), edge-labels u→v, edge-labels v→u, u = v)` and
//! refined with the multiset of compositions through every third node:
//!
//! ```text
//! c'(u, v) = hash(c(u, v), {{ (c(u, w), c(w, v)) : w ∈ N }})
//! ```
//!
//! The classic 1-WL counterexample — C₆ vs C₃ ⊎ C₃ — is separated by
//! 2-WL (tested below), concretely demonstrating the hierarchy the paper
//! appeals to. Cost is `Θ(n³)` per round: use on small graphs.

use kgq_graph::{LabeledGraph, NodeId};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Result of 2-WL refinement.
#[derive(Clone, Debug)]
pub struct Wl2Result {
    /// Final color of every ordered pair, row-major (`colors[u * n + v]`).
    pub colors: Vec<u64>,
    /// Number of distinct pair colors.
    pub color_count: usize,
    /// Refinement rounds executed.
    pub rounds: usize,
}

fn hash_one<T: Hash>(x: T) -> u64 {
    let mut h = DefaultHasher::new();
    x.hash(&mut h);
    h.finish()
}

fn distinct(raw: &[u64]) -> usize {
    let mut v = raw.to_vec();
    v.sort_unstable();
    v.dedup();
    v.len()
}

/// Runs 2-WL for at most `max_rounds` rounds (stops on stabilization).
pub fn wl2_colors(g: &LabeledGraph, max_rounds: usize) -> Wl2Result {
    let n = g.node_count();
    // Initial pair colors from labels and the (multiset of) edge labels
    // in both directions; label *strings* keep hashes cross-graph stable.
    let mut colors: Vec<u64> = Vec::with_capacity(n * n);
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            let (u, v) = (NodeId(u), NodeId(v));
            let mut fwd: Vec<&str> = g
                .base()
                .out_edges(u)
                .iter()
                .filter(|&&e| g.base().target(e) == v)
                .map(|&e| g.label_name(g.edge_label(e)))
                .collect();
            fwd.sort_unstable();
            let mut bwd: Vec<&str> = g
                .base()
                .out_edges(v)
                .iter()
                .filter(|&&e| g.base().target(e) == u)
                .map(|&e| g.label_name(g.edge_label(e)))
                .collect();
            bwd.sort_unstable();
            colors.push(hash_one((
                g.label_name(g.node_label(u)),
                g.label_name(g.node_label(v)),
                fwd,
                bwd,
                u == v,
            )));
        }
    }
    let mut count = distinct(&colors);
    let mut rounds = 0;
    for _ in 0..max_rounds {
        let mut next = Vec::with_capacity(n * n);
        for u in 0..n {
            for v in 0..n {
                let mut msgs: Vec<(u64, u64)> = (0..n)
                    .map(|w| (colors[u * n + w], colors[w * n + v]))
                    .collect();
                msgs.sort_unstable();
                next.push(hash_one((colors[u * n + v], msgs)));
            }
        }
        rounds += 1;
        let new_count = distinct(&next);
        colors = next;
        if new_count == count {
            break;
        }
        count = new_count;
    }
    Wl2Result {
        colors,
        color_count: count,
        rounds,
    }
}

/// Graph-level 2-WL hash: the sorted multiset of stable pair colors.
pub fn wl2_graph_hash(g: &LabeledGraph) -> u64 {
    let result = wl2_colors(g, g.node_count().max(1));
    let mut multiset = result.colors;
    multiset.sort_unstable();
    hash_one(multiset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wl::wl_graph_hash;
    use kgq_graph::generate::cycle_graph;
    use kgq_graph::LabeledGraph;

    fn two_triangles() -> LabeledGraph {
        let mut g = LabeledGraph::new();
        let ids: Vec<_> = (0..6)
            .map(|i| g.add_node(&format!("v{i}"), "v").unwrap())
            .collect();
        for (i, (a, b)) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
            .iter()
            .enumerate()
        {
            g.add_edge(&format!("e{i}"), ids[*a], ids[*b], "next")
                .unwrap();
        }
        g
    }

    #[test]
    fn wl2_separates_what_wl1_cannot() {
        let c6 = cycle_graph(6, "v", "next");
        let c3c3 = two_triangles();
        // 1-WL is blind to the difference…
        assert_eq!(wl_graph_hash(&c6), wl_graph_hash(&c3c3));
        // …2-WL sees it (pair colors encode distances / reachability).
        assert_ne!(wl2_graph_hash(&c6), wl2_graph_hash(&c3c3));
    }

    #[test]
    fn isomorphic_graphs_agree() {
        let g1 = cycle_graph(5, "v", "next");
        let mut g2 = LabeledGraph::new();
        let ids: Vec<_> = (0..5)
            .map(|i| g2.add_node(&format!("w{}", (i * 2) % 5), "v").unwrap())
            .collect();
        for i in 0..5 {
            g2.add_edge(&format!("f{i}"), ids[i], ids[(i + 1) % 5], "next")
                .unwrap();
        }
        assert_eq!(wl2_graph_hash(&g1), wl2_graph_hash(&g2));
    }

    #[test]
    fn pair_colors_distinguish_distances_on_a_path() {
        let g = kgq_graph::generate::path_graph(4, "v", "next");
        let r = wl2_colors(&g, 10);
        let n = 4;
        // (v0, v1) — adjacent — must differ from (v0, v2) — distance 2.
        assert_ne!(r.colors[1], r.colors[2]);
        // Diagonal (u = u) pairs differ from off-diagonal ones.
        assert_ne!(r.colors[0], r.colors[1]);
        assert_eq!(r.colors.len(), n * n);
    }

    #[test]
    fn refinement_stabilizes() {
        let g = cycle_graph(6, "v", "next");
        let r = wl2_colors(&g, 100);
        assert!(r.rounds <= 36, "rounds {}", r.rounds);
        assert!(r.color_count >= 2);
    }

    #[test]
    fn edge_labels_enter_initial_colors() {
        let mut g1 = LabeledGraph::new();
        let a = g1.add_node("a", "v").unwrap();
        let b = g1.add_node("b", "v").unwrap();
        g1.add_edge("e", a, b, "p").unwrap();
        let mut g2 = LabeledGraph::new();
        let a = g2.add_node("a", "v").unwrap();
        let b = g2.add_node("b", "v").unwrap();
        g2.add_edge("e", a, b, "q").unwrap();
        assert_ne!(wl2_graph_hash(&g1), wl2_graph_hash(&g2));
    }
}
