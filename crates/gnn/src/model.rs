//! Aggregate-combine graph neural networks (AC-GNNs, \[16, 50, 71\]).
//!
//! A network transforms a vector-labeled graph `𝒱 = (N, E, ρ, λ)` into a
//! new vector labeling `λ'` and classifies each node from `λ'(n)` — "a
//! GNN can be considered as a unary query" (§4.3). Each layer computes
//!
//! ```text
//! h'(v) = σ( W_self · h(v) + Σ_{ℓ, dir} W_{ℓ,dir} · Σ_{u ∈ N_{ℓ,dir}(v)} h(u) + b )
//! ```
//!
//! with one weight matrix per (edge label, direction) pair and the
//! truncated ReLU `σ(x) = min(max(x, 0), 1)` used by Barceló et al. \[16\]
//! (whose logical characterization this crate demonstrates). The final
//! classifier is linear + threshold.

use kgq_graph::{LabeledGraph, NodeId};

/// A dense matrix stored row-major (`rows × cols`).
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    /// Output dimension.
    pub rows: usize,
    /// Input dimension.
    pub cols: usize,
    /// Row-major entries.
    pub data: Vec<f64>,
}

impl Mat {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Sets entry `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    fn mul_add(&self, x: &[f64], acc: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(acc.len(), self.rows);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut s = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                s += a * b;
            }
            acc[r] += s;
        }
    }
}

/// Direction of message flow relative to the receiving node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dir {
    /// Messages along outgoing edges (from `v` to its successors'
    /// features — i.e. `v` *receives from* targets of its out-edges).
    Out,
    /// Messages along incoming edges.
    In,
}

/// One aggregate-combine layer.
#[derive(Clone, Debug)]
pub struct Layer {
    /// Combine matrix applied to the node's own feature vector.
    pub w_self: Mat,
    /// Per-(edge label, direction) aggregation matrices. Labels are
    /// stored as strings so a trained network applies to any graph,
    /// regardless of per-graph symbol interning.
    pub w_rel: Vec<(String, Dir, Mat)>,
    /// Bias vector (output dimension).
    pub bias: Vec<f64>,
}

impl Layer {
    /// Output dimension of the layer.
    pub fn out_dim(&self) -> usize {
        self.w_self.rows
    }

    /// Input dimension of the layer.
    pub fn in_dim(&self) -> usize {
        self.w_self.cols
    }
}

/// Truncated ReLU: `min(max(x, 0), 1)`.
#[inline]
pub fn trunc_relu(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// An AC-GNN acting as a boolean node classifier.
#[derive(Clone, Debug)]
pub struct AcGnn {
    /// Stacked layers (each layer's input dim must match the previous
    /// output dim).
    pub layers: Vec<Layer>,
    /// Final linear classifier weights over the last feature vector.
    pub cls_weights: Vec<f64>,
    /// Classifier threshold: output is `true` iff `w·h + b >= 0.5`.
    pub cls_bias: f64,
}

impl AcGnn {
    /// One-hot node features for `g` against a label-name vocabulary.
    /// Labels outside the vocabulary map to the zero vector.
    pub fn one_hot_features(g: &LabeledGraph, vocab: &[&str]) -> Vec<Vec<f64>> {
        (0..g.node_count() as u32)
            .map(|v| {
                let l = g.label_name(g.node_label(NodeId(v)));
                vocab
                    .iter()
                    .map(|&s| if s == l { 1.0 } else { 0.0 })
                    .collect()
            })
            .collect()
    }

    /// Runs all layers, returning the final feature vector per node (the
    /// vector-labeled graph `𝒱'` of the paper, §4.3).
    pub fn forward(&self, g: &LabeledGraph, features: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let mut h: Vec<Vec<f64>> = features.to_vec();
        for layer in &self.layers {
            // Resolve relation names once per layer; a missing label means
            // the graph simply has no such edges.
            let rel_syms: Vec<Option<kgq_graph::Sym>> =
                layer.w_rel.iter().map(|(name, _, _)| g.sym(name)).collect();
            let mut next: Vec<Vec<f64>> = Vec::with_capacity(h.len());
            for v in 0..g.node_count() as u32 {
                let v = NodeId(v);
                let mut acc = layer.bias.clone();
                layer.w_self.mul_add(&h[v.index()], &mut acc);
                for ((label, dir, mat), sym) in layer.w_rel.iter().zip(rel_syms.iter()) {
                    let _ = label;
                    // Sum neighbor features over matching edges first,
                    // then one matrix multiply.
                    let mut pooled = vec![0.0; mat.cols];
                    match dir {
                        Dir::Out => {
                            for &e in g.base().out_edges(v) {
                                if Some(g.edge_label(e)) == *sym {
                                    let u = g.base().target(e);
                                    for (p, x) in pooled.iter_mut().zip(h[u.index()].iter()) {
                                        *p += x;
                                    }
                                }
                            }
                        }
                        Dir::In => {
                            for &e in g.base().in_edges(v) {
                                if Some(g.edge_label(e)) == *sym {
                                    let u = g.base().source(e);
                                    for (p, x) in pooled.iter_mut().zip(h[u.index()].iter()) {
                                        *p += x;
                                    }
                                }
                            }
                        }
                    }
                    mat.mul_add(&pooled, &mut acc);
                }
                next.push(acc.into_iter().map(trunc_relu).collect());
            }
            h = next;
        }
        h
    }

    /// The unary query: nodes classified `true`.
    pub fn classify(&self, g: &LabeledGraph, features: &[Vec<f64>]) -> Vec<bool> {
        self.forward(g, features)
            .iter()
            .map(|h| {
                let score: f64 = self
                    .cls_weights
                    .iter()
                    .zip(h.iter())
                    .map(|(w, x)| w * x)
                    .sum::<f64>()
                    + self.cls_bias;
                score >= 0.5
            })
            .collect()
    }

    /// Number of layers (the WL-round budget of the network).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wl::wl_colors;
    use kgq_graph::generate::gnm_labeled;
    use kgq_graph::LabeledGraph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_gnn(rng: &mut StdRng, vocab: &[&str], dims: &[usize]) -> AcGnn {
        let mut layers = Vec::new();
        for w in dims.windows(2) {
            let (din, dout) = (w[0], w[1]);
            let mut rand_mat = |r: usize, c: usize| -> Mat {
                let mut m = Mat::zeros(r, c);
                for v in m.data.iter_mut() {
                    *v = rng.gen_range(-1.0..1.0);
                }
                m
            };
            let w_self = rand_mat(dout, din);
            let mut w_rel = Vec::new();
            for &s in vocab {
                w_rel.push((s.to_owned(), Dir::Out, rand_mat(dout, din)));
                w_rel.push((s.to_owned(), Dir::In, rand_mat(dout, din)));
            }
            let bias = (0..dout).map(|_| rng.gen_range(-0.5..0.5)).collect();
            layers.push(Layer {
                w_self,
                w_rel,
                bias,
            });
        }
        AcGnn {
            layers,
            cls_weights: (0..*dims.last().unwrap())
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect(),
            cls_bias: rng.gen_range(-0.5..0.5),
        }
    }

    #[test]
    fn wl_equal_nodes_get_equal_gnn_outputs() {
        // The §4.3 expressiveness bound: GNN outputs are functions of the
        // WL color (same depth). Check on random graphs and random nets.
        let mut rng = StdRng::seed_from_u64(99);
        for seed in 0..3 {
            let g = gnm_labeled(14, 30, &["a", "b"], &["p", "q"], seed);
            let node_vocab = ["a", "b"];
            let edge_vocab = ["p", "q"];
            let depth = 3;
            let gnn = random_gnn(&mut rng, &edge_vocab, &[2, 4, 4, 3]);
            assert_eq!(gnn.depth(), depth);
            let feats = AcGnn::one_hot_features(&g, &node_vocab);
            let out = gnn.forward(&g, &feats);
            // WL with exactly `depth` rounds (no early stop below depth).
            let wl = wl_colors(&g, depth);
            for i in 0..g.node_count() {
                for j in (i + 1)..g.node_count() {
                    if wl.colors[i] == wl.colors[j] {
                        for (a, b) in out[i].iter().zip(out[j].iter()) {
                            assert!(
                                (a - b).abs() < 1e-9,
                                "seed={seed}: WL-equal nodes {i},{j} differ"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn truncated_relu_clamps() {
        assert_eq!(trunc_relu(-3.0), 0.0);
        assert_eq!(trunc_relu(0.4), 0.4);
        assert_eq!(trunc_relu(7.0), 1.0);
    }

    #[test]
    fn identity_network_passes_features_through() {
        let mut g = LabeledGraph::new();
        let a = g.add_node("a", "x").unwrap();
        let b = g.add_node("b", "y").unwrap();
        g.add_edge("e", a, b, "p").unwrap();
        let vocab = ["x", "y"];
        let mut w_self = Mat::zeros(2, 2);
        w_self.set(0, 0, 1.0);
        w_self.set(1, 1, 1.0);
        let gnn = AcGnn {
            layers: vec![Layer {
                w_self,
                w_rel: Vec::new(),
                bias: vec![0.0, 0.0],
            }],
            cls_weights: vec![1.0, 0.0],
            cls_bias: 0.0,
        };
        let feats = AcGnn::one_hot_features(&g, &vocab);
        let out = gnn.forward(&g, &feats);
        assert_eq!(out, feats);
        assert_eq!(gnn.classify(&g, &feats), vec![true, false]);
    }

    #[test]
    fn aggregation_counts_neighbors() {
        // One layer computing "has at least 2 in-neighbors labeled x via p".
        let mut g = LabeledGraph::new();
        let t = g.add_node("t", "y").unwrap();
        let u = g.add_node("u", "y").unwrap();
        for i in 0..3 {
            let s = g.add_node(&format!("s{i}"), "x").unwrap();
            g.add_edge(&format!("e{i}"), s, t, "p").unwrap();
        }
        let s3 = g.add_node("s3", "x").unwrap();
        g.add_edge("e3", s3, u, "p").unwrap();
        let vocab = ["x", "y"];
        let mut w_in = Mat::zeros(1, 2);
        w_in.set(0, 0, 1.0); // count x-features of in-neighbors
        let gnn = AcGnn {
            layers: vec![Layer {
                w_self: Mat::zeros(1, 2),
                w_rel: vec![("p".to_owned(), Dir::In, w_in)],
                bias: vec![-1.0], // >= 2 neighbors → 1 after truncation
            }],
            cls_weights: vec![1.0],
            cls_bias: 0.0,
        };
        let feats = AcGnn::one_hot_features(&g, &vocab);
        let cls = gnn.classify(&g, &feats);
        assert!(cls[t.index()]); // 3 in-neighbors
        assert!(!cls[u.index()]); // only 1
        assert!(!cls[s3.index()]);
    }
}
