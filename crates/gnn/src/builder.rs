//! Hand-constructed AC-GNNs realizing first-order formulas.
//!
//! Barceló et al. \[16\] prove that every FO² (graded modal logic) node
//! query is computed by some AC-GNN with truncated-ReLU activations.
//! [`psi_network`] makes that constructive for the paper's running query
//!
//! ```text
//! ψ(x) = person(x) ∧ ∃y (rides(x,y) ∧ bus(y) ∧ ∃x (rides(x,y) ∧ infected(x)))
//! ```
//!
//! Input features are one-hot over `[person, infected, bus]`. Layers 1–2
//! compute, at every node, the indicator "I am a bus with at least one
//! infected in-rider" (count, then clamped conjunction); layers 3–4
//! compute "I am a person who out-rides such a bus". The classifier
//! reads the final indicator.

use crate::model::{AcGnn, Dir, Layer, Mat};

/// The input feature vocabulary of [`psi_network`], in order: one-hot
/// over these node labels (use with [`AcGnn::one_hot_features`]).
pub const PSI_VOCAB: [&str; 3] = ["person", "infected", "bus"];

/// Builds the four-layer network computing ψ(x). Use
/// [`AcGnn::one_hot_features`] with [`PSI_VOCAB`] to produce its input.
///
/// The construction alternates *count* layers (truncate an aggregated
/// sum to a 0/1 indicator) and *conjunction* layers (`σ(a + b − 1)`),
/// because a raw sum can overwhelm a conjunction — e.g. a non-person
/// riding two "hot" buses would otherwise classify positive.
pub fn psi_network() -> AcGnn {
    // Input features: [person, infected, bus].
    // Layer 1 (3→4): [person, infected, bus, infrid]
    //   infrid = σ(Σ_{rides,in} infected)   — "some infected rider", clamped.
    let mut w_self1 = Mat::zeros(4, 3);
    w_self1.set(0, 0, 1.0);
    w_self1.set(1, 1, 1.0);
    w_self1.set(2, 2, 1.0);
    let mut w_in1 = Mat::zeros(4, 3);
    w_in1.set(3, 1, 1.0);
    let layer1 = Layer {
        w_self: w_self1,
        w_rel: vec![("rides".to_owned(), Dir::In, w_in1)],
        bias: vec![0.0, 0.0, 0.0, 0.0],
    };

    // Layer 2 (4→2): [person, hot]
    //   hot = σ(bus + infrid − 1)           — conjunction of indicators.
    let mut w_self2 = Mat::zeros(2, 4);
    w_self2.set(0, 0, 1.0); // carry person
    w_self2.set(1, 2, 1.0); // bus
    w_self2.set(1, 3, 1.0); // infrid
    let layer2 = Layer {
        w_self: w_self2,
        w_rel: Vec::new(),
        bias: vec![0.0, -1.0],
    };

    // Layer 3 (2→2): [person, hashot]
    //   hashot = σ(Σ_{rides,out} hot)       — "rides some hot bus", clamped.
    let mut w_self3 = Mat::zeros(2, 2);
    w_self3.set(0, 0, 1.0);
    let mut w_out3 = Mat::zeros(2, 2);
    w_out3.set(1, 1, 1.0);
    let layer3 = Layer {
        w_self: w_self3,
        w_rel: vec![("rides".to_owned(), Dir::Out, w_out3)],
        bias: vec![0.0, 0.0],
    };

    // Layer 4 (2→1): answer = σ(person + hashot − 1).
    let mut w_self4 = Mat::zeros(1, 2);
    w_self4.set(0, 0, 1.0);
    w_self4.set(0, 1, 1.0);
    let layer4 = Layer {
        w_self: w_self4,
        w_rel: Vec::new(),
        bias: vec![-1.0],
    };

    AcGnn {
        layers: vec![layer1, layer2, layer3, layer4],
        cls_weights: vec![1.0],
        cls_bias: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AcGnn;
    use kgq_core::eval::matching_starts;
    use kgq_core::model::LabeledView;
    use kgq_core::parser::parse_expr;
    use kgq_graph::figures::figure2_labeled;
    use kgq_graph::generate::{contact_network, ContactParams};
    use kgq_graph::LabeledGraph;

    fn run_psi(g: &LabeledGraph) -> Vec<bool> {
        let gnn = psi_network();
        let feats = AcGnn::one_hot_features(g, &PSI_VOCAB);
        gnn.classify(g, &feats)
    }

    #[test]
    fn psi_network_matches_rpq_on_figure2() {
        let mut g = figure2_labeled();
        let cls = run_psi(&g);
        let e = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let expected = matching_starts(&view, &e);
        let got: Vec<_> = (0..g.node_count())
            .filter(|&i| cls[i])
            .map(|i| kgq_graph::NodeId(i as u32))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn psi_network_matches_rpq_on_contact_networks() {
        for seed in [1u64, 7, 42] {
            let pg = contact_network(&ContactParams {
                people: 40,
                buses: 4,
                infected_fraction: 0.15,
                seed,
                ..ContactParams::default()
            });
            let mut g = pg.into_labeled();
            let cls = run_psi(&g);
            let e = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
            let view = LabeledView::new(&g);
            let expected: std::collections::HashSet<usize> = matching_starts(&view, &e)
                .into_iter()
                .map(|n| n.index())
                .collect();
            for i in 0..g.node_count() {
                assert_eq!(
                    cls[i],
                    expected.contains(&i),
                    "seed={seed} node {}",
                    g.node_name(kgq_graph::NodeId(i as u32))
                );
            }
        }
    }

    #[test]
    fn counting_threshold_is_at_least_one() {
        // A person riding two hot buses still classifies true (truncation
        // keeps the indicator boolean).
        let mut g = LabeledGraph::new();
        let p = g.add_node("p", "person").unwrap();
        let i1 = g.add_node("i1", "infected").unwrap();
        let i2 = g.add_node("i2", "infected").unwrap();
        let b1 = g.add_node("b1", "bus").unwrap();
        let b2 = g.add_node("b2", "bus").unwrap();
        g.add_edge("r1", p, b1, "rides").unwrap();
        g.add_edge("r2", p, b2, "rides").unwrap();
        g.add_edge("r3", i1, b1, "rides").unwrap();
        g.add_edge("r4", i2, b2, "rides").unwrap();
        let cls = run_psi(&g);
        assert!(cls[p.index()]);
        assert!(!cls[b1.index()]);
        assert!(!cls[i1.index()]);
    }
}
