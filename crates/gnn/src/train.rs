//! Training AC-GNNs by gradient descent — the "learning" facet of the
//! paper's §2.3 ("learning, through new data and learning algorithms")
//! applied to the §4.3 classifiers.
//!
//! Implements full backpropagation through the aggregate-combine layers
//! (the truncated-ReLU derivative is the indicator of the open interval
//! `(0, 1)`) with a sigmoid output head and binary cross-entropy loss.
//! The demonstration target: a GNN with the ψ-network *architecture* but
//! random weights can be trained from labeled examples to compute the
//! infection query — recovering by learning what `builder::psi_network`
//! encodes by hand.

use crate::model::{AcGnn, Dir, Layer, Mat};
use kgq_graph::{LabeledGraph, NodeId, Sym};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training hyperparameters.
#[derive(Clone, Debug)]
pub struct GnnTrainConfig {
    /// Hidden width of every layer.
    pub hidden: usize,
    /// Number of message-passing layers.
    pub layers: usize,
    /// Gradient-descent epochs (full-batch).
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl Default for GnnTrainConfig {
    fn default() -> Self {
        GnnTrainConfig {
            hidden: 8,
            layers: 4,
            epochs: 400,
            learning_rate: 0.2,
            seed: 11,
        }
    }
}

/// A training instance: a graph, its input features, and a boolean
/// target per node.
pub struct GnnExample<'a> {
    /// The graph.
    pub graph: &'a LabeledGraph,
    /// One feature vector per node.
    pub features: Vec<Vec<f64>>,
    /// Desired classifier output per node.
    pub targets: Vec<bool>,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Per-layer gradient buffers: (w_self, per-relation (matrix, index), bias).
type LayerGrads = (Mat, Vec<(Mat, usize)>, Vec<f64>);

/// Initializes an AC-GNN with random weights for the given relation
/// vocabulary (one in- and one out-matrix per edge label name).
pub fn random_network(in_dim: usize, relations: &[&str], config: &GnnTrainConfig) -> AcGnn {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rand_mat = |r: usize, c: usize| -> Mat {
        let mut m = Mat::zeros(r, c);
        let bound = (2.0 / c as f64).sqrt();
        for v in m.data.iter_mut() {
            *v = rng.gen_range(-bound..bound);
        }
        m
    };
    let mut layers = Vec::with_capacity(config.layers);
    let mut din = in_dim;
    for _ in 0..config.layers {
        let dout = config.hidden;
        let w_self = rand_mat(dout, din);
        let mut w_rel = Vec::new();
        for &r in relations {
            w_rel.push((r.to_owned(), Dir::Out, rand_mat(dout, din)));
            w_rel.push((r.to_owned(), Dir::In, rand_mat(dout, din)));
        }
        layers.push(Layer {
            w_self,
            w_rel,
            bias: vec![0.0; dout],
        });
        din = dout;
    }
    let cls_weights = (0..config.hidden)
        .map(|_| rng.gen_range(-0.5..0.5))
        .collect();
    AcGnn {
        layers,
        cls_weights,
        cls_bias: 0.0,
    }
}

/// Forward pass retaining pre-activations for backprop.
/// Returns (per-layer inputs h⁰..h^L, per-layer pre-activations z¹..z^L).
#[allow(clippy::type_complexity)]
fn forward_cached(
    gnn: &AcGnn,
    g: &LabeledGraph,
    features: &[Vec<f64>],
) -> (Vec<Vec<Vec<f64>>>, Vec<Vec<Vec<f64>>>) {
    let n = g.node_count();
    let mut hs: Vec<Vec<Vec<f64>>> = vec![features.to_vec()];
    let mut zs: Vec<Vec<Vec<f64>>> = Vec::new();
    for layer in &gnn.layers {
        let h = hs.last().expect("at least the input layer");
        let rel_syms: Vec<Option<Sym>> =
            layer.w_rel.iter().map(|(name, _, _)| g.sym(name)).collect();
        let mut z_layer: Vec<Vec<f64>> = Vec::with_capacity(n);
        for v in 0..n as u32 {
            let v = NodeId(v);
            let mut acc = layer.bias.clone();
            mat_mul_add(&layer.w_self, &h[v.index()], &mut acc);
            for ((_, dir, mat), sym) in layer.w_rel.iter().zip(rel_syms.iter()) {
                let pooled = pool(g, h, v, *sym, *dir, mat.cols);
                mat_mul_add(mat, &pooled, &mut acc);
            }
            z_layer.push(acc);
        }
        let h_next: Vec<Vec<f64>> = z_layer
            .iter()
            .map(|z| z.iter().map(|&x| x.clamp(0.0, 1.0)).collect())
            .collect();
        zs.push(z_layer);
        hs.push(h_next);
    }
    (hs, zs)
}

fn mat_mul_add(m: &Mat, x: &[f64], acc: &mut [f64]) {
    for r in 0..m.rows {
        let row = &m.data[r * m.cols..(r + 1) * m.cols];
        let mut s = 0.0;
        for (a, b) in row.iter().zip(x.iter()) {
            s += a * b;
        }
        acc[r] += s;
    }
}

fn pool(
    g: &LabeledGraph,
    h: &[Vec<f64>],
    v: NodeId,
    label: Option<Sym>,
    dir: Dir,
    dim: usize,
) -> Vec<f64> {
    let mut pooled = vec![0.0; dim];
    let Some(label) = label else { return pooled };
    match dir {
        Dir::Out => {
            for &e in g.base().out_edges(v) {
                if g.edge_label(e) == label {
                    for (p, x) in pooled.iter_mut().zip(h[g.base().target(e).index()].iter()) {
                        *p += x;
                    }
                }
            }
        }
        Dir::In => {
            for &e in g.base().in_edges(v) {
                if g.edge_label(e) == label {
                    for (p, x) in pooled.iter_mut().zip(h[g.base().source(e).index()].iter()) {
                        *p += x;
                    }
                }
            }
        }
    }
    pooled
}

/// Trains `gnn` in place on the examples with full-batch gradient
/// descent; returns the mean binary cross-entropy per epoch.
pub fn train(gnn: &mut AcGnn, examples: &[GnnExample<'_>], config: &GnnTrainConfig) -> Vec<f64> {
    let lr = config.learning_rate;
    let mut losses = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        // Accumulated gradients.
        let mut g_cls = vec![0.0; gnn.cls_weights.len()];
        let mut g_cls_bias = 0.0;
        let mut g_layers: Vec<LayerGrads> = gnn
            .layers
            .iter()
            .map(|l| {
                (
                    Mat::zeros(l.w_self.rows, l.w_self.cols),
                    l.w_rel
                        .iter()
                        .enumerate()
                        .map(|(i, (_, _, m))| (Mat::zeros(m.rows, m.cols), i))
                        .collect(),
                    vec![0.0; l.bias.len()],
                )
            })
            .collect();
        let mut total_loss = 0.0;
        let mut total_nodes = 0usize;
        for ex in examples {
            let g = ex.graph;
            let n = g.node_count();
            total_nodes += n;
            let (hs, zs) = forward_cached(gnn, g, &ex.features);
            let h_last = &hs[gnn.layers.len()];
            // Output head: p = σ(w·h + b), BCE loss.
            let mut delta_h: Vec<Vec<f64>> = vec![vec![0.0; gnn.cls_weights.len()]; n];
            for v in 0..n {
                let score: f64 = gnn
                    .cls_weights
                    .iter()
                    .zip(h_last[v].iter())
                    .map(|(w, x)| w * x)
                    .sum::<f64>()
                    + gnn.cls_bias;
                let p = sigmoid(score);
                let y = f64::from(ex.targets[v]);
                total_loss -= y * (p.max(1e-12)).ln() + (1.0 - y) * ((1.0 - p).max(1e-12)).ln();
                let dscore = p - y; // dBCE/dscore for sigmoid head
                for (i, x) in h_last[v].iter().enumerate() {
                    g_cls[i] += dscore * x;
                    delta_h[v][i] = dscore * gnn.cls_weights[i];
                }
                g_cls_bias += dscore;
            }
            // Backprop through layers, last to first.
            for li in (0..gnn.layers.len()).rev() {
                let layer = &gnn.layers[li];
                let h_in = &hs[li];
                let z = &zs[li];
                // δz = δh ⊙ 1(0 < z < 1)
                let delta_z: Vec<Vec<f64>> = (0..n)
                    .map(|v| {
                        delta_h[v]
                            .iter()
                            .zip(z[v].iter())
                            .map(|(&dh, &zz)| if zz > 0.0 && zz < 1.0 { dh } else { 0.0 })
                            .collect()
                    })
                    .collect();
                // Gradients for this layer + δh for the previous one.
                let mut delta_prev: Vec<Vec<f64>> = vec![vec![0.0; layer.w_self.cols]; n];
                let (gw_self, gw_rels, gbias) = &mut g_layers[li];
                for v in 0..n {
                    for r in 0..layer.w_self.rows {
                        let dz = delta_z[v][r];
                        if dz == 0.0 {
                            continue;
                        }
                        gbias[r] += dz;
                        for c in 0..layer.w_self.cols {
                            gw_self.data[r * layer.w_self.cols + c] += dz * h_in[v][c];
                            delta_prev[v][c] += dz * layer.w_self.data[r * layer.w_self.cols + c];
                        }
                    }
                }
                let rel_syms: Vec<Option<Sym>> =
                    layer.w_rel.iter().map(|(name, _, _)| g.sym(name)).collect();
                for (ri, (_, dir, mat)) in layer.w_rel.iter().enumerate() {
                    let gw = &mut gw_rels[ri].0;
                    let sym = rel_syms[ri];
                    for v in 0..n as u32 {
                        let v = NodeId(v);
                        let pooled = pool(g, h_in, v, sym, *dir, mat.cols);
                        for r in 0..mat.rows {
                            let dz = delta_z[v.index()][r];
                            if dz == 0.0 {
                                continue;
                            }
                            for c in 0..mat.cols {
                                gw.data[r * mat.cols + c] += dz * pooled[c];
                            }
                        }
                        // Route δ back to the neighbors that were pooled.
                        let neighbors: Vec<NodeId> = match dir {
                            Dir::Out => g
                                .base()
                                .out_edges(v)
                                .iter()
                                .filter(|&&e| Some(g.edge_label(e)) == sym)
                                .map(|&e| g.base().target(e))
                                .collect(),
                            Dir::In => g
                                .base()
                                .in_edges(v)
                                .iter()
                                .filter(|&&e| Some(g.edge_label(e)) == sym)
                                .map(|&e| g.base().source(e))
                                .collect(),
                        };
                        for u in neighbors {
                            for r in 0..mat.rows {
                                let dz = delta_z[v.index()][r];
                                if dz == 0.0 {
                                    continue;
                                }
                                for c in 0..mat.cols {
                                    delta_prev[u.index()][c] += dz * mat.data[r * mat.cols + c];
                                }
                            }
                        }
                    }
                }
                delta_h = delta_prev;
            }
        }
        // Apply gradients (mean over nodes).
        let scale = lr / total_nodes.max(1) as f64;
        for (w, gw) in gnn.cls_weights.iter_mut().zip(g_cls.iter()) {
            *w -= scale * gw;
        }
        gnn.cls_bias -= scale * g_cls_bias;
        for (li, (gw_self, gw_rels, gbias)) in g_layers.into_iter().enumerate() {
            let layer = &mut gnn.layers[li];
            for (w, gw) in layer.w_self.data.iter_mut().zip(gw_self.data.iter()) {
                *w -= scale * gw;
            }
            for (b, gb) in layer.bias.iter_mut().zip(gbias.iter()) {
                *b -= scale * gb;
            }
            for (gw, ri) in gw_rels {
                let mat = &mut layer.w_rel[ri].2;
                for (w, g) in mat.data.iter_mut().zip(gw.data.iter()) {
                    *w -= scale * g;
                }
            }
        }
        losses.push(total_loss / total_nodes.max(1) as f64);
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AcGnn;
    use kgq_graph::generate::{contact_network, ContactParams};

    /// Builds a training example labeling nodes by the infection query.
    fn example(g: &LabeledGraph) -> (Vec<Vec<f64>>, Vec<bool>) {
        use crate::builder::{psi_network, PSI_VOCAB};
        let reference = psi_network();
        let feats = AcGnn::one_hot_features(g, &PSI_VOCAB);
        let targets = reference.classify(g, &feats);
        (feats, targets)
    }

    #[test]
    fn loss_decreases_and_accuracy_beats_majority() {
        let pg = contact_network(&ContactParams {
            people: 40,
            buses: 4,
            infected_fraction: 0.2,
            seed: 3,
            ..ContactParams::default()
        });
        let g = pg.into_labeled();
        let (feats, targets) = example(&g);
        let positives = targets.iter().filter(|&&t| t).count();
        assert!(positives > 3, "want a non-trivial class balance");
        let config = GnnTrainConfig::default();
        let mut gnn = random_network(3, &["rides"], &config);
        let examples = vec![GnnExample {
            graph: &g,
            features: feats.clone(),
            targets: targets.clone(),
        }];
        let losses = train(&mut gnn, &examples, &config);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.6),
            "loss did not drop: {:.3} -> {:.3}",
            losses[0],
            losses.last().unwrap()
        );
        // Train accuracy must beat the majority-class baseline.
        let predicted = gnn.classify(&g, &feats);
        let correct = predicted
            .iter()
            .zip(targets.iter())
            .filter(|(p, t)| p == t)
            .count();
        let majority = targets.len() - positives.min(targets.len() - positives);
        assert!(
            correct > majority,
            "accuracy {correct}/{} not above majority {majority}",
            targets.len()
        );
    }

    #[test]
    fn training_is_deterministic() {
        let pg = contact_network(&ContactParams {
            people: 15,
            seed: 5,
            ..ContactParams::default()
        });
        let g = pg.into_labeled();
        let (feats, targets) = example(&g);
        let config = GnnTrainConfig {
            epochs: 20,
            ..GnnTrainConfig::default()
        };
        let run = || {
            let mut gnn = random_network(3, &["rides"], &config);
            let losses = train(
                &mut gnn,
                &[GnnExample {
                    graph: &g,
                    features: feats.clone(),
                    targets: targets.clone(),
                }],
                &config,
            );
            (losses, gnn.cls_weights.clone())
        };
        let (l1, w1) = run();
        let (l2, w2) = run();
        assert_eq!(l1, l2);
        assert_eq!(w1, w2);
    }

    #[test]
    fn generalizes_to_an_unseen_graph() {
        // Train on two networks, test on a third with a different seed.
        let make = |seed: u64| {
            let pg = contact_network(&ContactParams {
                people: 30,
                buses: 3,
                infected_fraction: 0.2,
                seed,
                ..ContactParams::default()
            });
            pg.into_labeled()
        };
        let g1 = make(1);
        let g2 = make(2);
        let g3 = make(9);
        // Labels are matched by *name*, so one network applies across
        // graphs with independently built interners.
        let (f1, t1) = example(&g1);
        let (f2, t2) = example(&g2);
        let (f3, t3) = example(&g3);
        let config = GnnTrainConfig {
            epochs: 600,
            ..GnnTrainConfig::default()
        };
        let mut gnn = random_network(3, &["rides"], &config);
        train(
            &mut gnn,
            &[
                GnnExample {
                    graph: &g1,
                    features: f1,
                    targets: t1,
                },
                GnnExample {
                    graph: &g2,
                    features: f2,
                    targets: t2,
                },
            ],
            &config,
        );
        let predicted = gnn.classify(&g3, &f3);
        let correct = predicted
            .iter()
            .zip(t3.iter())
            .filter(|(p, t)| p == t)
            .count();
        let acc = correct as f64 / t3.len() as f64;
        assert!(acc >= 0.8, "held-out accuracy {acc:.2} too low");
    }
}
