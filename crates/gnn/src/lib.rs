//! # kgq-gnn — Weisfeiler–Lehman refinement and graph neural networks
//!
//! Section 4.3 of the reproduced paper connects declarative node
//! extraction with the procedural formalism of graph neural networks:
//! the Weisfeiler–Lehman (WL) test \[70\] characterizes the expressiveness
//! of message-passing GNNs \[50, 71\], which in turn correspond to a logic
//! with counting and a fixed number of variables \[16, 22\].
//!
//! * [`wl`] — 1-dimensional WL *color refinement* on labeled graphs
//!   (edge labels and directions participate in the messages), plus a
//!   graph-level hash for isomorphism testing.
//! * [`model`] — aggregate-combine GNNs (AC-GNNs in the terminology of
//!   Barceló et al. \[16\]) with per-edge-label, per-direction weight
//!   matrices and truncated-ReLU activations, acting as unary node
//!   classifiers over (vector-)labeled graphs.
//! * [`builder`] — hand-constructed networks realizing FO² formulas, used
//!   to demonstrate the logic ↔ GNN correspondence concretely, e.g. a
//!   two-layer network computing the paper's ψ(x) infection query.
//!
//! Key invariant (tested): nodes that 1-WL cannot distinguish after `L`
//! rounds receive identical outputs from every `L`-layer AC-GNN.

// Several hot loops index multiple parallel arrays at once; the
// iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
pub mod builder;
pub mod model;
pub mod train;
pub mod wl;
pub mod wl2;

pub use builder::psi_network;
pub use model::{AcGnn, Layer};
pub use train::{random_network, train, GnnExample, GnnTrainConfig};
pub use wl::{wl_colors, wl_graph_hash, WlResult};
pub use wl2::{wl2_colors, wl2_graph_hash, Wl2Result};
