//! 1-dimensional Weisfeiler–Lehman color refinement \[70\].
//!
//! The WL test is "a message-passing graph algorithm" (§4.3): every node
//! starts with a color derived from its label and repeatedly replaces it
//! with a hash of `(own color, multiset of (edge label, direction,
//! neighbor color))`. Two nodes that end with different colors are
//! distinguishable by some L-layer message-passing network; two that end
//! with the same color are *indistinguishable* by any AC-GNN with that
//! many layers \[50, 71\] — the invariant the `kgq-gnn` tests exercise.
//!
//! Colors are derived from label *strings* (not per-graph symbol ids), so
//! [`wl_graph_hash`] is comparable across different graphs.

use kgq_graph::{LabeledGraph, NodeId};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Result of color refinement.
#[derive(Clone, Debug)]
pub struct WlResult {
    /// Final color per node (dense ids `0..color_count`).
    pub colors: Vec<u32>,
    /// Number of distinct final colors.
    pub color_count: usize,
    /// Rounds executed until stabilization (or the cap).
    pub rounds: usize,
}

fn canon<T: Hash + Ord>(items: &mut Vec<T>) -> u64 {
    items.sort_unstable();
    let mut h = DefaultHasher::new();
    items.hash(&mut h);
    h.finish()
}

fn hash_str(s: &str) -> u64 {
    let mut h = DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

fn distinct(raw: &[u64]) -> usize {
    let mut sorted: Vec<u64> = raw.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Raw (cross-graph comparable) WL colors after at most `max_rounds`
/// refinement rounds, plus the number of rounds executed.
fn refine(g: &LabeledGraph, max_rounds: usize) -> (Vec<u64>, usize) {
    let n = g.node_count();
    let mut colors: Vec<u64> = (0..n as u32)
        .map(|v| hash_str(g.label_name(g.node_label(NodeId(v)))))
        .collect();
    let mut count = distinct(&colors);
    let mut rounds = 0;
    for _ in 0..max_rounds {
        let next: Vec<u64> = (0..n as u32)
            .map(|v| {
                let v = NodeId(v);
                let mut msgs: Vec<(u8, u64, u64)> = Vec::new();
                for &e in g.base().out_edges(v) {
                    msgs.push((
                        0,
                        hash_str(g.label_name(g.edge_label(e))),
                        colors[g.base().target(e).index()],
                    ));
                }
                for &e in g.base().in_edges(v) {
                    msgs.push((
                        1,
                        hash_str(g.label_name(g.edge_label(e))),
                        colors[g.base().source(e).index()],
                    ));
                }
                let mhash = canon(&mut msgs);
                let mut h = DefaultHasher::new();
                (colors[v.index()], mhash).hash(&mut h);
                h.finish()
            })
            .collect();
        rounds += 1;
        let new_count = distinct(&next);
        colors = next;
        if new_count == count {
            // Same number of classes — the partition is stable
            // (refinement never merges classes).
            break;
        }
        count = new_count;
    }
    (colors, rounds)
}

/// Runs WL color refinement for at most `max_rounds` rounds (stops early
/// on stabilization — the partition can refine at most `n - 1` times, so
/// `max_rounds >= n` guarantees the stable partition).
pub fn wl_colors(g: &LabeledGraph, max_rounds: usize) -> WlResult {
    let (raw, rounds) = refine(g, max_rounds);
    let mut sorted: Vec<u64> = raw.clone();
    sorted.sort_unstable();
    sorted.dedup();
    let map: HashMap<u64, u32> = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let colors: Vec<u32> = raw.iter().map(|v| map[v]).collect();
    WlResult {
        colors,
        color_count: sorted.len(),
        rounds,
    }
}

/// Graph-level WL hash: the sorted multiset of stable raw colors, hashed.
/// Isomorphic graphs always agree; non-isomorphic graphs usually differ
/// (the WL test is incomplete — see \[34\], and the classic counterexample
/// tested below).
pub fn wl_graph_hash(g: &LabeledGraph) -> u64 {
    let (mut raw, _) = refine(g, g.node_count().max(1));
    canon(&mut raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_graph::generate::{cycle_graph, path_graph, star_graph};
    use kgq_graph::LabeledGraph;

    #[test]
    fn cycle_nodes_are_indistinguishable() {
        let g = cycle_graph(6, "v", "next");
        let r = wl_colors(&g, 10);
        assert_eq!(r.color_count, 1);
    }

    #[test]
    fn path_nodes_split_by_distance_to_ends() {
        let g = path_graph(5, "v", "next");
        let r = wl_colors(&g, 10);
        // v0..v4 all get distinct colors: distances to both endpoints
        // differ (directed path, in/out degrees asymmetric).
        assert_eq!(r.color_count, 5);
    }

    #[test]
    fn star_has_two_classes() {
        let g = star_graph(7, "v", "spoke");
        let r = wl_colors(&g, 10);
        assert_eq!(r.color_count, 2);
        // Hub color differs from every spoke; spokes share.
        let hub = r.colors[0];
        assert!(r.colors[1..].iter().all(|&c| c != hub));
        assert!(r.colors[1..].windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn node_labels_seed_the_refinement() {
        let mut g = LabeledGraph::new();
        let a = g.add_node("a", "red").unwrap();
        let b = g.add_node("b", "blue").unwrap();
        g.add_edge("e", a, b, "p").unwrap();
        let r = wl_colors(&g, 5);
        assert_eq!(r.color_count, 2);
    }

    #[test]
    fn edge_labels_distinguish() {
        // Two 2-node graphs, same shape, different edge labels.
        let mut g1 = LabeledGraph::new();
        let a = g1.add_node("a", "v").unwrap();
        let b = g1.add_node("b", "v").unwrap();
        g1.add_edge("e", a, b, "p").unwrap();
        let mut g2 = LabeledGraph::new();
        let a = g2.add_node("a", "v").unwrap();
        let b = g2.add_node("b", "v").unwrap();
        g2.add_edge("e", a, b, "q").unwrap();
        assert_ne!(wl_graph_hash(&g1), wl_graph_hash(&g2));
    }

    #[test]
    fn isomorphic_graphs_hash_equal() {
        // Same cycle built with different node insertion order.
        let g1 = cycle_graph(5, "v", "next");
        let mut g2 = LabeledGraph::new();
        let ids: Vec<_> = (0..5)
            .map(|i| g2.add_node(&format!("w{}", (i * 3) % 5), "v").unwrap())
            .collect();
        for i in 0..5 {
            g2.add_edge(&format!("f{i}"), ids[i], ids[(i + 1) % 5], "next")
                .unwrap();
        }
        assert_eq!(wl_graph_hash(&g1), wl_graph_hash(&g2));
    }

    #[test]
    fn wl_cannot_separate_c6_from_two_c3() {
        // The classic WL counterexample: one 6-cycle vs two triangles
        // (undirected intuition; here both directed with uniform labels):
        // every node sees one in- and one out-neighbor of the same color,
        // so refinement stabilizes with a single color in both graphs.
        let c6 = cycle_graph(6, "v", "next");
        let mut two_c3 = LabeledGraph::new();
        let mut ids = Vec::new();
        for i in 0..6 {
            ids.push(two_c3.add_node(&format!("v{i}"), "v").unwrap());
        }
        for (i, (a, b)) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
            .iter()
            .enumerate()
        {
            two_c3
                .add_edge(&format!("e{i}"), ids[*a], ids[*b], "next")
                .unwrap();
        }
        assert_eq!(wl_graph_hash(&c6), wl_graph_hash(&two_c3));
    }

    #[test]
    fn different_sizes_hash_differently() {
        let g1 = cycle_graph(5, "v", "next");
        let g2 = cycle_graph(6, "v", "next");
        assert_ne!(wl_graph_hash(&g1), wl_graph_hash(&g2));
    }

    #[test]
    fn rounds_are_bounded_by_stabilization() {
        let g = path_graph(8, "v", "next");
        let r = wl_colors(&g, 100);
        assert!(r.rounds <= 8, "rounds {}", r.rounds);
    }
}
