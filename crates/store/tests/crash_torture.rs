//! Crash-torture suite for the durable write path.
//!
//! Two layers of violence:
//!
//! 1. **Truncation sweep** (always compiled): the WAL of a multi-batch
//!    history is cut at *every* byte offset and reopened; recovery must
//!    yield exactly the state of the longest committed prefix that fits
//!    in the cut — never a panic, never a partial batch.
//! 2. **Injected-fault campaigns** (`--features fault-injection`): the
//!    writer is killed mid-append at every byte offset via the
//!    `wal::append` crash site, fsync failures and short reads are
//!    fired from seeded plans at `wal::fsync` / `wal::read`, and
//!    compaction is crashed at `segment::write` — each time asserting
//!    the same invariant: recovered state equals a committed prefix.

use kgq_store::wal::{encode_batch, EdgeRec, StoreOp, WAL_MAGIC};
use kgq_store::DurableStore;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kgq-torture-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The three-batch history every sweep uses: inserts, a delete that
/// tombstones batch 1, and an edge, so replay exercises every op kind.
fn history() -> Vec<Vec<StoreOp>> {
    let t = |s: &str, p: &str, o: &str| StoreOp::Insert {
        s: s.into(),
        p: p.into(),
        o: o.into(),
    };
    let d = |s: &str, p: &str, o: &str| StoreOp::Delete {
        s: s.into(),
        p: p.into(),
        o: o.into(),
    };
    vec![
        vec![t("a", "knows", "b"), t("b", "knows", "c")],
        vec![
            d("a", "knows", "b"),
            t("c", "knows", "d"),
            StoreOp::EdgeAdd(EdgeRec {
                id: "e1".into(),
                src: "x".into(),
                src_label: "person".into(),
                label: "rides".into(),
                dst: "y".into(),
                dst_label: "bus".into(),
            }),
        ],
        vec![t("d", "likes", "e")],
    ]
}

fn stage(store: &mut DurableStore, ops: &[StoreOp]) {
    for op in ops {
        match op {
            StoreOp::Insert { s, p, o } => store.stage_insert(s, p, o),
            StoreOp::Delete { s, p, o } => store.stage_delete(s, p, o),
            StoreOp::EdgeAdd(e) => store.stage_edge(e.clone()),
        }
    }
}

/// Observable committed state: generation, sorted triples, edge ids.
type State = (u64, Vec<(String, String, String)>, Vec<String>);

fn state(store: &DurableStore) -> State {
    (
        store.generation(),
        store.scan_all(),
        store.all_edges().map(|e| e.id.clone()).collect(),
    )
}

/// Builds the history in `dir`, returning the expected state after each
/// committed prefix (index k = first k batches) and the WAL byte
/// boundaries of each batch.
fn build_history(dir: &Path) -> (Vec<State>, Vec<usize>) {
    let (mut store, _) = DurableStore::open(dir).unwrap();
    let mut states = vec![state(&store)];
    let mut boundaries = vec![WAL_MAGIC.len()];
    for (i, batch) in history().iter().enumerate() {
        stage(&mut store, batch);
        store.commit().unwrap();
        states.push(state(&store));
        boundaries.push(boundaries[i] + encode_batch(batch, (i + 1) as u64).len());
    }
    assert_eq!(store.wal_len() as usize, *boundaries.last().unwrap());
    (states, boundaries)
}

/// Number of whole batches that fit in a `cut`-byte WAL prefix.
fn committed_within(boundaries: &[usize], cut: usize) -> usize {
    boundaries.iter().skip(1).filter(|&&b| b <= cut).count()
}

#[test]
fn truncation_sweep_every_byte_offset() {
    let src = tmp_dir("trunc-src");
    let (states, boundaries) = build_history(&src);
    let wal = std::fs::read(src.join("wal.log")).unwrap();
    let dst = tmp_dir("trunc-dst");
    for cut in WAL_MAGIC.len()..=wal.len() {
        std::fs::write(dst.join("wal.log"), &wal[..cut]).unwrap();
        let (store, replay) = DurableStore::open(&dst).unwrap();
        let k = committed_within(&boundaries, cut);
        assert_eq!(
            state(&store),
            states[k],
            "cut at {cut}: recovered state is not the committed prefix"
        );
        assert_eq!(replay.batches.len(), k);
        assert_eq!(replay.committed_len as usize, boundaries[k]);
        store.check_invariants().unwrap();
        // Recovery truncated the torn bytes: a second open is clean.
        drop(store);
        let (store2, replay2) = DurableStore::open(&dst).unwrap();
        assert_eq!(state(&store2), states[k], "cut at {cut}: reopen diverged");
        assert_eq!(replay2.total_len as usize, boundaries[k]);
    }
    let _ = std::fs::remove_dir_all(&src);
    let _ = std::fs::remove_dir_all(&dst);
}

#[test]
fn truncation_sweep_with_compacted_base() {
    // Same sweep, but batch 1 is already folded into a segment — the
    // cut only tears batches 2..: recovery must keep the base intact.
    let src = tmp_dir("trunc-seg-src");
    let (mut store, _) = DurableStore::open(&src).unwrap();
    let batches = history();
    stage(&mut store, &batches[0]);
    store.commit().unwrap();
    store.compact().unwrap();
    let mut states = vec![state(&store)];
    let mut boundaries = vec![WAL_MAGIC.len()];
    for (i, batch) in batches[1..].iter().enumerate() {
        stage(&mut store, batch);
        store.commit().unwrap();
        states.push(state(&store));
        boundaries.push(boundaries[i] + encode_batch(batch, (i + 2) as u64).len());
    }
    drop(store);
    let wal = std::fs::read(src.join("wal.log")).unwrap();
    let seg = std::fs::read(src.join("base.seg")).unwrap();
    let dst = tmp_dir("trunc-seg-dst");
    std::fs::write(dst.join("base.seg"), &seg).unwrap();
    for cut in WAL_MAGIC.len()..=wal.len() {
        std::fs::write(dst.join("wal.log"), &wal[..cut]).unwrap();
        let (store, _) = DurableStore::open(&dst).unwrap();
        let k = committed_within(&boundaries, cut);
        assert_eq!(state(&store), states[k], "cut at {cut} with segment base");
        store.check_invariants().unwrap();
    }
    let _ = std::fs::remove_dir_all(&src);
    let _ = std::fs::remove_dir_all(&dst);
}

#[cfg(feature = "fault-injection")]
mod injected {
    use super::*;
    use kgq_core::govern::fault::{self, Action};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Mutex, MutexGuard, Once};

    static LOCK: Mutex<()> = Mutex::new(());

    /// Serializes tests on the process-global fault plan and silences
    /// the panic hook for injected crashes (they are the test's point;
    /// their backtraces are noise).
    fn serial() -> MutexGuard<'static, ()> {
        static HOOK: Once = Once::new();
        HOOK.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected"))
                    .or_else(|| {
                        info.payload()
                            .downcast_ref::<&str>()
                            .map(|s| s.contains("injected"))
                    })
                    .unwrap_or(false);
                if !injected {
                    default(info);
                }
            }));
        });
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        fault::clear();
        guard
    }

    /// splitmix64, duplicated here so campaign parameters are derived
    /// deterministically from a seed without touching the armed plan.
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Kills the writer at every byte offset of a batch append and
    /// asserts recovery equals a committed prefix: the torn batch is
    /// discarded unless every one of its bytes reached the file.
    #[test]
    fn crash_sweep_every_append_offset() {
        let _guard = serial();
        let batches = history();
        let batch2 = encode_batch(&batches[1], 2);
        for n in 0..=batch2.len() {
            fault::clear();
            let dir = tmp_dir(&format!("crash-{n}"));
            let (mut store, _) = DurableStore::open(&dir).unwrap();
            stage(&mut store, &batches[0]);
            store.commit().unwrap();
            let before = state(&store);
            let after = {
                // What full durability of batch 2 would look like.
                let probe = tmp_dir(&format!("crash-probe-{n}"));
                let (mut p, _) = DurableStore::open(&probe).unwrap();
                stage(&mut p, &batches[0]);
                p.commit().unwrap();
                stage(&mut p, &batches[1]);
                p.commit().unwrap();
                let s = state(&p);
                let _ = std::fs::remove_dir_all(&probe);
                s
            };
            fault::arm("wal::append", Action::CrashAfter(n as u64), 0);
            stage(&mut store, &batches[1]);
            let outcome = catch_unwind(AssertUnwindSafe(|| store.commit()));
            assert!(outcome.is_err(), "offset {n}: injected crash did not fire");
            drop(store);
            fault::clear();
            let (recovered, replay) = DurableStore::open(&dir).unwrap();
            let got = state(&recovered);
            if n < batch2.len() {
                assert_eq!(got, before, "offset {n}: torn batch leaked into state");
                assert_eq!(replay.batches.len(), 1);
            } else {
                assert_eq!(got, after, "offset {n}: fully-written batch lost");
                assert_eq!(replay.batches.len(), 2);
            }
            recovered.check_invariants().unwrap();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// Seeded fsync-failure campaign: a failing commit must report the
    /// error, leave the in-memory view unchanged, keep the log usable
    /// for later commits, and never surface after reopen.
    #[test]
    fn fsync_failure_campaign() {
        let _guard = serial();
        let batches = history();
        for seed in 0..24u64 {
            fault::clear();
            let dir = tmp_dir(&format!("fsync-{seed}"));
            let (mut store, _) = DurableStore::open(&dir).unwrap();
            // The armed plan fires on a seed-derived commit index.
            fault::arm_seeded(
                seed,
                &["wal::fsync"],
                Action::FsyncFail,
                batches.len() as u64,
            );
            let mut committed = 0u64;
            let mut failed = 0;
            for batch in &batches {
                let before = state(&store);
                stage(&mut store, batch);
                match store.commit() {
                    Ok(generation) => {
                        committed = generation;
                        assert_eq!(store.generation(), generation);
                    }
                    Err(_) => {
                        failed += 1;
                        assert_eq!(
                            state(&store),
                            before,
                            "seed {seed}: failed commit mutated the view"
                        );
                    }
                }
            }
            assert_eq!(failed, 1, "seed {seed}: exactly one fsync should fail");
            let in_memory = state(&store);
            drop(store);
            fault::clear();
            let (recovered, replay) = DurableStore::open(&dir).unwrap();
            assert_eq!(state(&recovered), in_memory, "seed {seed}: reopen diverged");
            assert_eq!(replay.generation, committed);
            assert_eq!(replay.tail, kgq_store::TailState::Clean);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// Seeded short-read campaign: opening a store whose WAL read is
    /// clipped at an arbitrary byte must recover a committed prefix —
    /// cleanly, with no panic and no partial batch.
    #[test]
    fn short_read_campaign() {
        let _guard = serial();
        let src = tmp_dir("short-src");
        let (states, boundaries) = build_history(&src);
        let total = *boundaries.last().unwrap();
        let wal = std::fs::read(src.join("wal.log")).unwrap();
        let dst = tmp_dir("short-dst");
        for seed in 0..48u64 {
            fault::clear();
            let n = (splitmix64(seed) as usize) % (total + 1);
            std::fs::write(dst.join("wal.log"), &wal).unwrap();
            fault::arm("wal::read", Action::ShortRead(n as u64), 0);
            let (store, replay) = DurableStore::open(&dst).unwrap();
            let k = committed_within(&boundaries, n.max(WAL_MAGIC.len()));
            assert_eq!(
                state(&store),
                states[k],
                "seed {seed} (clip {n}): not a committed prefix"
            );
            assert_eq!(replay.batches.len(), k);
            store.check_invariants().unwrap();
            let _ = std::fs::remove_file(dst.join("wal.log"));
        }
        let _ = std::fs::remove_dir_all(&src);
        let _ = std::fs::remove_dir_all(&dst);
    }

    /// Compaction killed or failed at the segment site must leave the
    /// store exactly as committed: the old segment survives (rename
    /// never happened) and the WAL still replays everything.
    #[test]
    fn compaction_crash_keeps_committed_state() {
        let _guard = serial();
        let batches = history();
        // A few representative offsets into the segment image plus the
        // two error actions; every case must preserve the full state.
        let cases: Vec<Action> = vec![
            Action::CrashAfter(0),
            Action::CrashAfter(1),
            Action::CrashAfter(9),
            Action::CrashAfter(64),
            Action::TornWrite(13),
            Action::FsyncFail,
        ];
        for (i, action) in cases.into_iter().enumerate() {
            fault::clear();
            let dir = tmp_dir(&format!("compact-{i}"));
            let (mut store, _) = DurableStore::open(&dir).unwrap();
            for batch in &batches {
                stage(&mut store, batch);
                store.commit().unwrap();
            }
            let committed = state(&store);
            fault::arm("segment::write", action, 0);
            match action {
                Action::CrashAfter(_) => {
                    let outcome = catch_unwind(AssertUnwindSafe(|| store.compact()));
                    assert!(outcome.is_err(), "case {i}: crash did not fire");
                }
                _ => {
                    let err = store.compact();
                    assert!(err.is_err(), "case {i}: fault did not surface");
                    // The store stays fully usable after the failure.
                    assert_eq!(state(&store), committed);
                }
            }
            drop(store);
            fault::clear();
            let (recovered, _) = DurableStore::open(&dir).unwrap();
            assert_eq!(state(&recovered), committed, "case {i}: state lost");
            assert!(
                !dir.join("base.seg").exists(),
                "case {i}: torn segment must never be renamed into place"
            );
            // And a retried compaction (no fault) succeeds.
            let (mut retry, _) = DurableStore::open(&dir).unwrap();
            retry.compact().unwrap();
            assert_eq!(state(&retry), committed);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// A shortened mapping at `segment::mmap` must be caught by the
    /// open-time CRC — a torn view is never served, and a clean reopen
    /// sees the full committed state.
    #[test]
    fn short_mapping_fails_crc_at_open() {
        let _guard = serial();
        fault::clear();
        let dir = tmp_dir("mmap-short");
        let (mut store, _) = DurableStore::open(&dir).unwrap();
        for batch in &history() {
            stage(&mut store, batch);
            store.commit().unwrap();
        }
        store.compact().unwrap();
        let committed = state(&store);
        drop(store);
        let seg_path = dir.join("base.seg");
        let full = std::fs::metadata(&seg_path).unwrap().len();
        for cut in [0u64, 7, 12, full / 2, full - 1] {
            fault::arm("segment::mmap", Action::ShortRead(cut), 0);
            assert!(
                kgq_store::SegmentMap::open(&seg_path).is_err(),
                "cut at {cut} of {full} served a torn mapping"
            );
            fault::arm("segment::mmap", Action::ShortRead(cut), 0);
            assert!(
                DurableStore::open(&dir).is_err(),
                "recovery at cut {cut} accepted a torn segment"
            );
            fault::clear();
        }
        let (recovered, _) = DurableStore::open(&dir).unwrap();
        assert_eq!(state(&recovered), committed);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
