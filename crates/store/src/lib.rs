//! `kgq-store`: the durable, crash-recoverable write path.
//!
//! The read-optimised structures in `kgq-rdf` and `kgq-graph` are
//! immutable-at-heart: six sorted triple orderings and CSR-ish
//! adjacency are wonderful to query and miserable to mutate in place.
//! This crate follows the classic LSM recipe (MillenniumDB, RocksDB)
//! to make them updatable *and* durable without giving that up:
//!
//! 1. **WAL** ([`wal`]) — every mutation batch is appended to a
//!    checksummed, length-prefixed log and fsynced *before* it is
//!    acknowledged. Recovery replays the longest valid prefix and
//!    stops cleanly at any torn or corrupt tail.
//! 2. **Delta overlay** ([`overlay`]) — committed mutations live in
//!    small added/tombstoned sets consulted alongside the immutable
//!    base segment, so reads see `(base ∪ added) ∖ tombstoned`.
//! 3. **Compaction** ([`DurableStore::compact`]) — folds the overlay
//!    into a fresh immutable segment (written atomically: tmp file,
//!    fsync, rename, directory fsync) and truncates the log.
//! 4. **Generations** — every committed batch advances a generation
//!    stamp with the same contract as `kgq_core::cache::QueryCache`:
//!    cached results keyed at an old generation become unreachable the
//!    moment a commit lands.
//!
//! Fault injection: with the `fault-injection` feature the I/O layer
//! exposes sites `wal::append`, `wal::fsync`, `wal::read`,
//! `segment::write` and `segment::mmap` (see `docs/FAULT_SITES.md`)
//! which the crash-torture suite uses to kill the writer at every byte
//! offset and prove that recovery always equals a committed prefix.

#![deny(missing_docs)]

pub mod crc;
pub mod durable;
pub mod mmap;
pub mod overlay;
pub mod segment;
pub mod wal;

pub use crc::crc32;
pub use durable::{DurableStore, VerifyReport};
pub use mmap::SegmentMap;
pub use overlay::DeltaOverlay;
pub use wal::{EdgeRec, Replay, StoreOp, TailState, Wal};

/// Consults the fault-injection plan at an I/O site and translates the
/// armed action into an [`wal::IoFault`] for the storage layer to act
/// on. `Panic`/`DelayMs` actions are executed directly by
/// `kgq_core::govern::fault::io`; non-I/O actions and the disarmed case
/// yield `None`. Compiles to `None` when the `fault-injection` feature
/// is off, so production builds carry zero overhead.
#[cfg(feature = "fault-injection")]
#[macro_export]
macro_rules! io_fault {
    ($site:expr) => {{
        match ::kgq_core::govern::fault::io($site) {
            Some(::kgq_core::govern::fault::Action::TornWrite(n)) => {
                Some($crate::wal::IoFault::Torn(n as usize))
            }
            Some(::kgq_core::govern::fault::Action::ShortRead(n)) => {
                Some($crate::wal::IoFault::Short(n as usize))
            }
            Some(::kgq_core::govern::fault::Action::FsyncFail) => Some($crate::wal::IoFault::Fsync),
            Some(::kgq_core::govern::fault::Action::CrashAfter(n)) => {
                Some($crate::wal::IoFault::Crash(n as usize))
            }
            _ => None,
        }
    }};
}

/// Disarmed variant: the site string is type-checked and discarded.
#[cfg(not(feature = "fault-injection"))]
#[macro_export]
macro_rules! io_fault {
    ($site:expr) => {{
        let _site: &str = $site;
        Option::<$crate::wal::IoFault>::None
    }};
}
