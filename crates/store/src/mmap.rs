//! Memory-mapped immutable segment reader.
//!
//! [`SegmentMap`] opens a `KGQSEG01` file, maps it read-only (falling
//! back to a heap read where `mmap` is unavailable or fails), verifies
//! the whole-file CRC **once**, and then serves borrowed slices out of
//! the mapping — in particular the optional bit-packed adjacency
//! section, which the scale query path consumes zero-copy through
//! `kgq_graph::packed::PackedView::parse`. A 10⁸-edge graph is queried
//! without ever materializing its adjacency on the heap: the kernel
//! pages the few blocks each sweep touches.
//!
//! The mapping is private and read-only; the file is immutable by the
//! store's atomic-replacement contract (tmp + fsync + rename), so the
//! pages can never change under us. Compaction *replaces* the segment
//! file rather than rewriting it, which on POSIX leaves an existing
//! mapping pointing at the old inode — a reader holding a `SegmentMap`
//! across a compaction keeps a consistent (older) snapshot, exactly
//! like the generation-stamped caches.
//!
//! The `mmap`/`munmap` calls are declared by hand (`extern "C"`): the
//! build carries no libc-binding crate, and on every supported unix
//! the two symbols live in the C library the binary already links.

use crate::crc::crc32;
use crate::io_fault;
use crate::segment::{self, Segment, SEG_MAGIC};
use crate::wal::IoFault;
use std::path::Path;

fn data_err(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// The bytes behind a [`SegmentMap`]: a real mapping or a heap copy.
enum MapInner {
    /// A `PROT_READ`/`MAP_PRIVATE` mapping of the whole file.
    #[cfg(unix)]
    Mapped {
        ptr: *mut core::ffi::c_void,
        len: usize,
    },
    /// Fallback: the whole file read into memory.
    Heap(Vec<u8>),
}

#[cfg(unix)]
mod sys {
    //! Hand-declared slice of the C library's mmap interface. Values
    //! are the Linux generic ABI constants (identical on x86-64,
    //! aarch64 and riscv64, and on the BSDs for these three).
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    unsafe extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

impl MapInner {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            // Safety: the pointer came from a successful `mmap` of
            // exactly `len` readable bytes and lives until `munmap` in
            // `Drop`; the mapping is private, so no other process can
            // mutate the pages we see.
            MapInner::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr as *const u8, *len)
            },
            MapInner::Heap(v) => v,
        }
    }
}

impl Drop for MapInner {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let MapInner::Mapped { ptr, len } = self {
            // Safety: `ptr`/`len` are the exact values returned by
            // `mmap`; the slice borrows handed out by `bytes` cannot
            // outlive the owning `SegmentMap`.
            unsafe {
                sys::munmap(*ptr, *len);
            }
        }
    }
}

// Safety: the mapping is read-only for its whole lifetime; `&[u8]`
// views of it are as shareable as any immutable buffer.
unsafe impl Send for MapInner {}
unsafe impl Sync for MapInner {}

#[cfg(unix)]
fn map_file(path: &Path) -> std::io::Result<Option<MapInner>> {
    use std::os::unix::io::AsRawFd;
    let f = std::fs::File::open(path)?;
    let len = f.metadata()?.len();
    if len == 0 || len > usize::MAX as u64 {
        // mmap rejects zero-length maps; let the caller heap-read and
        // fail validation with a proper decode error.
        return Ok(None);
    }
    let len = len as usize;
    // Safety: a fresh anonymous-address, read-only, private mapping of
    // a file descriptor we own; failure is reported as MAP_FAILED.
    let ptr = unsafe {
        sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ,
            sys::MAP_PRIVATE,
            f.as_raw_fd(),
            0,
        )
    };
    if ptr as isize == -1 {
        return Ok(None);
    }
    Ok(Some(MapInner::Mapped { ptr, len }))
}

#[cfg(not(unix))]
fn map_file(_path: &Path) -> std::io::Result<Option<MapInner>> {
    Ok(None)
}

/// A validated, memory-mapped segment file.
///
/// Construction verifies magic and whole-file CRC once and locates the
/// section boundaries; afterwards every accessor is a bounds-checked
/// slice into the mapping. Dropping the map unmaps the pages.
pub struct SegmentMap {
    inner: MapInner,
    generation: u64,
    n_triples: u32,
    n_edges: u32,
    /// Byte range of the packed adjacency image within the file.
    packed: Option<std::ops::Range<usize>>,
    /// Whether the bytes come from a real mapping (false = heap read).
    mapped: bool,
}

/// Advances `*off` past one `strlen:u32le + bytes` string.
fn skip_str(bytes: &[u8], off: &mut usize) -> std::io::Result<()> {
    let len = read_u32(bytes, off)? as usize;
    if bytes.len() - *off < len {
        return Err(data_err("segment payload truncated".into()));
    }
    *off += len;
    Ok(())
}

fn read_u32(bytes: &[u8], off: &mut usize) -> std::io::Result<u32> {
    if bytes.len() - *off < 4 {
        return Err(data_err("segment payload truncated".into()));
    }
    let v = u32::from_le_bytes([
        bytes[*off],
        bytes[*off + 1],
        bytes[*off + 2],
        bytes[*off + 3],
    ]);
    *off += 4;
    Ok(v)
}

impl SegmentMap {
    /// Opens and validates the segment at `path`: maps it (heap read
    /// as a fallback), checks magic, verifies the CRC over the whole
    /// payload once, and records where each section lives. Injected
    /// fault site `segment::mmap` can shorten the visible bytes — the
    /// CRC then fails, proving a torn view can never be served.
    pub fn open(path: &Path) -> std::io::Result<SegmentMap> {
        let (inner, mapped) = match map_file(path)? {
            Some(m) => (m, true),
            None => (MapInner::Heap(std::fs::read(path)?), false),
        };
        let mut visible = inner.bytes().len();
        if let Some(IoFault::Short(n)) = io_fault!("segment::mmap") {
            visible = visible.min(n);
        }
        let bytes = &inner.bytes()[..visible];
        if bytes.len() < SEG_MAGIC.len() + 4 || &bytes[..SEG_MAGIC.len()] != SEG_MAGIC {
            return Err(data_err("not a kgq segment (bad magic)".into()));
        }
        let payload = &bytes[SEG_MAGIC.len()..bytes.len() - 4];
        let stored = u32::from_le_bytes([
            bytes[bytes.len() - 4],
            bytes[bytes.len() - 3],
            bytes[bytes.len() - 2],
            bytes[bytes.len() - 1],
        ]);
        if crc32(payload) != stored {
            return Err(data_err("segment checksum mismatch".into()));
        }
        // Walk the variable-length sections to find the packed image.
        // This touches the same pages the CRC just warmed.
        let mut off = 0usize;
        if payload.len() < 8 {
            return Err(data_err("segment payload truncated".into()));
        }
        let generation = u64::from_le_bytes([
            payload[0], payload[1], payload[2], payload[3], payload[4], payload[5], payload[6],
            payload[7],
        ]);
        off += 8;
        let n_triples = read_u32(payload, &mut off)?;
        let n_edges = read_u32(payload, &mut off)?;
        for _ in 0..n_triples as u64 * 3 {
            skip_str(payload, &mut off)?;
        }
        for _ in 0..n_edges as u64 * 6 {
            skip_str(payload, &mut off)?;
        }
        let packed = if off == payload.len() {
            None
        } else {
            let len = read_u32(payload, &mut off)? as usize;
            if payload.len() - off != len {
                return Err(data_err("segment has trailing bytes".into()));
            }
            let start = SEG_MAGIC.len() + off;
            Some(start..start + len)
        };
        Ok(SegmentMap {
            inner,
            generation,
            n_triples,
            n_edges,
            packed,
            mapped,
        })
    }

    /// Generation stamp of the segment.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of string triples in the base section.
    pub fn triple_count(&self) -> usize {
        self.n_triples as usize
    }

    /// Number of edge records in the base section.
    pub fn edge_count(&self) -> usize {
        self.n_edges as usize
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> usize {
        self.inner.bytes().len()
    }

    /// Whether the bytes are a real `mmap` (false = heap fallback).
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }

    /// The packed adjacency image, borrowed straight from the mapping
    /// (`None` if the segment has no packed section). Feed this to
    /// `kgq_graph::packed::PackedView::parse` for zero-copy queries.
    pub fn packed_bytes(&self) -> Option<&[u8]> {
        self.packed.clone().map(|r| &self.inner.bytes()[r])
    }

    /// Fully decodes the string sections into an owned [`Segment`]
    /// (the packed image is copied too). Used by recovery, which needs
    /// owned triples to build the in-memory base store.
    pub fn to_segment(&self) -> std::io::Result<Segment> {
        segment::decode(self.inner.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::EdgeRec;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kgq-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample(packed: Option<Vec<u8>>) -> Segment {
        Segment {
            generation: 42,
            triples: vec![("s".into(), "p".into(), "o".into())],
            edges: vec![EdgeRec {
                id: "e1".into(),
                src: "x".into(),
                src_label: "person".into(),
                label: "rides".into(),
                dst: "y".into(),
                dst_label: "bus".into(),
            }],
            packed,
        }
    }

    #[test]
    fn maps_and_exposes_sections() {
        let path = tmp("seg-basic");
        let blob: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let seg = sample(Some(blob.clone()));
        segment::write_atomic(&path, &seg).unwrap();
        let map = SegmentMap::open(&path).unwrap();
        assert_eq!(map.generation(), 42);
        assert_eq!(map.triple_count(), 1);
        assert_eq!(map.edge_count(), 1);
        assert_eq!(map.packed_bytes(), Some(blob.as_slice()));
        assert_eq!(map.to_segment().unwrap(), seg);
        assert!(cfg!(not(unix)) || map.is_mapped());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_segments_have_no_packed_bytes() {
        let path = tmp("seg-legacy");
        let seg = sample(None);
        segment::write_atomic(&path, &seg).unwrap();
        let map = SegmentMap::open(&path).unwrap();
        assert_eq!(map.packed_bytes(), None);
        assert_eq!(map.to_segment().unwrap(), seg);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corruption_is_rejected_at_open() {
        let path = tmp("seg-corrupt");
        let seg = sample(Some(vec![7u8; 64]));
        let mut image = segment::encode(&seg);
        let mid = image.len() / 2;
        image[mid] ^= 0x10;
        std::fs::write(&path, &image).unwrap();
        assert!(SegmentMap::open(&path).is_err());
        // Truncations die at open too, never at access time.
        std::fs::write(&path, &image[..image.len() - 9]).unwrap();
        assert!(SegmentMap::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
