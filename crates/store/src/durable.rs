//! [`DurableStore`]: the crash-recoverable store directory.
//!
//! On disk a store is a directory holding two files:
//!
//! * `base.seg` — the immutable compacted segment (absent = empty base);
//! * `wal.log` — the write-ahead log of batches committed since.
//!
//! In memory it is the base [`TripleStore`] plus a [`DeltaOverlay`] and
//! the committed-but-uncompacted edge records. The lifecycle is
//! stage → [`commit`](DurableStore::commit) (WAL append + fsync, *then*
//! apply to the overlay, *then* advance the generation) →
//! [`compact`](DurableStore::compact) (fold overlay into a fresh
//! segment written atomically, truncate the log).
//!
//! ## Recovery invariant
//!
//! Opening a store directory after a crash at *any* point yields
//! exactly the state of some committed prefix of its history:
//!
//! * a batch whose commit marker never became durable is discarded;
//! * a torn WAL tail is truncated, never replayed, never a panic;
//! * a crash between segment rename and WAL truncation is healed by
//!   the generation monotonicity check — replay refuses batches whose
//!   stamp does not exceed the segment's, which is precisely the set
//!   compaction already folded in.

use crate::overlay::{DeltaOverlay, StrTriple};
use crate::segment::{self, Segment};
use crate::wal::{EdgeRec, Replay, StoreOp, TailState, Wal};
use kgq_rdf::TripleStore;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

const SEGMENT_FILE: &str = "base.seg";
const WAL_FILE: &str = "wal.log";

/// A durable triple + edge store rooted at a directory.
pub struct DurableStore {
    dir: PathBuf,
    wal: Wal,
    base: TripleStore,
    base_edges: Vec<EdgeRec>,
    overlay: DeltaOverlay,
    edges: Vec<EdgeRec>,
    edge_ids: BTreeSet<String>,
    pending: Vec<StoreOp>,
    generation: u64,
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .field("generation", &self.generation)
            .field("base_len", &self.base.len())
            .field("overlay_added", &self.overlay.added_len())
            .field("overlay_tombstoned", &self.overlay.tombstoned_len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl DurableStore {
    /// Opens the store at `dir`, creating it (and the directory) if
    /// absent, and recovers: loads the segment, replays the WAL's
    /// committed prefix, truncates any torn tail. Returns the store
    /// and the WAL [`Replay`] forensics.
    pub fn open(dir: &Path) -> std::io::Result<(DurableStore, Replay)> {
        std::fs::create_dir_all(dir)?;
        let seg_path = dir.join(SEGMENT_FILE);
        let seg = if seg_path.exists() {
            // Map rather than read: the CRC is verified once against
            // the mapping and recovery decodes straight out of it.
            crate::mmap::SegmentMap::open(&seg_path)?.to_segment()?
        } else {
            Segment::default()
        };
        let (wal, replay) = Wal::open(&dir.join(WAL_FILE), seg.generation)?;
        let mut base = TripleStore::new();
        for (s, p, o) in &seg.triples {
            base.insert_strs(s, p, o);
        }
        let mut store = DurableStore {
            dir: dir.to_path_buf(),
            wal,
            base,
            base_edges: Vec::new(),
            overlay: DeltaOverlay::new(),
            edges: Vec::new(),
            edge_ids: seg.edges.iter().map(|e| e.id.clone()).collect(),
            pending: Vec::new(),
            generation: seg.generation,
        };
        store.base_edges = seg.edges;
        for (generation, ops) in &replay.batches {
            for op in ops {
                store.apply(op.clone());
            }
            store.generation = *generation;
        }
        Ok((store, replay))
    }

    fn apply(&mut self, op: StoreOp) {
        match op {
            StoreOp::Insert { s, p, o } => {
                self.overlay.insert(&self.base, &s, &p, &o);
            }
            StoreOp::Delete { s, p, o } => {
                self.overlay.delete(&self.base, &s, &p, &o);
            }
            StoreOp::EdgeAdd(e) => {
                if self.edge_ids.insert(e.id.clone()) {
                    self.edges.push(e);
                }
            }
        }
    }

    /// Stages a triple insert into the pending batch (not yet durable).
    pub fn stage_insert(&mut self, s: &str, p: &str, o: &str) {
        self.pending.push(StoreOp::Insert {
            s: s.to_owned(),
            p: p.to_owned(),
            o: o.to_owned(),
        });
    }

    /// Stages a triple delete into the pending batch (not yet durable).
    pub fn stage_delete(&mut self, s: &str, p: &str, o: &str) {
        self.pending.push(StoreOp::Delete {
            s: s.to_owned(),
            p: p.to_owned(),
            o: o.to_owned(),
        });
    }

    /// Stages an edge add into the pending batch (not yet durable).
    pub fn stage_edge(&mut self, e: EdgeRec) {
        self.pending.push(StoreOp::EdgeAdd(e));
    }

    /// Number of staged, uncommitted operations.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Commits the pending batch: appends it to the WAL with the next
    /// generation stamp, fsyncs, and only then applies it to the
    /// overlay and advances the generation. On error the batch is
    /// discarded (it was never acknowledged) and the in-memory state is
    /// unchanged. Returns the new generation; an empty batch commits
    /// nothing and returns the current one.
    pub fn commit(&mut self) -> std::io::Result<u64> {
        if self.pending.is_empty() {
            return Ok(self.generation);
        }
        let next = self.generation + 1;
        let ops = std::mem::take(&mut self.pending);
        self.wal.append_batch(&ops, next)?;
        for op in ops {
            self.apply(op);
        }
        self.generation = next;
        Ok(next)
    }

    /// Generation of the last committed batch (0 for a fresh store).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes of committed WAL (including the header).
    pub fn wal_len(&self) -> u64 {
        self.wal.committed_len()
    }

    /// Overlay sizes `(added, tombstoned)`.
    pub fn overlay_sizes(&self) -> (usize, usize) {
        (self.overlay.added_len(), self.overlay.tombstoned_len())
    }

    /// Merged triple count (committed view; staged ops are invisible).
    pub fn len(&self) -> usize {
        self.overlay.merged_len(&self.base)
    }

    /// True when the merged view holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Does the committed merged view contain the triple?
    pub fn contains(&self, s: &str, p: &str, o: &str) -> bool {
        self.overlay.contains(&self.base, s, p, o)
    }

    /// Merged pattern count: base prefix counts corrected by the
    /// overlay, without materializing. `None` = wildcard.
    pub fn count(&self, s: Option<&str>, p: Option<&str>, o: Option<&str>) -> usize {
        let matches = |ts: &str, tp: &str, to: &str| -> bool {
            s.is_none_or(|s| s == ts) && p.is_none_or(|p| p == tp) && o.is_none_or(|o| o == to)
        };
        let base_count = {
            let sym = |t: Option<&str>| t.map(|t| self.base.get_term(t));
            match (sym(s), sym(p), sym(o)) {
                // A bound term the base never interned matches nothing.
                (Some(None), _, _) | (_, Some(None), _) | (_, _, Some(None)) => 0,
                (s, p, o) => self.base.count(s.flatten(), p.flatten(), o.flatten()),
            }
        };
        let added = self
            .overlay
            .added()
            .filter(|(ts, tp, to)| matches(ts, tp, to))
            .count();
        let dead = self
            .overlay
            .tombstoned()
            .filter(|(ts, tp, to)| matches(ts, tp, to))
            .count();
        base_count + added - dead
    }

    /// All triples of the committed merged view, sorted, as strings.
    pub fn scan_all(&self) -> Vec<StrTriple> {
        let merged = self.materialize();
        let mut out: Vec<StrTriple> = merged
            .iter()
            .map(|t| {
                (
                    merged.term_str(t.s).to_owned(),
                    merged.term_str(t.p).to_owned(),
                    merged.term_str(t.o).to_owned(),
                )
            })
            .collect();
        out.sort();
        out
    }

    /// Folds base + overlay into a fresh read-optimised [`TripleStore`]
    /// (the snapshot handed to SPARQL / LFTJ execution).
    pub fn materialize(&self) -> TripleStore {
        self.overlay.materialize(&self.base)
    }

    /// All committed edge records, base first, in commit order.
    pub fn all_edges(&self) -> impl Iterator<Item = &EdgeRec> {
        self.base_edges.iter().chain(self.edges.iter())
    }

    /// Compacts: folds the overlay and uncompacted edges into a fresh
    /// segment written atomically, then truncates the WAL. A crash
    /// anywhere in between recovers to the same committed state (see
    /// the module docs). No-op (but still truncate-safe) when nothing
    /// has been committed since the last compaction.
    pub fn compact(&mut self) -> std::io::Result<()> {
        let merged = self.materialize();
        let triples: Vec<StrTriple> = merged
            .iter()
            .map(|t| {
                (
                    merged.term_str(t.s).to_owned(),
                    merged.term_str(t.p).to_owned(),
                    merged.term_str(t.o).to_owned(),
                )
            })
            .collect();
        let edges: Vec<EdgeRec> = self.all_edges().cloned().collect();
        let seg = Segment {
            generation: self.generation,
            triples,
            edges,
            // Derived data: a packed image reflects an older base, so
            // compaction drops it; the scale pipeline regenerates it.
            packed: None,
        };
        segment::write_atomic(&self.dir.join(SEGMENT_FILE), &seg)?;
        // The segment is durable; the log's batches are now redundant.
        self.wal.reset()?;
        self.base = merged;
        self.base_edges = seg.edges;
        self.edges.clear();
        self.overlay.clear();
        Ok(())
    }

    /// Read-only integrity check of the store at `dir`: decodes the
    /// segment, scans the WAL, and reports what recovery would do —
    /// without truncating or mutating anything.
    pub fn verify(dir: &Path) -> std::io::Result<VerifyReport> {
        let seg_path = dir.join(SEGMENT_FILE);
        let seg = if seg_path.exists() {
            segment::read(&seg_path)?
        } else {
            Segment::default()
        };
        let wal_path = dir.join(WAL_FILE);
        let replay = if wal_path.exists() {
            let image = crate::wal::read_file_faulted(&wal_path)?;
            if image.len() < crate::wal::WAL_MAGIC.len()
                || &image[..crate::wal::WAL_MAGIC.len()] != crate::wal::WAL_MAGIC
            {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}: not a kgq WAL (bad magic)", wal_path.display()),
                ));
            }
            crate::wal::scan(&image, seg.generation)
        } else {
            crate::wal::scan(crate::wal::WAL_MAGIC, seg.generation)
        };
        Ok(VerifyReport {
            segment_generation: seg.generation,
            segment_triples: seg.triples.len(),
            segment_edges: seg.edges.len(),
            wal_batches: replay.batches.len(),
            wal_generation: replay.generation,
            wal_total_len: replay.total_len,
            wal_committed_len: replay.committed_len,
            uncommitted_ops: replay.uncommitted_ops,
            tail: replay.tail,
        })
    }

    /// Checks the overlay invariants (testing / `verify` support).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.overlay.check_invariants(&self.base)
    }
}

/// What `kgq store verify` reports: segment shape, WAL health, and the
/// committed boundary recovery would truncate to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Generation stamped into the segment.
    pub segment_generation: u64,
    /// Triples in the segment.
    pub segment_triples: usize,
    /// Edge records in the segment.
    pub segment_edges: usize,
    /// Committed batches recoverable from the WAL.
    pub wal_batches: usize,
    /// Generation after replaying those batches.
    pub wal_generation: u64,
    /// Total bytes in the WAL file.
    pub wal_total_len: u64,
    /// Bytes up to the last intact commit marker.
    pub wal_committed_len: u64,
    /// Valid op records past the last commit marker (discarded).
    pub uncommitted_ops: usize,
    /// Why the WAL scan stopped.
    pub tail: TailState,
}

impl VerifyReport {
    /// True when the store is fully clean: no torn tail, no
    /// uncommitted residue.
    pub fn is_clean(&self) -> bool {
        self.tail == TailState::Clean && self.uncommitted_ops == 0
    }

    /// Multi-line human-readable rendering for the CLI.
    pub fn render(&self) -> String {
        format!(
            "segment: generation {} ({} triples, {} edges)\n\
             wal: {} committed batch(es), generation {}, {}/{} bytes committed\n\
             tail: {}{}\n\
             verdict: {}",
            self.segment_generation,
            self.segment_triples,
            self.segment_edges,
            self.wal_batches,
            self.wal_generation,
            self.wal_committed_len,
            self.wal_total_len,
            self.tail.describe(),
            if self.uncommitted_ops > 0 {
                format!(
                    " ({} uncommitted op(s) will be discarded)",
                    self.uncommitted_ops
                )
            } else {
                String::new()
            },
            if self.is_clean() {
                "clean"
            } else {
                "recoverable (open will truncate to the committed prefix)"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kgq-durable-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn commit_reopen_round_trips() {
        let dir = tmp_dir("roundtrip");
        {
            let (mut store, _) = DurableStore::open(&dir).unwrap();
            store.stage_insert("a", "knows", "b");
            store.stage_insert("b", "knows", "c");
            assert_eq!(store.commit().unwrap(), 1);
            store.stage_delete("a", "knows", "b");
            store.stage_edge(EdgeRec {
                id: "e1".into(),
                src: "x".into(),
                src_label: "person".into(),
                label: "rides".into(),
                dst: "y".into(),
                dst_label: "bus".into(),
            });
            assert_eq!(store.commit().unwrap(), 2);
            assert_eq!(store.len(), 1);
        }
        let (store, replay) = DurableStore::open(&dir).unwrap();
        assert_eq!(replay.batches.len(), 2);
        assert_eq!(store.generation(), 2);
        assert_eq!(store.len(), 1);
        assert!(store.contains("b", "knows", "c"));
        assert!(!store.contains("a", "knows", "b"));
        assert_eq!(store.all_edges().count(), 1);
        store.check_invariants().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_folds_and_truncates() {
        let dir = tmp_dir("compact");
        {
            let (mut store, _) = DurableStore::open(&dir).unwrap();
            for i in 0..10 {
                store.stage_insert(&format!("n{i}"), "knows", &format!("n{}", i + 1));
            }
            store.commit().unwrap();
            store.stage_delete("n0", "knows", "n1");
            store.commit().unwrap();
            let wal_before = store.wal_len();
            store.compact().unwrap();
            assert!(store.wal_len() < wal_before);
            assert_eq!(store.overlay_sizes(), (0, 0));
            assert_eq!(store.len(), 9);
            assert_eq!(store.generation(), 2);
        }
        // Reopen: state comes from the segment alone.
        let (store, replay) = DurableStore::open(&dir).unwrap();
        assert!(replay.batches.is_empty());
        assert_eq!(store.generation(), 2);
        assert_eq!(store.len(), 9);
        assert!(!store.contains("n0", "knows", "n1"));
        // Committing after compaction continues the generation line.
        let (mut store, _) = DurableStore::open(&dir).unwrap();
        store.stage_insert("z", "knows", "w");
        assert_eq!(store.commit().unwrap(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_wal_after_compaction_is_ignored() {
        // Simulate a crash between segment rename and WAL truncation:
        // the WAL still holds batches the segment already folded in.
        let dir = tmp_dir("stalewal");
        let (mut store, _) = DurableStore::open(&dir).unwrap();
        store.stage_insert("a", "knows", "b");
        store.commit().unwrap();
        let wal_bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        store.compact().unwrap();
        drop(store);
        std::fs::write(dir.join(WAL_FILE), &wal_bytes).unwrap(); // resurrect stale log
        let (store, replay) = DurableStore::open(&dir).unwrap();
        assert!(replay.batches.is_empty(), "stale batches must be refused");
        assert_eq!(store.generation(), 1);
        assert_eq!(store.len(), 1);
        assert!(store.contains("a", "knows", "b"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn counts_consult_the_overlay() {
        let dir = tmp_dir("counts");
        let (mut store, _) = DurableStore::open(&dir).unwrap();
        store.stage_insert("a", "knows", "b");
        store.stage_insert("a", "knows", "c");
        store.stage_insert("b", "likes", "c");
        store.commit().unwrap();
        store.compact().unwrap(); // into base
        store.stage_insert("a", "knows", "d"); // overlay add
        store.stage_delete("a", "knows", "b"); // overlay tombstone
        store.commit().unwrap();
        assert_eq!(store.count(Some("a"), Some("knows"), None), 2);
        assert_eq!(store.count(None, None, None), 3);
        assert_eq!(store.count(Some("zzz"), None, None), 0);
        assert_eq!(
            store.scan_all(),
            vec![
                ("a".into(), "knows".into(), "c".into()),
                ("a".into(), "knows".into(), "d".into()),
                ("b".into(), "likes".into(), "c".into()),
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_reports_torn_tail() {
        let dir = tmp_dir("verify");
        let (mut store, _) = DurableStore::open(&dir).unwrap();
        store.stage_insert("a", "knows", "b");
        store.commit().unwrap();
        drop(store);
        let clean = DurableStore::verify(&dir).unwrap();
        assert!(clean.is_clean());
        assert_eq!(clean.wal_batches, 1);
        // Tear the tail.
        let mut bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        bytes.extend_from_slice(&[0x07, 0x00]);
        std::fs::write(dir.join(WAL_FILE), &bytes).unwrap();
        let torn = DurableStore::verify(&dir).unwrap();
        assert!(!torn.is_clean());
        assert_eq!(torn.tail, TailState::TornLength);
        assert_eq!(torn.wal_batches, 1, "committed prefix still recoverable");
        assert!(torn.render().contains("recoverable"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
