//! Immutable base segments.
//!
//! A segment is the compacted, read-only image of the store at some
//! generation: every triple and every edge record, string-encoded,
//! with a single CRC over the whole payload. Segments are written
//! atomically — tmp file, fsync, rename over the live name, directory
//! fsync — so a crash during compaction leaves either the old segment
//! or the new one, never a hybrid. That is why, unlike the WAL's
//! tolerated torn tail, a segment that fails its checksum is a *hard
//! error*: it cannot be the residue of a crash, only real corruption.
//!
//! ```text
//! file    := "KGQSEG01" payload crc:u32le      (crc over payload)
//! payload := generation:u64le n_triples:u32le n_edges:u32le
//!            (s p o){n_triples} (id src src_label label dst dst_label){n_edges}
//!            [ packed_len:u32le packed-bytes ]              (optional)
//! s/p/…   := strlen:u32le utf8-bytes
//! ```
//!
//! The optional trailing *packed section* carries a bit-packed
//! adjacency image (`kgq_graph::packed`, magic `KGQPIDX1`) so a scale
//! graph can live in one immutable, CRC-guarded file and be queried
//! straight out of an mmap ([`crate::mmap::SegmentMap`]) without
//! decoding. Segments written before this section existed simply end
//! after the edge records and decode as `packed: None`; any *other*
//! trailing bytes remain a hard error.

use crate::crc::crc32;
use crate::io_fault;
use crate::wal::{EdgeRec, IoFault};
use std::io::Write;
use std::path::Path;

/// Leading magic of every segment file.
pub const SEG_MAGIC: &[u8; 8] = b"KGQSEG01";

/// A decoded segment: the immutable base state at `generation`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Segment {
    /// Generation the segment was compacted at.
    pub generation: u64,
    /// All base triples as term strings.
    pub triples: Vec<(String, String, String)>,
    /// All base edge records (unique ids).
    pub edges: Vec<EdgeRec>,
    /// Optional bit-packed adjacency image (`KGQPIDX1` bytes). Derived
    /// data: compaction drops it, the scale pipeline regenerates it.
    pub packed: Option<Vec<u8>>,
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Encodes the segment to its full file image (magic + payload + CRC).
pub fn encode(seg: &Segment) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&seg.generation.to_le_bytes());
    payload.extend_from_slice(&(seg.triples.len() as u32).to_le_bytes());
    payload.extend_from_slice(&(seg.edges.len() as u32).to_le_bytes());
    for (s, p, o) in &seg.triples {
        push_str(&mut payload, s);
        push_str(&mut payload, p);
        push_str(&mut payload, o);
    }
    for e in &seg.edges {
        for part in [&e.id, &e.src, &e.src_label, &e.label, &e.dst, &e.dst_label] {
            push_str(&mut payload, part);
        }
    }
    if let Some(packed) = &seg.packed {
        payload.extend_from_slice(&(packed.len() as u32).to_le_bytes());
        payload.extend_from_slice(packed);
    }
    let mut image = SEG_MAGIC.to_vec();
    image.extend_from_slice(&payload);
    image.extend_from_slice(&crc32(&payload).to_le_bytes());
    image
}

fn data_err(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

fn take<'a>(rest: &mut &'a [u8], n: usize) -> std::io::Result<&'a [u8]> {
    if rest.len() < n {
        return Err(data_err("segment payload truncated".into()));
    }
    let (head, tail) = rest.split_at(n);
    *rest = tail;
    Ok(head)
}

fn take_u32(rest: &mut &[u8]) -> std::io::Result<u32> {
    let b = take(rest, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn take_str(rest: &mut &[u8]) -> std::io::Result<String> {
    let len = take_u32(rest)? as usize;
    let bytes = take(rest, len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| data_err("segment term is not UTF-8".into()))
}

/// Decodes a segment file image. Any structural defect — bad magic,
/// bad CRC, truncated strings, trailing bytes — is an error, because
/// atomic replacement means a valid store never exposes a torn segment.
pub fn decode(image: &[u8]) -> std::io::Result<Segment> {
    if image.len() < SEG_MAGIC.len() + 4 || &image[..SEG_MAGIC.len()] != SEG_MAGIC {
        return Err(data_err("not a kgq segment (bad magic)".into()));
    }
    let payload = &image[SEG_MAGIC.len()..image.len() - 4];
    let stored = u32::from_le_bytes([
        image[image.len() - 4],
        image[image.len() - 3],
        image[image.len() - 2],
        image[image.len() - 1],
    ]);
    if crc32(payload) != stored {
        return Err(data_err("segment checksum mismatch".into()));
    }
    let mut rest = payload;
    let generation = {
        let b = take(&mut rest, 8)?;
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    };
    let n_triples = take_u32(&mut rest)? as usize;
    let n_edges = take_u32(&mut rest)? as usize;
    let mut triples = Vec::with_capacity(n_triples.min(1 << 20));
    for _ in 0..n_triples {
        triples.push((
            take_str(&mut rest)?,
            take_str(&mut rest)?,
            take_str(&mut rest)?,
        ));
    }
    let mut edges = Vec::with_capacity(n_edges.min(1 << 20));
    for _ in 0..n_edges {
        edges.push(EdgeRec {
            id: take_str(&mut rest)?,
            src: take_str(&mut rest)?,
            src_label: take_str(&mut rest)?,
            label: take_str(&mut rest)?,
            dst: take_str(&mut rest)?,
            dst_label: take_str(&mut rest)?,
        });
    }
    let packed = if rest.is_empty() {
        None
    } else {
        let len = take_u32(&mut rest)? as usize;
        let bytes = take(&mut rest, len)?;
        if !rest.is_empty() {
            return Err(data_err("segment has trailing bytes".into()));
        }
        Some(bytes.to_vec())
    };
    Ok(Segment {
        generation,
        triples,
        edges,
        packed,
    })
}

/// Writes the segment atomically to `path`: encode to `path.tmp`,
/// fsync the file, rename over `path`, fsync the parent directory.
/// Injected fault site `segment::write` can tear the tmp-file write or
/// crash after N bytes — both leave `path` untouched.
pub fn write_atomic(path: &Path, seg: &Segment) -> std::io::Result<()> {
    let image = encode(seg);
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        match io_fault!("segment::write") {
            Some(IoFault::Torn(n)) => {
                let n = n.min(image.len());
                f.write_all(&image[..n])?;
                let _ = f.sync_all();
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "injected torn write at segment::write",
                ));
            }
            Some(IoFault::Crash(n)) => {
                let n = n.min(image.len());
                let _ = f.write_all(&image[..n]);
                let _ = f.sync_all();
                panic!("injected crash at segment::write after {n} bytes");
            }
            Some(IoFault::Fsync) => {
                f.write_all(&image)?;
                return Err(std::io::Error::other(
                    "injected fsync failure at segment::write",
                ));
            }
            _ => {}
        }
        f.write_all(&image)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself. `parent()` yields "" for a bare
    // relative filename, which does not open — that means the cwd.
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// Reads and decodes the segment at `path`.
pub fn read(path: &Path) -> std::io::Result<Segment> {
    let image = std::fs::read(path)?;
    decode(&image)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Segment {
        Segment {
            generation: 7,
            triples: vec![
                ("a".into(), "knows".into(), "b".into()),
                ("b".into(), "knows".into(), "c".into()),
            ],
            edges: vec![EdgeRec {
                id: "e1".into(),
                src: "x".into(),
                src_label: "person".into(),
                label: "rides".into(),
                dst: "y".into(),
                dst_label: "bus".into(),
            }],
            packed: None,
        }
    }

    #[test]
    fn packed_section_round_trips_and_legacy_images_decode() {
        let mut seg = sample();
        seg.packed = Some(vec![0xAB; 37]);
        assert_eq!(decode(&encode(&seg)).unwrap(), seg);
        // An empty packed section survives too.
        seg.packed = Some(Vec::new());
        assert_eq!(decode(&encode(&seg)).unwrap(), seg);
        // A legacy image (no section) decodes with `packed: None`.
        let legacy = encode(&sample());
        assert_eq!(decode(&legacy).unwrap().packed, None);
    }

    #[test]
    fn encode_decode_round_trips() {
        let seg = sample();
        assert_eq!(decode(&encode(&seg)).unwrap(), seg);
        let empty = Segment::default();
        assert_eq!(decode(&encode(&empty)).unwrap(), empty);
    }

    #[test]
    fn any_bit_flip_is_rejected() {
        let image = encode(&sample());
        for byte in SEG_MAGIC.len()..image.len() {
            let mut corrupt = image.clone();
            corrupt[byte] ^= 0x40;
            assert!(
                decode(&corrupt).is_err(),
                "flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let image = encode(&sample());
        for cut in 0..image.len() {
            assert!(decode(&image[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn atomic_write_round_trips() {
        let dir = std::env::temp_dir().join(format!("kgq-seg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("segment");
        let seg = sample();
        write_atomic(&path, &seg).unwrap();
        assert_eq!(read(&path).unwrap(), seg);
        let _ = std::fs::remove_file(&path);
    }
}
