//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven.
//!
//! Every WAL record and every segment file carries a CRC over its
//! payload so recovery can distinguish "valid record" from "torn or
//! corrupt bytes" without trusting lengths alone. The reflected
//! polynomial `0xEDB88320` is the one every other storage engine uses,
//! which makes the on-disk format checkable with standard tools
//! (`python -c 'import zlib; print(zlib.crc32(...))'`).

/// The 256-entry lookup table for the reflected polynomial, built at
/// compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (initial value `!0`, final complement — the
/// standard zlib convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"kgq"), crc32(b"kgq"));
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    reference,
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
    }
}
