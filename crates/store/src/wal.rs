//! The checksummed, length-prefixed write-ahead log.
//!
//! ## On-disk format
//!
//! ```text
//! file    := magic record*
//! magic   := "KGQWAL01"                      (8 bytes)
//! record  := len:u32le payload crc:u32le     (crc over payload only)
//! payload := 0x01 s p o                      triple insert
//!          | 0x02 s p o                      triple delete
//!          | 0x03 id src src_label label dst dst_label   edge add
//!          | 0x0F generation:u64le           commit marker
//! s/p/o/… := strlen:u32le utf8-bytes
//! ```
//!
//! A *batch* is a run of op records terminated by one commit marker;
//! the file is fsynced once per batch, after the marker. Commit markers
//! carry a strictly increasing generation stamp, so the recovered
//! store's generation is exactly the stamp of the last durable batch.
//!
//! ## Recovery contract
//!
//! [`Wal::open`] replays the longest valid prefix: scanning stops — as
//! a **clean stop, never a panic** — at the first bad CRC, short read,
//! impossible length, non-UTF-8 term, or generation regression. Ops
//! after the last intact commit marker are discarded (they were never
//! acknowledged), and the file is truncated back to that committed
//! boundary so later appends cannot land after torn garbage.
//!
//! A failed append or fsync rolls the file back to the committed
//! boundary too; if even that rollback fails the log is *poisoned* and
//! every later append reports an error instead of risking silent
//! corruption.

use crate::crc::crc32;
use crate::io_fault;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Leading magic of every WAL file (8 bytes, version-stamped).
pub const WAL_MAGIC: &[u8; 8] = b"KGQWAL01";

/// Defensive cap on a single record's payload, so a corrupt length
/// cannot make recovery allocate unbounded memory.
pub const MAX_RECORD: usize = 16 * 1024 * 1024;

/// An I/O fault decoded from the fault-injection plan (see
/// [`crate::io_fault!`]). Exists unconditionally so call sites type-check
/// with the feature off.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// Persist only the first `n` bytes of the write, then fail.
    Torn(usize),
    /// Deliver only the first `n` bytes of the read.
    Short(usize),
    /// Report fsync failure.
    Fsync,
    /// Persist the first `n` bytes, then panic (simulated power loss).
    Crash(usize),
}

/// One logged mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreOp {
    /// Insert the triple `(s, p, o)` (set semantics).
    Insert {
        /// Subject term.
        s: String,
        /// Predicate term.
        p: String,
        /// Object term.
        o: String,
    },
    /// Delete the triple `(s, p, o)` if present.
    Delete {
        /// Subject term.
        s: String,
        /// Predicate term.
        p: String,
        /// Object term.
        o: String,
    },
    /// Add a property-graph edge (nodes are created on demand).
    EdgeAdd(EdgeRec),
}

/// A durable property-graph edge record. `id` is unique per edge so
/// replay after a partial compaction stays idempotent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeRec {
    /// Edge identifier (unique within the store's history).
    pub id: String,
    /// Source node identifier.
    pub src: String,
    /// Label given to the source node if it must be created.
    pub src_label: String,
    /// Edge label.
    pub label: String,
    /// Destination node identifier.
    pub dst: String,
    /// Label given to the destination node if it must be created.
    pub dst_label: String,
}

const TAG_INSERT: u8 = 0x01;
const TAG_DELETE: u8 = 0x02;
const TAG_EDGE: u8 = 0x03;
const TAG_COMMIT: u8 = 0x0F;

fn push_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Encodes one record (length prefix + payload + CRC) into `out`.
fn encode_record(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Encodes an op record's payload.
fn encode_op(op: &StoreOp) -> Vec<u8> {
    let mut p = Vec::new();
    match op {
        StoreOp::Insert { s, p: pr, o } => {
            p.push(TAG_INSERT);
            push_str(&mut p, s);
            push_str(&mut p, pr);
            push_str(&mut p, o);
        }
        StoreOp::Delete { s, p: pr, o } => {
            p.push(TAG_DELETE);
            push_str(&mut p, s);
            push_str(&mut p, pr);
            push_str(&mut p, o);
        }
        StoreOp::EdgeAdd(e) => {
            p.push(TAG_EDGE);
            for part in [&e.id, &e.src, &e.src_label, &e.label, &e.dst, &e.dst_label] {
                push_str(&mut p, part);
            }
        }
    }
    p
}

fn encode_commit(generation: u64) -> Vec<u8> {
    let mut p = Vec::with_capacity(9);
    p.push(TAG_COMMIT);
    p.extend_from_slice(&generation.to_le_bytes());
    p
}

/// The wire bytes of one committed batch: op records + commit marker.
/// Exposed for the crash-torture harness, which needs to know batch
/// boundaries to compute expected recovery prefixes.
pub fn encode_batch(ops: &[StoreOp], generation: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    for op in ops {
        let payload = encode_op(op);
        encode_record(&mut buf, &payload);
    }
    encode_record(&mut buf, &encode_commit(generation));
    buf
}

/// One record decoded during a scan.
enum Decoded {
    Op(StoreOp),
    Commit(u64),
}

/// Why a scan stopped before the end of the file. All of these are the
/// *expected* shapes a crash leaves behind — recovery treats every one
/// as a clean stop at the previous record boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TailState {
    /// The scan consumed the whole file; the tail is clean.
    Clean,
    /// Fewer bytes than a length prefix / CRC remained (torn tail).
    TornLength,
    /// The length prefix points past the end of the file (torn payload)
    /// or beyond [`MAX_RECORD`] (corrupt length).
    TornPayload,
    /// The payload's CRC does not match (bit rot or a torn interior).
    BadCrc,
    /// The payload decoded to garbage (unknown tag, non-UTF-8 term,
    /// generation regression) despite a matching CRC.
    BadPayload,
}

impl TailState {
    /// Human-readable description for `kgq store verify`.
    pub fn describe(&self) -> &'static str {
        match self {
            TailState::Clean => "clean",
            TailState::TornLength => "torn tail (partial length/crc frame)",
            TailState::TornPayload => "torn tail (payload extends past end of file)",
            TailState::BadCrc => "checksum mismatch",
            TailState::BadPayload => "undecodable payload",
        }
    }
}

/// Result of scanning a WAL image: the committed batches of its longest
/// valid prefix, plus forensics about where and why the scan stopped.
#[derive(Debug)]
pub struct Replay {
    /// Committed batches in log order, each with its generation stamp.
    pub batches: Vec<(u64, Vec<StoreOp>)>,
    /// Generation of the last committed batch (`base` when none).
    pub generation: u64,
    /// Byte offset of the end of the last intact commit marker — the
    /// boundary the file is truncated back to before appending.
    pub committed_len: u64,
    /// Bytes scanned as valid records (committed or not).
    pub valid_len: u64,
    /// Total bytes in the scanned image.
    pub total_len: u64,
    /// Valid op records after the last commit marker (an unacknowledged
    /// batch the crash cut short; discarded on recovery).
    pub uncommitted_ops: usize,
    /// How the scan ended.
    pub tail: TailState,
}

/// Scans a WAL image (everything after the magic has been verified),
/// returning the committed prefix. `base_generation` seeds the
/// monotonicity check — commit stamps must strictly increase from it.
pub fn scan(image: &[u8], base_generation: u64) -> Replay {
    let mut replay = Replay {
        batches: Vec::new(),
        generation: base_generation,
        committed_len: WAL_MAGIC.len() as u64,
        valid_len: WAL_MAGIC.len() as u64,
        total_len: image.len() as u64,
        uncommitted_ops: 0,
        tail: TailState::Clean,
    };
    let mut at = WAL_MAGIC.len();
    let mut pending: Vec<StoreOp> = Vec::new();
    let mut last_gen = base_generation;
    loop {
        if at == image.len() {
            break; // clean end at a record boundary
        }
        if image.len() - at < 4 {
            replay.tail = TailState::TornLength;
            break;
        }
        let len =
            u32::from_le_bytes([image[at], image[at + 1], image[at + 2], image[at + 3]]) as usize;
        if len > MAX_RECORD || image.len() - at - 4 < len {
            replay.tail = TailState::TornPayload;
            break;
        }
        if image.len() - at - 4 - len < 4 {
            replay.tail = TailState::TornLength;
            break;
        }
        let payload = &image[at + 4..at + 4 + len];
        let crc_at = at + 4 + len;
        let stored = u32::from_le_bytes([
            image[crc_at],
            image[crc_at + 1],
            image[crc_at + 2],
            image[crc_at + 3],
        ]);
        if crc32(payload) != stored {
            replay.tail = TailState::BadCrc;
            break;
        }
        let Some(decoded) = decode_payload(payload) else {
            replay.tail = TailState::BadPayload;
            break;
        };
        at = crc_at + 4;
        replay.valid_len = at as u64;
        match decoded {
            Decoded::Op(op) => pending.push(op),
            Decoded::Commit(generation) => {
                if generation <= last_gen {
                    // A stamp that does not advance means the tail was
                    // recycled from an older life of the file: stop.
                    replay.valid_len = replay.committed_len;
                    replay.tail = TailState::BadPayload;
                    break;
                }
                last_gen = generation;
                replay.generation = generation;
                replay
                    .batches
                    .push((generation, std::mem::take(&mut pending)));
                replay.committed_len = at as u64;
            }
        }
    }
    replay.uncommitted_ops = pending.len();
    replay
}

fn decode_payload(payload: &[u8]) -> Option<Decoded> {
    let (&tag, mut rest) = payload.split_first()?;
    let next_str = |rest: &mut &[u8]| -> Option<String> {
        if rest.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if rest.len() - 4 < len {
            return None;
        }
        let s = std::str::from_utf8(&rest[4..4 + len]).ok()?.to_owned();
        *rest = &rest[4 + len..];
        Some(s)
    };
    let decoded = match tag {
        TAG_INSERT | TAG_DELETE => {
            let s = next_str(&mut rest)?;
            let p = next_str(&mut rest)?;
            let o = next_str(&mut rest)?;
            if tag == TAG_INSERT {
                Decoded::Op(StoreOp::Insert { s, p, o })
            } else {
                Decoded::Op(StoreOp::Delete { s, p, o })
            }
        }
        TAG_EDGE => {
            let id = next_str(&mut rest)?;
            let src = next_str(&mut rest)?;
            let src_label = next_str(&mut rest)?;
            let label = next_str(&mut rest)?;
            let dst = next_str(&mut rest)?;
            let dst_label = next_str(&mut rest)?;
            Decoded::Op(StoreOp::EdgeAdd(EdgeRec {
                id,
                src,
                src_label,
                label,
                dst,
                dst_label,
            }))
        }
        TAG_COMMIT => {
            if rest.len() != 8 {
                return None;
            }
            let mut g = [0u8; 8];
            g.copy_from_slice(rest);
            rest = &rest[8..];
            Decoded::Commit(u64::from_le_bytes(g))
        }
        _ => return None,
    };
    if !rest.is_empty() {
        return None; // trailing garbage inside a checksummed payload
    }
    Some(decoded)
}

/// The open write-ahead log of one durable store.
pub struct Wal {
    path: PathBuf,
    file: File,
    committed_len: u64,
    poisoned: bool,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("committed_len", &self.committed_len)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

fn data_err(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Reads a file honoring an armed `wal::read` short-read fault.
pub(crate) fn read_file_faulted(path: &Path) -> std::io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    if let Some(IoFault::Short(n)) = io_fault!("wal::read") {
        buf.truncate(n);
    }
    Ok(buf)
}

impl Wal {
    /// Opens (or creates) the log at `path`, replays its committed
    /// prefix against `base_generation`, truncates torn/uncommitted
    /// bytes, and returns the log positioned for appending plus the
    /// replay. A missing file becomes a fresh, empty log; a file whose
    /// *magic* is wrong is a hard error (that is not a torn tail — it
    /// is not a WAL).
    pub fn open(path: &Path, base_generation: u64) -> std::io::Result<(Wal, Replay)> {
        let exists = path.exists();
        if !exists {
            let mut file = OpenOptions::new()
                .create(true)
                .truncate(true)
                .read(true)
                .write(true)
                .open(path)?;
            file.write_all(WAL_MAGIC)?;
            file.sync_all()?;
            let wal = Wal {
                path: path.to_path_buf(),
                file,
                committed_len: WAL_MAGIC.len() as u64,
                poisoned: false,
            };
            let replay = Replay {
                batches: Vec::new(),
                generation: base_generation,
                committed_len: WAL_MAGIC.len() as u64,
                valid_len: WAL_MAGIC.len() as u64,
                total_len: WAL_MAGIC.len() as u64,
                uncommitted_ops: 0,
                tail: TailState::Clean,
            };
            return Ok((wal, replay));
        }
        let image = read_file_faulted(path)?;
        if image.len() < WAL_MAGIC.len() {
            // Shorter than the magic: only possible if creation itself
            // was torn. Rewrite the header and treat as empty.
            let mut file = OpenOptions::new().read(true).write(true).open(path)?;
            file.set_len(0)?;
            file.write_all(WAL_MAGIC)?;
            file.sync_all()?;
            let wal = Wal {
                path: path.to_path_buf(),
                file,
                committed_len: WAL_MAGIC.len() as u64,
                poisoned: false,
            };
            let replay = Replay {
                batches: Vec::new(),
                generation: base_generation,
                committed_len: WAL_MAGIC.len() as u64,
                valid_len: WAL_MAGIC.len() as u64,
                total_len: image.len() as u64,
                uncommitted_ops: 0,
                tail: TailState::TornLength,
            };
            return Ok((wal, replay));
        }
        if &image[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(data_err(format!(
                "{}: not a kgq WAL (bad magic)",
                path.display()
            )));
        }
        let replay = scan(&image, base_generation);
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        // Drop torn bytes and unacknowledged ops so appends always land
        // at a committed boundary.
        if replay.committed_len < image.len() as u64 {
            file.set_len(replay.committed_len)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            Wal {
                path: path.to_path_buf(),
                file,
                committed_len: replay.committed_len,
                poisoned: false,
            },
            replay,
        ))
    }

    /// Bytes of committed log (including the magic header).
    pub fn committed_len(&self) -> u64 {
        self.committed_len
    }

    /// Appends one batch (op records + commit marker stamped with
    /// `generation`) and fsyncs. On *any* failure the file is rolled
    /// back to the committed boundary — the batch is not durable and
    /// must not be acknowledged. Injected faults: `wal::append` (torn
    /// write / crash-after-N-bytes), `wal::fsync` (fsync failure).
    pub fn append_batch(&mut self, ops: &[StoreOp], generation: u64) -> std::io::Result<()> {
        if self.poisoned {
            return Err(data_err(format!(
                "{}: log poisoned by an earlier failed rollback; reopen the store",
                self.path.display()
            )));
        }
        let buf = encode_batch(ops, generation);
        let write_result = self.write_batch_bytes(&buf);
        match write_result {
            Ok(()) => {
                self.committed_len += buf.len() as u64;
                Ok(())
            }
            Err(e) => {
                // Roll back to the committed boundary so the next append
                // cannot land after torn bytes.
                let rollback = self
                    .file
                    .set_len(self.committed_len)
                    .and_then(|()| self.file.seek(SeekFrom::End(0)).map(|_| ()))
                    .and_then(|()| self.file.sync_all());
                if rollback.is_err() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    fn write_batch_bytes(&mut self, buf: &[u8]) -> std::io::Result<()> {
        match io_fault!("wal::append") {
            Some(IoFault::Torn(n)) => {
                let n = n.min(buf.len());
                self.file.write_all(&buf[..n])?;
                let _ = self.file.sync_all();
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "injected torn write at wal::append",
                ));
            }
            Some(IoFault::Crash(n)) => {
                let n = n.min(buf.len());
                let _ = self.file.write_all(&buf[..n]);
                let _ = self.file.sync_all();
                panic!("injected crash at wal::append after {n} bytes");
            }
            _ => {}
        }
        self.file.write_all(buf)?;
        if let Some(IoFault::Fsync) = io_fault!("wal::fsync") {
            return Err(std::io::Error::other(
                "injected fsync failure at wal::fsync",
            ));
        }
        self.file.sync_all()
    }

    /// Truncates the log to an empty (header-only) file after a
    /// successful compaction folded its batches into the segment.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::End(0))?;
        self.file.sync_all()?;
        self.committed_len = WAL_MAGIC.len() as u64;
        self.poisoned = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<StoreOp> {
        vec![
            StoreOp::Insert {
                s: "a".into(),
                p: "knows".into(),
                o: "b".into(),
            },
            StoreOp::Delete {
                s: "a".into(),
                p: "knows".into(),
                o: "b".into(),
            },
            StoreOp::EdgeAdd(EdgeRec {
                id: "e1".into(),
                src: "x".into(),
                src_label: "person".into(),
                label: "rides".into(),
                dst: "y".into(),
                dst_label: "bus".into(),
            }),
        ]
    }

    #[test]
    fn batch_round_trips_through_scan() {
        let mut image = WAL_MAGIC.to_vec();
        image.extend_from_slice(&encode_batch(&ops(), 1));
        image.extend_from_slice(&encode_batch(&ops()[..1], 2));
        let replay = scan(&image, 0);
        assert_eq!(replay.tail, TailState::Clean);
        assert_eq!(replay.generation, 2);
        assert_eq!(replay.batches.len(), 2);
        assert_eq!(replay.batches[0].1, ops());
        assert_eq!(replay.batches[1].1, &ops()[..1]);
        assert_eq!(replay.committed_len, image.len() as u64);
        assert_eq!(replay.uncommitted_ops, 0);
    }

    #[test]
    fn every_truncation_recovers_a_committed_prefix() {
        let mut image = WAL_MAGIC.to_vec();
        let b1 = encode_batch(&ops(), 1);
        let b2 = encode_batch(&ops()[..2], 2);
        image.extend_from_slice(&b1);
        image.extend_from_slice(&b2);
        let full_1 = WAL_MAGIC.len() + b1.len();
        for cut in WAL_MAGIC.len()..=image.len() {
            let replay = scan(&image[..cut], 0);
            let want_batches = if cut >= full_1 + b2.len() {
                2
            } else if cut >= full_1 {
                1
            } else {
                0
            };
            assert_eq!(
                replay.batches.len(),
                want_batches,
                "cut at {cut} recovered a non-committed prefix"
            );
            assert_eq!(replay.generation, want_batches as u64);
        }
    }

    #[test]
    fn every_bit_flip_is_caught() {
        let mut image = WAL_MAGIC.to_vec();
        image.extend_from_slice(&encode_batch(&ops(), 1));
        for byte in WAL_MAGIC.len()..image.len() {
            for bit in 0..8 {
                let mut corrupt = image.clone();
                corrupt[byte] ^= 1 << bit;
                let replay = scan(&corrupt, 0);
                // Either the record is rejected (0 batches) or the flip
                // produced a *structurally different but valid* frame —
                // the CRC makes that astronomically unlikely, and the
                // scan must never panic either way.
                assert!(replay.batches.len() <= 1);
            }
        }
    }

    #[test]
    fn generation_regression_stops_the_scan() {
        let mut image = WAL_MAGIC.to_vec();
        image.extend_from_slice(&encode_batch(&ops()[..1], 5));
        image.extend_from_slice(&encode_batch(&ops()[..1], 3)); // stale tail
        let replay = scan(&image, 0);
        assert_eq!(replay.batches.len(), 1);
        assert_eq!(replay.generation, 5);
        assert_eq!(replay.tail, TailState::BadPayload);
    }

    #[test]
    fn open_append_reopen_round_trips() {
        let dir = std::env::temp_dir().join(format!("kgq-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, replay) = Wal::open(&path, 0).unwrap();
            assert!(replay.batches.is_empty());
            wal.append_batch(&ops(), 1).unwrap();
            wal.append_batch(&ops()[..1], 2).unwrap();
        }
        let (mut wal, replay) = Wal::open(&path, 0).unwrap();
        assert_eq!(replay.batches.len(), 2);
        assert_eq!(replay.generation, 2);
        wal.reset().unwrap();
        let (_, replay) = Wal::open(&path, 0).unwrap();
        assert!(replay.batches.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_file_is_truncated_on_open() {
        let dir = std::env::temp_dir().join(format!("kgq-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path, 0).unwrap();
            wal.append_batch(&ops(), 1).unwrap();
        }
        // Tear the tail: half a batch beyond the committed boundary.
        let garbage = encode_batch(&ops()[..1], 2);
        let mut bytes = std::fs::read(&path).unwrap();
        let committed = bytes.len();
        bytes.extend_from_slice(&garbage[..garbage.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();
        let (wal, replay) = Wal::open(&path, 0).unwrap();
        assert_eq!(replay.batches.len(), 1);
        assert_eq!(wal.committed_len(), committed as u64);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            committed as u64,
            "torn bytes must be dropped so appends land at the boundary"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_is_a_hard_error() {
        let dir = std::env::temp_dir().join(format!("kgq-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-badmagic");
        std::fs::write(&path, b"NOTAWAL!rest").unwrap();
        assert!(Wal::open(&path, 0).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
