//! The in-memory delta overlay.
//!
//! Committed mutations that have not yet been compacted live here, in
//! two small sorted sets keyed by term strings:
//!
//! * `added` — triples present in the overlay but not the base,
//! * `tombstoned` — base triples that have been deleted.
//!
//! Reads see `(base ∪ added) ∖ tombstoned`. Two invariants keep that
//! algebra trivial, and [`DeltaOverlay::apply`] maintains both:
//!
//! * `added ∩ base = ∅` — inserting a triple the base already holds is
//!   a no-op (unless it was tombstoned, in which case the tombstone is
//!   simply withdrawn);
//! * `tombstoned ⊆ base` — deleting an overlay-added triple removes it
//!   from `added` rather than minting a tombstone.
//!
//! Because `apply` consults the *current* merged state, replaying a WAL
//! is idempotent: applying the same committed batch twice converges to
//! the same overlay, which is what makes recovery after a crash in the
//! middle of compaction safe.

use kgq_rdf::TripleStore;
use std::collections::BTreeSet;

/// A triple as term strings, the overlay's key type. (The base store
/// interns terms; the overlay stays string-keyed so it can hold terms
/// the base has never seen without mutating the base's interner.)
pub type StrTriple = (String, String, String);

/// Added/tombstoned sets layered over an immutable base [`TripleStore`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaOverlay {
    added: BTreeSet<StrTriple>,
    tombstoned: BTreeSet<StrTriple>,
}

impl DeltaOverlay {
    /// An empty overlay: reads pass straight through to the base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Triples added relative to the base, in sorted order.
    pub fn added(&self) -> impl Iterator<Item = &StrTriple> {
        self.added.iter()
    }

    /// Base triples deleted by the overlay, in sorted order.
    pub fn tombstoned(&self) -> impl Iterator<Item = &StrTriple> {
        self.tombstoned.iter()
    }

    /// Number of added triples.
    pub fn added_len(&self) -> usize {
        self.added.len()
    }

    /// Number of tombstones.
    pub fn tombstoned_len(&self) -> usize {
        self.tombstoned.len()
    }

    /// True when the overlay changes nothing (compaction is a no-op).
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.tombstoned.is_empty()
    }

    /// Does the merged view `(base ∪ added) ∖ tombstoned` contain the
    /// triple?
    pub fn contains(&self, base: &TripleStore, s: &str, p: &str, o: &str) -> bool {
        let key = (s.to_owned(), p.to_owned(), o.to_owned());
        if self.added.contains(&key) {
            return true;
        }
        if self.tombstoned.contains(&key) {
            return false;
        }
        base_contains(base, s, p, o)
    }

    /// Merged cardinality: `|base| + |added| - |tombstoned|` (exact,
    /// thanks to the two invariants).
    pub fn merged_len(&self, base: &TripleStore) -> usize {
        base.len() + self.added.len() - self.tombstoned.len()
    }

    /// Applies an insert to the merged view. Returns true if the view
    /// changed.
    pub fn insert(&mut self, base: &TripleStore, s: &str, p: &str, o: &str) -> bool {
        let key = (s.to_owned(), p.to_owned(), o.to_owned());
        if self.tombstoned.remove(&key) {
            return true; // was deleted from base; un-delete
        }
        if base_contains(base, s, p, o) {
            return false; // already present in base, invariant: keep out of `added`
        }
        self.added.insert(key)
    }

    /// Applies a delete to the merged view. Returns true if the view
    /// changed.
    pub fn delete(&mut self, base: &TripleStore, s: &str, p: &str, o: &str) -> bool {
        let key = (s.to_owned(), p.to_owned(), o.to_owned());
        if self.added.remove(&key) {
            return true; // overlay-only triple: no tombstone needed
        }
        if base_contains(base, s, p, o) {
            return self.tombstoned.insert(key);
        }
        false // absent everywhere
    }

    /// Folds the overlay into a fresh [`TripleStore`] holding exactly
    /// the merged view, leaving the overlay untouched (compaction only
    /// clears it after the segment is durably on disk).
    pub fn materialize(&self, base: &TripleStore) -> TripleStore {
        let mut merged = TripleStore::new();
        for t in base.iter() {
            let s = base.term_str(t.s);
            let p = base.term_str(t.p);
            let o = base.term_str(t.o);
            if !self
                .tombstoned
                .contains(&(s.to_owned(), p.to_owned(), o.to_owned()))
            {
                merged.insert_strs(s, p, o);
            }
        }
        for (s, p, o) in &self.added {
            merged.insert_strs(s, p, o);
        }
        merged
    }

    /// Clears both sets (after compaction folded them into the base).
    pub fn clear(&mut self) {
        self.added.clear();
        self.tombstoned.clear();
    }

    /// Debug-checks the two invariants against `base`; returns a
    /// human-readable violation if one is found. Used by
    /// `kgq store verify` and the proptest suites.
    pub fn check_invariants(&self, base: &TripleStore) -> Result<(), String> {
        for (s, p, o) in &self.added {
            if base_contains(base, s, p, o) {
                return Err(format!("added triple ({s} {p} {o}) already in base"));
            }
        }
        for (s, p, o) in &self.tombstoned {
            if !base_contains(base, s, p, o) {
                return Err(format!("tombstone ({s} {p} {o}) has no base triple"));
            }
        }
        Ok(())
    }
}

fn base_contains(base: &TripleStore, s: &str, p: &str, o: &str) -> bool {
    let (Some(s), Some(p), Some(o)) = (base.get_term(s), base.get_term(p), base.get_term(o)) else {
        return false;
    };
    base.contains(kgq_rdf::Triple { s, p, o })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> TripleStore {
        let mut b = TripleStore::new();
        b.insert_strs("a", "knows", "b");
        b.insert_strs("b", "knows", "c");
        b
    }

    #[test]
    fn insert_delete_algebra() {
        let base = base();
        let mut ov = DeltaOverlay::new();
        // Insert of a base triple is a no-op.
        assert!(!ov.insert(&base, "a", "knows", "b"));
        assert!(ov.is_empty());
        // Fresh insert lands in `added`.
        assert!(ov.insert(&base, "c", "knows", "d"));
        assert!(ov.contains(&base, "c", "knows", "d"));
        assert_eq!(ov.merged_len(&base), 3);
        // Delete of an overlay triple removes it without a tombstone.
        assert!(ov.delete(&base, "c", "knows", "d"));
        assert!(ov.is_empty());
        // Delete of a base triple mints a tombstone.
        assert!(ov.delete(&base, "a", "knows", "b"));
        assert!(!ov.contains(&base, "a", "knows", "b"));
        assert_eq!(ov.merged_len(&base), 1);
        // Re-insert withdraws the tombstone instead of touching `added`.
        assert!(ov.insert(&base, "a", "knows", "b"));
        assert!(ov.is_empty());
        assert!(ov.contains(&base, "a", "knows", "b"));
        // Delete of an absent triple changes nothing.
        assert!(!ov.delete(&base, "x", "y", "z"));
        ov.check_invariants(&base).unwrap();
    }

    #[test]
    fn materialize_matches_merged_view() {
        let base = base();
        let mut ov = DeltaOverlay::new();
        ov.insert(&base, "c", "knows", "d");
        ov.delete(&base, "b", "knows", "c");
        let merged = ov.materialize(&base);
        assert_eq!(merged.len(), 2);
        let mut got: Vec<(String, String, String)> = merged
            .iter()
            .map(|t| {
                (
                    merged.term_str(t.s).to_owned(),
                    merged.term_str(t.p).to_owned(),
                    merged.term_str(t.o).to_owned(),
                )
            })
            .collect();
        got.sort();
        assert_eq!(
            got,
            vec![
                ("a".to_owned(), "knows".to_owned(), "b".to_owned()),
                ("c".to_owned(), "knows".to_owned(), "d".to_owned()),
            ]
        );
    }

    #[test]
    fn replay_is_idempotent() {
        let base = base();
        let mut ov = DeltaOverlay::new();
        let ops: Vec<(&str, &str, &str, bool)> = vec![
            ("c", "knows", "d", true),
            ("a", "knows", "b", false),
            ("c", "knows", "d", false),
            ("e", "likes", "f", true),
        ];
        let run = |ov: &mut DeltaOverlay| {
            for (s, p, o, ins) in &ops {
                if *ins {
                    ov.insert(&base, s, p, o);
                } else {
                    ov.delete(&base, s, p, o);
                }
            }
        };
        run(&mut ov);
        let once = ov.clone();
        run(&mut ov);
        assert_eq!(ov, once, "double replay must converge");
        ov.check_invariants(&base).unwrap();
    }
}
