//! Breadth-first traversal primitives.
//!
//! All analytics in this crate run on the directed multigraph underneath a
//! [`LabeledGraph`]; functions taking `directed = false` treat every edge
//! as bidirectional (the "undirected view" used by components, clustering
//! and densest-subgraph computations).

use kgq_graph::{Csr, LabeledGraph, NodeId};
use std::collections::VecDeque;

/// Adjacency snapshot shared by the analytics algorithms.
pub(crate) struct Adj {
    pub csr: Csr,
    pub n: usize,
}

impl Adj {
    pub fn new(g: &LabeledGraph) -> Adj {
        Adj {
            csr: Csr::build(g.base()),
            n: g.node_count(),
        }
    }

    /// Successors of `v` (directed or undirected view), deduplicated.
    pub fn neighbors(&self, v: NodeId, directed: bool, buf: &mut Vec<NodeId>) {
        buf.clear();
        buf.extend(self.csr.out(v).iter().map(|&(_, t)| t));
        if !directed {
            buf.extend(self.csr.inc(v).iter().map(|&(_, s)| s));
        }
        buf.sort_unstable();
        buf.dedup();
    }
}

/// BFS distances (in edges) from `source`; `usize::MAX` marks unreachable
/// nodes.
pub fn bfs_distances(g: &LabeledGraph, source: NodeId, directed: bool) -> Vec<usize> {
    let adj = Adj::new(g);
    bfs_on(&adj, source, directed)
}

pub(crate) fn bfs_on(adj: &Adj, source: NodeId, directed: bool) -> Vec<usize> {
    let mut dist = vec![usize::MAX; adj.n];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    let mut buf = Vec::new();
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        adj.neighbors(v, directed, &mut buf);
        for &u in &buf {
            if dist[u.index()] == usize::MAX {
                dist[u.index()] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// One shortest directed path from `a` to `b` as a node sequence, if any.
pub fn shortest_path(g: &LabeledGraph, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
    let adj = Adj::new(g);
    let mut parent: Vec<Option<NodeId>> = vec![None; adj.n];
    let mut seen = vec![false; adj.n];
    let mut queue = VecDeque::new();
    seen[a.index()] = true;
    queue.push_back(a);
    let mut buf = Vec::new();
    while let Some(v) = queue.pop_front() {
        if v == b {
            let mut path = vec![b];
            let mut cur = b;
            while let Some(p) = parent[cur.index()] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        adj.neighbors(v, true, &mut buf);
        for &u in &buf {
            if !seen[u.index()] {
                seen[u.index()] = true;
                parent[u.index()] = Some(v);
                queue.push_back(u);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_graph::generate::{cycle_graph, grid_graph, path_graph};

    #[test]
    fn bfs_on_a_path_counts_hops() {
        let g = path_graph(5, "v", "next");
        let v0 = g.node_named("v0").unwrap();
        let d = bfs_distances(&g, v0, true);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        // Directed: nothing reaches v0 except itself.
        let v4 = g.node_named("v4").unwrap();
        let d = bfs_distances(&g, v4, true);
        assert_eq!(d[0], usize::MAX);
        // Undirected view reaches everything.
        let d = bfs_distances(&g, v4, false);
        assert_eq!(d[0], 4);
    }

    #[test]
    fn shortest_path_on_grid() {
        let g = grid_graph(3, 3, "c");
        let a = g.node_named("v0_0").unwrap();
        let b = g.node_named("v2_2").unwrap();
        let p = shortest_path(&g, a, b).unwrap();
        assert_eq!(p.len(), 5); // 4 hops
        assert_eq!(p[0], a);
        assert_eq!(*p.last().unwrap(), b);
    }

    #[test]
    fn no_path_returns_none() {
        let g = path_graph(3, "v", "next");
        let v2 = g.node_named("v2").unwrap();
        let v0 = g.node_named("v0").unwrap();
        assert!(shortest_path(&g, v2, v0).is_none());
    }

    #[test]
    fn cycle_distances_wrap_one_way() {
        let g = cycle_graph(6, "v", "next");
        let v0 = g.node_named("v0").unwrap();
        let d = bfs_distances(&g, v0, true);
        assert_eq!(d[5], 5); // all the way around
        let d = bfs_distances(&g, v0, false);
        assert_eq!(d[5], 1); // one hop backwards
    }
}
