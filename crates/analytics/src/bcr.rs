//! Regex-constrained betweenness centrality `bc_r` — §4.2 of the paper.
//!
//! Given a regular expression `r`, let `S_{a,b,r}` be the set of shortest
//! paths from `a` to `b` *conforming to `r`*, and `S_{a,b,r}(x)` those
//! containing node `x`. Then
//!
//! ```text
//! bc_r(x) = Σ_{a,b : a≠x ∧ b≠x, S_{a,b,r} ≠ ∅}  |S_{a,b,r}(x)| / |S_{a,b,r}|
//! ```
//!
//! The paper's §4.2 example: measuring the centrality of a bus *as a
//! transportation service* with `r = ?person/rides/?bus/rides⁻/?person`,
//! so that paths via the owning company do not inflate the score.
//!
//! Counting shortest conforming paths is intractable in general (it
//! embeds `Count`); two algorithms are provided:
//!
//! * [`bc_r_exact`] — determinized product + per-source layered DP;
//!   `|S_{a,b,r}(x)|` is obtained by the node-deletion identity
//!   `σ(x) = σ − σ_{avoid x}`. Exponential only through determinization,
//!   exact otherwise.
//! * [`bc_r_approx`] — the §4.2 proposal: use the uniform-generation
//!   machinery to *sample* shortest conforming paths per pair and
//!   estimate the pass-through fractions `|S(x)|/|S|` empirically.

use kgq_core::automata::Nfa;
use kgq_core::expr::PathExpr;
use kgq_core::model::PathGraph;
use kgq_core::product::DetProduct;
use kgq_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-source shortest-path data over the det product.
struct SourceDp {
    /// `layers[i][s]` = number of distinct conforming words of length `i`
    /// from the source reaching det state `s` (only states at BFS level
    /// `i` are nonzero).
    layers: Vec<Vec<u128>>,
    /// For every target node `b`: `(d_r(a,b), σ_ab)` if any conforming
    /// path exists.
    best: Vec<Option<(usize, u128)>>,
}

fn source_dp(det: &DetProduct, a: NodeId, n_nodes: usize, skip: Option<NodeId>) -> SourceDp {
    let m = det.state_count();
    let mut best: Vec<Option<(usize, u128)>> = vec![None; n_nodes];
    let mut layers: Vec<Vec<u128>> = Vec::new();
    let mut cur = vec![0u128; m];
    let mut alive = true;
    if let Some(s0) = det.initial(a) {
        if skip != Some(a) {
            cur[s0 as usize] = 1;
        } else {
            alive = false;
        }
    } else {
        alive = false;
    }
    // BFS level per det state prevents revisiting: only states first
    // reached at layer i count words of length i as *shortest*.
    let mut level = vec![usize::MAX; m];
    if alive {
        if let Some(s0) = det.initial(a) {
            level[s0 as usize] = 0;
        }
    }
    let mut i = 0usize;
    loop {
        // Record acceptances at this layer.
        for (s, &c) in cur.iter().enumerate() {
            if c > 0 && det.is_accepting(s as u32) {
                let b = det.node_of(s as u32);
                match &mut best[b.index()] {
                    slot @ None => *slot = Some((i, c)),
                    Some((d, total)) if *d == i => *total += c,
                    _ => {}
                }
            }
        }
        layers.push(cur.clone());
        // Advance one layer, only into unvisited or same-level states.
        let mut next = vec![0u128; m];
        let mut any = false;
        for (s, &c) in cur.iter().enumerate() {
            if c == 0 {
                continue;
            }
            for &(_, s2) in det.out(s as u32) {
                let s2u = s2 as usize;
                if let Some(x) = skip {
                    if det.node_of(s2) == x {
                        continue;
                    }
                }
                if level[s2u] == usize::MAX {
                    level[s2u] = i + 1;
                }
                if level[s2u] == i + 1 {
                    next[s2u] += c;
                    any = true;
                }
            }
        }
        if !any {
            break;
        }
        cur = next;
        i += 1;
    }
    SourceDp { layers, best }
}

/// Exact `bc_r` for every node. `O(n² · |det| · diam)` after one
/// determinization; intended for small/medium graphs and as ground truth
/// for [`bc_r_approx`].
pub fn bc_r_exact<G: PathGraph>(g: &G, expr: &PathExpr) -> Vec<f64> {
    let nfa = Nfa::compile(expr);
    let det = DetProduct::build(g, &nfa);
    let n = g.node_count();
    let mut bc = vec![0.0f64; n];
    for a in 0..n as u32 {
        let a = NodeId(a);
        let base = source_dp(&det, a, n, None);
        // Which nodes can appear inside shortest paths from a at all?
        for x in 0..n as u32 {
            let x = NodeId(x);
            if x == a {
                continue;
            }
            let avoid = source_dp(&det, a, n, Some(x));
            for b in 0..n as u32 {
                let b = NodeId(b);
                if b == x {
                    continue;
                }
                if let Some((d, sigma)) = base.best[b.index()] {
                    debug_assert!(sigma > 0);
                    // Paths of length exactly d avoiding x.
                    let sigma_avoid = match avoid.best[b.index()] {
                        Some((d2, s2)) if d2 == d => s2,
                        Some((d2, _)) if d2 > d => 0,
                        None => 0,
                        Some((_, _)) => unreachable!("avoid cannot shorten paths"),
                    };
                    let through = sigma - sigma_avoid;
                    if through > 0 {
                        bc[x.index()] += through as f64 / sigma as f64;
                    }
                }
            }
        }
    }
    bc
}

/// Parameters for the sampling approximation.
#[derive(Clone, Debug)]
pub struct BcrParams {
    /// Shortest conforming paths sampled per `(a, b)` pair.
    pub samples_per_pair: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BcrParams {
    fn default() -> Self {
        BcrParams {
            samples_per_pair: 32,
            seed: 0xBC12,
        }
    }
}

/// Randomized approximation of `bc_r` (§4.2): for every pair `(a, b)`
/// with conforming paths, draw `samples_per_pair` *uniform* shortest
/// conforming paths and add the empirical pass-through frequency of each
/// interior-eligible node. Uniform sampling reuses the layered counts of
/// the exact DP (backward sampling), i.e. the Section 4.1 toolbox.
pub fn bc_r_approx<G: PathGraph>(g: &G, expr: &PathExpr, params: &BcrParams) -> Vec<f64> {
    let nfa = Nfa::compile(expr);
    let det = DetProduct::build(g, &nfa);
    let n = g.node_count();
    let m = det.state_count();
    // Global predecessor lists of the det product (deduplicated: the
    // per-edge multiplicity is reapplied during backward sampling).
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); m];
    for s in 0..m {
        for &(_, s2) in det.out(s as u32) {
            preds[s2 as usize].push(s as u32);
        }
    }
    for p in &mut preds {
        p.sort_unstable();
        p.dedup();
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut bc = vec![0.0f64; n];
    for a in 0..n as u32 {
        let a = NodeId(a);
        let dp = source_dp(&det, a, n, None);
        for b in 0..n as u32 {
            let b = NodeId(b);
            let (d, _) = match dp.best[b.index()] {
                Some(x) => x,
                None => continue,
            };
            let finals: Vec<(u32, u128)> = (0..m as u32)
                .filter(|&s| det.is_accepting(s) && det.node_of(s) == b)
                .map(|s| (s, dp.layers[d][s as usize]))
                .filter(|&(_, c)| c > 0)
                .collect();
            let total: u128 = finals.iter().map(|&(_, c)| c).sum();
            if total == 0 {
                continue;
            }
            let mut hits = vec![0usize; n];
            for _ in 0..params.samples_per_pair {
                // Sample final state ∝ layer-d count, then walk backward.
                let mut t = rng.gen_range(0..total);
                let mut state = finals[0].0;
                for &(s, c) in &finals {
                    if t < c {
                        state = s;
                        break;
                    }
                    t -= c;
                }
                let mut visited = vec![det.node_of(state)];
                for i in (1..=d).rev() {
                    let candidates: Vec<(u32, u128)> = preds[state as usize]
                        .iter()
                        .map(|&p| (p, dp.layers[i - 1][p as usize]))
                        .filter(|&(_, c)| c > 0)
                        .collect();
                    // Weight each predecessor by count times multiplicity
                    // of transitions p -> state.
                    let weighted: Vec<(u32, u128)> = candidates
                        .iter()
                        .map(|&(p, c)| {
                            let mult =
                                det.out(p).iter().filter(|&&(_, s2)| s2 == state).count() as u128;
                            (p, c * mult)
                        })
                        .filter(|&(_, w)| w > 0)
                        .collect();
                    let wtotal: u128 = weighted.iter().map(|&(_, w)| w).sum();
                    debug_assert!(wtotal > 0);
                    let mut t = rng.gen_range(0..wtotal);
                    let mut chosen = weighted[0].0;
                    for &(p, w) in &weighted {
                        if t < w {
                            chosen = p;
                            break;
                        }
                        t -= w;
                    }
                    state = chosen;
                    visited.push(det.node_of(state));
                }
                // Count each distinct interior-eligible node once.
                visited.sort_unstable();
                visited.dedup();
                for v in visited {
                    if v != a && v != b {
                        hits[v.index()] += 1;
                    }
                }
            }
            for (x, &h) in hits.iter().enumerate() {
                if h > 0 {
                    bc[x] += h as f64 / params.samples_per_pair as f64;
                }
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centrality::betweenness;
    use kgq_core::model::LabeledView;
    use kgq_core::parser::parse_expr;
    use kgq_graph::figures::figure2_labeled;
    use kgq_graph::generate::{gnm_labeled, path_graph};

    fn simplify(raw: &kgq_graph::LabeledGraph) -> kgq_graph::LabeledGraph {
        // Drop parallel edges and self-loops: Brandes counts paths at the
        // node level, while bc_r counts distinct edge sequences, so the
        // two only coincide on simple graphs.
        let mut g = kgq_graph::LabeledGraph::new();
        let mut seen = std::collections::HashSet::new();
        for n in raw.base().nodes() {
            g.add_node(raw.node_name(n), "v").unwrap();
        }
        for e in raw.base().edges() {
            let (s, d) = raw.base().endpoints(e);
            if s != d && seen.insert((s, d)) {
                g.add_edge(raw.edge_name(e), s, d, "p").unwrap();
            }
        }
        g
    }

    #[test]
    fn unconstrained_regex_recovers_brandes() {
        // With r = (p)* over a simple single-label graph, shortest
        // conforming paths are exactly shortest directed paths, so
        // bc_r == bc.
        for seed in [1u64, 2, 21] {
            let mut g = simplify(&gnm_labeled(9, 18, &["v"], &["p"], seed));
            let e = parse_expr("(p)*", g.consts_mut()).unwrap();
            let view = LabeledView::new(&g);
            let bcr = bc_r_exact(&view, &e);
            let bc = betweenness(&g);
            for (i, (x, y)) in bcr.iter().zip(bc.iter()).enumerate() {
                assert!(
                    (x - y).abs() < 1e-9,
                    "seed={seed} node {i}: bc_r={x} bc={y}"
                );
            }
        }
    }

    #[test]
    fn figure2_bus_is_central_for_transport_pattern() {
        let mut g = figure2_labeled();
        let e = parse_expr("?person/rides/?bus/rides^-/?person", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let bcr = bc_r_exact(&view, &e);
        let n3 = g.node_named("n3").unwrap();
        // Persons riding n3: n1 and n4. Ordered pairs (incl. a=b round
        // trips): (n1,n1), (n1,n4), (n4,n1), (n4,n4) — all length-2 and
        // all through the bus.
        assert!((bcr[n3.index()] - 4.0).abs() < 1e-9, "bc_r = {:?}", bcr);
        // The company n7 contributes nothing anywhere.
        let n7 = g.node_named("n7").unwrap();
        assert_eq!(bcr[n7.index()], 0.0);
    }

    #[test]
    fn owns_edges_do_not_inflate_bcr() {
        // Plain betweenness sees paths through `owns`; bc_r with the
        // transport pattern must not.
        let mut g = figure2_labeled();
        let e = parse_expr("?person/rides/?bus/rides^-/?person", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let bcr = bc_r_exact(&view, &e);
        // Only the bus can be interior to a conforming path.
        for v in g.base().nodes() {
            let name = g.node_name(v);
            if name != "n3" {
                assert_eq!(bcr[v.index()], 0.0, "node {name}");
            }
        }
    }

    #[test]
    fn approx_tracks_exact() {
        let mut g = figure2_labeled();
        let e = parse_expr("?person/rides/?bus/rides^-/?person", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let exact = bc_r_exact(&view, &e);
        let approx = bc_r_approx(
            &view,
            &e,
            &BcrParams {
                samples_per_pair: 64,
                seed: 3,
            },
        );
        for (x, y) in exact.iter().zip(approx.iter()) {
            assert!((x - y).abs() < 0.5, "exact={x} approx={y}");
        }
    }

    #[test]
    fn approx_on_random_graph_close_to_exact() {
        let mut g = gnm_labeled(8, 16, &["v"], &["p"], 7);
        let e = parse_expr("(p)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let exact = bc_r_exact(&view, &e);
        let approx = bc_r_approx(
            &view,
            &e,
            &BcrParams {
                samples_per_pair: 128,
                seed: 9,
            },
        );
        for (i, (x, y)) in exact.iter().zip(approx.iter()).enumerate() {
            let tol = 0.35 * x.max(1.0);
            assert!((x - y).abs() <= tol, "node {i}: exact={x} approx={y}");
        }
    }

    #[test]
    fn path_midpoints_score_with_forward_regex() {
        let mut g = path_graph(5, "v", "next");
        let e = parse_expr("(next)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let bcr = bc_r_exact(&view, &e);
        let bc = betweenness(&g);
        assert_eq!(bcr, bc);
        assert_eq!(bcr[2], 4.0);
    }
}
