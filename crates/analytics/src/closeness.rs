//! Distance-based centrality measures and unlabeled path counting.
//!
//! Rounds out the §4.2 inventory of "calculation of centrality measures
//! \[51\]": closeness and harmonic centrality, eccentricity, and the
//! polynomial path-counting fact the paper states — "there exists an
//! efficient algorithm for the following problem: given a labeled graph
//! `L`, a pair of nodes `a, b` … and a length `k`, count the number of
//! paths of length `k` from `a` to `b`" (it is a `k`-step DP; the
//! intractability only appears once regular expressions constrain the
//! paths).

use crate::traversal::{bfs_on, Adj};
use kgq_graph::{LabeledGraph, NodeId};

/// Classic closeness centrality: `(r−1) / Σ d(v, u)` over the `r` nodes
/// reachable from `v`, scaled by the reachable fraction
/// (Wasserman–Faust normalization, safe on disconnected graphs).
pub fn closeness(g: &LabeledGraph, directed: bool) -> Vec<f64> {
    let adj = Adj::new(g);
    let n = adj.n;
    let mut out = vec![0.0; n];
    for v in 0..n {
        let dist = bfs_on(&adj, NodeId(v as u32), directed);
        let mut sum = 0usize;
        let mut reachable = 0usize;
        for (u, &d) in dist.iter().enumerate() {
            if u != v && d != usize::MAX {
                sum += d;
                reachable += 1;
            }
        }
        if sum > 0 {
            let r = reachable as f64;
            out[v] = (r / (n as f64 - 1.0)) * (r / sum as f64);
        }
    }
    out
}

/// Harmonic centrality: `Σ_{u≠v} 1/d(v, u)` (0 for unreachable `u`),
/// which needs no disconnectedness correction.
pub fn harmonic(g: &LabeledGraph, directed: bool) -> Vec<f64> {
    let adj = Adj::new(g);
    let n = adj.n;
    let mut out = vec![0.0; n];
    for v in 0..n {
        let dist = bfs_on(&adj, NodeId(v as u32), directed);
        out[v] = dist
            .iter()
            .enumerate()
            .filter(|&(u, &d)| u != v && d != usize::MAX)
            .map(|(_, &d)| 1.0 / d as f64)
            .sum();
    }
    out
}

/// Eccentricity of every node: the largest finite distance to any other
/// node (`None` when nothing else is reachable).
pub fn eccentricity(g: &LabeledGraph, directed: bool) -> Vec<Option<usize>> {
    let adj = Adj::new(g);
    let n = adj.n;
    (0..n)
        .map(|v| {
            let dist = bfs_on(&adj, NodeId(v as u32), directed);
            dist.iter()
                .enumerate()
                .filter(|&(u, &d)| u != v && d != usize::MAX)
                .map(|(_, &d)| d)
                .max()
        })
        .collect()
}

/// Number of length-`k` walks from `a` to `b` following edges in either
/// direction (matching the paper's path definition) — the tractable
/// unlabeled counting problem of §4.2, solved by a `k`-step DP in
/// `O(k·(n+m))`.
pub fn count_walks(g: &LabeledGraph, a: NodeId, b: NodeId, k: usize) -> u128 {
    let adj = Adj::new(g);
    let n = adj.n;
    let mut cur = vec![0u128; n];
    cur[a.index()] = 1;
    let mut buf = Vec::new();
    for _ in 0..k {
        let mut next = vec![0u128; n];
        for v in 0..n {
            if cur[v] == 0 {
                continue;
            }
            // Steps are (edge, next-node) choices; each distinct edge is
            // a distinct step, so use raw adjacency with multiplicity.
            buf.clear();
            let vid = NodeId(v as u32);
            for &e in g.base().out_edges(vid) {
                buf.push(g.base().target(e));
            }
            for &e in g.base().in_edges(vid) {
                let s = g.base().source(e);
                if s != vid || g.base().target(e) != vid {
                    buf.push(s);
                } // self-loop counted once via out_edges
            }
            for &u in buf.iter() {
                next[u.index()] += cur[v];
            }
        }
        cur = next;
    }
    cur[b.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_core::count::ExactCounter;
    use kgq_core::model::LabeledView;
    use kgq_core::parser::parse_expr;
    use kgq_graph::generate::{gnm_labeled, path_graph, star_graph};

    #[test]
    fn closeness_peaks_at_path_center() {
        let g = path_graph(5, "v", "next");
        let c = closeness(&g, false);
        assert!(c[2] > c[0] && c[2] > c[4]);
        assert!((c[0] - c[4]).abs() < 1e-12);
    }

    #[test]
    fn harmonic_of_star_hub() {
        let g = star_graph(5, "v", "spoke");
        let h = harmonic(&g, false);
        // Hub: 4 neighbors at distance 1.
        assert!((h[0] - 4.0).abs() < 1e-12);
        // Spoke: hub at 1, three others at 2.
        assert!((h[1] - (1.0 + 3.0 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn eccentricity_on_path() {
        let g = path_graph(4, "v", "next");
        let e = eccentricity(&g, false);
        assert_eq!(e, vec![Some(3), Some(2), Some(2), Some(3)]);
        // Directed: the last node reaches nothing.
        let e = eccentricity(&g, true);
        assert_eq!(e[3], None);
        assert_eq!(e[0], Some(3));
    }

    #[test]
    fn isolated_nodes_have_zero_centrality() {
        let mut g = kgq_graph::LabeledGraph::new();
        g.add_node("a", "v").unwrap();
        g.add_node("b", "v").unwrap();
        assert_eq!(closeness(&g, false), vec![0.0, 0.0]);
        assert_eq!(harmonic(&g, false), vec![0.0, 0.0]);
        assert_eq!(eccentricity(&g, false), vec![None, None]);
    }

    #[test]
    fn walk_counting_matches_unconstrained_regex_counting() {
        // The tractable unlabeled problem agrees with the general
        // machinery instantiated with an accept-all expression.
        for seed in [2u64, 9] {
            let mut g = gnm_labeled(7, 14, &["v"], &["p", "q"], seed);
            let expr = parse_expr("(p + p^- + q + q^-)*", g.consts_mut()).unwrap();
            let view = LabeledView::new(&g);
            let counter = ExactCounter::new(&view, &expr);
            for k in 0..=3usize {
                let total_dp: u128 = g
                    .base()
                    .nodes()
                    .flat_map(|a| g.base().nodes().map(move |b| (a, b)))
                    .map(|(a, b)| count_walks(&g, a, b, k))
                    .sum();
                let total_regex = counter.count(k).unwrap();
                assert_eq!(total_dp, total_regex, "seed={seed} k={k}");
            }
        }
    }

    #[test]
    fn walk_counts_on_a_path_are_binomial_like() {
        let g = path_graph(3, "v", "next");
        let a = g.node_named("v0").unwrap();
        let b = g.node_named("v2").unwrap();
        assert_eq!(count_walks(&g, a, b, 2), 1);
        assert_eq!(count_walks(&g, a, b, 1), 0);
        // Back-and-forth: v0 -> v1 -> v0 -> v1 -> v2.
        assert_eq!(count_walks(&g, a, b, 4), 2);
    }
}
