//! Betweenness centrality — Freeman's measure \[29\], computed with
//! Brandes' accumulation algorithm.
//!
//! `bc(x) = Σ_{a,b ≠ x} |S_{a,b}(x)| / |S_{a,b}|` where `S_{a,b}` is the
//! set of shortest directed paths from `a` to `b` (pairs with no path
//! contribute 0). This is the *label-blind* baseline that §4.2 contrasts
//! with the knowledge-aware `bc_r` of [`crate::bcr`].

use crate::traversal::Adj;
use kgq_graph::{LabeledGraph, NodeId};
use std::collections::VecDeque;

/// Brandes betweenness on the directed graph (unweighted, ordered pairs).
pub fn betweenness(g: &LabeledGraph) -> Vec<f64> {
    betweenness_with(g, true)
}

/// Brandes betweenness treating every edge as traversable both ways —
/// matching the paper's path definition, where a path may follow an edge
/// in either direction (`ℓ` and `ℓ⁻` both exist).
pub fn betweenness_undirected(g: &LabeledGraph) -> Vec<f64> {
    betweenness_with(g, false)
}

fn betweenness_with(g: &LabeledGraph, directed: bool) -> Vec<f64> {
    let adj = Adj::new(g);
    let n = adj.n;
    let mut bc = vec![0.0; n];
    let mut buf = Vec::new();
    for s in 0..n {
        let s = NodeId(s as u32);
        // BFS computing sigma (path counts) and predecessor lists.
        let mut dist = vec![usize::MAX; n];
        let mut sigma = vec![0.0f64; n];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut order: Vec<usize> = Vec::new();
        let mut queue = VecDeque::new();
        dist[s.index()] = 0;
        sigma[s.index()] = 1.0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            order.push(v.index());
            adj.neighbors(v, directed, &mut buf);
            for &w in &buf {
                let (vi, wi) = (v.index(), w.index());
                if dist[wi] == usize::MAX {
                    dist[wi] = dist[vi] + 1;
                    queue.push_back(w);
                }
                if dist[wi] == dist[vi] + 1 {
                    sigma[wi] += sigma[vi];
                    preds[wi].push(vi);
                }
            }
        }
        // Accumulation in reverse BFS order.
        let mut delta = vec![0.0f64; n];
        for &w in order.iter().rev() {
            for &v in &preds[w] {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s.index() {
                bc[w] += delta[w];
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_graph::generate::{complete_graph, path_graph, star_graph};
    use kgq_graph::LabeledGraph;

    #[test]
    fn middle_of_a_path_is_most_central() {
        let g = path_graph(5, "v", "next");
        let bc = betweenness(&g);
        // v2 lies on paths v0->v3, v0->v4, v1->v3, v1->v4: bc = 4? Plus
        // v0->v3 etc. Exact values: v2 is interior to (a,b) pairs with
        // a in {v0,v1}, b in {v3,v4}: 4 pairs, each unique path => 4.
        assert_eq!(bc[2], 4.0);
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[4], 0.0);
        assert!(bc[2] > bc[1]);
    }

    #[test]
    fn complete_graph_has_zero_betweenness() {
        let g = complete_graph(5, "v", "e");
        let bc = betweenness(&g);
        assert!(bc.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn star_hub_directed_has_no_through_paths() {
        // All edges point hub -> spoke: no path passes *through* the hub.
        let g = star_graph(5, "v", "spoke");
        let bc = betweenness(&g);
        assert!(bc.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn bidirectional_star_hub_dominates() {
        let mut g = LabeledGraph::new();
        let hub = g.add_node("hub", "v").unwrap();
        let spokes: Vec<_> = (0..4)
            .map(|i| g.add_node(&format!("s{i}"), "v").unwrap())
            .collect();
        for (i, &s) in spokes.iter().enumerate() {
            g.add_edge(&format!("o{i}"), hub, s, "e").unwrap();
            g.add_edge(&format!("i{i}"), s, hub, "e").unwrap();
        }
        let bc = betweenness(&g);
        // Hub lies on the unique shortest path of all 4*3 spoke pairs.
        assert_eq!(bc[hub.index()], 12.0);
        for &s in &spokes {
            assert_eq!(bc[s.index()], 0.0);
        }
    }

    #[test]
    fn undirected_star_hub_dominates() {
        // With edges hub -> spoke only, the undirected variant still
        // routes every spoke pair through the hub.
        let g = star_graph(5, "v", "spoke");
        let bc = betweenness_undirected(&g);
        assert_eq!(bc[0], 12.0); // 4 spokes: 4*3 ordered pairs
        assert!(bc[1..].iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn split_shortest_paths_share_credit() {
        // a -> b1 -> c and a -> b2 -> c: each b gets 1/2.
        let mut g = LabeledGraph::new();
        let a = g.add_node("a", "v").unwrap();
        let b1 = g.add_node("b1", "v").unwrap();
        let b2 = g.add_node("b2", "v").unwrap();
        let c = g.add_node("c", "v").unwrap();
        g.add_edge("e1", a, b1, "e").unwrap();
        g.add_edge("e2", a, b2, "e").unwrap();
        g.add_edge("e3", b1, c, "e").unwrap();
        g.add_edge("e4", b2, c, "e").unwrap();
        let bc = betweenness(&g);
        assert!((bc[b1.index()] - 0.5).abs() < 1e-12);
        assert!((bc[b2.index()] - 0.5).abs() < 1e-12);
    }
}
