//! Community-structure analytics: clustering coefficients, label
//! propagation, densest subgraph (§4.2's community-detection inventory
//! \[30, 40, 41, 45, 53, 61\]).

use crate::traversal::Adj;
use kgq_graph::{LabeledGraph, NodeId};

/// Global clustering coefficient of the undirected simple view:
/// `3 · #triangles / #connected-triples` (0 if there are no triples).
pub fn clustering_coefficient(g: &LabeledGraph) -> f64 {
    let adj = Adj::new(g);
    let n = adj.n;
    let mut nbrs: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut buf = Vec::new();
    for v in 0..n {
        adj.neighbors(NodeId(v as u32), false, &mut buf);
        let mut list: Vec<usize> = buf.iter().map(|u| u.index()).filter(|&u| u != v).collect();
        list.sort_unstable();
        list.dedup();
        nbrs.push(list);
    }
    let mut triangles = 0usize; // each triangle counted 3 times
    let mut triples = 0usize;
    for v in 0..n {
        let d = nbrs[v].len();
        triples += d * d.saturating_sub(1) / 2;
        for i in 0..nbrs[v].len() {
            for j in (i + 1)..nbrs[v].len() {
                let (a, b) = (nbrs[v][i], nbrs[v][j]);
                if nbrs[a].binary_search(&b).is_ok() {
                    triangles += 1;
                }
            }
        }
    }
    if triples == 0 {
        0.0
    } else {
        triangles as f64 / triples as f64
    }
}

/// Synchronous label propagation on the undirected view. Deterministic:
/// every node adopts the smallest most-frequent neighbor label each round.
/// Returns a community id per node.
pub fn label_propagation(g: &LabeledGraph, max_rounds: usize) -> Vec<usize> {
    let adj = Adj::new(g);
    let n = adj.n;
    let mut label: Vec<usize> = (0..n).collect();
    let mut buf = Vec::new();
    for _ in 0..max_rounds {
        let mut changed = false;
        let mut next = label.clone();
        for v in 0..n {
            adj.neighbors(NodeId(v as u32), false, &mut buf);
            if buf.is_empty() {
                continue;
            }
            let mut counts: Vec<(usize, usize)> = Vec::new(); // (label, count)
            for &u in &buf {
                if u.index() == v {
                    continue;
                }
                let l = label[u.index()];
                match counts.iter_mut().find(|(ll, _)| *ll == l) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((l, 1)),
                }
            }
            if counts.is_empty() {
                continue;
            }
            let best = counts
                .iter()
                .map(|&(l, c)| (std::cmp::Reverse(c), l))
                .min()
                .map(|(_, l)| l)
                .expect("non-empty");
            if best != label[v] {
                next[v] = best;
                changed = true;
            }
        }
        label = next;
        if !changed {
            break;
        }
    }
    // Renumber to consecutive ids.
    let mut remap: Vec<usize> = vec![usize::MAX; n];
    let mut fresh = 0usize;
    for l in label.iter_mut() {
        if remap[*l] == usize::MAX {
            remap[*l] = fresh;
            fresh += 1;
        }
        *l = remap[*l];
    }
    label
}

/// Densest subgraph by Charikar's greedy peeling (2-approximation of
/// Goldberg's maximum-density subgraph \[30, 45\]): repeatedly remove a
/// minimum-degree node from the undirected view and return the prefix of
/// maximal density `|E| / |N|`. Self-loops are ignored (consistent with
/// the exact flow-based algorithm in [`crate::flow`]).
pub fn densest_subgraph(g: &LabeledGraph) -> (Vec<NodeId>, f64) {
    let adj = Adj::new(g);
    let n = adj.n;
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    // Undirected degree (edge multiplicity counted, self-loops excluded).
    let mut degree: Vec<usize> = (0..n)
        .map(|v| {
            let v = NodeId(v as u32);
            adj.csr.out(v).iter().filter(|&&(_, t)| t != v).count()
                + adj.csr.inc(v).iter().filter(|&&(_, s)| s != v).count()
        })
        .collect();
    let mut alive = vec![true; n];
    let mut edges_left: usize = g
        .base()
        .edges()
        .filter(|&e| {
            let (a, b) = g.base().endpoints(e);
            a != b
        })
        .count();
    let mut best_density = edges_left as f64 / n as f64;
    let mut removal_order: Vec<usize> = Vec::with_capacity(n);
    let mut best_prefix = 0usize; // how many removals precede the best set
    for round in 0..n {
        // Min-degree alive node.
        let v = (0..n)
            .filter(|&v| alive[v])
            .min_by_key(|&v| degree[v])
            .expect("some node alive");
        alive[v] = false;
        removal_order.push(v);
        // Remove its incident (non-loop) edges.
        let vid = NodeId(v as u32);
        for &(_, t) in adj.csr.out(vid) {
            if t.index() != v && alive[t.index()] {
                degree[t.index()] -= 1;
                edges_left -= 1;
            }
        }
        for &(_, s) in adj.csr.inc(vid) {
            if s.index() != v && alive[s.index()] {
                degree[s.index()] -= 1;
                edges_left -= 1;
            }
        }
        let remaining = n - round - 1;
        if remaining > 0 {
            let density = edges_left as f64 / remaining as f64;
            if density > best_density {
                best_density = density;
                best_prefix = round + 1;
            }
        }
    }
    let removed: std::collections::HashSet<usize> =
        removal_order[..best_prefix].iter().copied().collect();
    let nodes: Vec<NodeId> = (0..n)
        .filter(|v| !removed.contains(v))
        .map(|v| NodeId(v as u32))
        .collect();
    (nodes, best_density)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_graph::generate::{complete_graph, path_graph};
    use kgq_graph::LabeledGraph;

    #[test]
    fn clustering_of_complete_graph_is_one() {
        let g = complete_graph(5, "v", "e");
        let c = clustering_coefficient(&g);
        assert!((c - 1.0).abs() < 1e-12, "c = {c}");
    }

    #[test]
    fn clustering_of_path_is_zero() {
        let g = path_graph(6, "v", "e");
        assert_eq!(clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn label_propagation_finds_two_cliques() {
        // Two 4-cliques joined by a single bridge edge.
        let mut g = LabeledGraph::new();
        let mut ids = Vec::new();
        for i in 0..8 {
            ids.push(g.add_node(&format!("v{i}"), "x").unwrap());
        }
        let mut e = 0;
        for block in [&ids[0..4], &ids[4..8]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    g.add_edge(&format!("e{e}"), block[i], block[j], "p")
                        .unwrap();
                    e += 1;
                }
            }
        }
        g.add_edge("bridge", ids[3], ids[4], "p").unwrap();
        let comm = label_propagation(&g, 20);
        assert_eq!(comm[0], comm[1]);
        assert_eq!(comm[0], comm[2]);
        assert_eq!(comm[5], comm[6]);
        assert_eq!(comm[5], comm[7]);
    }

    #[test]
    fn densest_subgraph_extracts_the_clique() {
        // A 5-clique with a long pendant path attached.
        let mut g = LabeledGraph::new();
        let mut ids = Vec::new();
        for i in 0..5 {
            ids.push(g.add_node(&format!("k{i}"), "x").unwrap());
        }
        let mut e = 0;
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_edge(&format!("e{e}"), ids[i], ids[j], "p").unwrap();
                e += 1;
            }
        }
        let mut prev = ids[0];
        for i in 0..6 {
            let v = g.add_node(&format!("t{i}"), "x").unwrap();
            g.add_edge(&format!("p{i}"), prev, v, "p").unwrap();
            prev = v;
        }
        let (nodes, density) = densest_subgraph(&g);
        // Clique density 10/5 = 2.0 beats anything with the tail.
        assert!((density - 2.0).abs() < 1e-12, "density {density}");
        assert_eq!(nodes.len(), 5);
        for &k in &ids {
            assert!(nodes.contains(&k));
        }
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = LabeledGraph::new();
        assert_eq!(clustering_coefficient(&g), 0.0);
        assert!(label_propagation(&g, 5).is_empty());
        let (nodes, d) = densest_subgraph(&g);
        assert!(nodes.is_empty());
        assert_eq!(d, 0.0);
    }
}
