//! Weighted shortest paths over property graphs.
//!
//! §4.2 lists "computation of shortest paths between pairs of nodes"
//! among the analytics staples. The unweighted case is BFS
//! ([`crate::traversal`]); this module adds Dijkstra over edge weights
//! read from a *property* — knowledge entering the computation through
//! `σ`, in the spirit of the section's theme.

use kgq_graph::{NodeId, PropertyGraph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Errors from weighted traversal.
#[derive(Clone, Debug, PartialEq)]
pub enum WeightError {
    /// An edge's weight property is missing.
    MissingWeight(String),
    /// An edge's weight property failed to parse as a non-negative number.
    BadWeight(String, String),
}

impl std::fmt::Display for WeightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightError::MissingWeight(e) => write!(f, "edge `{e}` has no weight property"),
            WeightError::BadWeight(e, v) => {
                write!(f, "edge `{e}` has non-numeric or negative weight `{v}`")
            }
        }
    }
}

impl std::error::Error for WeightError {}

/// Dijkstra from `source` following edges forward, with weights read
/// from property `weight_prop` (must parse as non-negative `f64`).
/// Returns per-node distances (`None` = unreachable).
pub fn dijkstra(
    g: &PropertyGraph,
    source: NodeId,
    weight_prop: &str,
) -> Result<Vec<Option<f64>>, WeightError> {
    let lg = g.labeled();
    let n = lg.node_count();
    let mut dist: Vec<Option<f64>> = vec![None; n];
    // (Reverse(ordered distance bits), node) — f64 distances are finite
    // and non-negative, so the bit pattern orders correctly.
    let mut heap: BinaryHeap<(Reverse<u64>, u32)> = BinaryHeap::new();
    dist[source.index()] = Some(0.0);
    heap.push((Reverse(0u64), source.0));
    while let Some((Reverse(dbits), v)) = heap.pop() {
        let d = f64::from_bits(dbits);
        let v = NodeId(v);
        match dist[v.index()] {
            Some(best) if d > best => continue,
            _ => {}
        }
        for &e in lg.base().out_edges(v) {
            let name = lg.edge_name(e).to_owned();
            let w_str = g
                .edge_prop_str(e, weight_prop)
                .ok_or_else(|| WeightError::MissingWeight(name.clone()))?;
            let w: f64 = w_str
                .parse()
                .map_err(|_| WeightError::BadWeight(name.clone(), w_str.to_owned()))?;
            if !w.is_finite() || w < 0.0 {
                return Err(WeightError::BadWeight(name, w_str.to_owned()));
            }
            let t = lg.base().target(e);
            let nd = d + w;
            if dist[t.index()].is_none_or(|cur| nd < cur) {
                dist[t.index()] = Some(nd);
                heap.push((Reverse(nd.to_bits()), t.0));
            }
        }
    }
    Ok(dist)
}

/// A cheapest path from `a` to `b` under `weight_prop`, as a node
/// sequence, with its total weight.
pub fn cheapest_path(
    g: &PropertyGraph,
    a: NodeId,
    b: NodeId,
    weight_prop: &str,
) -> Result<Option<(Vec<NodeId>, f64)>, WeightError> {
    let lg = g.labeled();
    let n = lg.node_count();
    let mut dist: Vec<Option<f64>> = vec![None; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut heap: BinaryHeap<(Reverse<u64>, u32)> = BinaryHeap::new();
    dist[a.index()] = Some(0.0);
    heap.push((Reverse(0u64), a.0));
    while let Some((Reverse(dbits), v)) = heap.pop() {
        let d = f64::from_bits(dbits);
        let v = NodeId(v);
        match dist[v.index()] {
            Some(best) if d > best => continue,
            _ => {}
        }
        if v == b {
            break;
        }
        for &e in lg.base().out_edges(v) {
            let name = lg.edge_name(e).to_owned();
            let w_str = g
                .edge_prop_str(e, weight_prop)
                .ok_or_else(|| WeightError::MissingWeight(name.clone()))?;
            let w: f64 = w_str
                .parse()
                .map_err(|_| WeightError::BadWeight(name.clone(), w_str.to_owned()))?;
            if !w.is_finite() || w < 0.0 {
                return Err(WeightError::BadWeight(name, w_str.to_owned()));
            }
            let t = lg.base().target(e);
            let nd = d + w;
            if dist[t.index()].is_none_or(|cur| nd < cur) {
                dist[t.index()] = Some(nd);
                parent[t.index()] = Some(v);
                heap.push((Reverse(nd.to_bits()), t.0));
            }
        }
    }
    let Some(total) = dist[b.index()] else {
        return Ok(None);
    };
    let mut path = vec![b];
    let mut cur = b;
    while cur != a {
        cur = parent[cur.index()].expect("reachable implies parents");
        path.push(cur);
    }
    path.reverse();
    Ok(Some((path, total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_square() -> PropertyGraph {
        // a → b → d costs 1 + 1; a → c → d costs 5 + 5; a → d direct 3.
        let mut g = PropertyGraph::new();
        let a = g.add_node("a", "v").unwrap();
        let b = g.add_node("b", "v").unwrap();
        let c = g.add_node("c", "v").unwrap();
        let d = g.add_node("d", "v").unwrap();
        for (id, s, t, w) in [
            ("e1", a, b, "1"),
            ("e2", b, d, "1"),
            ("e3", a, c, "5"),
            ("e4", c, d, "5"),
            ("e5", a, d, "3"),
        ] {
            let e = g.add_edge(id, s, t, "road").unwrap();
            g.set_edge_prop(e, "km", w);
        }
        g
    }

    #[test]
    fn dijkstra_takes_the_cheap_route() {
        let g = weighted_square();
        let a = g.labeled().node_named("a").unwrap();
        let dist = dijkstra(&g, a, "km").unwrap();
        assert_eq!(dist[0], Some(0.0));
        assert_eq!(dist[1], Some(1.0));
        assert_eq!(dist[3], Some(2.0)); // via b, beating the direct 3
    }

    #[test]
    fn cheapest_path_reconstructs_nodes() {
        let g = weighted_square();
        let a = g.labeled().node_named("a").unwrap();
        let d = g.labeled().node_named("d").unwrap();
        let (path, total) = cheapest_path(&g, a, d, "km").unwrap().unwrap();
        let names: Vec<&str> = path.iter().map(|&n| g.labeled().node_name(n)).collect();
        assert_eq!(names, vec!["a", "b", "d"]);
        assert_eq!(total, 2.0);
    }

    #[test]
    fn unreachable_is_none() {
        let g = weighted_square();
        let d = g.labeled().node_named("d").unwrap();
        let a = g.labeled().node_named("a").unwrap();
        // Edges are directed: nothing leaves d.
        let dist = dijkstra(&g, d, "km").unwrap();
        assert_eq!(dist[a.index()], None);
        assert_eq!(cheapest_path(&g, d, a, "km").unwrap(), None);
    }

    #[test]
    fn missing_and_bad_weights_error() {
        let mut g = weighted_square();
        let a = g.labeled().node_named("a").unwrap();
        let b = g.labeled().node_named("b").unwrap();
        g.add_edge("e6", a, b, "road").unwrap(); // no km property
        assert!(matches!(
            dijkstra(&g, a, "km"),
            Err(WeightError::MissingWeight(_))
        ));
        let mut g = weighted_square();
        let e1 = g.labeled().edge_named("e1").unwrap();
        g.set_edge_prop(e1, "km", "-4");
        assert!(matches!(
            dijkstra(&g, a, "km"),
            Err(WeightError::BadWeight(_, _))
        ));
        g.set_edge_prop(e1, "km", "soon");
        assert!(matches!(
            dijkstra(&g, a, "km"),
            Err(WeightError::BadWeight(_, _))
        ));
    }

    #[test]
    fn agrees_with_bfs_on_unit_weights() {
        use kgq_graph::generate::gnm_labeled;
        let lg = gnm_labeled(12, 30, &["v"], &["e"], 5);
        let mut g = kgq_graph::PropertyGraph::from_labeled(lg);
        let edges: Vec<_> = g.labeled().base().edges().collect();
        for e in edges {
            g.set_edge_prop(e, "w", "1");
        }
        let src = NodeId(0);
        let dd = dijkstra(&g, src, "w").unwrap();
        let bfs = crate::traversal::bfs_distances(g.labeled(), src, true);
        for (d, b) in dd.iter().zip(bfs.iter()) {
            match d {
                Some(x) => assert_eq!(*x as usize, *b),
                None => assert_eq!(*b, usize::MAX),
            }
        }
    }
}
