//! # kgq-analytics — graph analytics, with and without knowledge
//!
//! Section 4.2 of the reproduced paper surveys "a series of techniques to
//! analyze the structure and content of a graph as a whole" and then asks
//! *how knowledge should be included in them*. This crate implements both
//! halves:
//!
//! * the classical toolbox — BFS/shortest paths ([`traversal`]),
//!   connected/strongly-connected components and diameter
//!   ([`components`]), PageRank and HITS ([`ranking`]), betweenness
//!   centrality via Brandes' algorithm ([`centrality`]), clustering
//!   coefficients, label propagation communities and densest subgraph
//!   ([`community`]);
//! * the paper's knowledge-aware centrality `bc_r` ([`bcr`]): betweenness
//!   restricted to shortest paths *conforming to a regular expression*,
//!   with an exact algorithm (product-graph counting with node deletion)
//!   and a randomized approximation built from the uniform-generation
//!   tools of `kgq-core` — exactly the strategy §4.2 proposes.

// Several hot loops index multiple parallel arrays at once; the
// iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
//! ```
//! use kgq_analytics::{bc_r_exact, betweenness_undirected};
//! use kgq_core::{parse_expr, LabeledView};
//! use kgq_graph::figures::figure2_labeled;
//!
//! let mut g = figure2_labeled();
//! let r = parse_expr("?person/rides/?bus/rides^-/?person", g.consts_mut()).unwrap();
//! let view = LabeledView::new(&g);
//! let bcr = bc_r_exact(&view, &r);
//! let bc = betweenness_undirected(&g);
//! let bus = g.node_named("n3").unwrap();
//! assert!(bcr[bus.index()] > 0.0);          // central as a service…
//! assert!(bc[bus.index()] > bcr[bus.index()]); // …but bc inflates it
//! ```

pub mod bcr;
pub mod centrality;
pub mod closeness;
pub mod community;
pub mod components;
pub mod flow;
pub mod kcore;
pub mod ranking;
pub mod traversal;
pub mod weighted;

pub use bcr::{bc_r_approx, bc_r_exact, BcrParams};
pub use centrality::{betweenness, betweenness_undirected};
pub use closeness::{closeness, count_walks, eccentricity, harmonic};
pub use community::{clustering_coefficient, densest_subgraph, label_propagation};
pub use components::{diameter, strongly_connected_components, weakly_connected_components};
pub use flow::{densest_subgraph_exact, FlowNetwork};
pub use kcore::{core_numbers, degree_histogram, k_core};
pub use ranking::{hits, pagerank, PageRankParams};
pub use traversal::{bfs_distances, shortest_path};
pub use weighted::{cheapest_path, dijkstra, WeightError};
