//! PageRank and HITS — the link-analysis measures cited in §4.2
//! (Brin–Page \[20\] and Kleinberg's authoritative sources \[41\]).

use crate::traversal::Adj;
use kgq_graph::{LabeledGraph, NodeId};

/// PageRank parameters.
#[derive(Clone, Debug)]
pub struct PageRankParams {
    /// Damping factor (probability of following a link).
    pub damping: f64,
    /// Maximum number of power iterations.
    pub max_iter: usize,
    /// L1 convergence threshold.
    pub tol: f64,
}

impl Default for PageRankParams {
    fn default() -> Self {
        PageRankParams {
            damping: 0.85,
            max_iter: 100,
            tol: 1e-10,
        }
    }
}

/// PageRank by power iteration. Dangling mass is redistributed uniformly;
/// the result sums to 1.
pub fn pagerank(g: &LabeledGraph, params: &PageRankParams) -> Vec<f64> {
    let adj = Adj::new(g);
    let n = adj.n;
    if n == 0 {
        return Vec::new();
    }
    let out_degree: Vec<usize> = (0..n)
        .map(|v| adj.csr.out(NodeId(v as u32)).len())
        .collect();
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for _ in 0..params.max_iter {
        let mut dangling = 0.0;
        for (v, r) in rank.iter().enumerate() {
            if out_degree[v] == 0 {
                dangling += r;
            }
        }
        let base = (1.0 - params.damping) / n as f64 + params.damping * dangling / n as f64;
        next.iter_mut().for_each(|x| *x = base);
        for v in 0..n {
            if out_degree[v] == 0 {
                continue;
            }
            let share = params.damping * rank[v] / out_degree[v] as f64;
            for &(_, t) in adj.csr.out(NodeId(v as u32)) {
                next[t.index()] += share;
            }
        }
        let delta: f64 = rank
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < params.tol {
            break;
        }
    }
    rank
}

/// HITS hub and authority scores (power iteration with L2 normalization).
/// Returns `(hubs, authorities)`.
pub fn hits(g: &LabeledGraph, max_iter: usize) -> (Vec<f64>, Vec<f64>) {
    let adj = Adj::new(g);
    let n = adj.n;
    let mut hub = vec![1.0; n];
    let mut auth = vec![1.0; n];
    for _ in 0..max_iter {
        // auth(v) = Σ hub(u) over u -> v
        for v in 0..n {
            auth[v] = adj
                .csr
                .inc(NodeId(v as u32))
                .iter()
                .map(|&(_, s)| hub[s.index()])
                .sum();
        }
        normalize(&mut auth);
        // hub(v) = Σ auth(u) over v -> u
        for v in 0..n {
            hub[v] = adj
                .csr
                .out(NodeId(v as u32))
                .iter()
                .map(|&(_, t)| auth[t.index()])
                .sum();
        }
        normalize(&mut hub);
    }
    (hub, auth)
}

fn normalize(v: &mut [f64]) {
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        v.iter_mut().for_each(|x| *x /= norm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_graph::generate::{cycle_graph, star_graph};
    use kgq_graph::LabeledGraph;

    #[test]
    fn pagerank_sums_to_one() {
        let g = star_graph(10, "v", "spoke");
        let pr = pagerank(&g, &PageRankParams::default());
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn pagerank_symmetric_on_cycle() {
        let g = cycle_graph(7, "v", "next");
        let pr = pagerank(&g, &PageRankParams::default());
        for w in pr.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_favors_link_targets() {
        // a -> c, b -> c: c should outrank a and b.
        let mut g = LabeledGraph::new();
        let a = g.add_node("a", "x").unwrap();
        let b = g.add_node("b", "x").unwrap();
        let c = g.add_node("c", "x").unwrap();
        g.add_edge("e1", a, c, "p").unwrap();
        g.add_edge("e2", b, c, "p").unwrap();
        let pr = pagerank(&g, &PageRankParams::default());
        assert!(pr[c.index()] > pr[a.index()]);
        assert!(pr[c.index()] > pr[b.index()]);
    }

    #[test]
    fn hits_identifies_hub_and_authority() {
        // hub -> {a1, a2, a3}: hub has top hub score, a* top authority.
        let g = star_graph(4, "v", "spoke");
        let (hub, auth) = hits(&g, 30);
        assert!(hub[0] > hub[1]);
        assert!(auth[1] > auth[0]);
        assert!((auth[1] - auth[3]).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = LabeledGraph::new();
        assert!(pagerank(&g, &PageRankParams::default()).is_empty());
        let (h, a) = hits(&g, 10);
        assert!(h.is_empty() && a.is_empty());
    }
}
