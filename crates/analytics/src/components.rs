//! Connected components, strongly connected components, diameter.

use crate::traversal::{bfs_on, Adj};
use kgq_graph::{LabeledGraph, NodeId};

/// Weakly connected components (union of directions). Returns a component
/// id per node; ids are consecutive from 0 in order of first appearance.
pub fn weakly_connected_components(g: &LabeledGraph) -> Vec<usize> {
    let adj = Adj::new(g);
    let mut comp = vec![usize::MAX; adj.n];
    let mut next = 0usize;
    let mut stack = Vec::new();
    let mut buf = Vec::new();
    for v in 0..adj.n {
        if comp[v] != usize::MAX {
            continue;
        }
        comp[v] = next;
        stack.push(NodeId(v as u32));
        while let Some(u) = stack.pop() {
            adj.neighbors(u, false, &mut buf);
            for &w in &buf {
                if comp[w.index()] == usize::MAX {
                    comp[w.index()] = next;
                    stack.push(w);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Strongly connected components (iterative Tarjan). Returns a component
/// id per node; ids are in reverse topological order of the condensation.
pub fn strongly_connected_components(g: &LabeledGraph) -> Vec<usize> {
    let adj = Adj::new(g);
    let n = adj.n;
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut scc = vec![usize::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_scc = 0usize;

    // Iterative DFS with an explicit call stack of (node, child-iterator pos).
    let succs: Vec<Vec<usize>> = (0..n)
        .map(|v| {
            let mut buf = Vec::new();
            adj.neighbors(NodeId(v as u32), true, &mut buf);
            buf.into_iter().map(|u| u.index()).collect()
        })
        .collect();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut i)) = call.last_mut() {
            if *i < succs[v].len() {
                let w = succs[v][*i];
                *i += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc[w] = next_scc;
                        if w == v {
                            break;
                        }
                    }
                    next_scc += 1;
                }
            }
        }
    }
    scc
}

/// Exact diameter: the largest finite shortest-path distance over all
/// ordered pairs (directed or undirected view). Returns `None` for graphs
/// with no edges at all reachable.
pub fn diameter(g: &LabeledGraph, directed: bool) -> Option<usize> {
    let adj = Adj::new(g);
    let mut best: Option<usize> = None;
    for v in 0..adj.n {
        let dist = bfs_on(&adj, NodeId(v as u32), directed);
        for (u, &d) in dist.iter().enumerate() {
            if u != v && d != usize::MAX {
                best = Some(best.map_or(d, |b| b.max(d)));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_graph::generate::{cycle_graph, grid_graph, path_graph};
    use kgq_graph::LabeledGraph;

    fn two_islands() -> LabeledGraph {
        let mut g = LabeledGraph::new();
        let a = g.add_node("a", "x").unwrap();
        let b = g.add_node("b", "x").unwrap();
        let c = g.add_node("c", "x").unwrap();
        let d = g.add_node("d", "x").unwrap();
        g.add_edge("e1", a, b, "p").unwrap();
        g.add_edge("e2", c, d, "p").unwrap();
        g
    }

    #[test]
    fn weak_components_split_islands() {
        let comp = weakly_connected_components(&two_islands());
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn cycle_is_one_scc_path_is_singletons() {
        let g = cycle_graph(5, "v", "next");
        let scc = strongly_connected_components(&g);
        assert!(scc.iter().all(|&c| c == scc[0]));

        let g = path_graph(4, "v", "next");
        let scc = strongly_connected_components(&g);
        let mut ids = scc.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn scc_ids_are_reverse_topological() {
        // a -> b: b's SCC must be numbered before a's.
        let mut g = LabeledGraph::new();
        let a = g.add_node("a", "x").unwrap();
        let b = g.add_node("b", "x").unwrap();
        g.add_edge("e", a, b, "p").unwrap();
        let scc = strongly_connected_components(&g);
        assert!(scc[b.index()] < scc[a.index()]);
    }

    #[test]
    fn diameter_of_known_shapes() {
        let g = path_graph(5, "v", "next");
        assert_eq!(diameter(&g, true), Some(4));
        assert_eq!(diameter(&g, false), Some(4));
        let g = cycle_graph(6, "v", "next");
        assert_eq!(diameter(&g, true), Some(5));
        assert_eq!(diameter(&g, false), Some(3));
        let g = grid_graph(3, 3, "c");
        assert_eq!(diameter(&g, false), Some(4));
    }

    #[test]
    fn diameter_of_edgeless_graph_is_none() {
        let mut g = LabeledGraph::new();
        g.add_node("a", "x").unwrap();
        g.add_node("b", "x").unwrap();
        assert_eq!(diameter(&g, true), None);
    }
}
