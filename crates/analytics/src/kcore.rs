//! k-core decomposition and degree statistics.
//!
//! Completes the §4.2 community/structure toolbox: the `k`-core (maximal
//! subgraph with all degrees ≥ k) underlies many of the cohesion notions
//! the cited community-detection literature builds on, and the degree
//! distribution is the first thing "analyzing the structure of a graph
//! as a whole" looks at.

use crate::traversal::Adj;
use kgq_graph::{LabeledGraph, NodeId};

/// Core number of every node (undirected view over *distinct*
/// neighbors, self-loops ignored):
/// the largest `k` such that the node belongs to the `k`-core.
/// Standard peeling; this simple min-scan variant is `O(n² + m)`,
/// ample for the workloads here.
pub fn core_numbers(g: &LabeledGraph) -> Vec<usize> {
    let adj = Adj::new(g);
    let n = adj.n;
    let mut nbrs: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut buf = Vec::new();
    for v in 0..n {
        adj.neighbors(NodeId(v as u32), false, &mut buf);
        nbrs.push(buf.iter().map(|u| u.index()).filter(|&u| u != v).collect());
    }
    let mut degree: Vec<usize> = nbrs.iter().map(Vec::len).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| degree[v]);
    let mut pos_of: Vec<usize> = vec![0; n];
    for (i, &v) in order.iter().enumerate() {
        pos_of[v] = i;
    }
    let mut core = vec![0usize; n];
    let mut removed = vec![false; n];
    for i in 0..n {
        let v = *order[i..]
            .iter()
            .filter(|&&v| !removed[v])
            .min_by_key(|&&v| degree[v])
            .expect("nodes remain");
        core[v] = degree[v].max(if i == 0 { 0 } else { core[order[i - 1]] });
        removed[v] = true;
        // Move v into position i (swap within order).
        let pv = pos_of[v];
        order.swap(i, pv);
        pos_of[order[pv]] = pv;
        pos_of[v] = i;
        for &u in &nbrs[v] {
            if !removed[u] && degree[u] > 0 {
                degree[u] -= 1;
            }
        }
    }
    core
}

/// Nodes of the `k`-core (possibly empty).
pub fn k_core(g: &LabeledGraph, k: usize) -> Vec<NodeId> {
    core_numbers(g)
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c >= k)
        .map(|(v, _)| NodeId(v as u32))
        .collect()
}

/// Degree histogram of the undirected view: `hist[d]` = number of nodes
/// with total degree `d`.
pub fn degree_histogram(g: &LabeledGraph) -> Vec<usize> {
    let base = g.base();
    let degrees: Vec<usize> = base
        .nodes()
        .map(|v| base.out_degree(v) + base.in_degree(v))
        .collect();
    let max = degrees.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for d in degrees {
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_graph::generate::{barabasi_albert, complete_graph, path_graph, star_graph};

    #[test]
    fn clique_core_number_is_n_minus_one() {
        let g = complete_graph(5, "v", "e");
        let core = core_numbers(&g);
        // Neighbors are deduplicated, so every node has 4 distinct
        // neighbors and the whole clique is the 4-core.
        assert!(core.iter().all(|&c| c == 4), "{core:?}");
    }

    #[test]
    fn path_is_a_one_core() {
        let g = path_graph(6, "v", "e");
        let core = core_numbers(&g);
        assert!(core.iter().all(|&c| c == 1), "{core:?}");
        assert_eq!(k_core(&g, 1).len(), 6);
        assert!(k_core(&g, 2).is_empty());
    }

    #[test]
    fn clique_with_tail_peels_to_the_clique() {
        let mut g = complete_graph(4, "v", "e");
        let mut prev = g.node_named("v0").unwrap();
        for i in 0..3 {
            let v = g.add_node(&format!("t{i}"), "v").unwrap();
            g.add_edge(&format!("p{i}"), prev, v, "e").unwrap();
            prev = v;
        }
        let core = core_numbers(&g);
        // Clique nodes have 3 distinct neighbors within the clique.
        let three_core = k_core(&g, 3);
        assert_eq!(three_core.len(), 4);
        assert!(core[4] <= 1 && core[5] <= 1 && core[6] <= 1);
    }

    #[test]
    fn core_numbers_are_monotone_under_k() {
        let g = barabasi_albert(80, 3, "v", "e", 3);
        let mut prev = g.node_count();
        for k in 0..8 {
            let size = k_core(&g, k).len();
            assert!(size <= prev, "k-core must shrink with k");
            prev = size;
        }
    }

    #[test]
    fn degree_histogram_sums_to_node_count() {
        let g = star_graph(7, "v", "e");
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 7);
        assert_eq!(hist[1], 6); // six spokes
        assert_eq!(hist[6], 1); // the hub
    }
}
