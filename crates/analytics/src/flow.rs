//! Maximum flow (Dinic) and Goldberg's exact maximum-density subgraph.
//!
//! §4.2 cites Goldberg's flow-based algorithm \[30\] for "finding the
//! subgraph of a graph with the largest density". [`densest_subgraph_exact`]
//! implements it: binary-search the density `g`, testing each guess with
//! a min-cut on the classic network (source → nodes at capacity `m`,
//! nodes → sink at `m + 2g − deg`, undirected edges at 1 each way). Two
//! distinct subgraph densities differ by at least `1/(n(n−1))`, so the
//! search over integer-scaled capacities terminates with the exact
//! optimum; the source side of the final cut is the densest subgraph.
//! The greedy peeling in [`crate::community::densest_subgraph`] is the
//! 2-approximation this is ablated against.

use kgq_graph::{LabeledGraph, NodeId};
use std::collections::VecDeque;

/// A max-flow network with integer capacities (Dinic's algorithm).
pub struct FlowNetwork {
    /// Adjacency: per node, indices into `edges`.
    adj: Vec<Vec<usize>>,
    /// Flat edge list; `edges[i ^ 1]` is the reverse of `edges[i]`.
    edges: Vec<FlowEdge>,
}

#[derive(Clone, Copy, Debug)]
struct FlowEdge {
    to: usize,
    cap: i64,
}

impl FlowNetwork {
    /// A network with `n` nodes and no edges.
    pub fn new(n: usize) -> FlowNetwork {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Adds a directed edge `from → to` with capacity `cap` (and its
    /// zero-capacity reverse).
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64) {
        debug_assert!(cap >= 0);
        let id = self.edges.len();
        self.edges.push(FlowEdge { to, cap });
        self.edges.push(FlowEdge { to: from, cap: 0 });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
    }

    fn bfs_levels(&self, s: usize, t: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1; self.adj.len()];
        let mut q = VecDeque::new();
        level[s] = 0;
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &ei in &self.adj[v] {
                let e = self.edges[ei];
                if e.cap > 0 && level[e.to] < 0 {
                    level[e.to] = level[v] + 1;
                    q.push_back(e.to);
                }
            }
        }
        if level[t] >= 0 {
            Some(level)
        } else {
            None
        }
    }

    fn dfs_push(
        &mut self,
        v: usize,
        t: usize,
        pushed: i64,
        level: &[i32],
        iter: &mut [usize],
    ) -> i64 {
        if v == t {
            return pushed;
        }
        while iter[v] < self.adj[v].len() {
            let ei = self.adj[v][iter[v]];
            let e = self.edges[ei];
            if e.cap > 0 && level[e.to] == level[v] + 1 {
                let d = self.dfs_push(e.to, t, pushed.min(e.cap), level, iter);
                if d > 0 {
                    self.edges[ei].cap -= d;
                    self.edges[ei ^ 1].cap += d;
                    return d;
                }
            }
            iter[v] += 1;
        }
        0
    }

    /// Computes the max flow from `s` to `t`; the network retains the
    /// residual capacities afterwards.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let mut flow = 0i64;
        while let Some(level) = self.bfs_levels(s, t) {
            let mut iter = vec![0usize; self.adj.len()];
            loop {
                let pushed = self.dfs_push(s, t, i64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
        flow
    }

    /// Nodes reachable from `s` in the residual network (the source side
    /// of a min cut, after [`FlowNetwork::max_flow`]).
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut q = VecDeque::new();
        seen[s] = true;
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &ei in &self.adj[v] {
                let e = self.edges[ei];
                if e.cap > 0 && !seen[e.to] {
                    seen[e.to] = true;
                    q.push_back(e.to);
                }
            }
        }
        seen
    }
}

/// Exact maximum-density subgraph (Goldberg \[30\]) on the undirected
/// simple view (parallel edges count with multiplicity; self-loops are
/// ignored). Returns the node set and its density `|E|/|N|`; the empty
/// result means the graph has no edges.
pub fn densest_subgraph_exact(g: &LabeledGraph) -> (Vec<NodeId>, f64) {
    let n = g.node_count();
    // Undirected edge list without self-loops.
    let edges: Vec<(usize, usize)> = g
        .base()
        .edges()
        .map(|e| g.base().endpoints(e))
        .filter(|(a, b)| a != b)
        .map(|(a, b)| (a.index(), b.index()))
        .collect();
    let m = edges.len();
    if m == 0 || n == 0 {
        return (Vec::new(), 0.0);
    }
    let mut degree = vec![0i64; n];
    for &(a, b) in &edges {
        degree[a] += 1;
        degree[b] += 1;
    }
    // Density guesses g = x / scale; any two subgraph densities differ by
    // ≥ 1/(n(n−1)), so scale = n(n−1) separates them all.
    let scale = (n as i64) * (n as i64 - 1).max(1);
    let build = |x: i64| -> FlowNetwork {
        // Nodes: 0..n graph nodes, n = source, n+1 = sink. All
        // capacities are pre-multiplied by `scale` so the 2g term stays
        // integral and every comparison is exact in i64.
        let s = n;
        let t = n + 1;
        let mut net = FlowNetwork::new(n + 2);
        for v in 0..n {
            net.add_edge(s, v, (m as i64) * scale);
            // m·scale + 2x − deg(v)·scale ≥ 0: with self-loops excluded,
            // every edge contributes at most 1 to deg(v), so deg(v) ≤ m.
            net.add_edge(v, t, (m as i64) * scale + 2 * x - degree[v] * scale);
        }
        for &(a, b) in &edges {
            net.add_edge(a, b, scale);
            net.add_edge(b, a, scale);
        }
        net
    };
    // cut({s} ∪ S) = m·n·scale + 2x·|S| − 2·scale·e(S), so
    // "∃ S ≠ ∅ with density > x/scale" ⟺ maxflow < m·n·scale.
    let full = |x: i64| -> bool {
        let mut net = build(x);
        let flow = net.max_flow(n, n + 1);
        // If every s→v edge saturates, no dense-enough subgraph exists.
        flow < (m as i64) * scale * (n as i64)
    };
    // Binary search the largest x admitting a witness set; x = 0 always
    // does (any single edge gives density > 0), and densities are capped
    // by m, so the optimum lies in [0, m·scale].
    let mut lo = 0i64;
    let mut hi = (m as i64) * scale;
    debug_assert!(full(0));
    while lo < hi {
        let mid = lo + (hi - lo + 1) / 2;
        if full(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    // Extract the witness at x = lo.
    let mut net = build(lo);
    net.max_flow(n, n + 1);
    let side = net.min_cut_source_side(n);
    let nodes: Vec<NodeId> = (0..n)
        .filter(|&v| side[v])
        .map(|v| NodeId(v as u32))
        .collect();
    if nodes.is_empty() {
        return (Vec::new(), 0.0);
    }
    let chosen: std::collections::HashSet<usize> = nodes.iter().map(|v| v.index()).collect();
    let internal = edges
        .iter()
        .filter(|(a, b)| chosen.contains(a) && chosen.contains(b))
        .count();
    (nodes, internal as f64 / chosen.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::densest_subgraph;
    use kgq_graph::generate::{complete_graph, gnm_labeled, path_graph};
    use kgq_graph::LabeledGraph;

    #[test]
    fn dinic_on_textbook_network() {
        // s=0, t=3; classic 2-path network with cross edge.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 2, 5);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 3);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn min_cut_side_is_consistent() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(1, 2, 10);
        net.add_edge(2, 3, 10);
        assert_eq!(net.max_flow(0, 3), 1);
        let side = net.min_cut_source_side(0);
        assert!(side[0]);
        assert!(!side[1] && !side[2] && !side[3]);
    }

    /// Brute-force densest subgraph over all subsets (tiny graphs only).
    fn brute_force(g: &LabeledGraph) -> f64 {
        let n = g.node_count();
        let edges: Vec<(usize, usize)> = g
            .base()
            .edges()
            .map(|e| g.base().endpoints(e))
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (a.index(), b.index()))
            .collect();
        let mut best = 0.0f64;
        for mask in 1u32..(1 << n) {
            let size = mask.count_ones() as f64;
            let internal = edges
                .iter()
                .filter(|(a, b)| mask & (1 << a) != 0 && mask & (1 << b) != 0)
                .count() as f64;
            best = best.max(internal / size);
        }
        best
    }

    #[test]
    fn exact_matches_brute_force_on_random_graphs() {
        for seed in 0..6 {
            let g = gnm_labeled(7, 14, &["v"], &["e"], seed);
            let (_, exact) = densest_subgraph_exact(&g);
            let brute = brute_force(&g);
            assert!(
                (exact - brute).abs() < 1e-9,
                "seed {seed}: exact {exact} brute {brute}"
            );
        }
    }

    #[test]
    fn clique_with_tail() {
        let mut g = complete_graph(5, "v", "e");
        let mut prev = g.node_named("v0").unwrap();
        for i in 0..5 {
            let v = g.add_node(&format!("t{i}"), "v").unwrap();
            g.add_edge(&format!("p{i}"), prev, v, "e").unwrap();
            prev = v;
        }
        let (nodes, density) = densest_subgraph_exact(&g);
        // K5 directed-complete has 20 edges over 5 nodes: density 4.
        assert!((density - 4.0).abs() < 1e-9, "density {density}");
        assert_eq!(nodes.len(), 5);
    }

    #[test]
    fn peeling_is_within_factor_two_of_exact() {
        for seed in 0..5 {
            let g = gnm_labeled(20, 60, &["v"], &["e"], seed);
            let (_, exact) = densest_subgraph_exact(&g);
            let (_, peel) = densest_subgraph(&g);
            assert!(peel <= exact + 1e-9, "peeling can never beat exact");
            assert!(
                peel * 2.0 + 1e-9 >= exact,
                "seed {seed}: 2-approximation violated: peel {peel} exact {exact}"
            );
        }
    }

    #[test]
    fn edgeless_and_path_graphs() {
        let mut g = LabeledGraph::new();
        g.add_node("a", "v").unwrap();
        let (nodes, d) = densest_subgraph_exact(&g);
        assert!(nodes.is_empty());
        assert_eq!(d, 0.0);

        let g = path_graph(5, "v", "e");
        let (nodes, d) = densest_subgraph_exact(&g);
        // Best density of a path: (n-1)/n = 4/5 using all nodes.
        assert!((d - 0.8).abs() < 1e-9, "density {d}");
        assert_eq!(nodes.len(), 5);
    }
}
