//! Property-based invariants of the analytics toolbox on random graphs.

use kgq_analytics::{
    betweenness, closeness, densest_subgraph, densest_subgraph_exact, harmonic, pagerank,
    weakly_connected_components, PageRankParams,
};
use kgq_graph::{LabeledGraph, NodeId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct GraphSpec {
    n: usize,
    edges: Vec<(usize, usize)>,
}

fn graph_strategy() -> impl Strategy<Value = GraphSpec> {
    (1usize..12).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..24).prop_map(move |edges| GraphSpec { n, edges })
    })
}

fn build(spec: &GraphSpec) -> LabeledGraph {
    let mut g = LabeledGraph::new();
    let nodes: Vec<NodeId> = (0..spec.n)
        .map(|i| g.add_node(&format!("n{i}"), "v").unwrap())
        .collect();
    for (i, &(s, d)) in spec.edges.iter().enumerate() {
        g.add_edge(&format!("e{i}"), nodes[s], nodes[d], "e")
            .unwrap();
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn pagerank_is_a_distribution(spec in graph_strategy()) {
        let g = build(&spec);
        let pr = pagerank(&g, &PageRankParams::default());
        let total: f64 = pr.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sum = {}", total);
        prop_assert!(pr.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn betweenness_is_nonnegative_and_bounded(spec in graph_strategy()) {
        let g = build(&spec);
        let bc = betweenness(&g);
        let n = g.node_count() as f64;
        // Each of the at most n(n-1) ordered pairs contributes ≤ 1.
        prop_assert!(bc.iter().all(|&x| x >= -1e-12 && x <= n * (n - 1.0) + 1e-9));
    }

    #[test]
    fn components_partition_matches_mutual_reachability(spec in graph_strategy()) {
        let g = build(&spec);
        let comp = weakly_connected_components(&g);
        // Same component ⟺ finite undirected distance.
        for a in 0..g.node_count() {
            let dist = kgq_analytics::bfs_distances(&g, NodeId(a as u32), false);
            for b in 0..g.node_count() {
                prop_assert_eq!(comp[a] == comp[b], dist[b] != usize::MAX);
            }
        }
    }

    #[test]
    fn densest_exact_dominates_peeling(spec in graph_strategy()) {
        let g = build(&spec);
        let (_, exact) = densest_subgraph_exact(&g);
        let (_, peel) = densest_subgraph(&g);
        prop_assert!(peel <= exact + 1e-9, "peel {} > exact {}", peel, exact);
        prop_assert!(peel * 2.0 + 1e-9 >= exact, "2-approx violated");
    }

    #[test]
    fn harmonic_dominates_on_supersets_of_edges(spec in graph_strategy()) {
        // Adding an edge can only increase (or keep) harmonic centrality.
        let g = build(&spec);
        let before = harmonic(&g, false);
        if spec.n >= 2 {
            let mut g2 = build(&spec);
            let a = NodeId(0);
            let b = NodeId(1);
            g2.add_edge("extra", a, b, "e").unwrap();
            let after = harmonic(&g2, false);
            for (x, y) in before.iter().zip(after.iter()) {
                prop_assert!(y + 1e-12 >= *x);
            }
        }
    }

    #[test]
    fn closeness_is_within_unit_interval(spec in graph_strategy()) {
        let g = build(&spec);
        for &c in &closeness(&g, false) {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c), "closeness {}", c);
        }
    }
}
