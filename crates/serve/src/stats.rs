//! Per-request and aggregate server counters, exposed via `STATS`.

use kgq_core::CacheStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Aggregate counters for one server lifetime. All methods are `&self`;
/// update paths are atomics plus one short-lived mutex for the latency
/// reservoir.
#[derive(Debug, Default)]
pub struct ServerStats {
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    partials: AtomicU64,
    cancelled: AtomicU64,
    /// Queries run through a static analyzer (every query verb, plus
    /// explicit `ANALYZE` requests).
    analyzed: AtomicU64,
    /// Diagnostics tallied by severity across all analyzer runs.
    verdict_deny: AtomicU64,
    verdict_warn: AtomicU64,
    verdict_note: AtomicU64,
    /// Query requests answered empty straight from a Deny verdict,
    /// skipping planning and evaluation entirely.
    deny_short_circuits: AtomicU64,
    /// SPARQL requests executed on a sketch-driven plan.
    plans_sketch: AtomicU64,
    /// SPARQL requests that fell back to the greedy planner.
    plans_greedy: AtomicU64,
    /// COUNT queries that degraded to the XOR-hash approximate counter.
    approx_counts: AtomicU64,
    /// Completed-request latencies in microseconds.
    latencies_us: Mutex<Vec<u64>>,
}

impl ServerStats {
    /// Fresh zeroed counters.
    pub fn new() -> ServerStats {
        ServerStats::default()
    }

    /// Counts an admitted request.
    pub fn request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a completed request: outcome plus wall latency.
    pub fn finish(&self, ok: bool, partial: bool, latency_us: u64) {
        if ok {
            self.ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        if partial {
            self.partials.fetch_add(1, Ordering::Relaxed);
        }
        self.latencies_us
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(latency_us);
    }

    /// Counts a request reclaimed unrun because its client disconnected.
    pub fn cancel(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one analyzer run and its per-severity diagnostic tallies.
    pub fn analysis(&self, deny: u64, warn: u64, note: u64) {
        self.analyzed.fetch_add(1, Ordering::Relaxed);
        self.verdict_deny.fetch_add(deny, Ordering::Relaxed);
        self.verdict_warn.fetch_add(warn, Ordering::Relaxed);
        self.verdict_note.fetch_add(note, Ordering::Relaxed);
    }

    /// Counts a query answered empty directly from a Deny verdict.
    pub fn deny_short_circuit(&self) {
        self.deny_short_circuits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts which planner supplied an executed SPARQL plan.
    pub fn plan_choice(&self, sketch: bool) {
        if sketch {
            self.plans_sketch.fetch_add(1, Ordering::Relaxed);
        } else {
            self.plans_greedy.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts a COUNT query degraded to the approximate counter.
    pub fn approx_count(&self) {
        self.approx_counts.fetch_add(1, Ordering::Relaxed);
    }

    /// SPARQL requests executed on a sketch-driven plan.
    pub fn plans_sketch(&self) -> u64 {
        self.plans_sketch.load(Ordering::Relaxed)
    }

    /// SPARQL requests that fell back to the greedy planner.
    pub fn plans_greedy(&self) -> u64 {
        self.plans_greedy.load(Ordering::Relaxed)
    }

    /// COUNT queries that degraded to the approximate counter.
    pub fn approx_counts(&self) -> u64 {
        self.approx_counts.load(Ordering::Relaxed)
    }

    /// Analyzer runs so far.
    pub fn analyzed(&self) -> u64 {
        self.analyzed.load(Ordering::Relaxed)
    }

    /// Queries answered empty straight from a Deny verdict.
    pub fn deny_short_circuits(&self) -> u64 {
        self.deny_short_circuits.load(Ordering::Relaxed)
    }

    /// Requests admitted so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests finished with `OK`.
    pub fn ok(&self) -> u64 {
        self.ok.load(Ordering::Relaxed)
    }

    /// Requests finished with `ERR`.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Requests whose body carried a `# partial:` trailer (budget trips).
    pub fn partials(&self) -> u64 {
        self.partials.load(Ordering::Relaxed)
    }

    /// `(p50, p99)` completed-request latency in microseconds.
    pub fn latency_percentiles(&self) -> (u64, u64) {
        let mut lat = self
            .latencies_us
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if lat.is_empty() {
            return (0, 0);
        }
        lat.sort_unstable();
        (percentile(&lat, 50), percentile(&lat, 99))
    }

    /// Renders the `STATS` response body. One `key value` pair per
    /// line, stable order, so shell tests can `grep '^partials '`.
    pub fn render(&self, cache: &CacheStats, workers: usize) -> String {
        let (p50, p99) = self.latency_percentiles();
        format!(
            "requests {}\nok {}\nerrors {}\npartials {}\ncancelled {}\n\
             p50_us {p50}\np99_us {p99}\nworkers {workers}\n\
             cache_hits {}\ncache_misses {}\ncache_evictions {}\n\
             cache_short_circuits {}\ncache_len {}\ncache_capacity {}\n\
             analyzed {}\nverdict_deny {}\nverdict_warn {}\nverdict_note {}\n\
             deny_short_circuits {}\nplans_sketch {}\nplans_greedy {}\n\
             approx_counts {}\n",
            self.requests(),
            self.ok(),
            self.errors(),
            self.partials(),
            self.cancelled.load(Ordering::Relaxed),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.short_circuits,
            cache.len,
            cache.capacity,
            self.analyzed(),
            self.verdict_deny.load(Ordering::Relaxed),
            self.verdict_warn.load(Ordering::Relaxed),
            self.verdict_note.load(Ordering::Relaxed),
            self.deny_short_circuits(),
            self.plans_sketch(),
            self.plans_greedy(),
            self.approx_counts(),
        )
    }
}

/// Nearest-rank percentile over an ascending-sorted non-empty slice.
pub fn percentile(sorted: &[u64], p: u64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (p as usize * sorted.len()).div_ceil(100);
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 99), 7);
    }

    #[test]
    fn counters_and_render() {
        let s = ServerStats::new();
        s.request();
        s.request();
        s.request();
        s.finish(true, false, 100);
        s.finish(true, true, 300);
        s.finish(false, false, 200);
        s.cancel();
        assert_eq!(s.requests(), 3);
        assert_eq!(s.ok(), 2);
        assert_eq!(s.errors(), 1);
        assert_eq!(s.partials(), 1);
        assert_eq!(s.latency_percentiles(), (200, 300));
        let cache = CacheStats {
            hits: 5,
            misses: 2,
            evictions: 1,
            short_circuits: 0,
            len: 2,
            capacity: 64,
        };
        s.analysis(1, 2, 0);
        s.analysis(0, 0, 1);
        s.deny_short_circuit();
        let text = s.render(&cache, 4);
        assert!(text.contains("analyzed 2\n"));
        assert!(text.contains("verdict_deny 1\n"));
        assert!(text.contains("verdict_warn 2\n"));
        assert!(text.contains("verdict_note 1\n"));
        assert!(text.contains("deny_short_circuits 1\n"));
        s.plan_choice(true);
        s.plan_choice(true);
        s.plan_choice(false);
        s.approx_count();
        let text = s.render(&cache, 4);
        assert!(text.contains("plans_sketch 2\n"));
        assert!(text.contains("plans_greedy 1\n"));
        assert!(text.contains("approx_counts 1\n"));
        assert!(text.contains("requests 3\n"));
        assert!(text.contains("partials 1\n"));
        assert!(text.contains("cancelled 1\n"));
        assert!(text.contains("p99_us 300\n"));
        assert!(text.contains("cache_hits 5\n"));
        assert!(text.contains("workers 4\n"));
    }

    #[test]
    fn empty_latency_reservoir_reports_zero() {
        assert_eq!(ServerStats::new().latency_percentiles(), (0, 0));
    }
}
