//! Wire protocol: length-prefixed request/response frames over TCP.
//!
//! One connection carries any number of requests. Each request is a
//! single header line followed by a length-prefixed payload:
//!
//! ```text
//! <id> <verb> <caps> <len>\n<payload: len bytes>
//! ```
//!
//! - `id` — a client-chosen `u64`, echoed on the response so pipelined
//!   requests can be matched up even when the server completes them out
//!   of order.
//! - `verb` — `QUERY` (RPQ over the property graph; the payload's first
//!   line is the operation — `pairs`, `starts` or `count K` — and the
//!   rest is the path expression), `CYPHER`, `SPARQL`, `STATS`, `PING`,
//!   `SHUTDOWN`, `ANALYZE` (run the static analyzer without executing;
//!   see [`Verb::Analyze`]), or the mutation verbs `INSERT`, `DELETE`
//!   and `FLUSH` (committed as one durable batch; see [`Verb::Insert`]).
//! - `caps` — the client's requested resource caps: `-` for none, or a
//!   comma list of `timeout=MS`, `steps=N`, `results=N`, `memory=BYTES`.
//!   The server intersects these with its own caps (componentwise min)
//!   before admission; a client can therefore only tighten its budget,
//!   never exceed the server's.
//! - `len` — payload byte length (the payload itself may contain tabs
//!   and newlines; no in-band escaping is needed).
//!
//! Responses mirror the shape:
//!
//! ```text
//! <id> OK <len>\n<body>
//! <id> ERR <len>\n<message>
//! ```
//!
//! A governed request that trips its budget is *not* an error: the body
//! is the exact answer prefix computed so far, terminated by the same
//! `# partial: REASON` trailer the CLI prints, so clients parse one
//! format everywhere.

use kgq_core::Budget;
use std::io::{BufRead, Write};
use std::time::Duration;

/// Request verbs understood by the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verb {
    /// RPQ over the shared property graph.
    Query,
    /// Cypher query over the shared property graph.
    Cypher,
    /// SPARQL SELECT over the shared triple store.
    Sparql,
    /// Server counters (requests, trips, cache stats, latency).
    Stats,
    /// Liveness check; echoes the payload.
    Ping,
    /// Ask the server to shut down cleanly.
    Shutdown,
    /// Commit triple inserts and/or property-graph edges. The payload
    /// is one mutation per line: an N-Triples line (`<s> <p> <o> .`) or
    /// `edge SRC LABEL DST [SRC_LABEL [DST_LABEL]]`. The whole payload
    /// is one atomic batch: with a durable store attached it is WAL-
    /// logged and fsynced before it is applied or acknowledged.
    Insert,
    /// Commit triple deletes; the payload is N-Triples lines. Same
    /// atomic-batch and durability contract as `INSERT`.
    Delete,
    /// Compact the durable store: fold the delta overlay into a fresh
    /// immutable segment and truncate the write-ahead log.
    Flush,
    /// Run the static analyzer without executing. The payload's first
    /// line is the query kind — `query` (RPQ), `cypher`, `sparql` or
    /// `rules` — and the rest is the query/program text. The body is the
    /// analyzer's rendered report: diagnostics on the shared severity
    /// ladder plus the complexity/termination verdict.
    Analyze,
}

impl Verb {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Verb::Query => "QUERY",
            Verb::Cypher => "CYPHER",
            Verb::Sparql => "SPARQL",
            Verb::Stats => "STATS",
            Verb::Ping => "PING",
            Verb::Shutdown => "SHUTDOWN",
            Verb::Insert => "INSERT",
            Verb::Delete => "DELETE",
            Verb::Flush => "FLUSH",
            Verb::Analyze => "ANALYZE",
        }
    }

    /// Parses a wire spelling.
    pub fn parse(s: &str) -> Option<Verb> {
        Some(match s {
            "QUERY" => Verb::Query,
            "CYPHER" => Verb::Cypher,
            "SPARQL" => Verb::Sparql,
            "STATS" => Verb::Stats,
            "PING" => Verb::Ping,
            "SHUTDOWN" => Verb::Shutdown,
            "INSERT" => Verb::Insert,
            "DELETE" => Verb::Delete,
            "FLUSH" => Verb::Flush,
            "ANALYZE" => Verb::Analyze,
            _ => return None,
        })
    }
}

/// Client-requested resource caps, as carried on the request header.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Caps {
    /// Wall-clock limit in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Step budget.
    pub max_steps: Option<u64>,
    /// Result budget.
    pub max_results: Option<u64>,
    /// Memory budget in bytes.
    pub max_memory: Option<u64>,
}

impl Caps {
    /// No caps requested.
    pub fn none() -> Caps {
        Caps::default()
    }

    /// Wire encoding (`-` when empty).
    pub fn encode(&self) -> String {
        let mut parts = Vec::new();
        if let Some(v) = self.timeout_ms {
            parts.push(format!("timeout={v}"));
        }
        if let Some(v) = self.max_steps {
            parts.push(format!("steps={v}"));
        }
        if let Some(v) = self.max_results {
            parts.push(format!("results={v}"));
        }
        if let Some(v) = self.max_memory {
            parts.push(format!("memory={v}"));
        }
        if parts.is_empty() {
            "-".into()
        } else {
            parts.join(",")
        }
    }

    /// Parses the wire encoding.
    pub fn parse(s: &str) -> Result<Caps, String> {
        let mut caps = Caps::default();
        if s == "-" {
            return Ok(caps);
        }
        for part in s.split(',') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("malformed cap `{part}` (expected key=value)"))?;
            let n: u64 = value
                .parse()
                .map_err(|_| format!("cap `{key}` needs a number, got `{value}`"))?;
            match key {
                "timeout" => caps.timeout_ms = Some(n),
                "steps" => caps.max_steps = Some(n),
                "results" => caps.max_results = Some(n),
                "memory" => caps.max_memory = Some(n),
                other => return Err(format!("unknown cap `{other}`")),
            }
        }
        Ok(caps)
    }

    /// The caps as a [`Budget`] (no server intersection applied).
    pub fn to_budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(ms) = self.timeout_ms {
            b = b.with_deadline(Duration::from_millis(ms));
        }
        if let Some(n) = self.max_steps {
            b = b.with_max_steps(n);
        }
        if let Some(n) = self.max_results {
            b = b.with_max_results(n);
        }
        if let Some(n) = self.max_memory {
            b = b.with_max_memory(n);
        }
        b
    }
}

/// Componentwise minimum of the server's caps and the client's request:
/// the *effective* budget a request is admitted under. `None` means
/// unlimited on that axis, so `min(None, x) = x`.
pub fn effective_budget(server: &Budget, client: &Caps) -> Budget {
    fn min_opt<T: Ord>(a: Option<T>, b: Option<T>) -> Option<T> {
        match (a, b) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }
    let c = client.to_budget();
    Budget {
        deadline: min_opt(server.deadline, c.deadline),
        max_steps: min_opt(server.max_steps, c.max_steps),
        max_memory_bytes: min_opt(server.max_memory_bytes, c.max_memory_bytes),
        max_results: min_opt(server.max_results, c.max_results),
    }
}

/// A parsed request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen id, echoed on the response.
    pub id: u64,
    /// What to do.
    pub verb: Verb,
    /// Client-requested caps.
    pub caps: Caps,
    /// Verb-specific payload.
    pub payload: String,
}

/// A parsed response frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// `OK` vs `ERR`.
    pub ok: bool,
    /// Result body (for `OK`) or error message (for `ERR`).
    pub body: String,
}

impl Response {
    /// True when the body carries a governed partial-result trailer.
    pub fn is_partial(&self) -> bool {
        self.body.lines().any(|l| l.starts_with("# partial: "))
    }
}

/// Payload size cap: a defensive bound so a garbage header cannot make
/// the server allocate unbounded memory.
pub const MAX_PAYLOAD: usize = 16 * 1024 * 1024;

/// Writes one request frame.
pub fn write_request(w: &mut impl Write, req: &Request) -> std::io::Result<()> {
    write!(
        w,
        "{} {} {} {}\n{}",
        req.id,
        req.verb.as_str(),
        req.caps.encode(),
        req.payload.len(),
        req.payload
    )?;
    w.flush()
}

/// Reads one request frame. `Ok(None)` on clean EOF before a header.
pub fn read_request(r: &mut impl BufRead) -> std::io::Result<Option<Request>> {
    let Some(line) = read_header_line(r)? else {
        return Ok(None);
    };
    let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
    let mut it = line.split_ascii_whitespace();
    let (Some(id), Some(verb), Some(caps), Some(len), None) =
        (it.next(), it.next(), it.next(), it.next(), it.next())
    else {
        return Err(bad(format!("malformed request header `{line}`")));
    };
    let id: u64 = id.parse().map_err(|_| bad(format!("bad id `{id}`")))?;
    let verb = Verb::parse(verb).ok_or_else(|| bad(format!("unknown verb `{verb}`")))?;
    let caps = Caps::parse(caps).map_err(bad)?;
    let payload = read_payload(r, len).map_err(|e| match e {
        PayloadError::Header(m) => bad(m),
        PayloadError::Io(e) => e,
    })?;
    Ok(Some(Request {
        id,
        verb,
        caps,
        payload,
    }))
}

/// Writes one response frame.
pub fn write_response(w: &mut impl Write, resp: &Response) -> std::io::Result<()> {
    write!(
        w,
        "{} {} {}\n{}",
        resp.id,
        if resp.ok { "OK" } else { "ERR" },
        resp.body.len(),
        resp.body
    )?;
    w.flush()
}

/// Reads one response frame. `Ok(None)` on clean EOF before a header.
pub fn read_response(r: &mut impl BufRead) -> std::io::Result<Option<Response>> {
    let Some(line) = read_header_line(r)? else {
        return Ok(None);
    };
    let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
    let mut it = line.split_ascii_whitespace();
    let (Some(id), Some(status), Some(len), None) = (it.next(), it.next(), it.next(), it.next())
    else {
        return Err(bad(format!("malformed response header `{line}`")));
    };
    let id: u64 = id.parse().map_err(|_| bad(format!("bad id `{id}`")))?;
    let ok = match status {
        "OK" => true,
        "ERR" => false,
        other => return Err(bad(format!("bad status `{other}`"))),
    };
    let body = read_payload(r, len).map_err(|e| match e {
        PayloadError::Header(m) => bad(m),
        PayloadError::Io(e) => e,
    })?;
    Ok(Some(Response { id, ok, body }))
}

enum PayloadError {
    Header(String),
    Io(std::io::Error),
}

fn read_payload(r: &mut impl BufRead, len: &str) -> Result<String, PayloadError> {
    let len: usize = len
        .parse()
        .map_err(|_| PayloadError::Header(format!("bad length `{len}`")))?;
    if len > MAX_PAYLOAD {
        return Err(PayloadError::Header(format!(
            "payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte cap"
        )));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(PayloadError::Io)?;
    String::from_utf8(buf).map_err(|_| PayloadError::Header("payload is not UTF-8".into()))
}

/// Reads one `\n`-terminated header line; `None` on EOF at a frame
/// boundary (i.e. a clean close).
fn read_header_line(r: &mut impl BufRead) -> std::io::Result<Option<String>> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_frames_round_trip() {
        let req = Request {
            id: 7,
            verb: Verb::Sparql,
            caps: Caps {
                timeout_ms: Some(250),
                max_steps: Some(1_000),
                max_results: None,
                max_memory: None,
            },
            payload: "SELECT ?x WHERE { ?x <knows> ?y . }\nwith a second line\tand tabs".into(),
        };
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        let mut r = BufReader::new(&wire[..]);
        assert_eq!(read_request(&mut r).unwrap(), Some(req));
        assert_eq!(read_request(&mut r).unwrap(), None); // clean EOF
    }

    #[test]
    fn response_frames_round_trip_and_flag_partials() {
        let resp = Response {
            id: 9,
            ok: true,
            body: "a\tb\n# partial: step budget exhausted\n".into(),
        };
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        let mut r = BufReader::new(&wire[..]);
        let back = read_response(&mut r).unwrap().unwrap();
        assert_eq!(back, resp);
        assert!(back.is_partial());
        assert!(!Response {
            id: 0,
            ok: true,
            body: "a\tb\n".into()
        }
        .is_partial());
    }

    #[test]
    fn caps_encode_parse_round_trip() {
        for caps in [
            Caps::none(),
            Caps {
                timeout_ms: Some(10),
                max_steps: Some(20),
                max_results: Some(30),
                max_memory: Some(40),
            },
            Caps {
                max_steps: Some(5),
                ..Caps::default()
            },
        ] {
            assert_eq!(Caps::parse(&caps.encode()).unwrap(), caps);
        }
        assert!(Caps::parse("steps=abc").is_err());
        assert!(Caps::parse("bogus=1").is_err());
        assert!(Caps::parse("steps").is_err());
    }

    #[test]
    fn effective_budget_is_componentwise_min() {
        let server = Budget::unlimited()
            .with_max_steps(1_000)
            .with_deadline(Duration::from_millis(500));
        // Client tightens steps, requests looser deadline, adds results.
        let client = Caps {
            max_steps: Some(10),
            timeout_ms: Some(60_000),
            max_results: Some(3),
            max_memory: None,
        };
        let eff = effective_budget(&server, &client);
        assert_eq!(eff.max_steps, Some(10)); // client tighter
        assert_eq!(eff.deadline, Some(Duration::from_millis(500))); // server tighter
        assert_eq!(eff.max_results, Some(3)); // only client
        assert_eq!(eff.max_memory_bytes, None); // neither
    }

    #[test]
    fn malformed_headers_are_io_errors_not_panics() {
        for wire in [
            "nonsense\nxx",
            "1 QUERY -\n",                       // missing length
            "1 BOGUS - 0\n",                     // unknown verb
            "x QUERY - 0\n",                     // bad id
            "1 QUERY steps=z 0\n",               // bad cap
            "1 QUERY - 999999999999999999999\n", // bad length
        ] {
            let mut r = BufReader::new(wire.as_bytes());
            assert!(read_request(&mut r).is_err(), "{wire:?}");
        }
    }

    #[test]
    fn oversized_payload_is_rejected() {
        let wire = format!("1 PING - {}\n", MAX_PAYLOAD + 1);
        let mut r = BufReader::new(wire.as_bytes());
        assert!(read_request(&mut r).is_err());
    }
}
