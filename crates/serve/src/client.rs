//! A small blocking client for the serve protocol.
//!
//! One [`Client`] wraps one TCP connection and issues one request at a
//! time (`request` writes a frame and blocks for its response). The
//! server supports pipelining via request ids; this client deliberately
//! keeps the simple lock-step discipline — concurrency in the tests and
//! the load generator comes from many clients, matching the
//! "millions of users, one connection each" traffic shape.

use crate::protocol::{read_response, write_request, Caps, Request, Response, Verb};
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            next_id: 1,
        })
    }

    /// Sets a read timeout so a hung server cannot block a test forever.
    pub fn set_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(d)
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, verb: Verb, caps: &Caps, payload: &str) -> std::io::Result<Response> {
        let id = self.next_id;
        self.next_id += 1;
        write_request(
            &mut self.writer,
            &Request {
                id,
                verb,
                caps: caps.clone(),
                payload: payload.into(),
            },
        )?;
        let resp = read_response(&mut self.reader)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed before responding",
            )
        })?;
        if resp.id != id {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("response id {} for request {id}", resp.id),
            ));
        }
        Ok(resp)
    }

    /// RPQ over the server's property graph. `op` is `pairs`, `starts`
    /// or `count K`.
    pub fn rpq(&mut self, op: &str, expr: &str, caps: &Caps) -> std::io::Result<Response> {
        self.request(Verb::Query, caps, &format!("{op}\n{expr}"))
    }

    /// Cypher query.
    pub fn cypher(&mut self, query: &str, caps: &Caps) -> std::io::Result<Response> {
        self.request(Verb::Cypher, caps, query)
    }

    /// SPARQL SELECT.
    pub fn sparql(&mut self, query: &str, caps: &Caps) -> std::io::Result<Response> {
        self.request(Verb::Sparql, caps, query)
    }

    /// Commits a mutation batch: N-Triples lines and/or
    /// `edge SRC LABEL DST [SRC_LABEL [DST_LABEL]]` lines.
    pub fn insert(&mut self, mutations: &str) -> std::io::Result<Response> {
        self.request(Verb::Insert, &Caps::none(), mutations)
    }

    /// Commits a batch of triple deletes (N-Triples lines).
    pub fn delete(&mut self, triples: &str) -> std::io::Result<Response> {
        self.request(Verb::Delete, &Caps::none(), triples)
    }

    /// Asks the server to compact its durable store.
    pub fn flush(&mut self) -> std::io::Result<Response> {
        self.request(Verb::Flush, &Caps::none(), "")
    }

    /// Server counters as the raw `STATS` body.
    pub fn stats(&mut self) -> std::io::Result<String> {
        Ok(self.request(Verb::Stats, &Caps::none(), "")?.body)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> std::io::Result<bool> {
        let resp = self.request(Verb::Ping, &Caps::none(), "hello")?;
        Ok(resp.ok && resp.body == "hello")
    }

    /// Asks the server to shut down cleanly.
    pub fn shutdown(&mut self) -> std::io::Result<Response> {
        self.request(Verb::Shutdown, &Caps::none(), "")
    }
}

/// Parses one counter out of a `STATS` body.
pub fn stat(body: &str, key: &str) -> Option<u64> {
    body.lines()
        .find_map(|l| l.strip_prefix(key).and_then(|r| r.trim().parse().ok()))
}
