//! The TCP server: accept loop, per-connection readers, worker pool.
//!
//! Thread architecture (all joined on shutdown — nothing is detached):
//!
//! ```text
//! accept loop ──spawns──▶ reader (one per connection)
//!                            │ submit(conn_id, job)
//!                            ▼
//!                      FairScheduler ◀──next()── worker × W
//!                                                  │ execute + respond
//!                                                  ▼
//!                                       conn writer (mutex per conn)
//! ```
//!
//! - Every request runs **governed**: effective budget = server caps ∧
//!   client caps, plus the connection's [`CancelToken`] so a disconnect
//!   trips in-flight work at its next batch boundary.
//! - Responses are written under a per-connection mutex and carry the
//!   request id, so pipelined requests may complete out of order
//!   without interleaving bytes.
//! - Shutdown (the `SHUTDOWN` verb or [`ServerHandle::shutdown`])
//!   closes the scheduler, shuts both halves of every live socket
//!   (unblocking readers), and joins every thread it ever spawned.

use crate::exec::Snapshot;
use crate::protocol::{read_request, write_response, Request, Response, Verb};
use crate::sched::FairScheduler;
use kgq_core::{Budget, CancelToken};
use kgq_graph::PropertyGraph;
use kgq_rdf::TripleStore;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server construction parameters.
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick.
    pub addr: String,
    /// Worker threads executing queries.
    pub workers: usize,
    /// Server-side caps applied to every request (componentwise min
    /// with the client's own caps).
    pub caps: Budget,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            caps: Budget::unlimited(),
        }
    }
}

/// One live connection: the write half plus its cancellation token.
struct Conn {
    id: u64,
    writer: Mutex<TcpStream>,
    cancel: CancelToken,
}

impl Conn {
    fn respond(&self, resp: &Response) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // A failed write means the client left; in-flight work for this
        // connection is already being cancelled by its reader.
        let _ = write_response(&mut *w, resp);
    }
}

/// One unit of scheduled work.
struct Job {
    conn: Arc<Conn>,
    req: Request,
}

struct Shared {
    snapshot: Snapshot,
    sched: FairScheduler<Job>,
    /// Set once shutdown begins; the accept loop observes it.
    stop: AtomicBool,
    /// Flipped by the `SHUTDOWN` verb; [`ServerHandle::wait`] returns.
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    reader_handles: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
}

impl Shared {
    fn request_shutdown(&self) {
        let mut flag = self
            .shutdown_requested
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *flag = true;
        self.shutdown_cv.notify_all();
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] aborts the process-exit path of joining
/// threads; call `shutdown` for a clean stop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

/// Binds, spawns the accept loop and `cfg.workers` workers, and returns
/// immediately. The handle's [`ServerHandle::addr`] carries the actual
/// bound address (useful with port 0).
pub fn serve(
    graph: PropertyGraph,
    store: TripleStore,
    cfg: ServerConfig,
) -> std::io::Result<ServerHandle> {
    serve_with_store(graph, store, None, cfg)
}

/// [`serve`], with a durable store attached: `INSERT`/`DELETE` batches
/// are WAL-committed (fsynced) before they are applied or acknowledged,
/// and `FLUSH` compacts the store. The caller should already have
/// folded the store's recovered state into `graph`/`store` (the CLI
/// does this via `DurableStore::materialize` + [`crate::apply_edges`]).
pub fn serve_with_store(
    graph: PropertyGraph,
    store: TripleStore,
    durable: Option<kgq_store::DurableStore>,
    cfg: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    // Non-blocking accept so the loop can observe the stop flag; real
    // connections switch back to blocking mode.
    listener.set_nonblocking(true)?;
    let workers = cfg.workers.max(1);
    let mut snapshot = Snapshot::new(graph, store, cfg.caps);
    if let Some(durable) = durable {
        snapshot = snapshot.with_durable(durable);
    }
    let shared = Arc::new(Shared {
        snapshot,
        sched: FairScheduler::new(),
        stop: AtomicBool::new(false),
        shutdown_requested: Mutex::new(false),
        shutdown_cv: Condvar::new(),
        conns: Mutex::new(HashMap::new()),
        reader_handles: Mutex::new(Vec::new()),
        workers,
    });
    let mut threads = Vec::new();
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("kgq-accept".into())
                .spawn(move || accept_loop(listener, &shared))?,
        );
    }
    for i in 0..workers {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("kgq-worker-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared snapshot (stats, cache) — mainly for tests and the
    /// CLI's final stats line.
    pub fn snapshot(&self) -> &Snapshot {
        &self.shared.snapshot
    }

    /// Blocks until a client sends `SHUTDOWN` (or `shutdown` is called
    /// from another thread).
    pub fn wait(&self) {
        let mut requested = self
            .shared
            .shutdown_requested
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        while !*requested {
            requested = self
                .shared
                .shutdown_cv
                .wait(requested)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops accepting, cancels and unblocks every connection, drains
    /// the scheduler, and joins **all** threads the server spawned.
    /// Returns only when no server thread remains.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.request_shutdown();
        self.shared.sched.close();
        // Unblock readers stuck in read(): cancel their in-flight work
        // and shut both socket halves.
        {
            let conns = self.shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            for conn in conns.values() {
                conn.cancel.cancel();
                let w = conn.writer.lock().unwrap_or_else(|e| e.into_inner());
                let _ = w.shutdown(Shutdown::Both);
            }
        }
        let readers = std::mem::take(
            &mut *self
                .shared
                .reader_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for h in readers {
            let _ = h.join();
        }
        for h in self.threads {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let mut next_conn_id: u64 = 0;
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                next_conn_id += 1;
                if let Err(e) = spawn_reader(stream, next_conn_id, shared) {
                    eprintln!("kgq serve: connection {next_conn_id} setup failed: {e}");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                eprintln!("kgq serve: accept failed: {e}");
                break;
            }
        }
    }
}

fn spawn_reader(stream: TcpStream, conn_id: u64, shared: &Arc<Shared>) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    let read_half = stream.try_clone()?;
    let conn = Arc::new(Conn {
        id: conn_id,
        writer: Mutex::new(stream),
        cancel: CancelToken::new(),
    });
    shared
        .conns
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(conn_id, Arc::clone(&conn));
    let shared2 = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("kgq-conn-{conn_id}"))
        .spawn(move || reader_loop(read_half, conn, &shared2))?;
    shared
        .reader_handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(handle);
    Ok(())
}

fn reader_loop(read_half: TcpStream, conn: Arc<Conn>, shared: &Arc<Shared>) {
    let mut reader = BufReader::new(read_half);
    loop {
        match read_request(&mut reader) {
            Ok(Some(req)) => {
                shared.snapshot.stats.request();
                shared.sched.submit(
                    conn.id,
                    Job {
                        conn: Arc::clone(&conn),
                        req,
                    },
                );
            }
            // Clean EOF or a framing/transport error: either way the
            // conversation is over.
            Ok(None) => break,
            Err(e) => {
                // Tell the client what was wrong with its frame when the
                // socket still works, then drop the connection (framing
                // is unrecoverable: we no longer know where frames
                // start).
                conn.respond(&Response {
                    id: 0,
                    ok: false,
                    body: format!("protocol error: {e}"),
                });
                break;
            }
        }
    }
    // Disconnect: trip in-flight work, reclaim this client's backlog,
    // deregister.
    conn.cancel.cancel();
    let dropped = shared.sched.forget_client(conn.id);
    for _ in 0..dropped {
        shared.snapshot.stats.cancel();
    }
    shared
        .conns
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&conn.id);
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.sched.next() {
        let Job { conn, req } = job;
        let started = Instant::now();
        let resp = match req.verb {
            Verb::Ping => Response {
                id: req.id,
                ok: true,
                body: req.payload,
            },
            Verb::Stats => Response {
                id: req.id,
                ok: true,
                body: {
                    let mut body = shared
                        .snapshot
                        .stats
                        .render(&shared.snapshot.cache().stats(), shared.workers);
                    body.push_str(&shared.snapshot.durability_stats());
                    body
                },
            },
            Verb::Shutdown => {
                let resp = Response {
                    id: req.id,
                    ok: true,
                    body: "shutting down\n".into(),
                };
                conn.respond(&resp);
                shared.snapshot.stats.finish(true, false, 0);
                shared.request_shutdown();
                continue;
            }
            verb => {
                let outcome =
                    shared
                        .snapshot
                        .execute(verb, &req.caps, &req.payload, conn.cancel.clone());
                let elapsed = started.elapsed().as_micros() as u64;
                shared
                    .snapshot
                    .stats
                    .finish(outcome.ok, outcome.partial, elapsed);
                conn.respond(&Response {
                    id: req.id,
                    ok: outcome.ok,
                    body: outcome.body,
                });
                continue;
            }
        };
        let elapsed = started.elapsed().as_micros() as u64;
        shared.snapshot.stats.finish(resp.ok, false, elapsed);
        conn.respond(&resp);
    }
}

/// Counts this process's live threads via `/proc/self/status` — the
/// leak check used by the serve tests and `exp_serve`. Returns `None`
/// on platforms without procfs.
pub fn process_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}
