//! Request execution against the shared snapshot.
//!
//! The server holds **one** property graph, **one** triple store and
//! **one** [`QueryCache`] for its whole lifetime. Reads (every
//! evaluation) take a shared `RwLock` guard and run concurrently;
//! the only writes are query parsing, which may intern previously
//! unseen constants into the graph's/store's symbol table. Interning is
//! append-only and does **not** bump the generation stamp, so cache
//! entries stay valid and a constant spelled the same way in two
//! requests resolves to the same [`kgq_graph::Sym`] — which is what
//! makes the shared cache's signature keys sound across clients.
//!
//! Output formats are byte-identical to the CLI's governed paths,
//! including the `# partial: REASON` trailer, so a response body can be
//! diffed directly against `kgq query`/`kgq cypher`/`kgq sparql`
//! output.

use crate::protocol::{effective_budget, Caps, Verb};
use crate::stats::ServerStats;
use kgq_core::analyze::{Diagnostic, Severity};
use kgq_core::{
    analyze_expr, count_paths_governed, parse_expr, Budget, CancelToken, Completion, EvalError,
    Governed, Governor, PropertyView, QueryCache,
};
use kgq_graph::{PropertyGraph, SchemaSummary};
use kgq_rdf::{StoreSketch, TripleStore};
use kgq_store::{DurableStore, EdgeRec};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The state one server instance shares across all connections.
pub struct Snapshot {
    graph: RwLock<PropertyGraph>,
    /// Schema summary for the static analyzer, memoized per cache
    /// generation so every query verb can consult the analyzer without
    /// rescanning the graph. Acquired only while the graph read lock is
    /// already held (lock order: graph before schema).
    schema: Mutex<Option<(u64, Arc<SchemaSummary>)>>,
    store: RwLock<TripleStore>,
    /// Cardinality sketches for the SPARQL planner, memoized per cache
    /// generation exactly like the schema summary: every committed
    /// mutation bumps the generation, so a stale sketch is never
    /// consulted. Acquired only while the store read lock is already
    /// held (same rank: store before sketches is the store rank).
    sketches: Mutex<Option<(u64, Arc<StoreSketch>)>>,
    cache: QueryCache,
    /// The durable write path, when the server was started with a store
    /// directory. Mutations are WAL-committed (fsynced) here *before*
    /// they are applied to the live graph/store or acknowledged; the
    /// mutex also serializes mutation batches into a total order.
    durable: Option<Mutex<DurableStore>>,
    /// Server-side caps; intersected with each request's own.
    caps: Budget,
    /// Aggregate counters.
    pub stats: ServerStats,
}

/// Outcome of one executed request.
pub struct Outcome {
    /// Response body (already CLI-formatted).
    pub body: String,
    /// `OK` vs `ERR` on the wire.
    pub ok: bool,
    /// Whether the body carries a `# partial:` trailer.
    pub partial: bool,
}

impl Outcome {
    fn ok(body: String, partial: bool) -> Outcome {
        Outcome {
            body,
            ok: true,
            partial,
        }
    }

    fn err(message: String) -> Outcome {
        Outcome {
            body: message,
            ok: false,
            partial: false,
        }
    }
}

impl Snapshot {
    /// Wraps the data a server will share. `caps` bounds every request
    /// (a client can tighten but never exceed it).
    pub fn new(graph: PropertyGraph, store: TripleStore, caps: Budget) -> Snapshot {
        Snapshot {
            graph: RwLock::new(graph),
            schema: Mutex::new(None),
            store: RwLock::new(store),
            sketches: Mutex::new(None),
            cache: QueryCache::from_env(),
            durable: None,
            caps,
            stats: ServerStats::new(),
        }
    }

    /// Attaches a durable store: every `INSERT`/`DELETE` batch is
    /// WAL-committed to it before being applied, and `FLUSH` compacts
    /// it. The caller is responsible for having already loaded the
    /// store's recovered state into `graph`/`store` (see
    /// [`apply_edges`] and `DurableStore::materialize`).
    pub fn with_durable(mut self, durable: DurableStore) -> Snapshot {
        self.durable = Some(Mutex::new(durable));
        self
    }

    /// The shared compiled-query cache.
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// The current cache-generation stamp (the live graph's). Every
    /// committed mutation advances it, so cached results keyed at an
    /// older stamp are unreachable — the same contract `QueryCache`
    /// documents for single-process use.
    pub fn generation(&self) -> u64 {
        self.graph_read().generation()
    }

    /// One-line durability summary for `STATS`: the live generation
    /// plus, when a durable store is attached, its committed generation,
    /// WAL size and overlay shape.
    pub fn durability_stats(&self) -> String {
        let mut out = format!("generation {}\n", self.generation());
        if let Some(durable) = &self.durable {
            let d = durable.lock().unwrap_or_else(|e| e.into_inner());
            let (added, tombstoned) = d.overlay_sizes();
            out.push_str(&format!(
                "store_generation {}\nwal_bytes {}\noverlay_added {added}\noverlay_tombstoned {tombstoned}\n",
                d.generation(),
                d.wal_len(),
            ));
        }
        out
    }

    fn graph_read(&self) -> RwLockReadGuard<'_, PropertyGraph> {
        self.graph.read().unwrap_or_else(|e| e.into_inner())
    }

    fn graph_write(&self) -> RwLockWriteGuard<'_, PropertyGraph> {
        self.graph.write().unwrap_or_else(|e| e.into_inner())
    }

    fn store_read(&self) -> RwLockReadGuard<'_, TripleStore> {
        self.store.read().unwrap_or_else(|e| e.into_inner())
    }

    /// The planner sketches for the current store snapshot, memoized
    /// against the cache generation. `generation` must be read under
    /// the graph lock *before* taking the store lock (the documented
    /// lock order), so the pair `(st, generation)` is consistent.
    pub fn store_sketch(&self, st: &TripleStore, generation: u64) -> Arc<StoreSketch> {
        let mut cached = self.sketches.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((stamp, sk)) = cached.as_ref() {
            if *stamp == generation {
                return Arc::clone(sk);
            }
        }
        let sk = Arc::new(StoreSketch::build(st));
        *cached = Some((generation, Arc::clone(&sk)));
        sk
    }

    fn store_write(&self) -> RwLockWriteGuard<'_, TripleStore> {
        self.store.write().unwrap_or_else(|e| e.into_inner())
    }

    /// The schema summary for the analyzer, memoized against the cache
    /// generation: mutations invalidate it exactly when they invalidate
    /// cached query results. The caller already holds the graph read
    /// lock, so the summary is consistent with the snapshot it queries.
    fn schema_summary(&self, g: &PropertyGraph) -> Arc<SchemaSummary> {
        let mut cached = self.schema.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((generation, schema)) = cached.as_ref() {
            if *generation == g.generation() {
                return Arc::clone(schema);
            }
        }
        let schema = Arc::new(SchemaSummary::from_property(g));
        *cached = Some((g.generation(), Arc::clone(&schema)));
        schema
    }

    /// Tallies one analyzer run into the server counters.
    fn record_analysis(&self, diagnostics: &[Diagnostic]) {
        let count = |s: Severity| diagnostics.iter().filter(|d| d.severity == s).count() as u64;
        self.stats.analysis(
            count(Severity::Deny),
            count(Severity::Warn),
            count(Severity::Note),
        );
    }

    /// Executes one query request under its effective budget. `cancel`
    /// is the connection's token: a disconnect trips in-flight work at
    /// its next governed batch boundary.
    pub fn execute(&self, verb: Verb, caps: &Caps, payload: &str, cancel: CancelToken) -> Outcome {
        let budget = effective_budget(&self.caps, caps);
        let res = match verb {
            Verb::Query => self.run_rpq(&budget, payload, cancel),
            Verb::Cypher => self.run_cypher(&budget, payload, cancel),
            Verb::Sparql => self.run_sparql(&budget, payload, cancel),
            Verb::Insert => self.run_insert(payload),
            Verb::Delete => self.run_delete(payload),
            Verb::Flush => self.run_flush(),
            Verb::Analyze => self.run_analyze(payload),
            // STATS/PING/SHUTDOWN are handled by the server loop, not
            // the snapshot executor.
            _ => Err(format!("verb {} is not a query", verb.as_str())),
        };
        match res {
            Ok(outcome) => outcome,
            Err(message) => Outcome::err(message),
        }
    }

    /// `QUERY` payload: first line `pairs` | `starts` | `count K`, the
    /// remainder is the path expression.
    fn run_rpq(
        &self,
        budget: &Budget,
        payload: &str,
        cancel: CancelToken,
    ) -> Result<Outcome, String> {
        let (op, expr_text) = payload
            .split_once('\n')
            .ok_or("QUERY payload needs an op line and an expression line")?;
        let expr = {
            // Parse under the write lock: interning new constants is the
            // one mutation queries perform.
            let mut g = self.graph_write();
            parse_expr(expr_text, g.labeled_mut().consts_mut()).map_err(|e| e.render(expr_text))?
        };
        let g = self.graph_read();
        // Static analysis gate: every RPQ consults the analyzer before
        // planning. A provably empty language short-circuits to the
        // byte-identical empty answer without touching the evaluator.
        let schema = self.schema_summary(&g);
        let report = analyze_expr(&expr, &schema, Some((expr_text, g.labeled().consts())));
        self.record_analysis(&report.diagnostics);
        let op_name = op.split_ascii_whitespace().next().unwrap_or("");
        if report.provably_empty && matches!(op_name, "pairs" | "starts") {
            self.stats.deny_short_circuit();
            return Ok(Outcome::ok(String::new(), false));
        }
        let view = PropertyView::new(&g);
        let gov = Governor::with_cancel(budget, cancel.clone());
        let mut out = String::new();
        match op_name {
            "pairs" => {
                let compiled =
                    match self
                        .cache
                        .get_or_compile_governed(&view, g.generation(), &expr, &gov)
                    {
                        Ok(c) => c,
                        // Budget exhausted before the automaton built:
                        // the answer is the empty prefix, reported as a
                        // typed partial (same as the CLI).
                        Err(EvalError::Interrupted(why)) => {
                            out.push_str(&format!("# partial: {why}\n"));
                            return Ok(Outcome::ok(out, true));
                        }
                        Err(e) => return Err(e.to_string()),
                    };
                let res = compiled
                    .evaluator()
                    .pairs_governed(&gov)
                    .map_err(|e| e.to_string())?;
                for (a, b) in &res.value {
                    out.push_str(&format!(
                        "{}\t{}\n",
                        g.labeled().node_name(*a),
                        g.labeled().node_name(*b)
                    ));
                }
                let partial = marker(&mut out, &res);
                Ok(Outcome::ok(out, partial))
            }
            "starts" => {
                let compiled =
                    match self
                        .cache
                        .get_or_compile_governed(&view, g.generation(), &expr, &gov)
                    {
                        Ok(c) => c,
                        Err(EvalError::Interrupted(why)) => {
                            out.push_str(&format!("# partial: {why}\n"));
                            return Ok(Outcome::ok(out, true));
                        }
                        Err(e) => return Err(e.to_string()),
                    };
                let res = compiled
                    .evaluator()
                    .matching_starts_governed(&gov)
                    .map_err(|e| e.to_string())?;
                for n in &res.value {
                    out.push_str(g.labeled().node_name(*n));
                    out.push('\n');
                }
                let partial = marker(&mut out, &res);
                Ok(Outcome::ok(out, partial))
            }
            "count" => {
                let k: usize = op
                    .split_ascii_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("count needs K")?;
                if report.provably_empty {
                    // An empty language admits zero paths of any length.
                    self.stats.deny_short_circuit();
                    out.push_str("0\n");
                    return Ok(Outcome::ok(out, false));
                }
                let res = count_paths_governed(&view, &expr, k, budget, cancel)
                    .map_err(|e| e.to_string())?;
                out.push_str(&format!("{}\n", res.value));
                let partial = marker(&mut out, &res);
                Ok(Outcome::ok(out, partial))
            }
            other => Err(format!("unknown query op `{other}`")),
        }
    }

    fn run_cypher(
        &self,
        budget: &Budget,
        payload: &str,
        cancel: CancelToken,
    ) -> Result<Outcome, String> {
        let q = kgq_cypher::parse_query(payload).map_err(|e| e.render(payload))?;
        let g = self.graph_read();
        // Analyzer gate (counters + Deny short-circuit). The governed
        // executor re-checks internally, so its empty return for a
        // denied query is byte-identical to this one.
        let report = kgq_cypher::analyze_query(&g, &q, Some(payload));
        self.record_analysis(&report.diagnostics);
        if report.provably_empty {
            self.stats.deny_short_circuit();
            return Ok(Outcome::ok(String::new(), false));
        }
        let gov = Governor::with_cancel(budget, cancel);
        let res =
            kgq_cypher::execute_governed(&g, &q, &self.cache, &gov).map_err(|e| e.to_string())?;
        let mut out = String::new();
        for row in &res.value {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        let partial = marker(&mut out, &res);
        Ok(Outcome::ok(out, partial))
    }

    fn run_sparql(
        &self,
        budget: &Budget,
        payload: &str,
        cancel: CancelToken,
    ) -> Result<Outcome, String> {
        let q = {
            let mut st = self.store_write();
            kgq_rdf::parse_select(payload, &mut st).map_err(|e| e.to_string())?
        };
        // Generation under the graph lock, store lock after — the
        // documented order; mutators hold graph before store, so the
        // pair is a consistent snapshot.
        let g = self.graph_read();
        let generation = g.generation();
        let st = self.store_read();
        drop(g);
        // Analyzer gate: tallies BGP verdicts and answers Deny-empty
        // queries without planning — byte-identical to the governed
        // evaluator's own short-circuit, which re-checks internally.
        // (A COUNT query projects no bindings, so all its variables
        // count as used.)
        let projected = if q.count.is_some() {
            None
        } else {
            Some(q.vars.as_slice())
        };
        let report = kgq_rdf::analyze_bgp(&st, &q.pattern, projected);
        self.record_analysis(&report.diagnostics);
        if report.provably_empty {
            self.stats.deny_short_circuit();
            let body = match &q.count {
                Some(_) => "0\n".to_owned(),
                None => String::new(),
            };
            return Ok(Outcome::ok(body, false));
        }
        let sk = self.store_sketch(&st, generation);
        let gov = Governor::with_cancel(budget, cancel);
        let res = kgq_rdf::select_governed_with(&st, &q, Some(&sk), &gov)
            .map_err(|e| e.to_string())?;
        self.stats.plan_choice(res.sketch_planned);
        if res.approx_count {
            self.stats.approx_count();
        }
        let mut out = String::new();
        for row in &res.rows.value {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        let partial = marker(&mut out, &res.rows);
        Ok(Outcome::ok(out, partial))
    }

    /// `INSERT` payload: one mutation per line — an N-Triples line or
    /// `edge SRC LABEL DST [SRC_LABEL [DST_LABEL]]`. The batch is
    /// durably committed (when a store is attached) before it is
    /// applied to the live snapshot; the cache generation advances
    /// exactly once per committed batch.
    fn run_insert(&self, payload: &str) -> Result<Outcome, String> {
        let (triples, edge_specs) = parse_mutations(payload, true)?;
        if triples.is_empty() && edge_specs.is_empty() {
            return Err("INSERT payload holds no mutations".into());
        }
        // Serialize mutations and make the batch durable first: if the
        // WAL commit fails, nothing is applied and nothing acknowledged.
        let mut durable = self.durable_lock();
        let mut edges: Vec<EdgeRec> = Vec::new();
        {
            // Unique, stable edge ids: continue the committed sequence.
            let next_seq = match durable.as_deref() {
                Some(d) => d.all_edges().count(),
                None => self.graph_read().edge_count(),
            };
            for (i, (src, label, dst, src_label, dst_label)) in edge_specs.into_iter().enumerate() {
                edges.push(EdgeRec {
                    id: format!("srv-e{}", next_seq + i),
                    src,
                    src_label,
                    label,
                    dst,
                    dst_label,
                });
            }
        }
        if let Some(d) = durable.as_deref_mut() {
            for (s, p, o) in &triples {
                d.stage_insert(s, p, o);
            }
            for e in &edges {
                d.stage_edge(e.clone());
            }
            d.commit()
                .map_err(|e| format!("durable commit failed: {e}"))?;
        }
        // Apply to the live snapshot and bump the shared generation.
        let mut g = self.graph_write();
        let applied_edges = apply_edges(&mut g, edges.iter());
        let mut st = self.store_write();
        let mut applied_triples = 0;
        for (s, p, o) in &triples {
            if st.insert_strs(s, p, o) {
                applied_triples += 1;
            }
        }
        g.touch();
        let body = format!(
            "inserted {applied_triples} triple(s), {applied_edges} edge(s)\ngeneration {}\n",
            g.generation()
        );
        Ok(Outcome::ok(body, false))
    }

    /// `DELETE` payload: N-Triples lines naming the triples to remove.
    fn run_delete(&self, payload: &str) -> Result<Outcome, String> {
        let (triples, edge_specs) = parse_mutations(payload, false)?;
        if !edge_specs.is_empty() {
            return Err("DELETE supports triples only".into());
        }
        if triples.is_empty() {
            return Err("DELETE payload holds no triples".into());
        }
        let mut durable = self.durable_lock();
        if let Some(d) = durable.as_deref_mut() {
            for (s, p, o) in &triples {
                d.stage_delete(s, p, o);
            }
            d.commit()
                .map_err(|e| format!("durable commit failed: {e}"))?;
        }
        let mut g = self.graph_write();
        let mut st = self.store_write();
        let mut removed = 0;
        for (s, p, o) in &triples {
            let t = (st.get_term(s), st.get_term(p), st.get_term(o));
            if let (Some(s), Some(p), Some(o)) = t {
                if st.remove(kgq_rdf::Triple { s, p, o }) {
                    removed += 1;
                }
            }
        }
        g.touch();
        let body = format!(
            "deleted {removed} triple(s)\ngeneration {}\n",
            g.generation()
        );
        Ok(Outcome::ok(body, false))
    }

    /// `ANALYZE` payload: a kind line (`query` | `cypher` | `sparql` |
    /// `rules`) followed by the query or rule-program text. Runs the
    /// matching static analyzer and returns its rendered report without
    /// executing anything; verdicts are tallied into `STATS` like the
    /// query verbs' own analyzer gates.
    fn run_analyze(&self, payload: &str) -> Result<Outcome, String> {
        let (kind, text) = payload
            .split_once('\n')
            .ok_or("ANALYZE payload needs a kind line and the query text")?;
        let body = match kind.trim() {
            "query" => {
                let expr = {
                    let mut g = self.graph_write();
                    parse_expr(text, g.labeled_mut().consts_mut()).map_err(|e| e.render(text))?
                };
                let g = self.graph_read();
                let schema = self.schema_summary(&g);
                let report = analyze_expr(&expr, &schema, Some((text, g.labeled().consts())));
                self.record_analysis(&report.diagnostics);
                report.render(text)
            }
            "cypher" => {
                let q = kgq_cypher::parse_query(text).map_err(|e| e.render(text))?;
                let g = self.graph_read();
                let report = kgq_cypher::analyze_query(&g, &q, Some(text));
                self.record_analysis(&report.diagnostics);
                report.render(text)
            }
            "sparql" => {
                let q = {
                    let mut st = self.store_write();
                    kgq_rdf::parse_select(text, &mut st).map_err(|e| e.to_string())?
                };
                let st = self.store_read();
                let (report, rendered) = kgq_rdf::explain_parsed(&st, &q);
                self.record_analysis(&report.diagnostics);
                rendered
            }
            "rules" => {
                let rules = {
                    let mut st = self.store_write();
                    kgq_logic::parse_program(&mut st, text).map_err(|e| e.to_string())?
                };
                let st = self.store_read();
                let report = kgq_logic::analyze_program(&st, &rules);
                self.record_analysis(&report.diagnostics);
                report.render()
            }
            other => {
                return Err(format!(
                    "unknown analyze kind `{other}` (expected query|cypher|sparql|rules)"
                ))
            }
        };
        Ok(Outcome::ok(body, false))
    }

    /// `FLUSH`: compacts the durable store (fold the overlay into a
    /// fresh segment, truncate the WAL). A server without a durable
    /// store reports that there is nothing to flush.
    fn run_flush(&self) -> Result<Outcome, String> {
        let mut durable = self.durable_lock();
        let Some(d) = durable.as_deref_mut() else {
            return Ok(Outcome::ok(
                "flush: no durable store attached; state is in-memory only\n".into(),
                false,
            ));
        };
        let before = d.wal_len();
        d.compact().map_err(|e| format!("compaction failed: {e}"))?;
        let body = format!(
            "compacted at generation {}; wal {} -> {} bytes\n",
            d.generation(),
            before,
            d.wal_len()
        );
        Ok(Outcome::ok(body, false))
    }

    fn durable_lock(&self) -> Option<std::sync::MutexGuard<'_, DurableStore>> {
        self.durable
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Applies recovered or freshly committed edge records to a live
/// property graph: endpoints are created on demand (with the record's
/// labels), and an edge whose id already exists is skipped — which is
/// what makes replaying the same records idempotent. Returns the number
/// of edges actually added.
pub fn apply_edges<'a>(g: &mut PropertyGraph, edges: impl Iterator<Item = &'a EdgeRec>) -> usize {
    let mut applied = 0;
    for e in edges {
        let src = match g.labeled().node_named(&e.src) {
            Some(n) => n,
            None => match g.add_node(&e.src, &e.src_label) {
                Ok(n) => n,
                Err(_) => continue,
            },
        };
        let dst = match g.labeled().node_named(&e.dst) {
            Some(n) => n,
            None => match g.add_node(&e.dst, &e.dst_label) {
                Ok(n) => n,
                Err(_) => continue,
            },
        };
        if g.add_edge(&e.id, src, dst, &e.label).is_ok() {
            applied += 1;
        }
    }
    applied
}

/// Splits a mutation payload into triples (via the N-Triples parser)
/// and `edge` specs. `allow_edges` gates the edge syntax (DELETE is
/// triples-only).
#[allow(clippy::type_complexity)]
fn parse_mutations(
    payload: &str,
    allow_edges: bool,
) -> Result<
    (
        Vec<(String, String, String)>,
        Vec<(String, String, String, String, String)>,
    ),
    String,
> {
    let mut nt = String::new();
    let mut edges = Vec::new();
    for (no, line) in payload.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(spec) = trimmed.strip_prefix("edge ") {
            if !allow_edges {
                return Err(format!("line {}: edge mutations not allowed here", no + 1));
            }
            let parts: Vec<&str> = spec.split_ascii_whitespace().collect();
            let (src, label, dst) = match parts.as_slice() {
                [s, l, d, ..] if parts.len() <= 5 => (*s, *l, *d),
                _ => {
                    return Err(format!(
                        "line {}: expected `edge SRC LABEL DST [SRC_LABEL [DST_LABEL]]`",
                        no + 1
                    ))
                }
            };
            let src_label = parts.get(3).copied().unwrap_or("node");
            let dst_label = parts.get(4).copied().unwrap_or("node");
            edges.push((
                src.to_owned(),
                label.to_owned(),
                dst.to_owned(),
                src_label.to_owned(),
                dst_label.to_owned(),
            ));
        } else {
            nt.push_str(line);
            nt.push('\n');
        }
    }
    let parsed = kgq_rdf::parse_ntriples(&nt).map_err(|e| e.to_string())?;
    let triples = parsed
        .iter()
        .map(|t| {
            (
                parsed.term_str(t.s).to_owned(),
                parsed.term_str(t.p).to_owned(),
                parsed.term_str(t.o).to_owned(),
            )
        })
        .collect();
    Ok((triples, edges))
}

/// Appends the CLI's `# partial:` / `# degraded:` trailer lines; returns
/// whether the result was partial.
fn marker<T>(out: &mut String, res: &Governed<T>) -> bool {
    let mut partial = false;
    if let Completion::Partial(why) = &res.completion {
        out.push_str(&format!("# partial: {why}\n"));
        partial = true;
    }
    if res.degraded {
        out.push_str("# degraded: exact budget exhausted, approximate estimate\n");
    }
    partial
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_graph::generate::{contact_network, ContactParams};
    use kgq_rdf::parse_ntriples;

    fn snapshot(caps: Budget) -> Snapshot {
        let g = contact_network(&ContactParams {
            people: 30,
            buses: 4,
            addresses: 12,
            seed: 11,
            ..ContactParams::default()
        });
        let st = parse_ntriples(
            "<a> <knows> <b> .\n<b> <knows> <c> .\n<c> <knows> <a> .\n\
             <a> <type> <P> .\n<b> <type> <P> .\n",
        )
        .unwrap();
        Snapshot::new(g, st, caps)
    }

    #[test]
    fn rpq_pairs_match_direct_evaluation() {
        let snap = snapshot(Budget::unlimited());
        let out = snap.execute(
            Verb::Query,
            &Caps::none(),
            "pairs\nrides/rides^-",
            CancelToken::new(),
        );
        assert!(out.ok, "{}", out.body);
        assert!(!out.partial);
        assert!(out.body.lines().count() > 0);
        // Identical second run: answered from the shared cache.
        let again = snap.execute(
            Verb::Query,
            &Caps::none(),
            "pairs\nrides/rides^-",
            CancelToken::new(),
        );
        assert_eq!(out.body, again.body);
        assert!(snap.cache().hits() >= 1);
    }

    #[test]
    fn tripped_rpq_returns_typed_exact_prefix() {
        let snap = snapshot(Budget::unlimited());
        let full = snap.execute(
            Verb::Query,
            &Caps::none(),
            "pairs\n(rides + contact + lives)*",
            CancelToken::new(),
        );
        let tripped = snap.execute(
            Verb::Query,
            &Caps {
                max_results: Some(3),
                ..Caps::default()
            },
            "pairs\n(rides + contact + lives)*",
            CancelToken::new(),
        );
        assert!(tripped.ok && tripped.partial, "{}", tripped.body);
        let trailer = "# partial: result budget reached\n";
        assert!(tripped.body.ends_with(trailer), "{}", tripped.body);
        // Exact prefix of the untripped answer.
        let prefix = tripped.body.strip_suffix(trailer).unwrap();
        assert!(full.body.starts_with(prefix));
        assert_eq!(prefix.lines().count(), 3);
    }

    #[test]
    fn server_caps_bound_client_requests() {
        // Server caps at 2 results; the client asks for 1000.
        let snap = snapshot(Budget::unlimited().with_max_results(2));
        let out = snap.execute(
            Verb::Query,
            &Caps {
                max_results: Some(1000),
                ..Caps::default()
            },
            "pairs\n(rides + contact + lives)*",
            CancelToken::new(),
        );
        assert!(out.ok && out.partial);
        assert_eq!(out.body.lines().count(), 3); // 2 rows + trailer
    }

    #[test]
    fn sparql_and_cypher_and_count_run_governed() {
        let snap = snapshot(Budget::unlimited());
        let s = snap.execute(
            Verb::Sparql,
            &Caps::none(),
            "SELECT ?x ?y WHERE { ?x <knows> ?y . ?y <type> <P> . }",
            CancelToken::new(),
        );
        assert!(s.ok, "{}", s.body);
        assert_eq!(s.body.lines().count(), 2); // c→a, a→b
        let c = snap.execute(
            Verb::Cypher,
            &Caps::none(),
            "MATCH (p:person)-[:rides]->(b:bus) RETURN p, b",
            CancelToken::new(),
        );
        assert!(c.ok, "{}", c.body);
        let n = snap.execute(
            Verb::Query,
            &Caps::none(),
            "count 3\nrides/rides^-",
            CancelToken::new(),
        );
        assert!(n.ok, "{}", n.body);
        n.body.trim().parse::<u128>().expect("count is a number");
    }

    #[test]
    fn cancelled_connection_trips_the_request() {
        let snap = snapshot(Budget::unlimited());
        let cancel = CancelToken::new();
        cancel.cancel();
        let out = snap.execute(
            Verb::Query,
            &Caps::none(),
            "pairs\n(rides + contact + lives)*",
            cancel,
        );
        // Already-cancelled work degrades to an empty typed partial.
        assert!(out.ok && out.partial, "{}", out.body);
        assert!(out.body.contains("# partial: cancelled"), "{}", out.body);
    }

    #[test]
    fn parse_errors_are_err_frames_not_panics() {
        let snap = snapshot(Budget::unlimited());
        for (verb, payload) in [
            (Verb::Query, "pairs\n(((("),
            (Verb::Query, "no-newline-payload"),
            (Verb::Query, "bogus-op\nrides"),
            (Verb::Cypher, "MATCH ("),
            (Verb::Sparql, "SELECT WHERE"),
        ] {
            let out = snap.execute(verb, &Caps::none(), payload, CancelToken::new());
            assert!(!out.ok, "{payload} should be an error");
        }
    }

    #[test]
    fn analyze_verb_reports_without_executing() {
        let snap = snapshot(Budget::unlimited());
        let q = snap.execute(
            Verb::Analyze,
            &Caps::none(),
            "query\nghost_label",
            CancelToken::new(),
        );
        assert!(q.ok, "{}", q.body);
        assert!(q.body.contains("deny"), "{}", q.body);
        let s = snap.execute(
            Verb::Analyze,
            &Caps::none(),
            "sparql\nSELECT ?x WHERE { ?x <knows> ?y . }",
            CancelToken::new(),
        );
        assert!(s.ok && s.body.contains("== verdict =="), "{}", s.body);
        let r = snap.execute(
            Verb::Analyze,
            &Caps::none(),
            "rules\n?x path ?y :- ?x knows ?y .",
            CancelToken::new(),
        );
        assert!(r.ok && r.body.contains("derivation bound"), "{}", r.body);
        let c = snap.execute(
            Verb::Analyze,
            &Caps::none(),
            "cypher\nMATCH (p:person)-[:rides]->(b:bus) RETURN p, b",
            CancelToken::new(),
        );
        assert!(c.ok, "{}", c.body);
        assert!(snap.stats.analyzed() >= 4);
        let bad = snap.execute(Verb::Analyze, &Caps::none(), "bogus\nx", CancelToken::new());
        assert!(!bad.ok);
        let headless = snap.execute(Verb::Analyze, &Caps::none(), "no-kind", CancelToken::new());
        assert!(!headless.ok);
    }

    #[test]
    fn deny_short_circuits_answer_empty_and_count() {
        let snap = snapshot(Budget::unlimited());
        let out = snap.execute(
            Verb::Query,
            &Caps::none(),
            "pairs\nghost_label_zzz",
            CancelToken::new(),
        );
        assert!(out.ok && out.body.is_empty(), "{}", out.body);
        assert_eq!(snap.stats.deny_short_circuits(), 1);
        let counted = snap.execute(
            Verb::Query,
            &Caps::none(),
            "count 3\nghost_label_zzz",
            CancelToken::new(),
        );
        assert!(counted.ok, "{}", counted.body);
        assert_eq!(counted.body, "0\n");
        let sparql = snap.execute(
            Verb::Sparql,
            &Caps::none(),
            "SELECT ?x WHERE { ?x <no_such_pred> ?y . }",
            CancelToken::new(),
        );
        assert!(sparql.ok && sparql.body.is_empty(), "{}", sparql.body);
        assert!(snap.stats.deny_short_circuits() >= 3);
    }

    #[test]
    fn sketch_cache_follows_the_generation_stamp() {
        let snap = snapshot(Budget::unlimited());
        let (gen0, sk0) = {
            let g = snap.graph_read();
            let generation = g.generation();
            let st = snap.store_read();
            drop(g);
            (generation, snap.store_sketch(&st, generation))
        };
        {
            let st = snap.store_read();
            let again = snap.store_sketch(&st, gen0);
            assert!(
                Arc::ptr_eq(&sk0, &again),
                "same generation must reuse the cached sketch"
            );
        }
        // Mutate through the public surface: INSERT bumps the generation,
        // so the next planner run rebuilds instead of consulting the
        // stale sketch.
        let out = snap.execute(
            Verb::Insert,
            &Caps::none(),
            "<d> <knows> <a> .",
            CancelToken::new(),
        );
        assert!(out.ok, "{}", out.body);
        let g = snap.graph_read();
        let gen1 = g.generation();
        let st = snap.store_read();
        drop(g);
        assert_ne!(gen0, gen1, "mutation bumps the generation");
        let sk1 = snap.store_sketch(&st, gen1);
        assert!(
            !Arc::ptr_eq(&sk0, &sk1),
            "a stale sketch must never survive touch()"
        );
        assert_eq!(sk1.triples, st.len());
    }

    #[test]
    fn new_constants_intern_without_invalidating_the_cache() {
        let snap = snapshot(Budget::unlimited());
        snap.execute(
            Verb::Query,
            &Caps::none(),
            "pairs\nrides",
            CancelToken::new(),
        );
        let misses_before = snap.cache().misses();
        // A query over a label the graph has never seen: interns a new
        // constant (graph write), still evaluates (empty), and the
        // earlier cache entry survives.
        let out = snap.execute(
            Verb::Query,
            &Caps::none(),
            "pairs\nnever_seen_label_xyz",
            CancelToken::new(),
        );
        assert!(out.ok && out.body.is_empty(), "{}", out.body);
        let cached = snap.execute(
            Verb::Query,
            &Caps::none(),
            "pairs\nrides",
            CancelToken::new(),
        );
        assert!(cached.ok);
        assert!(snap.cache().hits() >= 1);
        assert!(snap.cache().misses() >= misses_before);
    }
}
