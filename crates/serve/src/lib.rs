//! `kgq-serve` — a long-lived, multi-client query server.
//!
//! The batch CLI re-parses its graph and serves exactly one query per
//! process. This crate is the serving layer the paper's "knowledge
//! graphs under heavy, heterogeneous query traffic" setting calls for
//! (and MillenniumDB realizes in production): one process holds **one
//! shared snapshot** — a property graph, a triple store and a
//! generation-stamped compiled-query cache — and routes RPQ, Cypher and
//! SPARQL requests from any number of TCP clients through the existing
//! engines.
//!
//! Admission control is the PR-2 governor under concurrency:
//!
//! - every request runs **governed** with an effective budget of
//!   *server caps ∧ client caps* (componentwise minimum), plus its
//!   connection's [`kgq_core::CancelToken`] so a disconnect trips
//!   in-flight work;
//! - a [`sched::FairScheduler`] rotates round-robin across connections,
//!   one request per turn, so a flooding or budget-tripping client
//!   degrades to typed exact-prefix `Partial`s without starving others;
//! - per-request and aggregate counters (requests, trips, cache hits,
//!   p50/p99 latency) are exposed by the `STATS` verb.
//!
//! See DESIGN.md §12 for the architecture and `protocol` for the wire
//! format. The `kgq serve` CLI subcommand and the `exp_serve` load
//! generator are the two entry points.

pub mod client;
pub mod exec;
pub mod protocol;
pub mod sched;
pub mod server;
pub mod stats;

pub use client::{stat, Client};
pub use exec::{apply_edges, Outcome, Snapshot};
pub use protocol::{effective_budget, Caps, Request, Response, Verb};
pub use sched::FairScheduler;
pub use server::{process_thread_count, serve, serve_with_store, ServerConfig, ServerHandle};
pub use stats::ServerStats;
