//! Fair round-robin admission scheduler.
//!
//! Each connection gets its own FIFO queue; a ring of connection ids
//! rotates, handing the pool one request per connection per turn. A
//! client that floods 100 requests therefore contributes one unit of
//! work per scheduling round, exactly like a client that sent one — the
//! flooder's requests queue behind its *own* backlog, not in front of
//! everyone else's.
//!
//! The dispatch quantum is one governed request: the per-request
//! [`kgq_core::Budget`] (server caps ∧ client caps) bounds how long a
//! single quantum can occupy a worker, and the governor's batched tick
//! checks make a budget trip prompt. A budget-tripping client therefore
//! degrades to typed exact-prefix partials while other in-flight
//! clients' requests keep interleaving through the ring.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Multi-producer, multi-consumer queue with per-client fairness.
pub struct FairScheduler<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

struct Inner<T> {
    /// Pending work per client, FIFO within a client.
    queues: HashMap<u64, VecDeque<T>>,
    /// Rotation order over clients that currently have pending work.
    ring: VecDeque<u64>,
    /// Closed schedulers wake all waiters and return `None` once
    /// drained.
    closed: bool,
}

impl<T> Default for FairScheduler<T> {
    fn default() -> Self {
        FairScheduler::new()
    }
}

impl<T> FairScheduler<T> {
    /// An empty, open scheduler.
    pub fn new() -> FairScheduler<T> {
        FairScheduler {
            inner: Mutex::new(Inner {
                queues: HashMap::new(),
                ring: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues one unit of work for `client`. Work submitted after
    /// [`FairScheduler::close`] is dropped.
    pub fn submit(&self, client: u64, item: T) {
        let mut inner = self.lock();
        if inner.closed {
            return;
        }
        let queue = inner.queues.entry(client).or_default();
        let was_empty = queue.is_empty();
        queue.push_back(item);
        if was_empty {
            // New participant: takes its place at the END of the ring —
            // it cannot cut in front of clients already waiting.
            inner.ring.push_back(client);
        }
        self.ready.notify_one();
    }

    /// Blocks for the next unit of work, round-robin across clients.
    /// Returns `None` once the scheduler is closed *and* drained.
    pub fn next(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(client) = inner.ring.pop_front() {
                // The ring only lists clients with a non-empty queue; a
                // missing or drained queue would mean a bookkeeping bug,
                // and dropping the stale ring slot is the safe recovery.
                let Some(queue) = inner.queues.get_mut(&client) else {
                    continue;
                };
                let Some(item) = queue.pop_front() else {
                    inner.queues.remove(&client);
                    continue;
                };
                if queue.is_empty() {
                    inner.queues.remove(&client);
                } else {
                    // Still has a backlog: back of the ring, one item
                    // per turn.
                    inner.ring.push_back(client);
                }
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the scheduler: queued work still drains, waiting and
    /// future [`FairScheduler::next`] calls return `None` when empty.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Drops all pending work for `client` (disconnect reclamation).
    /// Returns how many items were discarded.
    pub fn forget_client(&self, client: u64) -> usize {
        let mut inner = self.lock();
        let dropped = inner.queues.remove(&client).map_or(0, |q| q.len());
        inner.ring.retain(|&c| c != client);
        dropped
    }

    /// Pending items across all clients.
    pub fn pending(&self) -> usize {
        self.lock().queues.values().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_robin_interleaves_clients() {
        let s = FairScheduler::new();
        // Client 1 floods; clients 2 and 3 send one each, later.
        for i in 0..4 {
            s.submit(1, format!("a{i}"));
        }
        s.submit(2, "b0".to_string());
        s.submit(3, "c0".to_string());
        let order: Vec<String> =
            std::iter::from_fn(|| (s.pending() > 0).then(|| s.next().unwrap())).collect();
        // One per client per turn: the flood drains last, not first.
        assert_eq!(order, ["a0", "b0", "c0", "a1", "a2", "a3"]);
    }

    #[test]
    fn fifo_within_a_client() {
        let s = FairScheduler::new();
        for i in 0..5 {
            s.submit(9, i);
        }
        for i in 0..5 {
            assert_eq!(s.next(), Some(i));
        }
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let s = Arc::new(FairScheduler::<u32>::new());
        let s2 = Arc::clone(&s);
        let waiter = std::thread::spawn(move || s2.next());
        std::thread::sleep(std::time::Duration::from_millis(20));
        s.close();
        assert_eq!(waiter.join().unwrap(), None);
        // Submissions after close are dropped.
        s.submit(1, 1);
        assert_eq!(s.pending(), 0);
        assert_eq!(s.next(), None);
    }

    #[test]
    fn close_drains_queued_work_first() {
        let s = FairScheduler::new();
        s.submit(1, "x");
        s.close();
        assert_eq!(s.next(), Some("x"));
        assert_eq!(s.next(), None);
    }

    #[test]
    fn forget_client_reclaims_backlog() {
        let s = FairScheduler::new();
        s.submit(1, "dead");
        s.submit(1, "dead2");
        s.submit(2, "live");
        assert_eq!(s.forget_client(1), 2);
        assert_eq!(s.next(), Some("live"));
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let s = Arc::new(FairScheduler::<u64>::new());
        let produced = 200u64;
        let mut handles = Vec::new();
        for client in 0..4u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..produced / 4 {
                    s.submit(client, client * 1_000 + i);
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let s = Arc::clone(&s);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = s.next() {
                    got.push(v);
                }
                got
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        while s.pending() > 0 {
            std::thread::yield_now();
        }
        s.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len() as u64, produced);
    }
}
