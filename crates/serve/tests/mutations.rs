//! End-to-end mutation tests: INSERT/DELETE/FLUSH over real TCP,
//! cache-generation invalidation, and durable-store restarts.

use kgq_core::Budget;
use kgq_graph::PropertyGraph;
use kgq_rdf::TripleStore;
use kgq_serve::{apply_edges, serve, serve_with_store, stat, Caps, Client, ServerConfig};
use kgq_store::DurableStore;
use std::path::PathBuf;
use std::time::Duration;

fn config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        caps: Budget::unlimited(),
    }
}

fn connect(handle: &kgq_serve::ServerHandle) -> Client {
    let c = Client::connect(handle.addr()).expect("connect");
    c.set_timeout(Some(Duration::from_secs(60))).unwrap();
    c
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kgq-serve-mut-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const KNOWS: &str = "SELECT ?x ?y WHERE { ?x <knows> ?y . }";

#[test]
fn insert_count_delete_count_round_trip_over_tcp() {
    let handle = serve(PropertyGraph::new(), TripleStore::new(), config()).expect("bind");
    let mut c = connect(&handle);

    // Empty store: zero rows.
    let r0 = c.sparql(KNOWS, &Caps::none()).unwrap();
    assert!(r0.ok, "{}", r0.body);
    assert_eq!(r0.body.lines().count(), 0);
    let gen0 = stat(&c.stats().unwrap(), "generation").unwrap();

    // INSERT a mixed batch: two triples and one property-graph edge.
    let ins = c
        .insert("<a> <knows> <b> .\n<b> <knows> <c> .\nedge n1 rides n2 person bus")
        .unwrap();
    assert!(ins.ok, "{}", ins.body);
    assert!(
        ins.body.contains("inserted 2 triple(s), 1 edge(s)"),
        "{}",
        ins.body
    );
    let r1 = c.sparql(KNOWS, &Caps::none()).unwrap();
    assert_eq!(r1.body.lines().count(), 2, "{}", r1.body);
    // The committed mutation advanced the shared cache generation.
    let gen1 = stat(&c.stats().unwrap(), "generation").unwrap();
    assert!(gen1 > gen0, "generation must advance on INSERT");
    // The edge is queryable through the RPQ path.
    let pairs = c.rpq("pairs", "rides", &Caps::none()).unwrap();
    assert!(pairs.ok, "{}", pairs.body);
    assert_eq!(pairs.body.trim(), "n1\tn2");

    // DELETE one triple; the count drops and the generation advances.
    let del = c.delete("<a> <knows> <b> .").unwrap();
    assert!(del.ok, "{}", del.body);
    assert!(del.body.contains("deleted 1 triple(s)"), "{}", del.body);
    let r2 = c.sparql(KNOWS, &Caps::none()).unwrap();
    assert_eq!(r2.body.lines().count(), 1, "{}", r2.body);
    let gen2 = stat(&c.stats().unwrap(), "generation").unwrap();
    assert!(gen2 > gen1, "generation must advance on DELETE");

    // Deleting it again is a no-op, not an error.
    let del2 = c.delete("<a> <knows> <b> .").unwrap();
    assert!(del2.ok && del2.body.contains("deleted 0 triple(s)"));

    // Malformed mutations are ERR frames, not panics.
    assert!(!c.insert("not an ntriples line").unwrap().ok);
    assert!(!c.insert("").unwrap().ok);
    assert!(!c.delete("edge n1 rides n2").unwrap().ok);

    drop(c);
    handle.shutdown();
}

/// The satellite regression: a cached query's answer must change after
/// an INSERT commits. A stale generation stamp would keep serving the
/// old compiled result; the bump makes the old cache entry unreachable.
#[test]
fn cached_query_invalidates_after_insert() {
    let handle = serve(PropertyGraph::new(), TripleStore::new(), config()).expect("bind");
    let mut c = connect(&handle);
    c.insert("edge n1 rides n2 person bus").unwrap();

    // Warm the cache: same RPQ twice, second answered from cache.
    let first = c.rpq("pairs", "rides", &Caps::none()).unwrap();
    assert_eq!(first.body.lines().count(), 1);
    let again = c.rpq("pairs", "rides", &Caps::none()).unwrap();
    assert_eq!(again.body, first.body);
    let stats = c.stats().unwrap();
    assert!(stat(&stats, "cache_hits").unwrap() >= 1);
    let misses_before = stat(&stats, "cache_misses").unwrap();
    let gen_before = stat(&stats, "generation").unwrap();

    // Commit a mutation that changes the answer.
    c.insert("edge n3 rides n4 person bus").unwrap();

    // The same query now returns the new row set — not the cached one.
    let after = c.rpq("pairs", "rides", &Caps::none()).unwrap();
    assert_eq!(after.body.lines().count(), 2, "{}", after.body);
    let stats = c.stats().unwrap();
    assert!(
        stat(&stats, "generation").unwrap() > gen_before,
        "cache generation must advance on committed mutation"
    );
    assert!(
        stat(&stats, "cache_misses").unwrap() > misses_before,
        "the re-run must be a miss at the new generation"
    );

    drop(c);
    handle.shutdown();
}

#[test]
fn durable_mutations_survive_server_restart() {
    let dir = tmp_dir("restart");

    // Generation 1: an empty durable server takes a mixed batch.
    {
        let (durable, _) = DurableStore::open(&dir).unwrap();
        let handle = serve_with_store(
            PropertyGraph::new(),
            TripleStore::new(),
            Some(durable),
            config(),
        )
        .expect("bind");
        let mut c = connect(&handle);
        let ins = c
            .insert("<a> <knows> <b> .\n<b> <knows> <c> .\nedge n1 rides n2 person bus")
            .unwrap();
        assert!(ins.ok, "{}", ins.body);
        let stats = c.stats().unwrap();
        assert_eq!(stat(&stats, "store_generation"), Some(1));
        assert!(stat(&stats, "wal_bytes").unwrap() > 8);
        drop(c);
        handle.shutdown();
    }

    // Restart: recover from disk, rebuild the snapshot, serve again.
    let boot_recovered = |dir: &PathBuf| {
        let (durable, replay) = DurableStore::open(dir).unwrap();
        assert_eq!(replay.tail, kgq_store::TailState::Clean);
        let store = durable.materialize();
        let mut graph = PropertyGraph::new();
        apply_edges(&mut graph, durable.all_edges());
        serve_with_store(graph, store, Some(durable), config()).expect("bind")
    };
    {
        let handle = boot_recovered(&dir);
        let mut c = connect(&handle);
        let rows = c.sparql(KNOWS, &Caps::none()).unwrap();
        assert_eq!(rows.body.lines().count(), 2, "{}", rows.body);
        let pairs = c.rpq("pairs", "rides", &Caps::none()).unwrap();
        assert_eq!(pairs.body.trim(), "n1\tn2");
        // Mutate again, then FLUSH so the overlay folds into a segment.
        assert!(c.delete("<a> <knows> <b> .").unwrap().ok);
        let flush = c.flush().unwrap();
        assert!(
            flush.ok && flush.body.contains("compacted"),
            "{}",
            flush.body
        );
        drop(c);
        handle.shutdown();
    }

    // Second restart: state now comes from the compacted segment.
    {
        let handle = boot_recovered(&dir);
        let mut c = connect(&handle);
        let rows = c.sparql(KNOWS, &Caps::none()).unwrap();
        assert_eq!(rows.body.lines().count(), 1, "{}", rows.body);
        let pairs = c.rpq("pairs", "rides", &Caps::none()).unwrap();
        assert_eq!(pairs.body.trim(), "n1\tn2");
        drop(c);
        handle.shutdown();
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flush_without_store_is_a_clean_no_op() {
    let handle = serve(PropertyGraph::new(), TripleStore::new(), config()).expect("bind");
    let mut c = connect(&handle);
    let flush = c.flush().unwrap();
    assert!(
        flush.ok && flush.body.contains("no durable store"),
        "{}",
        flush.body
    );
    drop(c);
    handle.shutdown();
}
