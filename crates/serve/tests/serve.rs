//! End-to-end server tests over real TCP connections.

use kgq_core::Budget;
use kgq_graph::generate::{contact_network, ContactParams};
use kgq_rdf::parse_ntriples;
use kgq_serve::{process_thread_count, serve, stat, Caps, Client, ServerConfig};
use std::time::Duration;

const NT: &str = "<a> <knows> <b> .\n<b> <knows> <c> .\n<c> <knows> <a> .\n\
                  <a> <type> <P> .\n<b> <type> <P> .\n";

fn boot(caps: Budget, workers: usize) -> kgq_serve::ServerHandle {
    let g = contact_network(&ContactParams {
        people: 40,
        buses: 5,
        addresses: 15,
        seed: 23,
        ..ContactParams::default()
    });
    let st = parse_ntriples(NT).unwrap();
    serve(
        g,
        st,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            caps,
        },
    )
    .expect("bind")
}

fn connect(handle: &kgq_serve::ServerHandle) -> Client {
    let c = Client::connect(handle.addr()).expect("connect");
    c.set_timeout(Some(Duration::from_secs(60))).unwrap();
    c
}

#[test]
fn ping_stats_and_clean_shutdown_without_leaked_threads() {
    let before = process_thread_count().expect("procfs");
    let handle = boot(Budget::unlimited(), 3);
    let mut c = connect(&handle);
    assert!(c.ping().unwrap());
    let stats = c.stats().unwrap();
    assert_eq!(stat(&stats, "workers"), Some(3));
    assert!(stat(&stats, "requests").unwrap() >= 1);
    drop(c);
    handle.shutdown();
    // Every spawned thread (accept, workers, readers) is joined.
    let after = process_thread_count().expect("procfs");
    assert_eq!(after, before, "threads leaked across server lifetime");
}

#[test]
fn shutdown_verb_unblocks_wait() {
    let handle = boot(Budget::unlimited(), 2);
    let mut c = connect(&handle);
    let resp = c.shutdown().unwrap();
    assert!(resp.ok);
    handle.wait(); // returns because SHUTDOWN flipped the flag
    handle.shutdown();
}

#[test]
fn concurrent_clients_get_byte_identical_results_to_a_solo_run() {
    let handle = boot(Budget::unlimited(), 4);
    // Solo baselines, one per engine, on a fresh connection.
    let mut solo = connect(&handle);
    let rpq_expr = "(rides + contact)/rides^-";
    let cy = "MATCH (p:person)-[:rides]->(b:bus) RETURN p, b";
    let sq = "SELECT ?x ?y WHERE { ?x <knows> ?y . ?y <type> <P> . }";
    let base_rpq = solo.rpq("pairs", rpq_expr, &Caps::none()).unwrap();
    let base_cy = solo.cypher(cy, &Caps::none()).unwrap();
    let base_sq = solo.sparql(sq, &Caps::none()).unwrap();
    assert!(base_rpq.ok && base_cy.ok && base_sq.ok);
    assert!(!base_rpq.body.is_empty());

    let clients = 6;
    let rounds = 8;
    std::thread::scope(|scope| {
        for t in 0..clients {
            let (base_rpq, base_cy, base_sq) = (&base_rpq, &base_cy, &base_sq);
            let handle = &handle;
            scope.spawn(move || {
                let mut c = connect(handle);
                for r in 0..rounds {
                    // Stagger the mix so all three engines overlap.
                    match (t + r) % 3 {
                        0 => {
                            let got = c.rpq("pairs", rpq_expr, &Caps::none()).unwrap();
                            assert_eq!(got.body, base_rpq.body, "client {t} round {r}");
                        }
                        1 => {
                            let got = c.cypher(cy, &Caps::none()).unwrap();
                            assert_eq!(got.body, base_cy.body, "client {t} round {r}");
                        }
                        _ => {
                            let got = c.sparql(sq, &Caps::none()).unwrap();
                            assert_eq!(got.body, base_sq.body, "client {t} round {r}");
                        }
                    }
                }
            });
        }
    });
    // The shared cache served the repeats.
    assert!(handle.snapshot().cache().hits() > 0);
    handle.shutdown();
}

#[test]
fn budget_tripping_client_gets_exact_prefix_partials_while_others_run_clean() {
    let handle = boot(Budget::unlimited(), 3);
    let expr = "(rides + contact + lives)*";
    let mut solo = connect(&handle);
    let full = solo.rpq("pairs", expr, &Caps::none()).unwrap();
    assert!(full.ok && !full.is_partial());

    std::thread::scope(|scope| {
        // The tripper: a tiny result budget on an expensive query.
        let handle_ref = &handle;
        let full_ref = &full;
        scope.spawn(move || {
            let mut c = connect(handle_ref);
            let caps = Caps {
                max_results: Some(5),
                ..Caps::default()
            };
            for _ in 0..10 {
                let got = c.rpq("pairs", expr, &caps).unwrap();
                assert!(got.ok, "{}", got.body);
                assert!(got.is_partial(), "tiny budget must trip");
                let trailer = "# partial: result budget reached\n";
                let prefix = got.body.strip_suffix(trailer).expect("typed trailer");
                assert!(
                    full_ref.body.starts_with(prefix),
                    "partial must be an exact prefix"
                );
                assert_eq!(prefix.lines().count(), 5);
            }
        });
        // Two well-behaved clients, running alongside the tripper.
        for t in 0..2 {
            let handle_ref = &handle;
            let full_ref = &full;
            scope.spawn(move || {
                let mut c = connect(handle_ref);
                for r in 0..10 {
                    let got = c.rpq("pairs", expr, &Caps::none()).unwrap();
                    assert!(got.ok && !got.is_partial());
                    assert_eq!(got.body, full_ref.body, "client {t} round {r} diverged");
                }
            });
        }
    });
    let mut c = connect(&handle);
    let stats = c.stats().unwrap();
    assert!(stat(&stats, "partials").unwrap() >= 10);
    assert_eq!(stat(&stats, "errors"), Some(0));
    handle.shutdown();
}

#[test]
fn server_caps_apply_even_to_capless_clients() {
    // Server-side admission control: 4 results max, client asks for
    // nothing special and still gets a typed partial.
    let handle = boot(Budget::unlimited().with_max_results(4), 2);
    let mut c = connect(&handle);
    let got = c
        .rpq("pairs", "(rides + contact + lives)*", &Caps::none())
        .unwrap();
    assert!(got.ok && got.is_partial(), "{}", got.body);
    assert_eq!(got.body.lines().count(), 5); // 4 rows + trailer
    handle.shutdown();
}

#[test]
fn malformed_frames_and_bad_queries_do_not_wedge_the_server() {
    let handle = boot(Budget::unlimited(), 2);
    // A connection that sends garbage gets an ERR frame and is dropped.
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        raw.write_all(b"this is not a frame\n").unwrap();
        let mut buf = Vec::new();
        raw.read_to_end(&mut buf).unwrap(); // server responds then closes
        let text = String::from_utf8_lossy(&buf);
        assert!(text.contains("ERR"), "{text}");
    }
    // Bad queries are ERR responses; the connection stays usable.
    let mut c = connect(&handle);
    let bad = c.rpq("pairs", "((((", &Caps::none()).unwrap();
    assert!(!bad.ok);
    let good = c.rpq("pairs", "rides", &Caps::none()).unwrap();
    assert!(good.ok);
    assert!(c.ping().unwrap());
    handle.shutdown();
}

#[test]
fn disconnect_reclaims_queued_work() {
    // One worker so a backlog can build; a client queues several slow
    // queries then vanishes. The server must reclaim the backlog and
    // stay healthy for others.
    let handle = boot(Budget::unlimited(), 1);
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
        // Hand-rolled pipelined frames (the Client type is lock-step).
        let payload = "pairs\n(rides + contact + lives)*";
        let mut frames = String::new();
        for id in 1..=6 {
            frames.push_str(&format!("{id} QUERY - {}\n{payload}", payload.len()));
        }
        raw.write_all(frames.as_bytes()).unwrap();
        raw.flush().unwrap();
        // Vanish without reading responses.
        drop(raw);
    }
    // The server reclaims the dead client's backlog and serves us.
    let mut c = connect(&handle);
    let got = c.rpq("pairs", "rides", &Caps::none()).unwrap();
    assert!(got.ok);
    handle.shutdown();
}

#[test]
fn sparql_count_is_exact_when_budget_allows_and_degrades_when_starved() {
    let handle = boot(Budget::unlimited(), 2);
    let mut c = connect(&handle);
    // Unlimited budget: COUNT(*) answers exactly, with no markers.
    let exact = c
        .sparql(
            "SELECT (COUNT(*) AS ?n) WHERE { ?x <knows> ?y . }",
            &Caps::none(),
        )
        .unwrap();
    assert!(exact.ok, "{}", exact.body);
    assert_eq!(exact.body, "3\n");
    assert!(!exact.is_partial());
    // A one-step budget: the exact counter trips, the governed
    // approximate path takes over and the reply carries the typed
    // degraded marker (the FPRAS degradation contract).
    let starved = c
        .sparql(
            "SELECT (COUNT(*) AS ?n) WHERE { ?x <knows> ?y . }",
            &Caps {
                max_steps: Some(1),
                ..Caps::default()
            },
        )
        .unwrap();
    assert!(starved.ok, "{}", starved.body);
    assert!(
        starved.body.contains("# degraded:"),
        "starved COUNT must carry the degraded marker: {}",
        starved.body
    );
    // A plain SELECT exercises the sketch-driven planner.
    let plain = c
        .sparql("SELECT ?x ?y WHERE { ?x <knows> ?y . }", &Caps::none())
        .unwrap();
    assert!(plain.ok, "{}", plain.body);
    let stats = c.stats().unwrap();
    assert!(stat(&stats, "plans_sketch").unwrap() >= 1, "{stats}");
    assert!(stat(&stats, "approx_counts").unwrap() >= 1, "{stats}");
    drop(c);
    handle.shutdown();
}
