//! Fault-injection suite for the BGP join engine (requires
//! `--features fault-injection`).
//!
//! Arms the `lftj::join` worker-entry site and the governor's
//! `govern::tick` starvation hook, and proves that an injected fault
//! surfaces as a typed error or a sound partial answer — never an
//! unwinding panic, and never a corrupted retry.
//!
//! The fault plan is process-global, so every test serializes on one
//! mutex.
#![cfg(feature = "fault-injection")]

use kgq_core::govern::{fault, Budget, EvalError, Governor};
use kgq_rdf::bgp::Bgp;
use kgq_rdf::{lftj, TripleStore};
use std::sync::{Mutex, MutexGuard, Once};

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests on the global fault plan and silences the default
/// panic hook for injected panics (they are caught and converted to
/// typed errors; their backtraces are just noise).
fn serial() -> MutexGuard<'static, ()> {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("injected fault"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.contains("injected fault"))
                })
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear();
    guard
}

/// A cyclic store and the triangle query over it. `n` is the node
/// count: offsets 1 + 3 + (n-4) ≡ 0 (mod n), so every node closes
/// triangles, and larger `n` keeps the governed join ticking across
/// many step batches (the ticker charges in batches of 1024).
fn setup(n: u32) -> (TripleStore, Bgp) {
    let mut st = TripleStore::new();
    for i in 0..n {
        st.insert_strs(&format!("n{i}"), "e", &format!("n{}", (i + 1) % n));
        st.insert_strs(&format!("n{i}"), "e", &format!("n{}", (i + 3) % n));
        st.insert_strs(&format!("n{i}"), "e", &format!("n{}", (i + n - 4) % n));
    }
    let mut q = Bgp::new();
    q.add(&mut st, "?a", "e", "?b");
    q.add(&mut st, "?b", "e", "?c");
    q.add(&mut st, "?c", "e", "?a");
    (st, q)
}

#[test]
fn injected_panic_surfaces_as_typed_error_and_retry_is_clean() {
    let _guard = serial();
    let (st, q) = setup(12);
    let expected = lftj::solve(&st, &q);

    fault::arm("lftj::join", fault::Action::Panic, 0);
    let gov = Governor::unlimited();
    let err = lftj::solve_governed(&st, &q, &gov).expect_err("armed panic must surface");
    match err {
        EvalError::Panic(msg) => assert!(
            msg.contains("injected fault"),
            "unexpected panic message: {msg}"
        ),
        other => panic!("expected EvalError::Panic, got {other:?}"),
    }

    // The fault fired once; a fresh governed run is byte-identical to
    // the unfaulted answer — nothing was cached or corrupted.
    fault::clear();
    let retry = lftj::solve_governed(&st, &q, &Governor::unlimited()).expect("clean retry");
    assert!(retry.completion.is_complete());
    assert_eq!(retry.value, expected);
}

#[test]
fn starvation_yields_exact_prefix() {
    let _guard = serial();
    let (st, q) = setup(600);
    let full = lftj::solve(&st, &q);
    assert!(!full.rows.is_empty(), "triangle query must have answers");

    // Starve the governor from its third step charge onwards: the join
    // is interrupted mid-flight and must hand back an exact prefix.
    fault::arm_persistent("govern::tick", fault::Action::Starve, 2);
    let gov = Governor::new(&Budget::unlimited());
    let got = lftj::solve_governed(&st, &q, &gov).expect("starvation is not an error");
    assert!(
        !got.completion.is_complete(),
        "persistent starvation must interrupt"
    );
    assert!(got.value.rows.len() < full.rows.len());
    assert_eq!(
        &got.value.rows[..],
        &full.rows[..got.value.rows.len()],
        "partial rows must be a prefix of the full answer"
    );
    fault::clear();
}
