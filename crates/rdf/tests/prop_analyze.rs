//! Property-based tests for BGP static analysis: on random stores and
//! random BGPs the analyzer's verdicts must agree with execution — a
//! provably-empty verdict means the evaluator returns zero rows at any
//! partition count (so the Deny short-circuit is byte-identical to
//! evaluating), and every plan the planner emits must pass the
//! independent soundness verifier.

use kgq_core::govern::{Budget, Completion, Governor};
use kgq_rdf::bgp::Bgp;
use kgq_rdf::{analyze_bgp, lftj, TripleStore};
use proptest::prelude::*;

const TERMS: usize = 6;
const VARS: usize = 4;

/// One slot of a random triple pattern.
#[derive(Clone, Debug)]
enum Term {
    Var(usize),
    Const(usize),
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        3 => (0..VARS).prop_map(Term::Var),
        1 => (0..TERMS).prop_map(Term::Const),
    ]
}

fn pattern() -> impl Strategy<Value = (Term, Term, Term)> {
    (term(), term(), term())
}

fn spell(t: &Term) -> String {
    match t {
        Term::Var(v) => format!("?v{v}"),
        Term::Const(c) => format!("t{c}"),
    }
}

fn setup(triples: &[(usize, usize, usize)], patterns: &[(Term, Term, Term)]) -> (TripleStore, Bgp) {
    let mut st = TripleStore::new();
    for &(s, p, o) in triples {
        st.insert_strs(&format!("t{s}"), &format!("t{p}"), &format!("t{o}"));
    }
    let mut bgp = Bgp::new();
    for (s, p, o) in patterns {
        bgp.add(&mut st, &spell(s), &spell(p), &spell(o));
    }
    (st, bgp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Analyzer/execution agreement: when the analyzer proves the BGP
    /// empty, evaluation returns zero rows at 1, 2 and 4 chunks — the
    /// short-circuit that skips planning answers exactly what a full
    /// evaluation would. Conversely a non-empty answer is never denied
    /// as empty.
    #[test]
    fn provably_empty_agrees_with_execution(
        triples in proptest::collection::vec((0..TERMS, 0..TERMS, 0..TERMS), 0..40),
        patterns in proptest::collection::vec(pattern(), 1..6),
    ) {
        let (st, bgp) = setup(&triples, &patterns);
        let report = analyze_bgp(&st, &bgp, None);
        if report.provably_empty {
            for chunks in [1usize, 2, 4] {
                let sol = lftj::solve_partitioned(&st, &bgp, chunks);
                prop_assert!(
                    sol.rows.is_empty(),
                    "analyzer declared the BGP empty but evaluation at {} chunk(s) \
                     found {} row(s)",
                    chunks,
                    sol.rows.len()
                );
            }
        } else {
            // No claim either way: the analyzer is conservative, so a
            // non-flagged BGP may still evaluate empty. That is sound.
        }
    }

    /// Every plan the greedy planner emits passes the independent
    /// soundness verifier: total elimination order, patterns resolvable
    /// in that order, cardinalities consistent with the store.
    #[test]
    fn planner_output_passes_verification(
        triples in proptest::collection::vec((0..TERMS, 0..TERMS, 0..TERMS), 0..40),
        patterns in proptest::collection::vec(pattern(), 1..6),
    ) {
        let (st, bgp) = setup(&triples, &patterns);
        let plan = lftj::plan(&st, &bgp);
        let checked = lftj::verify_plan(&st, &bgp, &plan);
        prop_assert!(
            checked.is_ok(),
            "planner emitted a plan the verifier rejects: {:?}",
            checked
        );
    }

    /// With an unlimited budget the analysis-gated governed evaluator
    /// (which re-verifies the plan before running) completes and returns
    /// exactly the ungoverned answer — the soundness gate never rejects
    /// a legitimate plan or perturbs results.
    #[test]
    fn verified_governed_run_matches_ungoverned(
        triples in proptest::collection::vec((0..TERMS, 0..TERMS, 0..TERMS), 0..40),
        patterns in proptest::collection::vec(pattern(), 1..5),
    ) {
        let (st, bgp) = setup(&triples, &patterns);
        let full = lftj::solve(&st, &bgp);
        let gov = Governor::new(&Budget::unlimited());
        let got = lftj::solve_governed(&st, &bgp, &gov)
            .expect("unlimited governed run must not error (PlanUnsound would surface here)");
        prop_assert!(matches!(got.completion, Completion::Complete));
        prop_assert_eq!(got.value, full);
    }
}
