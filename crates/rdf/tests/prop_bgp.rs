//! Property-based tests for the leapfrog-triejoin BGP engine: on random
//! stores and random BGPs (shared variables, constants, repeated
//! variables included), the worst-case optimal join must agree with the
//! backtracking baseline as a multiset of bindings, produce
//! byte-identical output at any partition count, and yield exact
//! prefixes of the ungoverned answer when a governor trips.

use kgq_core::govern::{Budget, Completion, Governor};
use kgq_rdf::bgp::{Bgp, Binding};
use kgq_rdf::{lftj, TripleStore};
use proptest::prelude::*;

const TERMS: usize = 6;
const VARS: usize = 4;

/// One slot of a random triple pattern.
#[derive(Clone, Debug)]
enum Term {
    Var(usize),
    Const(usize),
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        3 => (0..VARS).prop_map(Term::Var),
        1 => (0..TERMS).prop_map(Term::Const),
    ]
}

fn pattern() -> impl Strategy<Value = (Term, Term, Term)> {
    (term(), term(), term())
}

fn spell(t: &Term) -> String {
    match t {
        Term::Var(v) => format!("?v{v}"),
        Term::Const(c) => format!("t{c}"),
    }
}

fn setup(triples: &[(usize, usize, usize)], patterns: &[(Term, Term, Term)]) -> (TripleStore, Bgp) {
    let mut st = TripleStore::new();
    for &(s, p, o) in triples {
        st.insert_strs(&format!("t{s}"), &format!("t{p}"), &format!("t{o}"));
    }
    let mut bgp = Bgp::new();
    for (s, p, o) in patterns {
        bgp.add(&mut st, &spell(s), &spell(p), &spell(o));
    }
    (st, bgp)
}

/// Canonical multiset form: each binding as a sorted assoc list, the
/// whole answer sorted.
fn canon(bindings: Vec<Binding>) -> Vec<Vec<(String, u32)>> {
    let mut v: Vec<Vec<(String, u32)>> = bindings
        .into_iter()
        .map(|b| {
            let mut row: Vec<(String, u32)> = b.into_iter().map(|(k, s)| (k, s.0)).collect();
            row.sort();
            row
        })
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The WCO join and the backtracking oracle agree on every random
    /// store × BGP pair, compared as multisets of bindings.
    #[test]
    fn lftj_matches_backtracking_baseline(
        triples in proptest::collection::vec((0..TERMS, 0..TERMS, 0..TERMS), 0..40),
        patterns in proptest::collection::vec(pattern(), 1..6),
    ) {
        let (st, bgp) = setup(&triples, &patterns);
        let fast = canon(lftj::solve(&st, &bgp).bindings());
        let slow = canon(bgp.solve_baseline(&st));
        prop_assert_eq!(fast, slow);
    }

    /// Partitioned evaluation is byte-identical at 1, 2 and 4 chunks:
    /// same rows, same order.
    #[test]
    fn partitioning_is_deterministic(
        triples in proptest::collection::vec((0..TERMS, 0..TERMS, 0..TERMS), 0..40),
        patterns in proptest::collection::vec(pattern(), 1..5),
    ) {
        let (st, bgp) = setup(&triples, &patterns);
        let one = lftj::solve_partitioned(&st, &bgp, 1);
        for chunks in [2usize, 4] {
            let many = lftj::solve_partitioned(&st, &bgp, chunks);
            prop_assert_eq!(&one, &many, "chunks = {}", chunks);
        }
    }

    /// A tripped result budget yields an exact prefix of the ungoverned
    /// row stream; an untripped one yields the identical complete answer.
    #[test]
    fn governed_runs_are_exact_prefixes(
        triples in proptest::collection::vec((0..TERMS, 0..TERMS, 0..TERMS), 0..40),
        patterns in proptest::collection::vec(pattern(), 1..5),
        limit in 0usize..12,
    ) {
        let (st, bgp) = setup(&triples, &patterns);
        let full = lftj::solve(&st, &bgp);
        let gov = Governor::new(&Budget::unlimited().with_max_results(limit as u64));
        let got = lftj::solve_governed(&st, &bgp, &gov)
            .expect("governed run must not error");
        match got.completion {
            Completion::Complete => {
                prop_assert_eq!(&got.value, &full);
                prop_assert!(full.rows.len() <= limit);
            }
            Completion::Partial(_) => {
                prop_assert!(got.value.rows.len() <= limit);
                prop_assert_eq!(
                    &got.value.rows[..],
                    &full.rows[..got.value.rows.len()],
                    "partial rows must be a prefix of the full answer"
                );
            }
        }
    }
}
