//! Property-based tests for the triple store: every index-selected scan
//! agrees with full-scan filtering, and insert/remove keep the three
//! indexes consistent.

use kgq_rdf::{IndexOrder, Triple, TripleStore};
use proptest::prelude::*;
use std::collections::HashSet;

const TERMS: usize = 6;

fn store_from(triples: &[(usize, usize, usize)]) -> TripleStore {
    let mut st = TripleStore::new();
    for &(s, p, o) in triples {
        st.insert_strs(&format!("t{s}"), &format!("t{p}"), &format!("t{o}"));
    }
    st
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scans_match_filter_semantics(
        triples in proptest::collection::vec((0..TERMS, 0..TERMS, 0..TERMS), 0..40),
        pattern in (proptest::option::of(0..TERMS), proptest::option::of(0..TERMS), proptest::option::of(0..TERMS)),
    ) {
        let st = store_from(&triples);
        let term = |i: usize| st.get_term(&format!("t{i}"));
        let (ps, pp, po) = pattern;
        // If a pattern term was never interned there can be no matches.
        let s = ps.map(term);
        let p = pp.map(term);
        let o = po.map(term);
        if s == Some(None) || p == Some(None) || o == Some(None) {
            return Ok(());
        }
        let s = s.flatten();
        let p = p.flatten();
        let o = o.flatten();
        let mut scanned: Vec<Triple> = st.scan(s, p, o).collect();
        scanned.sort();
        scanned.dedup();
        let mut filtered: Vec<Triple> = st
            .iter()
            .filter(|t| s.is_none_or(|x| t.s == x))
            .filter(|t| p.is_none_or(|x| t.p == x))
            .filter(|t| o.is_none_or(|x| t.o == x))
            .collect();
        filtered.sort();
        prop_assert_eq!(scanned, filtered);
    }

    #[test]
    fn insert_remove_keep_indexes_consistent(
        ops in proptest::collection::vec((any::<bool>(), 0..TERMS, 0..TERMS, 0..TERMS), 1..60),
    ) {
        let mut st = TripleStore::new();
        let mut reference = std::collections::BTreeSet::new();
        for (insert, s, p, o) in ops {
            let t = Triple {
                s: st.term(&format!("t{s}")),
                p: st.term(&format!("t{p}")),
                o: st.term(&format!("t{o}")),
            };
            if insert {
                let fresh = st.insert(t);
                prop_assert_eq!(fresh, reference.insert((t.s, t.p, t.o)));
            } else {
                let was = st.remove(t);
                prop_assert_eq!(was, reference.remove(&(t.s, t.p, t.o)));
            }
            prop_assert_eq!(st.len(), reference.len());
        }
        // All three index-backed access paths see the same triples.
        for &(s, p, o) in &reference {
            let t = Triple { s, p, o };
            prop_assert!(st.contains(t));
            prop_assert!(st.scan(Some(s), None, None).any(|x| x == t));
            prop_assert!(st.scan(None, Some(p), None).any(|x| x == t));
            prop_assert!(st.scan(None, None, Some(o)).any(|x| x == t));
        }
    }

    /// The durable write path replays arbitrary insert/delete sequences
    /// into a fresh store on recovery, so every interleaving must leave
    /// all six clustered orderings sorted, deduplicated, and in exact
    /// agreement with a [`HashSet`] oracle of the surviving triples.
    #[test]
    fn six_orderings_survive_random_op_sequences(
        ops in proptest::collection::vec((any::<bool>(), 0..TERMS, 0..TERMS, 0..TERMS), 0..80),
    ) {
        let mut st = TripleStore::new();
        let mut oracle: HashSet<(usize, usize, usize)> = HashSet::new();
        for &(insert, s, p, o) in &ops {
            let t = Triple {
                s: st.term(&format!("t{s}")),
                p: st.term(&format!("t{p}")),
                o: st.term(&format!("t{o}")),
            };
            if insert {
                st.insert(t);
                oracle.insert((s, p, o));
            } else {
                st.remove(t);
                oracle.remove(&(s, p, o));
            }
            prop_assert_eq!(st.len(), oracle.len());
        }
        // Every ordering holds exactly the oracle's triples, strictly
        // ascending in its own key layout (sorted AND deduplicated).
        for ord in IndexOrder::ALL {
            let rows = st.order(ord);
            prop_assert_eq!(rows.len(), oracle.len(), "ordering {} has wrong cardinality", ord.name());
            prop_assert!(
                rows.windows(2).all(|w| w[0] < w[1]),
                "ordering {} is not strictly sorted", ord.name()
            );
            let mut via: HashSet<(usize, usize, usize)> = HashSet::new();
            for &key in rows {
                let t = ord.triple(key);
                let term = |sym| st.term_str(sym)[1..].parse::<usize>().unwrap();
                via.insert((term(t.s), term(t.p), term(t.o)));
            }
            prop_assert_eq!(&via, &oracle, "ordering {} diverged from the oracle", ord.name());
        }
    }
}
