//! Property-based tests for the statistics plane (`kgq_rdf::sketch`),
//! the sketch-driven planner, and the governed approximate counter: on
//! random stores the per-ordering level statistics must agree with a
//! naive recomputation, distinct-count sketches must stay within their
//! advertised error bound, sketch-chosen plans must pass the exact
//! `verify_plan` gate and reproduce the greedy planner's answers, and
//! `approx_count_bgp` must land within its (ε, δ) contract — exactly,
//! on counts at or below the pivot.

use kgq_core::govern::Completion;
use kgq_rdf::bgp::{Bgp, Binding};
use kgq_rdf::sketch::DistinctSketch;
use kgq_rdf::{approx_count_bgp, lftj, select, BgpCountParams, StoreSketch};
use kgq_rdf::{IndexOrder, TripleStore};
use proptest::prelude::*;
use std::collections::BTreeSet;

const TERMS: usize = 6;
const VARS: usize = 4;

#[derive(Clone, Debug)]
enum Term {
    Var(usize),
    Const(usize),
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        3 => (0..VARS).prop_map(Term::Var),
        1 => (0..TERMS).prop_map(Term::Const),
    ]
}

fn pattern() -> impl Strategy<Value = (Term, Term, Term)> {
    (term(), term(), term())
}

fn spell(t: &Term) -> String {
    match t {
        Term::Var(v) => format!("?v{v}"),
        Term::Const(c) => format!("t{c}"),
    }
}

fn setup(triples: &[(usize, usize, usize)], patterns: &[(Term, Term, Term)]) -> (TripleStore, Bgp) {
    let mut st = TripleStore::new();
    for &(s, p, o) in triples {
        st.insert_strs(&format!("t{s}"), &format!("t{p}"), &format!("t{o}"));
    }
    let mut bgp = Bgp::new();
    for (s, p, o) in patterns {
        bgp.add(&mut st, &spell(s), &spell(p), &spell(o));
    }
    (st, bgp)
}

fn canon(bindings: Vec<Binding>) -> Vec<Vec<(String, u32)>> {
    let mut v: Vec<Vec<(String, u32)>> = bindings
        .into_iter()
        .map(|b| {
            let mut row: Vec<(String, u32)> = b.into_iter().map(|(k, s)| (k, s.0)).collect();
            row.sort();
            row
        })
        .collect();
    v.sort();
    v
}

/// Key columns of `t` under ordering `o`.
fn keyed(o: IndexOrder, t: kgq_rdf::Triple) -> [u32; 3] {
    let spo = [t.s.0, t.p.0, t.o.0];
    let p = o.perm();
    [spo[p[0]], spo[p[1]], spo[p[2]]]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Per-ordering level statistics agree with a naive recomputation
    /// from the store's triples, and the leading-column distinct-count
    /// sketch is exact at these cardinalities (its linear-counting
    /// error is negligible far below saturation).
    #[test]
    fn ordering_stats_match_naive_recomputation(
        triples in proptest::collection::vec((0..TERMS, 0..TERMS, 0..TERMS), 0..40),
    ) {
        let (st, _) = setup(&triples, &[]);
        let sk = StoreSketch::build(&st);
        prop_assert_eq!(sk.triples, st.len());
        for o in IndexOrder::ALL {
            let os = sk.ordering(o);
            let mut c0: BTreeSet<u32> = BTreeSet::new();
            let mut c01: BTreeSet<(u32, u32)> = BTreeSet::new();
            for t in st.scan(None, None, None) {
                let k = keyed(o, t);
                c0.insert(k[0]);
                c01.insert((k[0], k[1]));
            }
            prop_assert_eq!(os.rows, st.len());
            prop_assert_eq!(os.l1.distinct, c0.len());
            prop_assert_eq!(os.l2.distinct, c01.len());
            let est = os.col0.estimate();
            prop_assert!(
                (est - c0.len() as f64).abs() <= (c0.len() as f64 * 0.05).max(1.0),
                "col0 sketch {} vs true {}", est, c0.len()
            );
            for b in &os.heavy {
                let rows = st.scan(None, None, None)
                    .filter(|t| keyed(o, *t)[0] == b.value.0)
                    .count();
                let d2: BTreeSet<u32> = st.scan(None, None, None)
                    .filter(|t| keyed(o, *t)[0] == b.value.0)
                    .map(|t| keyed(o, t)[1])
                    .collect();
                prop_assert_eq!(b.rows, rows);
                prop_assert_eq!(b.distinct2, d2.len());
            }
        }
    }

    /// The distinct-count sketch honors its advertised bound across a
    /// wide cardinality range, not just tiny stores: within 10%
    /// relative error below half its bitmap saturation.
    #[test]
    fn distinct_sketch_tracks_cardinality_within_ten_percent(
        n in 1usize..2000,
        salt in 0u64..1000,
    ) {
        let mut sk = DistinctSketch::default();
        for i in 0..n {
            sk.insert(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ i as u64);
        }
        let est = sk.estimate();
        prop_assert!(
            (est - n as f64).abs() <= (n as f64 * 0.10).max(2.0),
            "estimate {} for {} distinct values", est, n
        );
    }

    /// Sketch-driven plans always pass the exact verification gate and
    /// reproduce the greedy planner's answers as a multiset.
    #[test]
    fn sketch_plans_verify_and_match_greedy_answers(
        triples in proptest::collection::vec((0..TERMS, 0..TERMS, 0..TERMS), 0..40),
        patterns in proptest::collection::vec(pattern(), 1..6),
    ) {
        let (st, bgp) = setup(&triples, &patterns);
        let sk = StoreSketch::build(&st);
        let sp = lftj::plan_sketched(&st, &sk, &bgp);
        prop_assert!(lftj::verify_plan(&st, &bgp, &sp.plan).is_ok());
        let (best, sketched, _) = lftj::plan_best(&st, &sk, &bgp);
        prop_assert!(sketched, "verified sketch plan must be the chosen plan");
        let a = canon(lftj::solve_planned(&st, &bgp, &best, 1).bindings());
        let b = canon(lftj::solve(&st, &bgp).bindings());
        prop_assert_eq!(a, b);
    }

    /// The approximate counter's (ε, δ) contract, exercised on the
    /// exact rung: every count reachable at this store size sits at or
    /// below the pivot, where the contract requires the *exact* value,
    /// complete and not degraded — across seeds.
    #[test]
    fn approx_count_is_exact_at_or_below_the_pivot(
        triples in proptest::collection::vec((0..TERMS, 0..TERMS, 0..TERMS), 0..40),
        patterns in proptest::collection::vec(pattern(), 1..5),
        seed in 0u64..u64::MAX,
    ) {
        let (st, bgp) = setup(&triples, &patterns);
        let exact = lftj::count(&st, &bgp);
        let sk = StoreSketch::build(&st);
        let params = BgpCountParams { seed, ..BgpCountParams::default() };
        if exact <= params.pivot() {
            let got = approx_count_bgp(&st, &sk, &bgp, params).unwrap();
            prop_assert_eq!(got.value, exact);
            prop_assert!(!got.degraded);
            prop_assert!(matches!(got.completion, Completion::Complete));
        }
    }

    /// `SELECT (COUNT(*) AS ?n)` answers with the same single row no
    /// matter how the underlying enumeration would have partitioned,
    /// and the value equals the engine's row count at chunks 1, 2, 4.
    #[test]
    fn count_output_shape_is_chunk_independent(
        triples in proptest::collection::vec((0..TERMS, 0..TERMS, 0..TERMS), 0..40),
        patterns in proptest::collection::vec(pattern(), 1..5),
    ) {
        let (mut st, bgp) = setup(&triples, &patterns);
        let mut text = String::from("SELECT (COUNT(*) AS ?n) WHERE {");
        for p in &bgp.patterns {
            let t = |tp: &kgq_rdf::TermPattern| match tp {
                kgq_rdf::TermPattern::Const(s) => format!("<{}>", st.term_str(*s)),
                kgq_rdf::TermPattern::Var(v) => format!("?{v}"),
            };
            text.push_str(&format!(" {} {} {} .", t(&p.s), t(&p.p), t(&p.o)));
        }
        text.push_str(" }");
        let rows = select(&mut st, &text).unwrap();
        for chunks in [1usize, 2, 4] {
            let n = lftj::solve_partitioned(&st, &bgp, chunks).rows.len();
            prop_assert_eq!(&rows, &vec![vec![n.to_string()]], "chunks = {}", chunks);
        }
    }
}
