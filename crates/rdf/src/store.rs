//! The triple store.
//!
//! An RDF graph is "a set of triples `(s, p, o)` such that
//! `s, p, o ∈ Const`" (paper, §3). Terms are interned strings; the store
//! keeps three clustered B-tree indexes (SPO, POS, OSP) so that any
//! single triple pattern is answered by a range scan on the index whose
//! prefix covers the bound positions.

use kgq_graph::{Interner, Sym};
use std::collections::BTreeSet;
use std::ops::Bound;

/// A triple `(subject, predicate, object)` of interned terms.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Triple {
    /// Subject.
    pub s: Sym,
    /// Predicate.
    pub p: Sym,
    /// Object.
    pub o: Sym,
}

/// An RDF graph with SPO/POS/OSP indexes.
#[derive(Clone, Debug, Default)]
pub struct TripleStore {
    terms: Interner,
    spo: BTreeSet<(Sym, Sym, Sym)>,
    pos: BTreeSet<(Sym, Sym, Sym)>,
    osp: BTreeSet<(Sym, Sym, Sym)>,
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TripleStore {
            terms: Interner::new(),
            ..TripleStore::default()
        }
    }

    /// Interns a term.
    pub fn term(&mut self, s: &str) -> Sym {
        self.terms.intern(s)
    }

    /// Looks up a term without interning.
    pub fn get_term(&self, s: &str) -> Option<Sym> {
        self.terms.get(s)
    }

    /// Resolves a term to its string.
    pub fn term_str(&self, s: Sym) -> &str {
        self.terms.resolve(s)
    }

    /// The term universe.
    pub fn terms(&self) -> &Interner {
        &self.terms
    }

    /// Inserts a triple of already-interned terms. Returns `false` if it
    /// was already present (RDF graphs are sets).
    pub fn insert(&mut self, t: Triple) -> bool {
        let fresh = self.spo.insert((t.s, t.p, t.o));
        if fresh {
            self.pos.insert((t.p, t.o, t.s));
            self.osp.insert((t.o, t.s, t.p));
        }
        fresh
    }

    /// Convenience: intern three strings and insert.
    pub fn insert_strs(&mut self, s: &str, p: &str, o: &str) -> bool {
        let t = Triple {
            s: self.term(s),
            p: self.term(p),
            o: self.term(o),
        };
        self.insert(t)
    }

    /// Removes a triple. Returns `true` if it was present.
    pub fn remove(&mut self, t: Triple) -> bool {
        let was = self.spo.remove(&(t.s, t.p, t.o));
        if was {
            self.pos.remove(&(t.p, t.o, t.s));
            self.osp.remove(&(t.o, t.s, t.p));
        }
        was
    }

    /// Membership test.
    pub fn contains(&self, t: Triple) -> bool {
        self.spo.contains(&(t.s, t.p, t.o))
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True if the graph has no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// All triples matching a pattern with optionally bound positions,
    /// using the best index for the bound prefix:
    ///
    /// | bound            | index | cost               |
    /// |------------------|-------|--------------------|
    /// | s, s+p, s+p+o    | SPO   | range scan         |
    /// | p, p+o           | POS   | range scan         |
    /// | o, o+s           | OSP   | range scan         |
    /// | none             | SPO   | full scan          |
    /// | s+o              | OSP   | range scan + filter|
    pub fn scan(
        &self,
        s: Option<Sym>,
        p: Option<Sym>,
        o: Option<Sym>,
    ) -> Box<dyn Iterator<Item = Triple> + '_> {
        const MIN: Sym = Sym(0);
        const MAX: Sym = Sym(u32::MAX);
        fn range3(
            set: &BTreeSet<(Sym, Sym, Sym)>,
            a: Option<Sym>,
            b: Option<Sym>,
            c: Option<Sym>,
        ) -> impl Iterator<Item = (Sym, Sym, Sym)> + '_ {
            let lo = (
                a.unwrap_or(MIN),
                if a.is_some() { b.unwrap_or(MIN) } else { MIN },
                if a.is_some() && b.is_some() {
                    c.unwrap_or(MIN)
                } else {
                    MIN
                },
            );
            let hi = (
                a.unwrap_or(MAX),
                if a.is_some() { b.unwrap_or(MAX) } else { MAX },
                if a.is_some() && b.is_some() {
                    c.unwrap_or(MAX)
                } else {
                    MAX
                },
            );
            set.range((Bound::Included(lo), Bound::Included(hi)))
                .copied()
        }
        match (s, p, o) {
            // s + o bound (p free): OSP covers (o, s).
            (Some(_), None, Some(_)) => {
                Box::new(range3(&self.osp, o, s, None).map(|(o, s, p)| Triple { s, p, o }))
            }
            // Any other s-bound combination: SPO prefix.
            (Some(_), _, _) => {
                Box::new(range3(&self.spo, s, p, o).map(|(s, p, o)| Triple { s, p, o }))
            }
            // p (+ o) bound: POS.
            (None, Some(_), _) => {
                Box::new(range3(&self.pos, p, o, None).map(|(p, o, s)| Triple { s, p, o }))
            }
            // o bound only: OSP.
            (None, None, Some(_)) => {
                Box::new(range3(&self.osp, o, None, None).map(|(o, s, p)| Triple { s, p, o }))
            }
            // Nothing bound: full scan.
            (None, None, None) => Box::new(self.spo.iter().map(|&(s, p, o)| Triple { s, p, o })),
        }
    }

    /// Count of matches for a pattern (consumes the scan).
    pub fn count(&self, s: Option<Sym>, p: Option<Sym>, o: Option<Sym>) -> usize {
        self.scan(s, p, o).count()
    }

    /// Iterates over all triples.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(|&(s, p, o)| Triple { s, p, o })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TripleStore {
        let mut st = TripleStore::new();
        st.insert_strs("alice", "knows", "bob");
        st.insert_strs("alice", "knows", "carol");
        st.insert_strs("bob", "knows", "carol");
        st.insert_strs("alice", "type", "Person");
        st.insert_strs("bob", "type", "Person");
        st.insert_strs("b7", "type", "Bus");
        st
    }

    #[test]
    fn set_semantics() {
        let mut st = sample();
        assert_eq!(st.len(), 6);
        assert!(!st.insert_strs("alice", "knows", "bob"));
        assert_eq!(st.len(), 6);
        let t = Triple {
            s: st.term("alice"),
            p: st.term("knows"),
            o: st.term("bob"),
        };
        assert!(st.contains(t));
        assert!(st.remove(t));
        assert!(!st.contains(t));
        assert_eq!(st.len(), 5);
        assert!(!st.remove(t));
    }

    #[test]
    fn scans_by_every_bound_combination() {
        let st = sample();
        let alice = st.get_term("alice").unwrap();
        let knows = st.get_term("knows").unwrap();
        let carol = st.get_term("carol").unwrap();
        let person = st.get_term("Person").unwrap();
        let ty = st.get_term("type").unwrap();

        assert_eq!(st.count(Some(alice), None, None), 3);
        assert_eq!(st.count(Some(alice), Some(knows), None), 2);
        assert_eq!(st.count(Some(alice), Some(knows), Some(carol)), 1);
        assert_eq!(st.count(None, Some(knows), None), 3);
        assert_eq!(st.count(None, Some(ty), Some(person)), 2);
        assert_eq!(st.count(None, None, Some(carol)), 2);
        assert_eq!(st.count(Some(alice), None, Some(carol)), 1);
        assert_eq!(st.count(None, None, None), 6);
    }

    #[test]
    fn scan_results_match_filter_semantics() {
        let st = sample();
        let knows = st.get_term("knows").unwrap();
        let expected: Vec<Triple> = st.iter().filter(|t| t.p == knows).collect();
        let mut got: Vec<Triple> = st.scan(None, Some(knows), None).collect();
        got.sort();
        let mut expected = expected;
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_pattern_on_empty_store() {
        let st = TripleStore::new();
        assert!(st.is_empty());
        assert_eq!(st.count(None, None, None), 0);
    }

    #[test]
    fn universal_interpretation_of_terms() {
        // Interning the same string twice yields the same term — the
        // paper's "universal interpretation" of constants.
        let mut st = TripleStore::new();
        let a1 = st.term("http://ex.org/alice");
        let a2 = st.term("http://ex.org/alice");
        assert_eq!(a1, a2);
    }
}
