//! The triple store.
//!
//! An RDF graph is "a set of triples `(s, p, o)` such that
//! `s, p, o ∈ Const`" (paper, §3). Terms are interned strings; the store
//! keeps **all six** clustered orderings of the triple positions —
//! SPO, POS, OSP, SOP, PSO, OPS — as sorted arrays, so that
//!
//! * any single triple pattern is answered by a binary-searched range
//!   scan on an ordering whose prefix covers the bound positions (no
//!   post-filtering for any bound combination), and
//! * every triple pattern exposes a *trie iterator* for **any** variable
//!   order, which is exactly what the leapfrog-triejoin engine
//!   ([`crate::lftj`]) needs to pick a global variable elimination order
//!   freely.
//!
//! Sorted arrays beat B-trees here: lookups are two `partition_point`
//! calls, range scans are contiguous slices, and prefix cardinalities
//! (the planner's cost estimates) are exact subtractions of two binary
//! searches. Point inserts splice into all six orderings (O(n) memmove
//! each — fine for incremental use); bulk loads go through
//! [`TripleStore::extend`], which appends and re-sorts once (O(n log n)).

use kgq_graph::{Interner, Sym};
use std::ops::Range;

/// A triple `(subject, predicate, object)` of interned terms.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Triple {
    /// Subject.
    pub s: Sym,
    /// Predicate.
    pub p: Sym,
    /// Object.
    pub o: Sym,
}

impl Triple {
    /// Position accessor: 0 = subject, 1 = predicate, 2 = object.
    #[inline]
    pub fn position(&self, i: usize) -> Sym {
        match i {
            0 => self.s,
            1 => self.p,
            _ => self.o,
        }
    }
}

/// One of the six clustered orderings of the triple positions.
///
/// The name spells the key column order: [`IndexOrder::Pos`] keys rows
/// as `(predicate, object, subject)`. Between them the six orderings
/// cover every bound-prefix combination and every variable order a trie
/// iterator can ask for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IndexOrder {
    /// subject, predicate, object.
    Spo,
    /// predicate, object, subject.
    Pos,
    /// object, subject, predicate.
    Osp,
    /// subject, object, predicate.
    Sop,
    /// predicate, subject, object.
    Pso,
    /// object, predicate, subject.
    Ops,
}

impl IndexOrder {
    /// All six orderings, [`IndexOrder::Spo`] first.
    pub const ALL: [IndexOrder; 6] = [
        IndexOrder::Spo,
        IndexOrder::Pos,
        IndexOrder::Osp,
        IndexOrder::Sop,
        IndexOrder::Pso,
        IndexOrder::Ops,
    ];

    /// `perm()[i]` is the triple position (0 = s, 1 = p, 2 = o) stored
    /// in key column `i`.
    #[inline]
    pub fn perm(self) -> [usize; 3] {
        match self {
            IndexOrder::Spo => [0, 1, 2],
            IndexOrder::Pos => [1, 2, 0],
            IndexOrder::Osp => [2, 0, 1],
            IndexOrder::Sop => [0, 2, 1],
            IndexOrder::Pso => [1, 0, 2],
            IndexOrder::Ops => [2, 1, 0],
        }
    }

    /// The ordering whose key columns are exactly `perm` (a permutation
    /// of `[0, 1, 2]` naming triple positions).
    pub fn from_perm(perm: [usize; 3]) -> IndexOrder {
        match perm {
            [0, 1, 2] => IndexOrder::Spo,
            [1, 2, 0] => IndexOrder::Pos,
            [2, 0, 1] => IndexOrder::Osp,
            [0, 2, 1] => IndexOrder::Sop,
            [1, 0, 2] => IndexOrder::Pso,
            _ => IndexOrder::Ops,
        }
    }

    /// Display name (`"spo"`, `"pos"`, …).
    pub fn name(self) -> &'static str {
        match self {
            IndexOrder::Spo => "spo",
            IndexOrder::Pos => "pos",
            IndexOrder::Osp => "osp",
            IndexOrder::Sop => "sop",
            IndexOrder::Pso => "pso",
            IndexOrder::Ops => "ops",
        }
    }

    /// Index of this ordering in [`IndexOrder::ALL`].
    #[inline]
    fn slot(self) -> usize {
        match self {
            IndexOrder::Spo => 0,
            IndexOrder::Pos => 1,
            IndexOrder::Osp => 2,
            IndexOrder::Sop => 3,
            IndexOrder::Pso => 4,
            IndexOrder::Ops => 5,
        }
    }

    /// Permutes a triple into this ordering's key layout.
    #[inline]
    pub fn key(self, t: Triple) -> [Sym; 3] {
        let p = self.perm();
        [t.position(p[0]), t.position(p[1]), t.position(p[2])]
    }

    /// Recovers the triple from one of this ordering's keys.
    #[inline]
    pub fn triple(self, key: [Sym; 3]) -> Triple {
        let p = self.perm();
        let mut pos = [Sym(0); 3];
        pos[p[0]] = key[0];
        pos[p[1]] = key[1];
        pos[p[2]] = key[2];
        Triple {
            s: pos[0],
            p: pos[1],
            o: pos[2],
        }
    }
}

/// An RDF graph with all six sorted orderings as indexes.
#[derive(Clone, Debug, Default)]
pub struct TripleStore {
    terms: Interner,
    /// `orders[i]` holds every triple permuted into
    /// `IndexOrder::ALL[i]`'s key layout, sorted ascending, deduped.
    /// All six hold the same triple set.
    orders: [Vec<[Sym; 3]>; 6],
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TripleStore {
            terms: Interner::new(),
            ..TripleStore::default()
        }
    }

    /// Interns a term.
    pub fn term(&mut self, s: &str) -> Sym {
        self.terms.intern(s)
    }

    /// Looks up a term without interning.
    pub fn get_term(&self, s: &str) -> Option<Sym> {
        self.terms.get(s)
    }

    /// Resolves a term to its string.
    pub fn term_str(&self, s: Sym) -> &str {
        self.terms.resolve(s)
    }

    /// The term universe.
    pub fn terms(&self) -> &Interner {
        &self.terms
    }

    /// The sorted key rows of one ordering. Rows are `[Sym; 3]` in the
    /// ordering's column layout; the slice is sorted ascending with no
    /// duplicates. This is the raw surface the trie iterators walk.
    #[inline]
    pub fn order(&self, o: IndexOrder) -> &[[Sym; 3]] {
        &self.orders[o.slot()]
    }

    /// Inserts a triple of already-interned terms. Returns `false` if it
    /// was already present (RDF graphs are sets). Presence is decided by
    /// one binary search; a fresh triple is spliced into all six
    /// orderings so they never disagree.
    pub fn insert(&mut self, t: Triple) -> bool {
        let spo_key = IndexOrder::Spo.key(t);
        if self.orders[0].binary_search(&spo_key).is_ok() {
            return false;
        }
        for (slot, ord) in IndexOrder::ALL.iter().enumerate() {
            let key = ord.key(t);
            if let Err(i) = self.orders[slot].binary_search(&key) {
                self.orders[slot].insert(i, key);
            }
        }
        true
    }

    /// Convenience: intern three strings and insert.
    pub fn insert_strs(&mut self, s: &str, p: &str, o: &str) -> bool {
        let t = Triple {
            s: self.term(s),
            p: self.term(p),
            o: self.term(o),
        };
        self.insert(t)
    }

    /// Bulk insert: sorts the batch once per ordering (O(b log b)) and
    /// merges it into the existing sorted run with one backward pass
    /// (O(b log n) membership probes + O(n + b) moves) — the base is
    /// never re-sorted, so a big store absorbs a small batch without
    /// paying O((n + b) log (n + b)). Returns how many triples were
    /// actually new.
    pub fn extend(&mut self, triples: impl IntoIterator<Item = Triple>) -> usize {
        let before = self.orders[0].len();
        let batch: Vec<Triple> = triples.into_iter().collect();
        if batch.is_empty() {
            return 0;
        }
        let mut keys: Vec<[Sym; 3]> = Vec::with_capacity(batch.len());
        for (slot, ord) in IndexOrder::ALL.iter().enumerate() {
            keys.clear();
            keys.extend(batch.iter().map(|&t| ord.key(t)));
            keys.sort_unstable();
            keys.dedup();
            merge_into_sorted(&mut self.orders[slot], &keys);
        }
        self.orders[0].len() - before
    }

    /// Removes a triple. Returns `true` if it was present. Removal binary
    /// searches each ordering, so the six stay consistent.
    pub fn remove(&mut self, t: Triple) -> bool {
        let spo_key = IndexOrder::Spo.key(t);
        if self.orders[0].binary_search(&spo_key).is_err() {
            return false;
        }
        for (slot, ord) in IndexOrder::ALL.iter().enumerate() {
            let key = ord.key(t);
            if let Ok(i) = self.orders[slot].binary_search(&key) {
                self.orders[slot].remove(i);
            }
        }
        true
    }

    /// Membership test — one binary search on the SPO ordering.
    pub fn contains(&self, t: Triple) -> bool {
        self.orders[0]
            .binary_search(&IndexOrder::Spo.key(t))
            .is_ok()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.orders[0].len()
    }

    /// True if the graph has no triples.
    pub fn is_empty(&self) -> bool {
        self.orders[0].is_empty()
    }

    /// The contiguous row range of `order` whose keys start with
    /// `prefix` (at most 3 values). Two `partition_point`s.
    pub fn prefix_range(&self, order: IndexOrder, prefix: &[Sym]) -> Range<usize> {
        let rows = self.order(order);
        let k = prefix.len().min(3);
        let lo = rows.partition_point(|row| row[..k] < prefix[..k]);
        let hi = rows.partition_point(|row| row[..k] <= prefix[..k]);
        lo..hi
    }

    /// Exact number of triples whose `order`-key starts with `prefix` —
    /// the planner's cardinality estimate, exact for any bound prefix.
    pub fn prefix_count(&self, order: IndexOrder, prefix: &[Sym]) -> usize {
        self.prefix_range(order, prefix).len()
    }

    /// The ordering whose key prefix covers exactly the bound positions
    /// of a `(s?, p?, o?)` pattern, and the bound prefix values in that
    /// ordering's column order.
    fn covering(s: Option<Sym>, p: Option<Sym>, o: Option<Sym>) -> (IndexOrder, Vec<Sym>) {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => (IndexOrder::Spo, vec![s, p, o]),
            (Some(s), Some(p), None) => (IndexOrder::Spo, vec![s, p]),
            (Some(s), None, Some(o)) => (IndexOrder::Sop, vec![s, o]),
            (None, Some(p), Some(o)) => (IndexOrder::Pos, vec![p, o]),
            (Some(s), None, None) => (IndexOrder::Spo, vec![s]),
            (None, Some(p), None) => (IndexOrder::Pos, vec![p]),
            (None, None, Some(o)) => (IndexOrder::Osp, vec![o]),
            (None, None, None) => (IndexOrder::Spo, Vec::new()),
        }
    }

    /// All triples matching a pattern with optionally bound positions.
    /// With six orderings every bound combination is a pure range scan
    /// on a covering prefix — no post-filtering anywhere:
    ///
    /// | bound            | index | bound   | index |
    /// |------------------|-------|---------|-------|
    /// | s, s+p, s+p+o    | SPO   | p, p+o  | POS   |
    /// | s+o              | SOP   | o       | OSP   |
    /// | none             | SPO   |         |       |
    pub fn scan(
        &self,
        s: Option<Sym>,
        p: Option<Sym>,
        o: Option<Sym>,
    ) -> impl Iterator<Item = Triple> + '_ {
        let (order, prefix) = Self::covering(s, p, o);
        let range = self.prefix_range(order, &prefix);
        self.order(order)[range]
            .iter()
            .map(move |&key| order.triple(key))
    }

    /// Count of matches for a pattern — pure binary search, no scan.
    pub fn count(&self, s: Option<Sym>, p: Option<Sym>, o: Option<Sym>) -> usize {
        let (order, prefix) = Self::covering(s, p, o);
        self.prefix_count(order, &prefix)
    }

    /// Iterates over all triples in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.orders[0].iter().map(|&[s, p, o]| Triple { s, p, o })
    }
}

/// Merges sorted, deduped `new` keys into the sorted, deduped `rows`,
/// dropping keys already present. Membership is decided by galloping
/// `partition_point` probes from a monotone cursor (O(b log n)); the
/// surviving keys are then woven in with a single backward two-pointer
/// pass over one `resize`d allocation, so no element moves twice.
fn merge_into_sorted(rows: &mut Vec<[Sym; 3]>, new: &[[Sym; 3]]) {
    let mut fresh: Vec<[Sym; 3]> = Vec::with_capacity(new.len());
    let mut cursor = 0usize;
    for &k in new {
        cursor += rows[cursor..].partition_point(|r| *r < k);
        if cursor >= rows.len() || rows[cursor] != k {
            fresh.push(k);
        }
    }
    if fresh.is_empty() {
        return;
    }
    let old = rows.len();
    rows.resize(old + fresh.len(), fresh[0]);
    let (mut i, mut j, mut w) = (old, fresh.len(), old + fresh.len());
    while j > 0 {
        if i > 0 && rows[i - 1] > fresh[j - 1] {
            rows[w - 1] = rows[i - 1];
            i -= 1;
        } else {
            rows[w - 1] = fresh[j - 1];
            j -= 1;
        }
        w -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TripleStore {
        let mut st = TripleStore::new();
        st.insert_strs("alice", "knows", "bob");
        st.insert_strs("alice", "knows", "carol");
        st.insert_strs("bob", "knows", "carol");
        st.insert_strs("alice", "type", "Person");
        st.insert_strs("bob", "type", "Person");
        st.insert_strs("b7", "type", "Bus");
        st
    }

    #[test]
    fn set_semantics() {
        let mut st = sample();
        assert_eq!(st.len(), 6);
        assert!(!st.insert_strs("alice", "knows", "bob"));
        assert_eq!(st.len(), 6);
        let t = Triple {
            s: st.term("alice"),
            p: st.term("knows"),
            o: st.term("bob"),
        };
        assert!(st.contains(t));
        assert!(st.remove(t));
        assert!(!st.contains(t));
        assert_eq!(st.len(), 5);
        assert!(!st.remove(t));
    }

    #[test]
    fn scans_by_every_bound_combination() {
        let st = sample();
        let alice = st.get_term("alice").unwrap();
        let knows = st.get_term("knows").unwrap();
        let carol = st.get_term("carol").unwrap();
        let person = st.get_term("Person").unwrap();
        let ty = st.get_term("type").unwrap();

        assert_eq!(st.count(Some(alice), None, None), 3);
        assert_eq!(st.count(Some(alice), Some(knows), None), 2);
        assert_eq!(st.count(Some(alice), Some(knows), Some(carol)), 1);
        assert_eq!(st.count(None, Some(knows), None), 3);
        assert_eq!(st.count(None, Some(ty), Some(person)), 2);
        assert_eq!(st.count(None, None, Some(carol)), 2);
        assert_eq!(st.count(Some(alice), None, Some(carol)), 1);
        assert_eq!(st.count(None, None, None), 6);
    }

    #[test]
    fn scan_results_match_filter_semantics() {
        let st = sample();
        let knows = st.get_term("knows").unwrap();
        let expected: Vec<Triple> = st.iter().filter(|t| t.p == knows).collect();
        let mut got: Vec<Triple> = st.scan(None, Some(knows), None).collect();
        got.sort();
        let mut expected = expected;
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_pattern_on_empty_store() {
        let st = TripleStore::new();
        assert!(st.is_empty());
        assert_eq!(st.count(None, None, None), 0);
    }

    #[test]
    fn universal_interpretation_of_terms() {
        // Interning the same string twice yields the same term — the
        // paper's "universal interpretation" of constants.
        let mut st = TripleStore::new();
        let a1 = st.term("http://ex.org/alice");
        let a2 = st.term("http://ex.org/alice");
        assert_eq!(a1, a2);
    }

    #[test]
    fn six_orderings_stay_consistent() {
        let mut st = sample();
        let t = Triple {
            s: st.term("carol"),
            p: st.term("knows"),
            o: st.term("alice"),
        };
        st.insert(t);
        st.remove(Triple {
            s: st.get_term("alice").unwrap(),
            p: st.get_term("type").unwrap(),
            o: st.get_term("Person").unwrap(),
        });
        let spo: Vec<Triple> = st.iter().collect();
        for ord in IndexOrder::ALL {
            let mut via: Vec<Triple> = st.order(ord).iter().map(|&k| ord.triple(k)).collect();
            via.sort();
            let mut want = spo.clone();
            want.sort();
            assert_eq!(via, want, "ordering {} diverged", ord.name());
            assert!(st.order(ord).windows(2).all(|w| w[0] < w[1]), "unsorted");
        }
    }

    #[test]
    fn bulk_extend_matches_point_inserts() {
        let mut a = TripleStore::new();
        let mut b = TripleStore::new();
        let triples = [
            ("x", "p", "y"),
            ("y", "p", "z"),
            ("x", "p", "y"), // duplicate inside the batch
            ("z", "q", "x"),
        ];
        for (s, p, o) in triples {
            a.insert_strs(s, p, o);
        }
        let batch: Vec<Triple> = triples
            .iter()
            .map(|(s, p, o)| Triple {
                s: b.term(s),
                p: b.term(p),
                o: b.term(o),
            })
            .collect();
        let added = b.extend(batch);
        assert_eq!(added, 3);
        assert_eq!(a.len(), b.len());
        let left: Vec<Triple> = a.iter().collect();
        let right: Vec<Triple> = b.iter().collect();
        assert_eq!(left, right);
    }

    #[test]
    fn prefix_counts_are_exact() {
        let st = sample();
        let knows = st.get_term("knows").unwrap();
        let alice = st.get_term("alice").unwrap();
        assert_eq!(st.prefix_count(IndexOrder::Pos, &[knows]), 3);
        assert_eq!(st.prefix_count(IndexOrder::Spo, &[alice, knows]), 2);
        assert_eq!(st.prefix_count(IndexOrder::Spo, &[]), 6);
        let ghost = Sym(u32::MAX);
        assert_eq!(st.prefix_count(IndexOrder::Pos, &[ghost]), 0);
    }

    #[test]
    fn index_order_round_trips() {
        let t = Triple {
            s: Sym(3),
            p: Sym(5),
            o: Sym(7),
        };
        for ord in IndexOrder::ALL {
            assert_eq!(ord.triple(ord.key(t)), t);
            assert_eq!(IndexOrder::from_perm(ord.perm()), ord);
        }
    }
}
