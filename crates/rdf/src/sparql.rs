//! A SPARQL-flavored `SELECT` front-end for basic graph patterns.
//!
//! The paper points to SPARQL \[38\] as "the" declarative language for
//! RDF. This module parses the conjunctive core:
//!
//! ```text
//! SELECT ?p ?b WHERE { ?p <rides> ?b . ?p a <person> . ?b a <bus> }
//! ```
//!
//! * variables are `?name`;
//! * IRIs are `<...>`; literals are `"..."`;
//! * `a` abbreviates `rdf:type` as in SPARQL/Turtle;
//! * triple patterns are separated by `.` (trailing dot optional);
//! * `SELECT *` projects every variable in order of first appearance.
//!
//! Evaluation runs the static checks of [`crate::analyze`] (a provably
//! empty pattern short-circuits before planning), then the leapfrog
//! triejoin of [`crate::lftj`]; [`explain_select`] surfaces the
//! diagnostics and the chosen plan, and [`select_governed`] threads the
//! `kgq-core` governance contract through evaluation.

use crate::analyze::analyze_bgp;
use crate::bgp::{Bgp, TermPattern, TriplePattern};
use crate::convert::RDF_TYPE;
use crate::store::TripleStore;
use kgq_core::govern::{EvalError, Governed, Governor};
use std::fmt;

/// Parse error for SELECT queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparqlParseError {
    /// Byte offset.
    pub pos: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SparqlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SELECT parse error at byte {}: {}",
            self.pos, self.message
        )
    }
}

impl std::error::Error for SparqlParseError {}

/// A parsed SELECT query.
#[derive(Clone, Debug)]
pub struct SelectQuery {
    /// Projection list (resolved, never `*`).
    pub vars: Vec<String>,
    /// The WHERE pattern.
    pub pattern: Bgp,
}

struct P<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, message: &str) -> Result<T, SparqlParseError> {
        Err(SparqlParseError {
            pos: self.pos,
            message: message.to_owned(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            let boundary = rest[kw.len()..]
                .chars()
                .next()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_');
            if boundary {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn variable(&mut self) -> Result<String, SparqlParseError> {
        if !self.eat("?") {
            return self.err("expected `?variable`");
        }
        let rest = &self.src[self.pos..];
        let len = rest
            .char_indices()
            .take_while(|&(i, c)| {
                if i == 0 {
                    c.is_alphabetic() || c == '_'
                } else {
                    c.is_alphanumeric() || c == '_'
                }
            })
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        if len == 0 {
            return self.err("empty variable name");
        }
        let name = rest[..len].to_owned();
        self.pos += len;
        Ok(name)
    }

    /// A term pattern position: variable, `<iri>`, `"literal"`, or `a`.
    fn term(
        &mut self,
        st: &mut TripleStore,
        predicate_position: bool,
    ) -> Result<TermPattern, SparqlParseError> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if rest.starts_with('?') {
            return Ok(TermPattern::Var(self.variable()?));
        }
        if rest.starts_with('<') {
            let end = rest.find('>').ok_or_else(|| SparqlParseError {
                pos: self.pos,
                message: "unterminated IRI".to_owned(),
            })?;
            let iri = rest[1..end].to_owned();
            self.pos += end + 1;
            return Ok(TermPattern::Const(st.term(&iri)));
        }
        if let Some(body) = rest.strip_prefix('"') {
            let end = body.find('"').ok_or_else(|| SparqlParseError {
                pos: self.pos,
                message: "unterminated literal".to_owned(),
            })?;
            let lit = format!("\"{}\"", &body[..end]);
            self.pos += end + 2;
            return Ok(TermPattern::Const(st.term(&lit)));
        }
        if predicate_position && self.eat_keyword("a") {
            return Ok(TermPattern::Const(st.term(RDF_TYPE)));
        }
        self.err("expected a variable, `<iri>`, `\"literal\"` or `a`")
    }
}

/// Parses a SELECT query, interning constants into `st`.
pub fn parse_select(input: &str, st: &mut TripleStore) -> Result<SelectQuery, SparqlParseError> {
    let mut p = P { src: input, pos: 0 };
    if !p.eat_keyword("SELECT") {
        return p.err("query must start with SELECT");
    }
    let mut vars = Vec::new();
    let star = p.eat("*");
    if !star {
        loop {
            p.skip_ws();
            if p.src[p.pos..].starts_with('?') {
                let v = p.variable()?;
                if !vars.contains(&v) {
                    vars.push(v);
                }
            } else {
                break;
            }
        }
        if vars.is_empty() {
            return p.err("SELECT needs at least one variable or `*`");
        }
    }
    if !p.eat_keyword("WHERE") {
        return p.err("expected WHERE");
    }
    if !p.eat("{") {
        return p.err("expected `{`");
    }
    let mut pattern = Bgp::new();
    let mut seen_vars: Vec<String> = Vec::new();
    loop {
        p.skip_ws();
        if p.eat("}") {
            break;
        }
        let s = p.term(st, false)?;
        let pred = p.term(st, true)?;
        let o = p.term(st, false)?;
        for t in [&s, &pred, &o] {
            if let TermPattern::Var(v) = t {
                if !seen_vars.contains(v) {
                    seen_vars.push(v.clone());
                }
            }
        }
        pattern.patterns.push(TriplePattern { s, p: pred, o });
        // `.` separates patterns; also allowed before `}`.
        let _ = p.eat(".");
    }
    if pattern.patterns.is_empty() {
        return p.err("WHERE block has no triple patterns");
    }
    p.skip_ws();
    if p.pos != input.len() {
        return p.err("trailing input");
    }
    let vars = if star { seen_vars.clone() } else { vars };
    // Projected variables must occur in the pattern.
    for v in &vars {
        if !seen_vars.contains(v) {
            return Err(SparqlParseError {
                pos: 0,
                message: format!("projected variable ?{v} not bound in WHERE"),
            });
        }
    }
    Ok(SelectQuery { vars, pattern })
}

/// Projects a join result onto the query's SELECT list, resolving terms
/// to strings, sorted and deduplicated for a deterministic row surface.
fn project(st: &TripleStore, q: &SelectQuery, sol: &crate::lftj::Solution) -> Vec<Vec<String>> {
    let idx: Vec<usize> = q
        .vars
        .iter()
        .map(|v| sol.vars.iter().position(|u| u == v).unwrap_or(0))
        .collect();
    let mut rows: Vec<Vec<String>> = sol
        .rows
        .iter()
        .map(|row| {
            idx.iter()
                .map(|&i| st.term_str(row[i]).to_owned())
                .collect()
        })
        .collect();
    rows.sort();
    rows.dedup();
    rows
}

/// Parses and evaluates a SELECT query, returning rows of term strings
/// in projection order, sorted for determinism. A provably empty
/// pattern (static analysis) short-circuits before planning.
pub fn select(st: &mut TripleStore, query: &str) -> Result<Vec<Vec<String>>, SparqlParseError> {
    let q = parse_select(query, st)?;
    if analyze_bgp(st, &q.pattern, Some(&q.vars)).provably_empty {
        return Ok(Vec::new());
    }
    let sol = crate::lftj::solve(st, &q.pattern);
    Ok(project(st, &q, &sol))
}

/// Evaluates an already-parsed SELECT query under a governor: batched
/// step accounting through every trie seek, panic-isolated workers, and
/// an exact-prefix `Partial` (of the unprojected binding set) on budget
/// exhaustion.
pub fn select_governed(
    st: &TripleStore,
    q: &SelectQuery,
    gov: &Governor,
) -> Result<Governed<Vec<Vec<String>>>, EvalError> {
    if analyze_bgp(st, &q.pattern, Some(&q.vars)).provably_empty {
        return Ok(Governed::complete(Vec::new()));
    }
    let governed = crate::lftj::solve_governed(st, &q.pattern, gov)?;
    Ok(Governed {
        value: project(st, q, &governed.value),
        completion: governed.completion,
        degraded: governed.degraded,
    })
}

/// Renders the static diagnostics and the join plan for a SELECT query —
/// the `kgq sparql --explain` surface. Shows the chosen variable
/// elimination order and per-pattern index orderings with exact
/// cardinalities; a denied (provably empty) query shows the
/// short-circuit instead of a plan.
pub fn explain_select(st: &mut TripleStore, query: &str) -> Result<String, SparqlParseError> {
    let q = parse_select(query, st)?;
    Ok(explain_parsed(st, &q).1)
}

/// [`explain_select`] for an already-parsed query: returns the analyzer
/// report alongside the rendered text, so callers (the `ANALYZE` server
/// verb, `kgq analyze`) can count verdicts without re-analyzing.
pub fn explain_parsed(st: &TripleStore, q: &SelectQuery) -> (crate::analyze::BgpReport, String) {
    let report = analyze_bgp(st, &q.pattern, Some(&q.vars));
    let mut out = String::from("== diagnostics ==\n");
    out.push_str(&report.render());
    out.push_str("== plan ==\n");
    if report.provably_empty {
        out.push_str("short-circuit: empty answer before planning\n");
    } else {
        let plan = crate::lftj::plan(st, &q.pattern);
        out.push_str(&plan.render(st, &q.pattern));
    }
    out.push_str("== verdict ==\n");
    out.push_str(&report.verdict.render());
    (report, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TripleStore {
        let mut st = TripleStore::new();
        st.insert_strs("julia", RDF_TYPE, "person");
        st.insert_strs("ana", RDF_TYPE, "person");
        st.insert_strs("b7", RDF_TYPE, "bus");
        st.insert_strs("julia", "rides", "b7");
        st.insert_strs("ana", "rides", "b7");
        st.insert_strs("julia", "name", "\"Julia\"");
        st
    }

    #[test]
    fn basic_select_with_type_abbreviation() {
        let mut st = sample();
        let rows = select(
            &mut st,
            "SELECT ?p WHERE { ?p <rides> ?b . ?p a <person> . ?b a <bus> }",
        )
        .unwrap();
        assert_eq!(rows, vec![vec!["ana"], vec!["julia"]]);
    }

    #[test]
    fn select_star_projects_in_first_appearance_order() {
        let mut st = sample();
        let q = parse_select("SELECT * WHERE { ?x <rides> ?y }", &mut st).unwrap();
        assert_eq!(q.vars, vec!["x", "y"]);
        let rows = select(&mut st, "SELECT * WHERE { ?x <rides> ?y }").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec!["ana", "b7"]);
    }

    #[test]
    fn literals_in_object_position() {
        let mut st = sample();
        let rows = select(&mut st, "SELECT ?p WHERE { ?p <name> \"Julia\" }").unwrap();
        assert_eq!(rows, vec![vec!["julia"]]);
    }

    #[test]
    fn multiline_and_trailing_dot() {
        let mut st = sample();
        let rows = select(
            &mut st,
            "SELECT ?p ?b WHERE {\n  ?p <rides> ?b .\n  ?p a <person> .\n}",
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 2);
    }

    #[test]
    fn errors_are_informative() {
        let mut st = sample();
        let e = select(&mut st, "ASK { ?x <p> ?y }").unwrap_err();
        assert!(e.message.contains("SELECT"));
        let e = select(&mut st, "SELECT ?x WHERE { }").unwrap_err();
        assert!(e.message.contains("no triple patterns"));
        let e = select(&mut st, "SELECT ?z WHERE { ?x <p> ?y }").unwrap_err();
        assert!(e.message.contains("not bound"));
        let e = select(&mut st, "SELECT ?x WHERE { ?x <p ?y }").unwrap_err();
        assert!(e.message.contains("unterminated IRI"));
        let e = select(&mut st, "SELECT ?x WHERE { ?x <p> ?y } garbage").unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn keyword_case_and_a_as_variable_name() {
        let mut st = sample();
        // `a` in subject/object position is NOT the type keyword.
        let rows = select(&mut st, "select ?a where { ?a a <bus> }").unwrap();
        assert_eq!(rows, vec![vec!["b7"]]);
    }

    #[test]
    fn unlimited_governed_select_matches_plain() {
        let mut st = sample();
        let query = "SELECT ?p ?b WHERE { ?p <rides> ?b . ?p a <person> }";
        let plain = select(&mut st, query).unwrap();
        let q = parse_select(query, &mut st).unwrap();
        let gov = Governor::unlimited();
        let governed = select_governed(&st, &q, &gov).unwrap();
        assert!(governed.completion.is_complete());
        assert_eq!(governed.value, plain);
    }

    #[test]
    fn explain_shows_diagnostics_and_plan() {
        let mut st = sample();
        let text =
            explain_select(&mut st, "SELECT ?p WHERE { ?p <rides> ?b . ?p a <person> }").unwrap();
        assert!(text.contains("== diagnostics =="), "{text}");
        assert!(text.contains("== plan =="), "{text}");
        assert!(text.contains("variable order:"), "{text}");
        assert!(text.contains("card"), "{text}");
        // The elimination order itself carries per-variable exact prefix
        // counts, and the complexity verdict closes the report.
        assert!(text.contains("(card "), "{text}");
        assert!(text.contains("== verdict =="), "{text}");
        assert!(text.contains("agm exponent"), "{text}");
        assert!(text.contains("acyclic"), "{text}");
    }

    #[test]
    fn provably_empty_select_short_circuits() {
        let mut st = sample();
        let rows = select(&mut st, "SELECT ?x WHERE { ?x <flies> ?y }").unwrap();
        assert!(rows.is_empty());
        let text = explain_select(&mut st, "SELECT ?x WHERE { ?x <flies> ?y }").unwrap();
        assert!(text.contains("short-circuit"), "{text}");
        assert!(text.contains("empty-pattern"), "{text}");
    }
}
