//! A SPARQL-flavored `SELECT` front-end for basic graph patterns.
//!
//! The paper points to SPARQL \[38\] as "the" declarative language for
//! RDF. This module parses the conjunctive core:
//!
//! ```text
//! SELECT ?p ?b WHERE { ?p <rides> ?b . ?p a <person> . ?b a <bus> }
//! ```
//!
//! * variables are `?name`;
//! * IRIs are `<...>`; literals are `"..."`;
//! * `a` abbreviates `rdf:type` as in SPARQL/Turtle;
//! * triple patterns are separated by `.` (trailing dot optional);
//! * `SELECT *` projects every variable in order of first appearance.
//!
//! Evaluation runs the static checks of [`crate::analyze`] (a provably
//! empty pattern short-circuits before planning), then the leapfrog
//! triejoin of [`crate::lftj`]; [`explain_select`] surfaces the
//! diagnostics and the chosen plan, and [`select_governed`] threads the
//! `kgq-core` governance contract through evaluation.

use crate::analyze::analyze_bgp;
use crate::bgp::{Bgp, TermPattern, TriplePattern};
use crate::convert::RDF_TYPE;
use crate::sketch::{approx_count_bgp_governed, BgpCountParams, StoreSketch};
use crate::store::TripleStore;
use kgq_core::govern::{Completion, EvalError, Governed, Governor};
use std::fmt;

/// Parse error for SELECT queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparqlParseError {
    /// Byte offset.
    pub pos: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SparqlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SELECT parse error at byte {}: {}",
            self.pos, self.message
        )
    }
}

impl std::error::Error for SparqlParseError {}

/// A parsed SELECT query.
#[derive(Clone, Debug)]
pub struct SelectQuery {
    /// Projection list (resolved, never `*`; empty for a COUNT query).
    pub vars: Vec<String>,
    /// The WHERE pattern.
    pub pattern: Bgp,
    /// `Some(name)` for `SELECT (COUNT(*) AS ?name)`: the query asks
    /// for the number of answers, not the answers themselves.
    pub count: Option<String>,
}

struct P<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, message: &str) -> Result<T, SparqlParseError> {
        Err(SparqlParseError {
            pos: self.pos,
            message: message.to_owned(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            let boundary = rest[kw.len()..]
                .chars()
                .next()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_');
            if boundary {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn variable(&mut self) -> Result<String, SparqlParseError> {
        if !self.eat("?") {
            return self.err("expected `?variable`");
        }
        let rest = &self.src[self.pos..];
        let len = rest
            .char_indices()
            .take_while(|&(i, c)| {
                if i == 0 {
                    c.is_alphabetic() || c == '_'
                } else {
                    c.is_alphanumeric() || c == '_'
                }
            })
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        if len == 0 {
            return self.err("empty variable name");
        }
        let name = rest[..len].to_owned();
        self.pos += len;
        Ok(name)
    }

    /// A term pattern position: variable, `<iri>`, `"literal"`, or `a`.
    fn term(
        &mut self,
        st: &mut TripleStore,
        predicate_position: bool,
    ) -> Result<TermPattern, SparqlParseError> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if rest.starts_with('?') {
            return Ok(TermPattern::Var(self.variable()?));
        }
        if rest.starts_with('<') {
            let end = rest.find('>').ok_or_else(|| SparqlParseError {
                pos: self.pos,
                message: "unterminated IRI".to_owned(),
            })?;
            let iri = rest[1..end].to_owned();
            self.pos += end + 1;
            return Ok(TermPattern::Const(st.term(&iri)));
        }
        if let Some(body) = rest.strip_prefix('"') {
            let end = body.find('"').ok_or_else(|| SparqlParseError {
                pos: self.pos,
                message: "unterminated literal".to_owned(),
            })?;
            let lit = format!("\"{}\"", &body[..end]);
            self.pos += end + 2;
            return Ok(TermPattern::Const(st.term(&lit)));
        }
        if predicate_position && self.eat_keyword("a") {
            return Ok(TermPattern::Const(st.term(RDF_TYPE)));
        }
        self.err("expected a variable, `<iri>`, `\"literal\"` or `a`")
    }
}

/// Parses a SELECT query, interning constants into `st`.
pub fn parse_select(input: &str, st: &mut TripleStore) -> Result<SelectQuery, SparqlParseError> {
    let mut p = P { src: input, pos: 0 };
    if !p.eat_keyword("SELECT") {
        return p.err("query must start with SELECT");
    }
    let mut vars = Vec::new();
    let mut count = None;
    let mut star = false;
    if p.eat("(") {
        // Aggregate projection: `(COUNT(*) AS ?name)`.
        if !p.eat_keyword("COUNT") {
            return p.err("expected COUNT in aggregate projection");
        }
        if !p.eat("(") || !p.eat("*") || !p.eat(")") {
            return p.err("expected `(*)` after COUNT");
        }
        if !p.eat_keyword("AS") {
            return p.err("expected AS in aggregate projection");
        }
        count = Some(p.variable()?);
        if !p.eat(")") {
            return p.err("expected `)` closing the aggregate projection");
        }
    } else {
        star = p.eat("*");
        if !star {
            loop {
                p.skip_ws();
                if p.src[p.pos..].starts_with('?') {
                    let v = p.variable()?;
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                } else {
                    break;
                }
            }
            if vars.is_empty() {
                return p.err("SELECT needs at least one variable, `*`, or COUNT(*)");
            }
        }
    }
    if !p.eat_keyword("WHERE") {
        return p.err("expected WHERE");
    }
    if !p.eat("{") {
        return p.err("expected `{`");
    }
    let mut pattern = Bgp::new();
    let mut seen_vars: Vec<String> = Vec::new();
    loop {
        p.skip_ws();
        if p.eat("}") {
            break;
        }
        let s = p.term(st, false)?;
        let pred = p.term(st, true)?;
        let o = p.term(st, false)?;
        for t in [&s, &pred, &o] {
            if let TermPattern::Var(v) = t {
                if !seen_vars.contains(v) {
                    seen_vars.push(v.clone());
                }
            }
        }
        pattern.patterns.push(TriplePattern { s, p: pred, o });
        // `.` separates patterns; also allowed before `}`.
        let _ = p.eat(".");
    }
    if pattern.patterns.is_empty() {
        return p.err("WHERE block has no triple patterns");
    }
    p.skip_ws();
    if p.pos != input.len() {
        return p.err("trailing input");
    }
    let vars = if star { seen_vars.clone() } else { vars };
    // Projected variables must occur in the pattern. (The COUNT output
    // variable is an aggregate alias, not a pattern binding.)
    for v in &vars {
        if !seen_vars.contains(v) {
            return Err(SparqlParseError {
                pos: 0,
                message: format!("projected variable ?{v} not bound in WHERE"),
            });
        }
    }
    if let Some(c) = &count {
        if seen_vars.contains(c) {
            return Err(SparqlParseError {
                pos: 0,
                message: format!("COUNT alias ?{c} shadows a pattern variable"),
            });
        }
    }
    Ok(SelectQuery {
        vars,
        pattern,
        count,
    })
}

/// Projects a join result onto the query's SELECT list, resolving terms
/// to strings, sorted and deduplicated for a deterministic row surface.
fn project(st: &TripleStore, q: &SelectQuery, sol: &crate::lftj::Solution) -> Vec<Vec<String>> {
    let idx: Vec<usize> = q
        .vars
        .iter()
        .map(|v| sol.vars.iter().position(|u| u == v).unwrap_or(0))
        .collect();
    let mut rows: Vec<Vec<String>> = sol
        .rows
        .iter()
        .map(|row| {
            idx.iter()
                .map(|&i| st.term_str(row[i]).to_owned())
                .collect()
        })
        .collect();
    rows.sort();
    rows.dedup();
    rows
}

/// Projected variables handed to the analyzer: a COUNT query projects
/// no bindings, so every pattern variable counts as "used".
fn projected(q: &SelectQuery) -> Option<&[String]> {
    if q.count.is_some() {
        None
    } else {
        Some(&q.vars)
    }
}

/// Parses and evaluates a SELECT query, returning rows of term strings
/// in projection order, sorted for determinism. A provably empty
/// pattern (static analysis) short-circuits before planning; a COUNT
/// query returns a single one-column row with the exact answer count.
/// Planning is sketch-driven ([`crate::lftj::plan_best`]); the sketch
/// only influences elimination order, so output is byte-identical to
/// the greedy planner's.
pub fn select(st: &mut TripleStore, query: &str) -> Result<Vec<Vec<String>>, SparqlParseError> {
    let q = parse_select(query, st)?;
    if analyze_bgp(st, &q.pattern, projected(&q)).provably_empty {
        return Ok(match &q.count {
            Some(_) => vec![vec!["0".to_owned()]],
            None => Vec::new(),
        });
    }
    let sk = StoreSketch::build(st);
    let (plan, _, _) = crate::lftj::plan_best(st, &sk, &q.pattern);
    if q.count.is_some() {
        let n = crate::lftj::count_planned(st, &q.pattern, &plan);
        return Ok(vec![vec![n.to_string()]]);
    }
    let sol = crate::lftj::solve_planned(
        st,
        &q.pattern,
        &plan,
        kgq_core::parallel::effective_threads(),
    );
    Ok(project(st, &q, &sol))
}

/// Evaluates an already-parsed SELECT query under a governor: batched
/// step accounting through every trie seek, panic-isolated workers, and
/// an exact-prefix `Partial` (of the unprojected binding set) on budget
/// exhaustion.
pub fn select_governed(
    st: &TripleStore,
    q: &SelectQuery,
    gov: &Governor,
) -> Result<Governed<Vec<Vec<String>>>, EvalError> {
    select_governed_with(st, q, None, gov).map(|o| o.rows)
}

/// What [`select_governed_with`] produced, plus how: whether the
/// sketch planner supplied the executed plan (vs the greedy fallback)
/// and whether a COUNT query degraded to the FPRAS estimate — the
/// evidence the serve layer's STATS counters report.
pub struct SelectOutcome {
    /// The projected rows (or the single-row count), governed.
    pub rows: Governed<Vec<Vec<String>>>,
    /// True when the sketch-driven plan was executed.
    pub sketch_planned: bool,
    /// True when a COUNT query fell back to the approximate counter.
    pub approx_count: bool,
}

/// [`select_governed`] with an optional pre-built [`StoreSketch`]:
/// sketch-driven planning when available (greedy otherwise), and — for
/// COUNT queries — the governed degradation ladder: exact count while
/// the budget lasts, then an XOR-hash (ε, δ) estimate under a successor
/// budget with the `degraded` flag set. The exact path's output is
/// byte-identical whether or not a sketch is supplied.
pub fn select_governed_with(
    st: &TripleStore,
    q: &SelectQuery,
    sk: Option<&StoreSketch>,
    gov: &Governor,
) -> Result<SelectOutcome, EvalError> {
    if analyze_bgp(st, &q.pattern, projected(q)).provably_empty {
        let rows = match &q.count {
            Some(_) => vec![vec!["0".to_owned()]],
            None => Vec::new(),
        };
        return Ok(SelectOutcome {
            rows: Governed::complete(rows),
            sketch_planned: false,
            approx_count: false,
        });
    }
    let (plan, sketch_planned) = match sk {
        Some(sk) => {
            let (p, used, _) = crate::lftj::plan_best(st, sk, &q.pattern);
            (p, used)
        }
        None => (crate::lftj::plan(st, &q.pattern), false),
    };
    if q.count.is_some() {
        let exact = crate::lftj::count_planned_governed(st, &q.pattern, &plan, gov)?;
        if matches!(exact.completion, Completion::Complete) {
            return Ok(SelectOutcome {
                rows: Governed::complete(vec![vec![exact.value.to_string()]]),
                sketch_planned,
                approx_count: false,
            });
        }
        // Budget exhausted mid-count: degrade to the approximate
        // counter under a fresh successor budget. Its own exact path
        // (small counts) still returns the precise value.
        let built;
        let sk_ref = match sk {
            Some(s) => s,
            None => {
                built = StoreSketch::build(st);
                &built
            }
        };
        let approx = approx_count_bgp_governed(
            st,
            sk_ref,
            &q.pattern,
            BgpCountParams::default(),
            &gov.successor(),
        )?;
        return Ok(SelectOutcome {
            rows: Governed {
                value: vec![vec![approx.value.to_string()]],
                completion: approx.completion,
                degraded: approx.degraded,
            },
            sketch_planned,
            approx_count: true,
        });
    }
    let governed = crate::lftj::solve_planned_governed(st, &q.pattern, &plan, gov)?;
    Ok(SelectOutcome {
        rows: Governed {
            value: project(st, q, &governed.value),
            completion: governed.completion,
            degraded: governed.degraded,
        },
        sketch_planned,
        approx_count: false,
    })
}

/// Renders the static diagnostics and the join plan for a SELECT query —
/// the `kgq sparql --explain` surface. Shows the chosen variable
/// elimination order and per-pattern index orderings with exact
/// cardinalities; a denied (provably empty) query shows the
/// short-circuit instead of a plan.
pub fn explain_select(st: &mut TripleStore, query: &str) -> Result<String, SparqlParseError> {
    let q = parse_select(query, st)?;
    Ok(explain_parsed(st, &q).1)
}

/// [`explain_select`] for an already-parsed query: returns the analyzer
/// report alongside the rendered text, so callers (the `ANALYZE` server
/// verb, `kgq analyze`) can count verdicts without re-analyzing.
pub fn explain_parsed(st: &TripleStore, q: &SelectQuery) -> (crate::analyze::BgpReport, String) {
    let mut report = analyze_bgp(st, &q.pattern, projected(q));
    let mut out = String::from("== diagnostics ==\n");
    out.push_str(&report.render());
    out.push_str("== plan ==\n");
    if report.provably_empty {
        out.push_str("short-circuit: empty answer before planning\n");
    } else {
        // Both planners run: the sketch-driven plan is what executes,
        // the greedy order is printed as the oracle it remains.
        let sk = StoreSketch::build(st);
        let sp = crate::lftj::plan_sketched(st, &sk, &q.pattern);
        let greedy = crate::lftj::plan(st, &q.pattern);
        report.verdict.est_answers = sp.est_answers();
        out.push_str(&sp.plan.render(st, &q.pattern));
        out.push_str(&sp.render_estimates());
        let order = if greedy.vars.is_empty() {
            "(none)".to_owned()
        } else {
            greedy
                .vars
                .iter()
                .map(|v| format!("?{v}"))
                .collect::<Vec<_>>()
                .join(" < ")
        };
        let agrees = greedy.vars == sp.plan.vars;
        out.push_str(&format!(
            "  greedy order: {order} ({})\n",
            if agrees {
                "sketch planner agrees"
            } else {
                "sketch planner overrides"
            }
        ));
        if q.count.is_some() {
            out.push_str(
                "  count query: exact governed count; XOR-hash (\u{3b5}, \u{3b4}) estimate on budget exhaustion\n",
            );
        }
    }
    out.push_str("== verdict ==\n");
    out.push_str(&report.verdict.render());
    (report, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TripleStore {
        let mut st = TripleStore::new();
        st.insert_strs("julia", RDF_TYPE, "person");
        st.insert_strs("ana", RDF_TYPE, "person");
        st.insert_strs("b7", RDF_TYPE, "bus");
        st.insert_strs("julia", "rides", "b7");
        st.insert_strs("ana", "rides", "b7");
        st.insert_strs("julia", "name", "\"Julia\"");
        st
    }

    #[test]
    fn basic_select_with_type_abbreviation() {
        let mut st = sample();
        let rows = select(
            &mut st,
            "SELECT ?p WHERE { ?p <rides> ?b . ?p a <person> . ?b a <bus> }",
        )
        .unwrap();
        assert_eq!(rows, vec![vec!["ana"], vec!["julia"]]);
    }

    #[test]
    fn select_star_projects_in_first_appearance_order() {
        let mut st = sample();
        let q = parse_select("SELECT * WHERE { ?x <rides> ?y }", &mut st).unwrap();
        assert_eq!(q.vars, vec!["x", "y"]);
        let rows = select(&mut st, "SELECT * WHERE { ?x <rides> ?y }").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec!["ana", "b7"]);
    }

    #[test]
    fn literals_in_object_position() {
        let mut st = sample();
        let rows = select(&mut st, "SELECT ?p WHERE { ?p <name> \"Julia\" }").unwrap();
        assert_eq!(rows, vec![vec!["julia"]]);
    }

    #[test]
    fn multiline_and_trailing_dot() {
        let mut st = sample();
        let rows = select(
            &mut st,
            "SELECT ?p ?b WHERE {\n  ?p <rides> ?b .\n  ?p a <person> .\n}",
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 2);
    }

    #[test]
    fn errors_are_informative() {
        let mut st = sample();
        let e = select(&mut st, "ASK { ?x <p> ?y }").unwrap_err();
        assert!(e.message.contains("SELECT"));
        let e = select(&mut st, "SELECT ?x WHERE { }").unwrap_err();
        assert!(e.message.contains("no triple patterns"));
        let e = select(&mut st, "SELECT ?z WHERE { ?x <p> ?y }").unwrap_err();
        assert!(e.message.contains("not bound"));
        let e = select(&mut st, "SELECT ?x WHERE { ?x <p ?y }").unwrap_err();
        assert!(e.message.contains("unterminated IRI"));
        let e = select(&mut st, "SELECT ?x WHERE { ?x <p> ?y } garbage").unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn keyword_case_and_a_as_variable_name() {
        let mut st = sample();
        // `a` in subject/object position is NOT the type keyword.
        let rows = select(&mut st, "select ?a where { ?a a <bus> }").unwrap();
        assert_eq!(rows, vec![vec!["b7"]]);
    }

    #[test]
    fn unlimited_governed_select_matches_plain() {
        let mut st = sample();
        let query = "SELECT ?p ?b WHERE { ?p <rides> ?b . ?p a <person> }";
        let plain = select(&mut st, query).unwrap();
        let q = parse_select(query, &mut st).unwrap();
        let gov = Governor::unlimited();
        let governed = select_governed(&st, &q, &gov).unwrap();
        assert!(governed.completion.is_complete());
        assert_eq!(governed.value, plain);
    }

    #[test]
    fn explain_shows_diagnostics_and_plan() {
        let mut st = sample();
        let text =
            explain_select(&mut st, "SELECT ?p WHERE { ?p <rides> ?b . ?p a <person> }").unwrap();
        assert!(text.contains("== diagnostics =="), "{text}");
        assert!(text.contains("== plan =="), "{text}");
        assert!(text.contains("variable order:"), "{text}");
        assert!(text.contains("card"), "{text}");
        // The elimination order itself carries per-variable exact prefix
        // counts, and the complexity verdict closes the report.
        assert!(text.contains("(card "), "{text}");
        assert!(text.contains("== verdict =="), "{text}");
        assert!(text.contains("agm exponent"), "{text}");
        assert!(text.contains("acyclic"), "{text}");
    }

    #[test]
    fn provably_empty_select_short_circuits() {
        let mut st = sample();
        let rows = select(&mut st, "SELECT ?x WHERE { ?x <flies> ?y }").unwrap();
        assert!(rows.is_empty());
        let text = explain_select(&mut st, "SELECT ?x WHERE { ?x <flies> ?y }").unwrap();
        assert!(text.contains("short-circuit"), "{text}");
        assert!(text.contains("empty-pattern"), "{text}");
    }
}
