//! Forward-chaining RDFS-style inference — the "producing new knowledge"
//! facet of §2.3 ("deducing, e.g. by means of logical reasoners").
//!
//! Implements the core RDFS entailment rules by semi-naive forward
//! chaining to a fixpoint, materializing inferred triples back into the
//! store:
//!
//! | rule | premise | conclusion |
//! |------|---------|------------|
//! | rdfs2 | `(p, domain, C)`, `(x, p, y)` | `(x, type, C)` |
//! | rdfs3 | `(p, range, C)`, `(x, p, y)` | `(y, type, C)` |
//! | rdfs5 | `(p, subPropertyOf, q)`, `(q, subPropertyOf, r)` | `(p, subPropertyOf, r)` |
//! | rdfs7 | `(p, subPropertyOf, q)`, `(x, p, y)` | `(x, q, y)` |
//! | rdfs9 | `(C, subClassOf, D)`, `(x, type, C)` | `(x, type, D)` |
//! | rdfs11 | `(C, subClassOf, D)`, `(D, subClassOf, E)` | `(C, subClassOf, E)` |

use crate::convert::RDF_TYPE;
use crate::store::{Triple, TripleStore};
use kgq_graph::Sym;

/// `rdfs:subClassOf`.
pub const RDFS_SUBCLASS: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
/// `rdfs:subPropertyOf`.
pub const RDFS_SUBPROPERTY: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
/// `rdfs:domain`.
pub const RDFS_DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
/// `rdfs:range`.
pub const RDFS_RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";

/// Result of materialization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InferenceStats {
    /// Triples added by inference.
    pub inferred: usize,
    /// Fixpoint rounds executed.
    pub rounds: usize,
}

/// Runs RDFS forward chaining to a fixpoint, inserting inferred triples
/// into `st`. Returns how many triples were added.
pub fn materialize_rdfs(st: &mut TripleStore) -> InferenceStats {
    let ty = st.term(RDF_TYPE);
    let subclass = st.term(RDFS_SUBCLASS);
    let subprop = st.term(RDFS_SUBPROPERTY);
    let domain = st.term(RDFS_DOMAIN);
    let range = st.term(RDFS_RANGE);

    let mut inferred = 0usize;
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut fresh: Vec<Triple> = Vec::new();
        let schema_preds = [subclass, subprop, domain, range];

        // Collect schema axioms (they are small relative to data).
        let sub_classes: Vec<(Sym, Sym)> = st
            .scan(None, Some(subclass), None)
            .map(|t| (t.s, t.o))
            .collect();
        let sub_props: Vec<(Sym, Sym)> = st
            .scan(None, Some(subprop), None)
            .map(|t| (t.s, t.o))
            .collect();
        let domains: Vec<(Sym, Sym)> = st
            .scan(None, Some(domain), None)
            .map(|t| (t.s, t.o))
            .collect();
        let ranges: Vec<(Sym, Sym)> = st
            .scan(None, Some(range), None)
            .map(|t| (t.s, t.o))
            .collect();

        // rdfs11: transitivity of subClassOf.
        for &(c, d) in &sub_classes {
            for &(d2, e) in &sub_classes {
                if d == d2 {
                    fresh.push(Triple {
                        s: c,
                        p: subclass,
                        o: e,
                    });
                }
            }
        }
        // rdfs5: transitivity of subPropertyOf.
        for &(p, q) in &sub_props {
            for &(q2, r) in &sub_props {
                if q == q2 {
                    fresh.push(Triple {
                        s: p,
                        p: subprop,
                        o: r,
                    });
                }
            }
        }
        // rdfs9: subclass inheritance of instances.
        for &(c, d) in &sub_classes {
            for t in st.scan(None, Some(ty), Some(c)) {
                fresh.push(Triple {
                    s: t.s,
                    p: ty,
                    o: d,
                });
            }
        }
        // rdfs7: subproperty entailment on data triples.
        for &(p, q) in &sub_props {
            if schema_preds.contains(&p) {
                continue; // keep schema vocabulary out of rule loops
            }
            for t in st.scan(None, Some(p), None) {
                fresh.push(Triple {
                    s: t.s,
                    p: q,
                    o: t.o,
                });
            }
        }
        // rdfs2 / rdfs3: domain and range typing.
        for &(p, c) in &domains {
            for t in st.scan(None, Some(p), None) {
                fresh.push(Triple {
                    s: t.s,
                    p: ty,
                    o: c,
                });
            }
        }
        for &(p, c) in &ranges {
            for t in st.scan(None, Some(p), None) {
                fresh.push(Triple {
                    s: t.o,
                    p: ty,
                    o: c,
                });
            }
        }

        // One bulk sort per ordering instead of a point insert per triple.
        let added_this_round = st.extend(fresh);
        inferred += added_this_round;
        if added_this_round == 0 {
            break;
        }
    }
    InferenceStats { inferred, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term(st: &TripleStore, s: &str) -> Sym {
        st.get_term(s).expect("term exists")
    }

    #[test]
    fn subclass_inheritance_is_transitive() {
        let mut st = TripleStore::new();
        st.insert_strs("Student", RDFS_SUBCLASS, "Person");
        st.insert_strs("Person", RDFS_SUBCLASS, "Agent");
        st.insert_strs("ana", RDF_TYPE, "Student");
        let stats = materialize_rdfs(&mut st);
        assert!(stats.inferred >= 3);
        let ty = term(&st, RDF_TYPE);
        let ana = term(&st, "ana");
        for class in ["Person", "Agent"] {
            let c = term(&st, class);
            assert!(
                st.contains(Triple {
                    s: ana,
                    p: ty,
                    o: c
                }),
                "ana should be a {class}"
            );
        }
        // Derived schema triple from rdfs11.
        assert!(st.contains(Triple {
            s: term(&st, "Student"),
            p: term(&st, RDFS_SUBCLASS),
            o: term(&st, "Agent"),
        }));
    }

    #[test]
    fn subproperty_entailment() {
        let mut st = TripleStore::new();
        st.insert_strs("advisedBy", RDFS_SUBPROPERTY, "knows");
        st.insert_strs("ana", "advisedBy", "marie");
        materialize_rdfs(&mut st);
        assert!(st.contains(Triple {
            s: term(&st, "ana"),
            p: term(&st, "knows"),
            o: term(&st, "marie"),
        }));
    }

    #[test]
    fn domain_and_range_typing() {
        let mut st = TripleStore::new();
        st.insert_strs("teaches", RDFS_DOMAIN, "Professor");
        st.insert_strs("teaches", RDFS_RANGE, "Course");
        st.insert_strs("marie", "teaches", "physics101");
        materialize_rdfs(&mut st);
        let ty = term(&st, RDF_TYPE);
        assert!(st.contains(Triple {
            s: term(&st, "marie"),
            p: ty,
            o: term(&st, "Professor"),
        }));
        assert!(st.contains(Triple {
            s: term(&st, "physics101"),
            p: ty,
            o: term(&st, "Course"),
        }));
    }

    #[test]
    fn rules_chain_across_rounds() {
        // advisedBy ⊑ knows, knows has domain Person, Person ⊑ Agent:
        // typing requires three chained rules.
        let mut st = TripleStore::new();
        st.insert_strs("advisedBy", RDFS_SUBPROPERTY, "knows");
        st.insert_strs("knows", RDFS_DOMAIN, "Person");
        st.insert_strs("Person", RDFS_SUBCLASS, "Agent");
        st.insert_strs("ana", "advisedBy", "marie");
        let stats = materialize_rdfs(&mut st);
        assert!(stats.rounds >= 2, "needs chaining, got {stats:?}");
        let ty = term(&st, RDF_TYPE);
        assert!(st.contains(Triple {
            s: term(&st, "ana"),
            p: ty,
            o: term(&st, "Agent"),
        }));
    }

    #[test]
    fn materialization_is_idempotent() {
        let mut st = TripleStore::new();
        st.insert_strs("Student", RDFS_SUBCLASS, "Person");
        st.insert_strs("ana", RDF_TYPE, "Student");
        materialize_rdfs(&mut st);
        let size = st.len();
        let again = materialize_rdfs(&mut st);
        assert_eq!(again.inferred, 0);
        assert_eq!(st.len(), size);
    }

    #[test]
    fn no_schema_means_no_inference() {
        let mut st = TripleStore::new();
        st.insert_strs("a", "p", "b");
        st.insert_strs("b", "q", "c");
        let stats = materialize_rdfs(&mut st);
        assert_eq!(stats.inferred, 0);
    }

    #[test]
    fn inferred_triples_are_queryable_downstream() {
        // Inference feeds the path-query machinery: after materialization
        // the labeled-graph view sees the derived `knows` edges.
        use crate::convert::rdf_to_labeled;
        let mut st = TripleStore::new();
        st.insert_strs("advisedBy", RDFS_SUBPROPERTY, "knows");
        st.insert_strs("ana", "advisedBy", "marie");
        st.insert_strs("marie", "advisedBy", "paul");
        materialize_rdfs(&mut st);
        let g = rdf_to_labeled(&st).unwrap();
        let knows = g.sym("knows").unwrap();
        assert_eq!(g.edges_with_label(knows).len(), 2);
    }
}
