//! Leapfrog triejoin: a worst-case optimal join engine for BGPs.
//!
//! The backtracking matcher in [`crate::bgp`] evaluates one pattern at a
//! time, so a cyclic join like the triangle `(?a,k,?b)(?b,k,?c)(?c,k,?a)`
//! enumerates Θ(n²) intermediate pairs even when the answer is tiny. The
//! worst-case optimal alternative (Veldhuizen's leapfrog triejoin, the
//! engine design MillenniumDB builds on) evaluates **variable at a time**:
//! a global variable elimination order `v₁ < v₂ < …` is fixed, every
//! pattern exposes its matching triples as a *trie* keyed in that order
//! (possible for any order because [`crate::store::TripleStore`] keeps
//! all six sorted orderings), and level `i` intersects the `vᵢ`-columns
//! of every pattern containing `vᵢ` by leapfrogging: repeatedly seeking
//! each iterator to the maximum current key until all agree. Each seek is
//! a galloping search on a sorted array, so the total work is bounded by
//! the AGM fractional-cover bound on the output size — `O(n^{3/2})` for
//! the triangle instead of `Θ(n²)`.
//!
//! * [`plan`] picks the variable order greedily from **exact** prefix
//!   cardinalities (two `partition_point`s per estimate) and detects
//!   provably-empty queries before execution; [`Plan::render`] is the
//!   `--explain` surface.
//! * [`solve`] / [`solve_partitioned`] parallelize by splitting the first
//!   join variable's matched domain into contiguous chunks, one worker
//!   per chunk. Workers own private cursors, chunks are concatenated in
//!   domain order, so the output is byte-identical for any thread count.
//! * [`solve_governed`] threads the PR-2 governance contract through
//!   every seek: batched [`Ticker`] step charges, [`MemMeter`] row
//!   charges, panic isolation per worker, and an exact-prefix
//!   [`Governed`] `Partial` on exhaustion — the cut happens at the first
//!   interrupted chunk, exactly like the kernel scans in `kgq-core`.

use crate::bgp::{Bgp, Binding, TermPattern, TriplePattern, VarName};
use crate::sketch::{chain_hash, StoreSketch, XorConstraint, ROOT_HASH};
use crate::store::{IndexOrder, TripleStore};
use kgq_core::govern::{isolate, EvalError, Governed, Governor, Interrupt, MemMeter, Ticker};
use kgq_core::parallel::effective_threads;
use kgq_graph::Sym;
use rayon::prelude::*;
use std::ops::Range;

/// How one triple pattern participates in the join.
#[derive(Clone, Debug)]
pub struct PatternPlan {
    /// The sorted ordering whose key columns put this pattern's constants
    /// first and its variables in elimination order; `None` when the
    /// pattern repeats a variable and is materialized instead.
    pub order: Option<IndexOrder>,
    /// Constant values in the ordering's leading columns.
    consts: Vec<Sym>,
    /// Global variable levels this pattern joins on, ascending; trie
    /// depth `d` binds the variable at `levels[d]`.
    pub levels: Vec<usize>,
    /// Exact number of triples matching the constant positions — the
    /// planner's cost estimate (an upper bound for filtered patterns).
    pub cardinality: usize,
    /// True when a variable occurs twice in the pattern: the trie is a
    /// materialized, filtered projection rather than an index range.
    pub filtered: bool,
}

/// A query plan: variable elimination order plus per-pattern access paths.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The variable elimination order; answer rows use this column order.
    pub vars: Vec<VarName>,
    /// One entry per BGP pattern, in input order.
    pub patterns: Vec<PatternPlan>,
    /// Per-variable exact prefix count at the moment the greedy planner
    /// chose it: the smallest cardinality over the patterns containing
    /// the variable. Parallel to `vars`.
    pub var_cards: Vec<usize>,
    /// `Some(reason)` when the BGP is provably empty before execution
    /// (a constant prefix matches nothing).
    pub empty: Option<String>,
}

fn term_text(st: &TripleStore, t: &TermPattern) -> String {
    match t {
        TermPattern::Const(s) => st.term_str(*s).to_owned(),
        TermPattern::Var(v) => format!("?{v}"),
    }
}

fn pattern_text(st: &TripleStore, p: &TriplePattern) -> String {
    format!(
        "({} {} {})",
        term_text(st, &p.s),
        term_text(st, &p.p),
        term_text(st, &p.o)
    )
}

impl Plan {
    /// Human-readable plan report — the `--explain` surface: chosen
    /// variable order, per-pattern index ordering and exact cardinality,
    /// and the provably-empty short-circuit when it applies.
    pub fn render(&self, st: &TripleStore, bgp: &Bgp) -> String {
        let mut out = String::from("plan: leapfrog triejoin\n");
        if self.vars.is_empty() {
            out.push_str("  variable order: (none)\n");
        } else {
            // Each variable carries the exact prefix count that drove its
            // greedy selection — the planner's own cost evidence.
            let vars: Vec<String> = self
                .vars
                .iter()
                .enumerate()
                .map(|(i, v)| match self.var_cards.get(i) {
                    Some(c) => format!("?{v} (card {c})"),
                    None => format!("?{v}"),
                })
                .collect();
            out.push_str(&format!("  variable order: {}\n", vars.join(" < ")));
        }
        for (pat, pp) in bgp.patterns.iter().zip(&self.patterns) {
            let access = match pp.order {
                Some(o) => format!("index {}", o.name()),
                None => "materialized".to_owned(),
            };
            out.push_str(&format!(
                "  {:<40} {:<14} card {}\n",
                pattern_text(st, pat),
                access,
                pp.cardinality
            ));
        }
        if let Some(reason) = &self.empty {
            out.push_str(&format!("  provably empty: {reason}\n"));
        }
        out
    }
}

/// Per-pattern shape extracted once: which positions are constants and
/// which variable id each variable position binds.
struct PatternInfo {
    /// `(triple position, value)` for constant positions.
    const_pos: Vec<(usize, Sym)>,
    /// `(triple position, variable id)` for variable positions.
    var_pos: Vec<(usize, usize)>,
    /// Distinct variable ids, in appearance order.
    var_ids: Vec<usize>,
    /// True when some variable id occurs in two or more positions.
    repeated: bool,
}

/// Extracts the variable universe (first-appearance order) and per-
/// pattern shapes shared by both planners.
fn shapes(bgp: &Bgp) -> (Vec<VarName>, Vec<PatternInfo>) {
    let mut vars: Vec<VarName> = Vec::new();
    let mut infos: Vec<PatternInfo> = Vec::new();
    for pat in &bgp.patterns {
        let mut info = PatternInfo {
            const_pos: Vec::new(),
            var_pos: Vec::new(),
            var_ids: Vec::new(),
            repeated: false,
        };
        for (pos, term) in [&pat.s, &pat.p, &pat.o].into_iter().enumerate() {
            match term {
                TermPattern::Const(c) => info.const_pos.push((pos, *c)),
                TermPattern::Var(name) => {
                    let id = match vars.iter().position(|v| v == name) {
                        Some(i) => i,
                        None => {
                            vars.push(name.clone());
                            vars.len() - 1
                        }
                    };
                    if info.var_ids.contains(&id) {
                        info.repeated = true;
                    } else {
                        info.var_ids.push(id);
                    }
                    info.var_pos.push((pos, id));
                }
            }
        }
        infos.push(info);
    }
    (vars, infos)
}

/// Exact cardinality of each pattern's constant positions (for a
/// repeated-variable pattern this is an upper bound, still sound for
/// both ordering and the emptiness short-circuit), plus the provably-
/// empty reason when some pattern matches nothing.
fn exact_cards(
    st: &TripleStore,
    bgp: &Bgp,
    infos: &[PatternInfo],
) -> (Vec<usize>, Option<String>) {
    let mut empty = None;
    let mut cards = Vec::with_capacity(infos.len());
    for (info, pat) in infos.iter().zip(&bgp.patterns) {
        let at = |p: usize| {
            info.const_pos
                .iter()
                .find(|(q, _)| *q == p)
                .map(|(_, v)| *v)
        };
        let card = st.count(at(0), at(1), at(2));
        if card == 0 && empty.is_none() {
            empty = Some(format!(
                "pattern {} matches no triple",
                pattern_text(st, pat)
            ));
        }
        cards.push(card);
    }
    (cards, empty)
}

/// Chooses the global variable elimination order and per-pattern access
/// paths from exact prefix cardinalities.
pub fn plan(st: &TripleStore, bgp: &Bgp) -> Plan {
    let (vars, infos) = shapes(bgp);
    let (cards, empty) = exact_cards(st, bgp, &infos);

    // Greedy elimination order: prefer variables connected to the prefix
    // chosen so far (avoids cartesian interleaving), then the smallest
    // min-cardinality over containing patterns, then higher pattern
    // coverage, then first appearance.
    let nvars = vars.len();
    let mut order: Vec<usize> = Vec::with_capacity(nvars);
    let mut var_cards: Vec<usize> = Vec::with_capacity(nvars);
    let mut placed = vec![false; nvars];
    while order.len() < nvars {
        let mut best: Option<(usize, usize, usize, usize)> = None;
        let mut best_var = 0usize;
        for v in 0..nvars {
            if placed[v] {
                continue;
            }
            let mut connected = false;
            let mut min_card = usize::MAX;
            let mut coverage = 0usize;
            for (info, &card) in infos.iter().zip(&cards) {
                if !info.var_ids.contains(&v) {
                    continue;
                }
                coverage += 1;
                min_card = min_card.min(card);
                if info.var_ids.iter().any(|u| placed[*u]) || !info.const_pos.is_empty() {
                    connected = true;
                }
            }
            let score = (usize::from(!connected), min_card, usize::MAX - coverage, v);
            if best.is_none_or(|b| score < b) {
                best = Some(score);
                best_var = v;
            }
        }
        placed[best_var] = true;
        order.push(best_var);
        // Record the winning variable's smallest containing-pattern count
        // — the exact cardinality evidence the choice was based on.
        var_cards.push(best.map(|(_, card, _, _)| card).unwrap_or(0));
    }
    assemble(vars, &infos, &cards, order, var_cards, empty)
}

/// Builds the per-pattern access paths for a chosen elimination order —
/// the shared back half of both planners. The access-path rules (consts
/// first, variables ascending by level, repeated-variable patterns
/// materialized) are what [`verify_plan`] re-checks, so any order
/// produced here yields a verifiable plan.
fn assemble(
    vars: Vec<VarName>,
    infos: &[PatternInfo],
    cards: &[usize],
    order: Vec<usize>,
    var_cards: Vec<usize>,
    empty: Option<String>,
) -> Plan {
    let level_of = |id: usize| -> usize { order.iter().position(|&v| v == id).unwrap_or(0) };

    // Per-pattern access path.
    let mut patterns = Vec::with_capacity(infos.len());
    for (info, &card) in infos.iter().zip(cards.iter()) {
        let mut levels: Vec<usize> = info.var_ids.iter().map(|&id| level_of(id)).collect();
        levels.sort_unstable();
        if info.repeated {
            patterns.push(PatternPlan {
                order: None,
                consts: Vec::new(),
                levels,
                cardinality: card,
                filtered: true,
            });
            continue;
        }
        // Key columns: constants first (any internal order — they are all
        // fully bound), then variable positions by elimination level.
        let mut perm: Vec<usize> = info.const_pos.iter().map(|(p, _)| *p).collect();
        let consts: Vec<Sym> = info.const_pos.iter().map(|(_, v)| *v).collect();
        let mut var_cols: Vec<(usize, usize)> = info
            .var_pos
            .iter()
            .map(|&(pos, id)| (level_of(id), pos))
            .collect();
        var_cols.sort_unstable();
        perm.extend(var_cols.iter().map(|&(_, pos)| pos));
        let mut perm3 = [0usize; 3];
        perm3.copy_from_slice(&perm);
        patterns.push(PatternPlan {
            order: Some(IndexOrder::from_perm(perm3)),
            consts,
            levels,
            cardinality: card,
            filtered: false,
        });
    }

    Plan {
        vars: order.into_iter().map(|id| vars[id].clone()).collect(),
        patterns,
        var_cards,
        empty,
    }
}

/// One elimination level's cost-model evidence from the sketch planner:
/// the estimated extensions per already-bound prefix, the cumulative
/// prefix-count estimate after this level, and which statistic supplied
/// the figure.
#[derive(Clone, Debug)]
pub struct LevelEstimate {
    /// The variable chosen at this level.
    pub var: VarName,
    /// Estimated extensions per bound prefix.
    pub ext: f64,
    /// Estimated prefixes after binding this variable (product of `ext`
    /// down the order so far).
    pub prefixes: f64,
    /// Which statistic the estimate came from.
    pub basis: String,
}

/// A sketch-planned [`Plan`] plus the per-level estimates that justified
/// the order — surfaced by `--explain`.
#[derive(Clone, Debug)]
pub struct SketchPlan {
    /// The executable plan (same invariants as the greedy planner's;
    /// passes [`verify_plan`]).
    pub plan: Plan,
    /// Per-level cost-model evidence, parallel to `plan.vars`.
    pub estimates: Vec<LevelEstimate>,
}

impl SketchPlan {
    /// Renders the per-level estimates for `--explain`.
    pub fn render_estimates(&self) -> String {
        let mut out = String::new();
        if self.estimates.is_empty() {
            return out;
        }
        out.push_str("  sketch estimates:\n");
        for (i, e) in self.estimates.iter().enumerate() {
            out.push_str(&format!(
                "    level {i}: ?{} ext ~{:.1}, prefixes ~{:.1} [{}]\n",
                e.var, e.ext, e.prefixes, e.basis
            ));
        }
        out
    }

    /// The final cumulative prefix estimate — an answer-count estimate.
    pub fn est_answers(&self) -> Option<f64> {
        self.estimates.last().map(|e| e.prefixes)
    }
}

/// Estimated extensions for candidate variable `v` through one pattern,
/// given the set of already-placed variables: the two-level cost model's
/// per-pattern term. Returns the estimate, the statistic it used, and —
/// when the pattern binds `v` with nothing else bound — the ordering
/// whose leading-column bitmap can refine the estimate by intersection.
fn sketch_ext(
    sk: &StoreSketch,
    info: &PatternInfo,
    placed: &[bool],
    v: usize,
) -> (f64, &'static str, Option<IndexOrder>) {
    let vpos = info
        .var_pos
        .iter()
        .find(|&&(_, id)| id == v)
        .map(|&(p, _)| p)
        .unwrap_or(0);
    // Bound key columns ahead of v: constants first (their values feed
    // the heavy-hitter lookup), then already-placed variable positions.
    let mut bound: Vec<(usize, Option<Sym>)> = info
        .const_pos
        .iter()
        .map(|&(p, c)| (p, Some(c)))
        .collect();
    for &(p, id) in &info.var_pos {
        if id != v && placed[id] && !bound.iter().any(|&(q, _)| q == p) {
            bound.push((p, None));
        }
    }
    bound.truncate(2);
    match bound.len() {
        0 => {
            let o = match vpos {
                0 => IndexOrder::Spo,
                1 => IndexOrder::Pso,
                _ => IndexOrder::Osp,
            };
            (sk.ext_estimate(o, 0, None), "distinct", Some(o))
        }
        1 => {
            let (b, c) = bound[0];
            let rest = 3 - b - vpos;
            let o = IndexOrder::from_perm([b, vpos, rest]);
            let basis = if c.is_some() { "heavy@1" } else { "avg@1" };
            (sk.ext_estimate(o, 1, c), basis, None)
        }
        _ => {
            let (b0, c0) = bound[0];
            let (b1, _) = bound[1];
            let o = IndexOrder::from_perm([b0, b1, vpos]);
            (sk.ext_estimate(o, 2, c0), "fanout@2", None)
        }
    }
}

/// Sketch-driven planner: same pattern shapes, exact cardinalities and
/// access-path assembly as [`plan`], but the elimination order is chosen
/// by a two-level cost model — per-candidate estimated extensions from
/// the [`StoreSketch`] (distinct counts, per-value heavy-hitter degrees,
/// leading-column bitmap intersections), still preferring connected
/// variables and capped by the exact min-cardinality. The sketches only
/// influence *order*; recorded cardinalities stay exact, so the result
/// passes [`verify_plan`] by construction.
pub fn plan_sketched(st: &TripleStore, sk: &StoreSketch, bgp: &Bgp) -> SketchPlan {
    let (vars, infos) = shapes(bgp);
    let (cards, empty) = exact_cards(st, bgp, &infos);

    let nvars = vars.len();
    let mut order: Vec<usize> = Vec::with_capacity(nvars);
    let mut var_cards: Vec<usize> = Vec::with_capacity(nvars);
    let mut estimates: Vec<LevelEstimate> = Vec::with_capacity(nvars);
    let mut placed = vec![false; nvars];
    let mut prefixes = 1.0f64;
    while order.len() < nvars {
        // (¬connected, ⌈log₂ ext⌉, coverage, exact min-card,
        // appearance) — the greedy score's lexicographic shape with the
        // sketch estimate inserted as a powers-of-two band. Bands, not
        // raw estimates: sketch evidence is order-of-magnitude evidence
        // (distinct counts conflate candidate-set size with downstream
        // intersection work), so only a genuine magnitude gap overrides
        // greedy's coverage/appearance tie-breaks. Where every band
        // ties, the order degenerates to exactly the greedy oracle's —
        // the sketch planner is a strict refinement, which is what keeps
        // it from ever regressing materially against greedy.
        let mut best: Option<(usize, i64, usize, usize, usize)> = None;
        let mut best_basis = "";
        let mut best_ext = 0.0f64;
        for v in 0..nvars {
            if placed[v] {
                continue;
            }
            let mut connected = false;
            let mut min_card = usize::MAX;
            let mut coverage = 0usize;
            let mut ext = f64::INFINITY;
            let mut basis = "";
            let mut leads: Vec<IndexOrder> = Vec::new();
            for (info, &card) in infos.iter().zip(cards.iter()) {
                if !info.var_ids.contains(&v) {
                    continue;
                }
                coverage += 1;
                min_card = min_card.min(card);
                if info.var_ids.iter().any(|u| placed[*u]) || !info.const_pos.is_empty() {
                    connected = true;
                }
                let (e, b, lead) = sketch_ext(sk, info, &placed, v);
                if let Some(o) = lead {
                    leads.push(o);
                }
                if e < ext {
                    ext = e;
                    basis = b;
                }
            }
            // Two unconstrained patterns meeting on v: the candidate set
            // is (at most) the intersection of their leading columns.
            if leads.len() >= 2 {
                let mut inter = f64::INFINITY;
                for i in 0..leads.len() {
                    for j in i + 1..leads.len() {
                        let a = &sk.ordering(leads[i]).col0;
                        let b = &sk.ordering(leads[j]).col0;
                        inter = inter.min(a.intersect_estimate(b));
                    }
                }
                if inter < ext {
                    ext = inter.max(1.0);
                    basis = "bitmap-cap";
                }
            }
            // The exact pattern cardinality is a hard upper bound on
            // extensions; never let an estimate exceed it.
            if (min_card as f64) < ext {
                ext = min_card as f64;
                basis = "card-cap";
            }
            let band = ext.max(1.0).log2().ceil() as i64;
            let score = (
                usize::from(!connected),
                band,
                usize::MAX - coverage,
                min_card,
                v,
            );
            if best.is_none_or(|b| score < b) {
                best = Some(score);
                best_basis = basis;
                best_ext = ext;
            }
        }
        let (ext, (_, _, _, min_card, v)) = (best_ext, best.unwrap_or((0, 0, 0, 0, 0)));
        placed[v] = true;
        order.push(v);
        var_cards.push(min_card);
        prefixes = (prefixes * ext.max(if min_card == 0 { 0.0 } else { 1.0 })).min(1e18);
        estimates.push(LevelEstimate {
            var: vars[v].clone(),
            ext,
            prefixes,
            basis: best_basis.to_owned(),
        });
    }

    SketchPlan {
        plan: assemble(vars, &infos, &cards, order, var_cards, empty),
        estimates,
    }
}

/// The production planning entry: sketch-driven order, greedy fallback.
/// Returns the plan, whether the sketch planner supplied it (`false`
/// means the greedy oracle was used), and the per-level estimates.
/// The fallback fires only if the sketch plan fails [`verify_plan`] —
/// which it passes by construction, so this is a safety net, but it is
/// exactly the "greedy planner stays the oracle" contract.
pub fn plan_best(
    st: &TripleStore,
    sk: &StoreSketch,
    bgp: &Bgp,
) -> (Plan, bool, Vec<LevelEstimate>) {
    let sp = plan_sketched(st, sk, bgp);
    if verify_plan(st, bgp, &sp.plan).is_ok() {
        (sp.plan, true, sp.estimates)
    } else {
        (plan(st, bgp), false, Vec::new())
    }
}

/// Independent soundness check of a [`Plan`] against the BGP and store it
/// claims to serve, re-deriving the elimination order's validity from
/// scratch: the variable order must be a permutation of the BGP's
/// variables, every indexed pattern's key columns must put its constants
/// first and its variables in ascending elimination order (the legal
/// prefix condition leapfrogging relies on), filtered flags must match
/// repeated-variable shapes, and recorded cardinalities must equal the
/// store's exact counts. [`solve_planned`] and every governed run call
/// this before joining, so a planner bug surfaces as a structured
/// [`EvalError::PlanUnsound`] instead of wrong answers.
pub fn verify_plan(st: &TripleStore, bgp: &Bgp, plan: &Plan) -> Result<(), String> {
    if plan.patterns.len() != bgp.patterns.len() {
        return Err(format!(
            "plan covers {} patterns but the BGP has {}",
            plan.patterns.len(),
            bgp.patterns.len()
        ));
    }
    // The elimination order must list each BGP variable exactly once.
    let mut bgp_vars: Vec<&VarName> = Vec::new();
    for pat in &bgp.patterns {
        for t in [&pat.s, &pat.p, &pat.o] {
            if let TermPattern::Var(v) = t {
                if !bgp_vars.contains(&v) {
                    bgp_vars.push(v);
                }
            }
        }
    }
    for (i, v) in plan.vars.iter().enumerate() {
        if plan.vars[..i].contains(v) {
            return Err(format!(
                "variable ?{v} appears twice in the elimination order"
            ));
        }
    }
    if plan.vars.len() != bgp_vars.len() || bgp_vars.iter().any(|v| !plan.vars.contains(v)) {
        return Err(format!(
            "elimination order [{}] is not a permutation of the BGP's variables",
            plan.vars.join(", ")
        ));
    }
    if !plan.var_cards.is_empty() && plan.var_cards.len() != plan.vars.len() {
        return Err(format!(
            "{} per-variable cardinalities recorded for {} variables",
            plan.var_cards.len(),
            plan.vars.len()
        ));
    }
    let level_of = |name: &VarName| plan.vars.iter().position(|v| v == name);

    let mut saw_zero_card = false;
    for (idx, (pat, pp)) in bgp.patterns.iter().zip(&plan.patterns).enumerate() {
        // Re-derive the pattern's shape.
        let terms = [&pat.s, &pat.p, &pat.o];
        let mut const_pos: Vec<(usize, Sym)> = Vec::new();
        let mut var_levels: Vec<(usize, usize)> = Vec::new(); // (position, level)
        let mut levels: Vec<usize> = Vec::new();
        let mut repeated = false;
        for (pos, t) in terms.into_iter().enumerate() {
            match t {
                TermPattern::Const(c) => const_pos.push((pos, *c)),
                TermPattern::Var(name) => {
                    let Some(l) = level_of(name) else {
                        return Err(format!(
                            "pattern {idx}: variable ?{name} is missing from the elimination order"
                        ));
                    };
                    if levels.contains(&l) {
                        repeated = true;
                    } else {
                        levels.push(l);
                    }
                    var_levels.push((pos, l));
                }
            }
        }
        levels.sort_unstable();
        if pp.levels != levels {
            return Err(format!(
                "pattern {idx}: plan joins on levels {:?}, pattern binds {:?}",
                pp.levels, levels
            ));
        }
        if pp.filtered != repeated {
            return Err(format!(
                "pattern {idx}: filtered={} but the pattern {} a repeated variable",
                pp.filtered,
                if repeated { "has" } else { "does not have" }
            ));
        }
        match pp.order {
            None => {
                if !repeated {
                    return Err(format!(
                        "pattern {idx}: no repeated variable, yet the plan materializes it"
                    ));
                }
            }
            Some(order) => {
                if repeated {
                    return Err(format!(
                        "pattern {idx}: repeated variable must be materialized, not indexed"
                    ));
                }
                let perm = order.perm();
                if pp.consts.len() != const_pos.len() {
                    return Err(format!(
                        "pattern {idx}: {} constants recorded, pattern has {}",
                        pp.consts.len(),
                        const_pos.len()
                    ));
                }
                // Leading key columns: the constants, value-matched.
                for (k, &col) in perm.iter().enumerate().take(const_pos.len()) {
                    let Some(&(_, val)) = const_pos.iter().find(|&&(p, _)| p == col) else {
                        return Err(format!(
                            "pattern {idx}: key column {k} of index {} is not a constant position",
                            order.name()
                        ));
                    };
                    if pp.consts[k] != val {
                        return Err(format!(
                            "pattern {idx}: constant {k} mismatches the pattern's value",
                        ));
                    }
                }
                // Remaining key columns: variable positions in strictly
                // ascending elimination level — the legal prefix order.
                let mut prev: Option<usize> = None;
                for &pos in perm.iter().skip(const_pos.len()) {
                    let Some(&(_, l)) = var_levels.iter().find(|&&(p, _)| p == pos) else {
                        return Err(format!(
                            "pattern {idx}: key column at position {pos} is not a variable position"
                        ));
                    };
                    if prev.is_some_and(|pl| l <= pl) {
                        return Err(format!(
                            "pattern {idx}: index {} binds variables out of elimination order",
                            order.name()
                        ));
                    }
                    prev = Some(l);
                }
            }
        }
        // Cardinality: must equal the store's exact count.
        let at = |p: usize| match terms[p] {
            TermPattern::Const(c) => Some(*c),
            TermPattern::Var(_) => None,
        };
        let card = st.count(at(0), at(1), at(2));
        if pp.cardinality != card {
            return Err(format!(
                "pattern {idx}: recorded cardinality {} but the store counts {}",
                pp.cardinality, card
            ));
        }
        saw_zero_card |= card == 0;
    }
    if plan.empty.is_some() && !saw_zero_card {
        return Err("plan claims emptiness but every pattern has matches".to_owned());
    }
    Ok(())
}

/// One pattern's trie surface: sorted rows, the column of its first
/// variable level, and the base row range matching its constants.
#[derive(Clone)]
struct TrieSpec<'a> {
    rows: &'a [[Sym; 3]],
    first_col: usize,
    base: Range<usize>,
    levels: Vec<usize>,
}

/// A trie cursor: per-open-depth candidate ranges over the sorted rows.
/// `seek`/`next` gallop (exponential probe + binary search) within the
/// current depth's range, so a full leapfrog intersection does work
/// proportional to the smallest column, not the largest.
struct Cursor<'a> {
    rows: &'a [[Sym; 3]],
    first_col: usize,
    lo: Vec<usize>,
    hi: Vec<usize>,
    pos: Vec<usize>,
}

/// First index in `[from, hi)` whose `col` value fails `pred`, where
/// `pred` holds on a (possibly empty) prefix of the range.
#[inline]
fn gallop(
    rows: &[[Sym; 3]],
    col: usize,
    from: usize,
    hi: usize,
    pred: impl Fn(Sym) -> bool,
) -> usize {
    if from >= hi || !pred(rows[from][col]) {
        return from;
    }
    let mut bound = 1usize;
    while from + bound < hi && pred(rows[from + bound][col]) {
        bound <<= 1;
    }
    let wlo = from + bound / 2;
    let whi = (from + bound).min(hi);
    wlo + rows[wlo..whi].partition_point(|r| pred(r[col]))
}

impl<'a> Cursor<'a> {
    fn new(spec: &TrieSpec<'a>) -> Cursor<'a> {
        Cursor {
            rows: spec.rows,
            first_col: spec.first_col,
            lo: vec![spec.base.start],
            hi: vec![spec.base.end],
            pos: vec![spec.base.start],
        }
    }

    #[inline]
    fn depth(&self) -> usize {
        self.pos.len() - 1
    }

    #[inline]
    fn col(&self) -> usize {
        self.first_col + self.depth()
    }

    #[inline]
    fn at_end(&self) -> bool {
        let d = self.depth();
        self.pos[d] >= self.hi[d]
    }

    /// Current key at the open depth. Only valid when not [`Cursor::at_end`].
    #[inline]
    fn key(&self) -> Sym {
        self.rows[self.pos[self.depth()]][self.col()]
    }

    /// Positions at the first key `>= v` within the current depth's range.
    #[inline]
    fn seek(&mut self, v: Sym) {
        let d = self.depth();
        let col = self.col();
        self.pos[d] = gallop(self.rows, col, self.pos[d], self.hi[d], |x| x < v);
    }

    /// Advances past the current key.
    #[inline]
    fn next(&mut self) {
        let v = self.key();
        let d = self.depth();
        let col = self.col();
        self.pos[d] = gallop(self.rows, col, self.pos[d], self.hi[d], |x| x <= v);
    }

    /// Descends into the current key's run of rows.
    fn open(&mut self) {
        let d = self.depth();
        let col = self.col();
        let p = self.pos[d];
        let v = self.rows[p][col];
        let end = gallop(self.rows, col, p, self.hi[d], |x| x <= v);
        self.lo.push(p);
        self.hi.push(end);
        self.pos.push(p);
    }

    /// Pops back to the parent depth.
    fn up(&mut self) {
        self.lo.pop();
        self.hi.pop();
        self.pos.pop();
    }

    /// Rewinds the open depth to the start of its range — the leapfrog
    /// init step. A cursor whose range was opened under an *earlier*
    /// binding of the parent levels has been advanced forward; each
    /// re-entry of a join level must restart its iteration.
    #[inline]
    fn reset(&mut self) {
        let d = self.depth();
        self.pos[d] = self.lo[d];
    }
}

/// The compiled join: trie surfaces plus, per level, which patterns
/// participate in that level's intersection.
struct Engine<'a> {
    specs: Vec<TrieSpec<'a>>,
    level_parts: Vec<Vec<usize>>,
    nvars: usize,
}

/// Materializes the filtered trie of a repeated-variable pattern: scan
/// the constants' range, keep rows where every occurrence of a variable
/// agrees, project to the pattern's levels (padded with `Sym(0)`).
fn materialize_filtered(
    st: &TripleStore,
    pat: &TriplePattern,
    levels: &[usize],
    var_level: impl Fn(&str) -> usize,
) -> Vec<[Sym; 3]> {
    let bound = |t: &TermPattern| match t {
        TermPattern::Const(c) => Some(*c),
        TermPattern::Var(_) => None,
    };
    let terms = [&pat.s, &pat.p, &pat.o];
    let mut rows = Vec::new();
    'outer: for t in st.scan(bound(&pat.s), bound(&pat.p), bound(&pat.o)) {
        let mut key = [Sym(0); 3];
        for (d, &lvl) in levels.iter().enumerate() {
            let mut val: Option<Sym> = None;
            for (pos, term) in terms.into_iter().enumerate() {
                if let TermPattern::Var(name) = term {
                    if var_level(name) == lvl {
                        let x = t.position(pos);
                        match val {
                            None => val = Some(x),
                            Some(y) if y != x => continue 'outer,
                            Some(_) => {}
                        }
                    }
                }
            }
            key[d] = val.unwrap_or(Sym(0));
        }
        rows.push(key);
    }
    rows.sort_unstable();
    rows.dedup();
    rows
}

impl<'a> Engine<'a> {
    fn build(st: &'a TripleStore, plan: &Plan, tables: &'a [Vec<[Sym; 3]>]) -> Engine<'a> {
        let mut specs = Vec::with_capacity(plan.patterns.len());
        let mut table_i = 0usize;
        for pp in &plan.patterns {
            let spec = match pp.order {
                Some(order) => TrieSpec {
                    rows: st.order(order),
                    first_col: pp.consts.len(),
                    base: st.prefix_range(order, &pp.consts),
                    levels: pp.levels.clone(),
                },
                None => {
                    let rows = &tables[table_i];
                    table_i += 1;
                    TrieSpec {
                        rows,
                        first_col: 0,
                        base: 0..rows.len(),
                        levels: pp.levels.clone(),
                    }
                }
            };
            specs.push(spec);
        }
        let mut level_parts = vec![Vec::new(); plan.vars.len()];
        for (pi, spec) in specs.iter().enumerate() {
            for &lvl in &spec.levels {
                level_parts[lvl].push(pi);
            }
        }
        Engine {
            specs,
            level_parts,
            nvars: plan.vars.len(),
        }
    }
}

/// Leapfrogs the first join variable's domain: every value on which all
/// level-0 patterns agree, in ascending order. This is the unit of
/// parallel partitioning.
fn level0_candidates(engine: &Engine, ticker: &mut Ticker) -> Result<Vec<Sym>, Interrupt> {
    let mut cursors: Vec<Cursor> = engine.specs.iter().map(Cursor::new).collect();
    let parts = &engine.level_parts[0];
    let mut vals = Vec::new();
    'outer: loop {
        let mut max = Sym(0);
        for &pi in parts {
            if cursors[pi].at_end() {
                break 'outer;
            }
            max = max.max(cursors[pi].key());
        }
        let mut all_eq = true;
        for &pi in parts {
            if cursors[pi].key() < max {
                ticker.tick()?;
                cursors[pi].seek(max);
                if cursors[pi].at_end() {
                    break 'outer;
                }
                if cursors[pi].key() != max {
                    all_eq = false;
                }
            }
        }
        if !all_eq {
            continue;
        }
        vals.push(max);
        ticker.tick()?;
        let pi0 = parts[0];
        cursors[pi0].next();
        if cursors[pi0].at_end() {
            break;
        }
    }
    Ok(vals)
}

/// Recursive leapfrog join from `level` down, with all shallower levels
/// already bound and their cursors opened.
fn join_level(
    engine: &Engine,
    cursors: &mut [Cursor],
    level: usize,
    binding: &mut [Sym],
    ticker: &mut Ticker,
    meter: &mut MemMeter,
    out: &mut Vec<Vec<Sym>>,
) -> Result<(), Interrupt> {
    if level == engine.nvars {
        meter.charge((binding.len() * 4 + 24) as u64)?;
        out.push(binding.to_vec());
        return Ok(());
    }
    let parts = &engine.level_parts[level];
    for &pi in parts {
        cursors[pi].reset();
    }
    loop {
        let mut max = Sym(0);
        for &pi in parts {
            if cursors[pi].at_end() {
                return Ok(());
            }
            max = max.max(cursors[pi].key());
        }
        let mut all_eq = true;
        for &pi in parts {
            if cursors[pi].key() < max {
                ticker.tick()?;
                cursors[pi].seek(max);
                if cursors[pi].at_end() {
                    return Ok(());
                }
                if cursors[pi].key() != max {
                    all_eq = false;
                }
            }
        }
        if !all_eq {
            continue;
        }
        binding[level] = max;
        for &pi in parts {
            cursors[pi].open();
        }
        let r = join_level(engine, cursors, level + 1, binding, ticker, meter, out);
        for &pi in parts {
            cursors[pi].up();
        }
        r?;
        ticker.tick()?;
        let pi0 = parts[0];
        cursors[pi0].next();
        if cursors[pi0].at_end() {
            return Ok(());
        }
    }
}

/// Runs one contiguous chunk of the first variable's candidate domain
/// with private cursors. Returns the rows produced (in global order
/// within the chunk) and the interrupt that stopped it, if any — a
/// stopped chunk's rows are still an exact prefix of its full output.
fn run_chunk(
    engine: &Engine,
    candidates: &[Sym],
    gov: Option<&Governor>,
) -> (Vec<Vec<Sym>>, Option<Interrupt>) {
    let mut out = Vec::new();
    let err = run_chunk_inner(engine, candidates, gov, &mut out).err();
    (out, err)
}

fn run_chunk_inner(
    engine: &Engine,
    candidates: &[Sym],
    gov: Option<&Governor>,
    out: &mut Vec<Vec<Sym>>,
) -> Result<(), Interrupt> {
    let mut cursors: Vec<Cursor> = engine.specs.iter().map(Cursor::new).collect();
    let mut ticker = Ticker::maybe(gov);
    let mut meter = MemMeter::maybe(gov);
    let mut binding = vec![Sym(0); engine.nvars];
    let parts = engine.level_parts[0].clone();
    for &v in candidates {
        ticker.tick()?;
        for &pi in &parts {
            cursors[pi].seek(v);
            debug_assert!(!cursors[pi].at_end() && cursors[pi].key() == v);
            cursors[pi].open();
        }
        binding[0] = v;
        join_level(
            engine,
            &mut cursors,
            1,
            &mut binding,
            &mut ticker,
            &mut meter,
            out,
        )?;
        for &pi in &parts {
            cursors[pi].up();
        }
    }
    ticker.flush()?;
    meter.flush()?;
    Ok(())
}

/// The answer table: variables in elimination order (the row column
/// order) and one row per binding, in the engine's canonical order —
/// lexicographic in the elimination order, identical at any thread count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Solution {
    /// Column names, in elimination order.
    pub vars: Vec<VarName>,
    /// Bound values, one row per answer.
    pub rows: Vec<Vec<Sym>>,
}

impl Solution {
    /// Converts rows to the [`crate::bgp`] binding representation.
    pub fn bindings(&self) -> Vec<Binding> {
        self.rows
            .iter()
            .map(|row| self.vars.iter().cloned().zip(row.iter().copied()).collect())
            .collect()
    }
}

/// Bounds of partition `i` of `len` items split into `chunks` contiguous
/// near-equal pieces. The product `i * len` is computed in u128 so the
/// split stays exact for domains near `usize::MAX` (the naive
/// `i * len / chunks` overflows long before dividing).
fn chunk_bounds(len: usize, chunks: usize, i: usize) -> Range<usize> {
    let lo = (i as u128 * len as u128 / chunks as u128) as usize;
    let hi = ((i + 1) as u128 * len as u128 / chunks as u128) as usize;
    lo..hi
}

/// One partition's outcome: its rows plus the interrupt that cut it
/// short, if any. A panic inside an isolated worker becomes the `Err`.
type ChunkResult = Result<(Vec<Vec<Sym>>, Option<Interrupt>), EvalError>;

/// Shared implementation: plan-driven execution over `chunks` contiguous
/// partitions of the first variable's domain, optionally governed.
fn run(
    st: &TripleStore,
    bgp: &Bgp,
    plan: &Plan,
    chunks: usize,
    gov: Option<&Governor>,
) -> Result<Governed<Solution>, EvalError> {
    // Soundness gate: every execution re-derives the plan's validity
    // independently of the planner. O(patterns × vars), negligible next
    // to the join itself.
    verify_plan(st, bgp, plan).map_err(EvalError::PlanUnsound)?;
    let empty_solution = || Solution {
        vars: plan.vars.clone(),
        rows: Vec::new(),
    };
    if plan.empty.is_some() {
        return Ok(Governed::complete(empty_solution()));
    }
    if plan.vars.is_empty() {
        // All-constant patterns, all present (the planner short-circuits
        // misses): exactly one empty binding, like the empty BGP.
        let sol = Solution {
            vars: Vec::new(),
            rows: vec![Vec::new()],
        };
        if let Some(gov) = gov {
            if let Err(why) = gov.charge_results(1) {
                return Ok(Governed::partial(empty_solution(), why));
            }
        }
        return Ok(Governed::complete(sol));
    }

    // Materialize filtered (repeated-variable) patterns once, shared by
    // all workers.
    let var_level = |name: &str| plan.vars.iter().position(|v| v == name).unwrap_or(0);
    let mut tables: Vec<Vec<[Sym; 3]>> = Vec::new();
    for (pp, pat) in plan.patterns.iter().zip(&bgp.patterns) {
        if pp.filtered {
            let rows = materialize_filtered(st, pat, &pp.levels, var_level);
            if let Some(gov) = gov {
                if let Err(why) = gov.charge_memory((rows.len() * 24 + 24) as u64) {
                    return Ok(Governed::partial(empty_solution(), why));
                }
            }
            tables.push(rows);
        }
    }
    let engine = Engine::build(st, plan, &tables);

    // The first join variable's matched domain, then contiguous chunks.
    let mut ticker = Ticker::maybe(gov);
    let candidates = match level0_candidates(&engine, &mut ticker) {
        Ok(c) => c,
        Err(why) => return Ok(Governed::partial(empty_solution(), why)),
    };
    if let Err(why) = ticker.flush() {
        return Ok(Governed::partial(empty_solution(), why));
    }
    let chunks = chunks.clamp(1, candidates.len().max(1));

    let worker = |i: usize| -> ChunkResult {
        let slice = &candidates[chunk_bounds(candidates.len(), chunks, i)];
        match gov {
            Some(gov) => isolate(|| {
                #[cfg(feature = "fault-injection")]
                kgq_core::govern::fault::hit("lftj::join");
                if let Some(t) = gov.trip_state() {
                    return Err(t);
                }
                Ok(run_chunk(&engine, slice, Some(gov)))
            }),
            None => Ok(run_chunk(&engine, slice, None)),
        }
    };
    let per_chunk: Vec<ChunkResult> = if chunks == 1 {
        vec![worker(0)]
    } else {
        (0..chunks).into_par_iter().map(worker).collect()
    };

    // Deterministic merge: concatenate chunks in domain order, cutting at
    // the first interrupted chunk so the result is an exact prefix of the
    // ungoverned answer.
    let mut rows = Vec::new();
    let mut why: Option<Interrupt> = None;
    'merge: for res in per_chunk {
        match res {
            Err(EvalError::Interrupted(i)) => {
                why = Some(i);
                break 'merge;
            }
            Err(e) => return Err(e),
            Ok((chunk_rows, interrupted)) => {
                for row in chunk_rows {
                    if let Some(gov) = gov {
                        if let Err(i) = gov.charge_results(1) {
                            why = Some(i);
                            break 'merge;
                        }
                    }
                    rows.push(row);
                }
                if let Some(i) = interrupted {
                    why = Some(i);
                    break 'merge;
                }
            }
        }
    }
    let sol = Solution {
        vars: plan.vars.clone(),
        rows,
    };
    Ok(match why {
        None => Governed::complete(sol),
        Some(i) => Governed::partial(sol, i),
    })
}

/// Evaluates a BGP with the leapfrog triejoin, parallelized over
/// `KGQ_THREADS` workers (byte-identical output at any thread count).
pub fn solve(st: &TripleStore, bgp: &Bgp) -> Solution {
    solve_partitioned(st, bgp, effective_threads())
}

/// [`solve`] with an explicit partition count — the determinism tests
/// compare 1/2/4 directly without touching the global thread pool.
pub fn solve_partitioned(st: &TripleStore, bgp: &Bgp, chunks: usize) -> Solution {
    let plan = plan(st, bgp);
    solve_planned(st, bgp, &plan, chunks)
}

/// Executes a previously computed [`Plan`] (e.g. after rendering it for
/// `--explain`) over `chunks` partitions.
pub fn solve_planned(st: &TripleStore, bgp: &Bgp, plan: &Plan, chunks: usize) -> Solution {
    match run(st, bgp, plan, chunks.max(1), None) {
        Ok(g) => g.value,
        // Ungoverned runs cannot be interrupted or panic, so the only
        // reachable error is a plan that failed soundness verification —
        // and executing it anyway would mean wrong answers.
        Err(e) => panic!("refusing to execute an unsound plan: {e}"),
    }
}

/// Governed evaluation: every seek/next ticks the governor at batch
/// granularity, workers are panic-isolated, and exhaustion returns an
/// exact-prefix [`Governed`] `Partial` with the typed interrupt reason.
/// An unlimited governor is byte-identical to [`solve`].
pub fn solve_governed(
    st: &TripleStore,
    bgp: &Bgp,
    gov: &Governor,
) -> Result<Governed<Solution>, EvalError> {
    let plan = plan(st, bgp);
    run(st, bgp, &plan, effective_threads(), Some(gov))
}

/// Governed execution of a caller-supplied plan (e.g. a sketch-driven
/// one) — same verification gate, partitioning and partial semantics as
/// [`solve_governed`].
pub fn solve_planned_governed(
    st: &TripleStore,
    bgp: &Bgp,
    plan: &Plan,
    gov: &Governor,
) -> Result<Governed<Solution>, EvalError> {
    run(st, bgp, plan, effective_threads(), Some(gov))
}

/// Per-elimination-level XOR constraints for the counting recursion; an
/// answer is counted only if, at every level, its prefix hash satisfies
/// that level's constraints. Empty vectors everywhere means exact
/// counting.
#[derive(Clone, Debug, Default)]
pub struct LevelConstraints {
    /// Constraints applied to the prefix hash at each level.
    pub per_level: Vec<Vec<XorConstraint>>,
}

impl LevelConstraints {
    /// No constraints: the counter is exact.
    pub fn none(nlevels: usize) -> LevelConstraints {
        LevelConstraints {
            per_level: vec![Vec::new(); nlevels],
        }
    }

    /// Total number of constraints across all levels.
    pub fn total(&self) -> u32 {
        self.per_level.iter().map(|l| l.len() as u32).sum()
    }

    fn at(&self, level: usize) -> &[XorConstraint] {
        self.per_level.get(level).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Why the counting recursion stopped early.
enum CountStop {
    /// The count reached the caller's cap.
    Cap,
    /// The governor tripped.
    Interrupt(Interrupt),
}

/// Counting twin of [`join_level`]: same leapfrog intersection, but no
/// rows are materialized — matched bindings only bump a counter. Prefix
/// hashes are chained down the recursion so XOR constraints prune whole
/// subtrees at the level they bind. At the deepest level, a
/// single-participant unconstrained intersection is counted as a range
/// length: the remaining candidates of the one cursor are provably
/// distinct (triples are unique, and materialized tables are deduped),
/// so `hi - pos` is the exact extension count without iterating.
fn count_level(
    engine: &Engine,
    cursors: &mut [Cursor],
    level: usize,
    hash: u64,
    cons: &LevelConstraints,
    cap: u64,
    count: &mut u64,
    ticker: &mut Ticker,
) -> Result<(), CountStop> {
    let parts = &engine.level_parts[level];
    let last = level + 1 == engine.nvars;
    let lcons = cons.at(level);
    for &pi in parts {
        cursors[pi].reset();
    }
    if last && parts.len() == 1 && lcons.is_empty() {
        let pi = parts[0];
        let d = cursors[pi].depth();
        let n = (cursors[pi].hi[d] - cursors[pi].pos[d]) as u64;
        let mut left = n;
        while left > 0 {
            let step = left.min(u64::from(u32::MAX));
            ticker
                .tick_n(step as u32)
                .map_err(CountStop::Interrupt)?;
            left -= step;
        }
        *count += n;
        if *count >= cap {
            return Err(CountStop::Cap);
        }
        return Ok(());
    }
    loop {
        let mut max = Sym(0);
        for &pi in parts {
            if cursors[pi].at_end() {
                return Ok(());
            }
            max = max.max(cursors[pi].key());
        }
        let mut all_eq = true;
        for &pi in parts {
            if cursors[pi].key() < max {
                ticker.tick().map_err(CountStop::Interrupt)?;
                cursors[pi].seek(max);
                if cursors[pi].at_end() {
                    return Ok(());
                }
                if cursors[pi].key() != max {
                    all_eq = false;
                }
            }
        }
        if !all_eq {
            continue;
        }
        let h = chain_hash(hash, level, max);
        if lcons.iter().all(|c| c.passes(h)) {
            if last {
                *count += 1;
                if *count >= cap {
                    return Err(CountStop::Cap);
                }
            } else {
                for &pi in parts {
                    cursors[pi].open();
                }
                let r = count_level(engine, cursors, level + 1, h, cons, cap, count, ticker);
                for &pi in parts {
                    cursors[pi].up();
                }
                r?;
            }
        }
        ticker.tick().map_err(CountStop::Interrupt)?;
        let pi0 = parts[0];
        cursors[pi0].next();
        if cursors[pi0].at_end() {
            return Ok(());
        }
    }
}

/// Counts the answers of a planned BGP without materializing them,
/// subject to per-level XOR constraints and an early-exit cap. Returns
/// the count (clamped at `cap`) plus the interrupt that stopped it, if
/// any — a tripped run's count is a lower bound on the constrained
/// total. The count is a single scalar, so it is trivially identical at
/// any partition count; the recursion runs single-threaded.
pub(crate) fn count_planned_capped(
    st: &TripleStore,
    bgp: &Bgp,
    plan: &Plan,
    cons: &LevelConstraints,
    cap: u64,
    gov: Option<&Governor>,
) -> Result<(u64, Option<Interrupt>), EvalError> {
    verify_plan(st, bgp, plan).map_err(EvalError::PlanUnsound)?;
    if plan.empty.is_some() || cap == 0 {
        return Ok((0, None));
    }
    if plan.vars.is_empty() {
        // All-constant patterns, all present: one empty binding.
        return Ok((1, None));
    }

    let var_level = |name: &str| plan.vars.iter().position(|v| v == name).unwrap_or(0);
    let mut tables: Vec<Vec<[Sym; 3]>> = Vec::new();
    for (pp, pat) in plan.patterns.iter().zip(&bgp.patterns) {
        if pp.filtered {
            let rows = materialize_filtered(st, pat, &pp.levels, var_level);
            if let Some(gov) = gov {
                if let Err(why) = gov.charge_memory((rows.len() * 24 + 24) as u64) {
                    return Ok((0, Some(why)));
                }
            }
            tables.push(rows);
        }
    }
    let engine = Engine::build(st, plan, &tables);

    let mut ticker = Ticker::maybe(gov);
    let candidates = match level0_candidates(&engine, &mut ticker) {
        Ok(c) => c,
        Err(why) => return Ok((0, Some(why))),
    };
    let mut cursors: Vec<Cursor> = engine.specs.iter().map(Cursor::new).collect();
    let parts = engine.level_parts[0].clone();
    let mut count = 0u64;
    let mut tripped: Option<Interrupt> = None;
    'outer: for &v in &candidates {
        if let Err(why) = ticker.tick() {
            tripped = Some(why);
            break;
        }
        let h0 = chain_hash(ROOT_HASH, 0, v);
        if !cons.at(0).iter().all(|c| c.passes(h0)) {
            continue;
        }
        if engine.nvars == 1 {
            count += 1;
            if count >= cap {
                break;
            }
            continue;
        }
        for &pi in &parts {
            cursors[pi].seek(v);
            debug_assert!(!cursors[pi].at_end() && cursors[pi].key() == v);
            cursors[pi].open();
        }
        let r = count_level(
            &engine,
            &mut cursors,
            1,
            h0,
            cons,
            cap,
            &mut count,
            &mut ticker,
        );
        for &pi in &parts {
            cursors[pi].up();
        }
        match r {
            Ok(()) => {}
            Err(CountStop::Cap) => break 'outer,
            Err(CountStop::Interrupt(why)) => {
                tripped = Some(why);
                break 'outer;
            }
        }
    }
    if tripped.is_none() {
        if let Err(why) = ticker.flush() {
            tripped = Some(why);
        }
    }
    Ok((count.min(cap), tripped))
}

/// Exact number of answers of a BGP, without materializing them.
pub fn count(st: &TripleStore, bgp: &Bgp) -> u64 {
    let plan = plan(st, bgp);
    count_planned(st, bgp, &plan)
}

/// Exact answer count over a caller-supplied plan (e.g. a sketch-driven
/// one): same verification gate as [`solve_planned`].
pub fn count_planned(st: &TripleStore, bgp: &Bgp, plan: &Plan) -> u64 {
    let none = LevelConstraints::none(plan.vars.len());
    match count_planned_capped(st, bgp, plan, &none, u64::MAX, None) {
        Ok((n, _)) => n,
        // Mirrors `solve_planned`: the only ungoverned failure is an
        // unsound plan, and counting with one would be a wrong answer.
        Err(e) => panic!("refusing to execute an unsound plan: {e}"),
    }
}

/// Governed exact count over a caller-supplied plan: `Complete` with the
/// exact count, or `Partial` with the lower bound reached when the
/// budget tripped.
pub fn count_planned_governed(
    st: &TripleStore,
    bgp: &Bgp,
    plan: &Plan,
    gov: &Governor,
) -> Result<Governed<u64>, EvalError> {
    let none = LevelConstraints::none(plan.vars.len());
    let (n, tripped) = count_planned_capped(st, bgp, plan, &none, u64::MAX, Some(gov))?;
    Ok(match tripped {
        None => Governed::complete(n),
        Some(why) => Governed::partial(n, why),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_core::govern::Budget;

    fn sample() -> TripleStore {
        let mut st = TripleStore::new();
        st.insert_strs("alice", "knows", "bob");
        st.insert_strs("bob", "knows", "carol");
        st.insert_strs("carol", "knows", "alice");
        st.insert_strs("alice", "type", "Person");
        st.insert_strs("bob", "type", "Person");
        st.insert_strs("carol", "type", "Robot");
        st
    }

    fn sorted_bindings(mut v: Vec<Vec<(String, u32)>>) -> Vec<Vec<(String, u32)>> {
        for b in &mut v {
            b.sort();
        }
        v.sort();
        v
    }

    fn canon(bindings: Vec<Binding>) -> Vec<Vec<(String, u32)>> {
        sorted_bindings(
            bindings
                .into_iter()
                .map(|b| b.into_iter().map(|(k, v)| (k, v.0)).collect())
                .collect(),
        )
    }

    #[test]
    fn chunk_bounds_is_exact_near_usize_max() {
        // Partitions tile the whole range with no overflow, no gaps and
        // no overlap, even when `i * len` exceeds usize::MAX.
        for (len, chunks) in [
            (usize::MAX, 8),
            (usize::MAX - 1, 3),
            (usize::MAX / 2 + 7, 16),
            (1_000_000, 7),
        ] {
            assert_eq!(chunk_bounds(len, chunks, 0).start, 0);
            assert_eq!(chunk_bounds(len, chunks, chunks - 1).end, len);
            for i in 1..chunks {
                let prev = chunk_bounds(len, chunks, i - 1);
                let cur = chunk_bounds(len, chunks, i);
                assert_eq!(prev.end, cur.start, "len={len} chunks={chunks} i={i}");
                assert!(cur.start <= cur.end);
            }
        }
    }

    #[test]
    fn chunk_bounds_with_more_chunks_than_items() {
        // chunks > len: every item lands in exactly one (possibly empty)
        // partition and total coverage is still exact.
        let (len, chunks) = (3, 10);
        let mut covered = 0;
        for i in 0..chunks {
            let r = chunk_bounds(len, chunks, i);
            assert!(r.start <= r.end && r.end <= len);
            covered += r.end - r.start;
        }
        assert_eq!(covered, len);
        // Degenerate but legal: zero items.
        for i in 0..4 {
            assert_eq!(chunk_bounds(0, 4, i), 0..0);
        }
    }

    #[test]
    fn triangle_matches_baseline() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?a", "knows", "?b");
        q.add(&mut st, "?b", "knows", "?c");
        q.add(&mut st, "?c", "knows", "?a");
        let fast = solve(&st, &q);
        assert_eq!(fast.rows.len(), 3);
        assert_eq!(canon(fast.bindings()), canon(q.solve_baseline(&st)));
    }

    #[test]
    fn join_with_constants_matches_baseline() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "knows", "?y");
        q.add(&mut st, "?y", "type", "Person");
        let fast = solve(&st, &q);
        assert_eq!(canon(fast.bindings()), canon(q.solve_baseline(&st)));
    }

    #[test]
    fn repeated_variable_pattern() {
        let mut st = sample();
        st.insert_strs("n", "knows", "n");
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "knows", "?x");
        let fast = solve(&st, &q);
        assert_eq!(fast.rows.len(), 1);
        assert_eq!(st.term_str(fast.rows[0][0]), "n");
    }

    #[test]
    fn empty_bgp_yields_one_empty_binding() {
        let st = sample();
        let q = Bgp::new();
        let sol = solve(&st, &q);
        assert_eq!(sol.rows, vec![Vec::new()]);
    }

    #[test]
    fn constant_only_patterns() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "alice", "knows", "bob");
        assert_eq!(solve(&st, &q).rows.len(), 1);
        let mut q2 = Bgp::new();
        q2.add(&mut st, "alice", "knows", "carol");
        let plan2 = plan(&st, &q2);
        assert!(plan2.empty.is_some());
        assert!(solve(&st, &q2).rows.is_empty());
    }

    #[test]
    fn partition_counts_agree() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?a", "knows", "?b");
        q.add(&mut st, "?b", "type", "?t");
        let one = solve_partitioned(&st, &q, 1);
        for chunks in [2, 3, 4, 16] {
            assert_eq!(one, solve_partitioned(&st, &q, chunks));
        }
    }

    #[test]
    fn unlimited_governor_is_identical() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?a", "knows", "?b");
        q.add(&mut st, "?b", "knows", "?c");
        let plain = solve(&st, &q);
        let gov = Governor::unlimited();
        let governed = solve_governed(&st, &q, &gov).expect("governed eval");
        assert!(governed.completion.is_complete());
        assert_eq!(governed.value, plain);
    }

    #[test]
    fn result_budget_yields_exact_prefix() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?a", "knows", "?b");
        let full = solve(&st, &q);
        let gov = Governor::new(&Budget::unlimited().with_max_results(2));
        let partial = solve_governed(&st, &q, &gov).expect("governed eval");
        assert_eq!(
            partial.completion,
            kgq_core::govern::Completion::Partial(Interrupt::ResultBudget)
        );
        assert_eq!(partial.value.rows, full.rows[..2].to_vec());
    }

    #[test]
    fn cancel_token_interrupts() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?a", "knows", "?b");
        let gov = Governor::unlimited();
        gov.cancel_token().cancel();
        let out = solve_governed(&st, &q, &gov).expect("governed eval");
        assert_eq!(
            out.completion,
            kgq_core::govern::Completion::Partial(Interrupt::Cancelled)
        );
    }

    #[test]
    fn explain_renders_order_and_cardinalities() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "knows", "?y");
        q.add(&mut st, "?y", "type", "Person");
        let p = plan(&st, &q);
        let text = p.render(&st, &q);
        assert!(text.contains("variable order:"), "{text}");
        assert!(text.contains("card"), "{text}");
        assert!(text.contains("?y"), "{text}");
        // The elimination order carries each variable's exact prefix
        // count from the greedy selection.
        assert!(text.contains("?y (card 2)"), "{text}");
        assert_eq!(p.var_cards.len(), p.vars.len());
    }

    #[test]
    fn planner_output_passes_verification() {
        let mut st = sample();
        st.insert_strs("n", "knows", "n");
        let queries: Vec<Bgp> = {
            let mut qs = Vec::new();
            let mut tri = Bgp::new();
            tri.add(&mut st, "?a", "knows", "?b");
            tri.add(&mut st, "?b", "knows", "?c");
            tri.add(&mut st, "?c", "knows", "?a");
            qs.push(tri);
            let mut rep = Bgp::new();
            rep.add(&mut st, "?x", "knows", "?x");
            qs.push(rep);
            let mut consts = Bgp::new();
            consts.add(&mut st, "alice", "knows", "bob");
            qs.push(consts);
            let mut missing = Bgp::new();
            missing.add(&mut st, "?x", "likes", "?y");
            qs.push(missing);
            qs.push(Bgp::new());
            qs
        };
        for q in &queries {
            let p = plan(&st, q);
            assert_eq!(verify_plan(&st, q, &p), Ok(()));
        }
    }

    #[test]
    fn tampered_plans_are_rejected() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "knows", "?y");
        q.add(&mut st, "?y", "type", "?t");
        let good = plan(&st, &q);

        // Swapping the elimination order invalidates every index choice.
        let mut swapped = good.clone();
        swapped.vars.swap(0, 1);
        assert!(verify_plan(&st, &q, &swapped).is_err());

        // A wrong cardinality is a stale or fabricated estimate.
        let mut stale = good.clone();
        stale.patterns[0].cardinality += 1;
        assert!(verify_plan(&st, &q, &stale).is_err());

        // Claiming emptiness over a satisfiable BGP would drop answers.
        let mut lying = good.clone();
        lying.empty = Some("fabricated".to_owned());
        assert!(verify_plan(&st, &q, &lying).is_err());

        // Flipping a filtered flag breaks the access path contract.
        let mut flipped = good.clone();
        flipped.patterns[0].filtered = true;
        flipped.patterns[0].order = None;
        assert!(verify_plan(&st, &q, &flipped).is_err());

        // The execution gate surfaces the same failure as a panic rather
        // than silently returning wrong rows.
        let res = std::panic::catch_unwind(|| solve_planned(&st, &q, &swapped, 1));
        assert!(res.is_err());
    }

    #[test]
    fn disconnected_patterns_form_cross_product() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "knows", "?y");
        q.add(&mut st, "?u", "type", "?t");
        let fast = solve(&st, &q);
        assert_eq!(fast.rows.len(), 9);
        assert_eq!(canon(fast.bindings()), canon(q.solve_baseline(&st)));
    }

    #[test]
    fn variable_predicate_matches_baseline() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "alice", "?p", "?o");
        let fast = solve(&st, &q);
        assert_eq!(canon(fast.bindings()), canon(q.solve_baseline(&st)));
    }
}
