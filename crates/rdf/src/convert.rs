//! RDF ⇄ labeled graph correspondence.
//!
//! The paper treats RDF as a class of labeled graphs: a triple
//! `(s, p, o)` "represents an edge from `s` to `o` with label `p`". The
//! converse direction uses `rdf:type` triples for node labels. With this
//! correspondence every algorithm of `kgq-core` (path queries, counting,
//! generation, enumeration) runs on RDF data.

use crate::store::TripleStore;
use kgq_graph::{GraphError, LabeledGraph};
use std::collections::HashMap;

/// The predicate used for node labels.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Default label for nodes without an `rdf:type` triple.
pub const UNTYPED: &str = "Resource";

/// Converts an RDF graph to a labeled graph.
///
/// * every term occurring as a subject or object becomes a node;
/// * `(s, rdf:type, C)` sets the label of `s` to `C` (the first such
///   triple in term order wins; `C` itself also becomes a node labeled
///   `Class` if it appears only in type position);
/// * every other triple `(s, p, o)` becomes an edge labeled `p` with a
///   synthesized identifier.
pub fn rdf_to_labeled(st: &TripleStore) -> Result<LabeledGraph, GraphError> {
    let type_term = st.get_term(RDF_TYPE);
    // First pass: choose labels.
    let mut labels: HashMap<&str, &str> = HashMap::new();
    let mut is_class: HashMap<&str, bool> = HashMap::new();
    for t in st.iter() {
        if Some(t.p) == type_term {
            let s = st.term_str(t.s);
            let c = st.term_str(t.o);
            labels.entry(s).or_insert(c);
            is_class.insert(c, true);
        }
    }
    let mut g = LabeledGraph::new();
    let ensure_node =
        |g: &mut LabeledGraph,
         name: &str,
         labels: &HashMap<&str, &str>,
         is_class: &HashMap<&str, bool>|
         -> Result<kgq_graph::NodeId, GraphError> {
            if let Some(n) = g.node_named(name) {
                return Ok(n);
            }
            let label = labels.get(name).copied().unwrap_or(
                if is_class.get(name).copied().unwrap_or(false) {
                    "Class"
                } else {
                    UNTYPED
                },
            );
            g.add_node(name, label)
        };
    let mut eid = 0usize;
    for t in st.iter() {
        if Some(t.p) == type_term {
            // Represented as the node label; classes referenced elsewhere
            // still materialize below if they occur in other triples.
            continue;
        }
        let s = st.term_str(t.s).to_owned();
        let o = st.term_str(t.o).to_owned();
        let p = st.term_str(t.p).to_owned();
        let sn = ensure_node(&mut g, &s, &labels, &is_class)?;
        let on = ensure_node(&mut g, &o, &labels, &is_class)?;
        g.add_edge(&format!("t{eid}"), sn, on, &p)?;
        eid += 1;
    }
    // Materialize isolated typed subjects (only appear in type triples).
    for t in st.iter() {
        if Some(t.p) == type_term {
            let s = st.term_str(t.s).to_owned();
            ensure_node(&mut g, &s, &labels, &is_class)?;
        }
    }
    Ok(g)
}

/// Converts a labeled graph to RDF: edges become triples, node labels
/// become `rdf:type` triples. Edge identifiers are dropped — parallel
/// edges with the same label collapse (RDF graphs are triple *sets*, as
/// the paper notes when contrasting the models).
pub fn labeled_to_rdf(g: &LabeledGraph) -> TripleStore {
    let mut st = TripleStore::new();
    let ty = st.term(RDF_TYPE);
    let mut batch = Vec::new();
    for n in g.base().nodes() {
        let name = g.node_name(n).to_owned();
        let label = g.label_name(g.node_label(n)).to_owned();
        batch.push(crate::store::Triple {
            s: st.term(&name),
            p: ty,
            o: st.term(&label),
        });
    }
    for e in g.base().edges() {
        let (s, o) = g.base().endpoints(e);
        let sv = g.node_name(s).to_owned();
        let ov = g.node_name(o).to_owned();
        let pv = g.label_name(g.edge_label(e)).to_owned();
        batch.push(crate::store::Triple {
            s: st.term(&sv),
            p: st.term(&pv),
            o: st.term(&ov),
        });
    }
    st.extend(batch);
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_core::eval::matching_starts;
    use kgq_core::model::LabeledView;
    use kgq_core::parser::parse_expr;
    use kgq_graph::figures::figure2_labeled;

    fn sample_store() -> TripleStore {
        let mut st = TripleStore::new();
        st.insert_strs("alice", RDF_TYPE, "person");
        st.insert_strs("pedro", RDF_TYPE, "infected");
        st.insert_strs("b7", RDF_TYPE, "bus");
        st.insert_strs("alice", "rides", "b7");
        st.insert_strs("pedro", "rides", "b7");
        st
    }

    #[test]
    fn rdf_to_labeled_basic() {
        let st = sample_store();
        let g = rdf_to_labeled(&st).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let alice = g.node_named("alice").unwrap();
        assert_eq!(g.label_name(g.node_label(alice)), "person");
    }

    #[test]
    fn path_queries_run_on_rdf() {
        let st = sample_store();
        let mut g = rdf_to_labeled(&st).unwrap();
        let e = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let starts = matching_starts(&view, &e);
        assert_eq!(starts.len(), 1);
        assert_eq!(g.node_name(starts[0]), "alice");
    }

    #[test]
    fn labeled_round_trip_preserves_queries() {
        let g0 = figure2_labeled();
        let st = labeled_to_rdf(&g0);
        let mut g1 = rdf_to_labeled(&st).unwrap();
        // Parallel-free figure: edge and node counts survive.
        assert_eq!(g1.node_count(), g0.node_count());
        assert_eq!(g1.edge_count(), g0.edge_count());
        let e = parse_expr("?person/rides/?bus/rides^-/?infected", g1.consts_mut()).unwrap();
        let view = LabeledView::new(&g1);
        let names: Vec<&str> = matching_starts(&view, &e)
            .into_iter()
            .map(|n| g1.node_name(n))
            .collect();
        assert_eq!(names, vec!["n1", "n4"]);
    }

    #[test]
    fn untyped_nodes_get_default_label() {
        let mut st = TripleStore::new();
        st.insert_strs("a", "p", "b");
        let g = rdf_to_labeled(&st).unwrap();
        let a = g.node_named("a").unwrap();
        assert_eq!(g.label_name(g.node_label(a)), UNTYPED);
    }

    #[test]
    fn isolated_typed_subject_materializes() {
        let mut st = TripleStore::new();
        st.insert_strs("lonely", RDF_TYPE, "person");
        let g = rdf_to_labeled(&st).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn parallel_edges_collapse_in_rdf() {
        let mut g = kgq_graph::LabeledGraph::new();
        let a = g.add_node("a", "x").unwrap();
        let b = g.add_node("b", "x").unwrap();
        g.add_edge("e1", a, b, "p").unwrap();
        g.add_edge("e2", a, b, "p").unwrap();
        let st = labeled_to_rdf(&g);
        // 2 type triples + 1 collapsed edge triple.
        assert_eq!(st.len(), 3);
    }
}
