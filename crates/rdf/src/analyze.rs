//! Static analysis of basic graph patterns, in the spirit of
//! `kgq-core::analyze`'s RPQ checks: findings are typed
//! [`Diagnostic`]s with the same severity ladder, and a provably-empty
//! verdict short-circuits evaluation before the planner runs.
//!
//! Checks:
//!
//! * `empty-pattern` (deny) — a pattern's constant positions match no
//!   triple of this store, so the whole conjunction is empty. This is
//!   decided by the same exact prefix counts the planner uses.
//! * `unused-variable` (warn) — a variable occurs in exactly one pattern
//!   position and is not projected: it constrains nothing and usually
//!   indicates a typo.
//! * `cartesian-product` (warn) — the patterns fall into two or more
//!   variable-disjoint components, so the answer is a cross product.
//! * `duplicate-pattern` (note) — the same triple pattern is listed
//!   twice; BGPs are conjunctions, so the duplicate is redundant.

use crate::bgp::{Bgp, TermPattern, TriplePattern, VarName};
use crate::store::TripleStore;
use kgq_core::analyze::{Diagnostic, Severity};

/// The static verdict for one BGP against one store.
#[derive(Clone, Debug, Default)]
pub struct BgpReport {
    /// Findings, most severe first.
    pub diagnostics: Vec<Diagnostic>,
    /// True when some pattern provably matches nothing, so evaluation
    /// can return the empty answer without planning.
    pub provably_empty: bool,
}

impl BgpReport {
    /// True when any finding is [`Severity::Deny`].
    pub fn denied(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// Renders the findings one per line (the `--explain` surface);
    /// `(none)` when the BGP is clean.
    pub fn render(&self) -> String {
        if self.diagnostics.is_empty() {
            return "(none)\n".to_owned();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
        }
        out
    }
}

fn term_text(st: &TripleStore, t: &TermPattern) -> String {
    match t {
        TermPattern::Const(s) => st.term_str(*s).to_owned(),
        TermPattern::Var(v) => format!("?{v}"),
    }
}

fn pattern_text(st: &TripleStore, p: &TriplePattern) -> String {
    format!(
        "({} {} {})",
        term_text(st, &p.s),
        term_text(st, &p.p),
        term_text(st, &p.o)
    )
}

/// Runs the static checks. `projected` lists the variables the caller
/// will keep (e.g. the SELECT clause); `None` means all variables are
/// observed, which disables the unused-variable lint.
pub fn analyze_bgp(st: &TripleStore, bgp: &Bgp, projected: Option<&[VarName]>) -> BgpReport {
    let mut report = BgpReport::default();

    // Emptiness of each pattern's constant prefix — exact, via the same
    // binary-searched counts the planner uses.
    for pat in &bgp.patterns {
        let bound = |t: &TermPattern| match t {
            TermPattern::Const(c) => Some(*c),
            TermPattern::Var(_) => None,
        };
        if st.count(bound(&pat.s), bound(&pat.p), bound(&pat.o)) == 0 {
            report.provably_empty = true;
            report.diagnostics.push(Diagnostic {
                severity: Severity::Deny,
                code: "empty-pattern",
                message: format!(
                    "pattern {} matches no triple of this store; the conjunction is empty",
                    pattern_text(st, pat)
                ),
                span: None,
            });
        }
    }

    // Variable occurrence counts across all pattern positions.
    let mut occurrences: Vec<(VarName, usize)> = Vec::new();
    for pat in &bgp.patterns {
        for term in [&pat.s, &pat.p, &pat.o] {
            if let TermPattern::Var(name) = term {
                match occurrences.iter_mut().find(|(v, _)| v == name) {
                    Some((_, n)) => *n += 1,
                    None => occurrences.push((name.clone(), 1)),
                }
            }
        }
    }
    if let Some(projected) = projected {
        for (name, n) in &occurrences {
            if *n == 1 && !projected.contains(name) {
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Warn,
                    code: "unused-variable",
                    message: format!(
                        "variable ?{name} occurs once and is not projected; it constrains nothing"
                    ),
                    span: None,
                });
            }
        }
    }

    // Connectivity: union-find over variables shared between patterns.
    // Patterns without variables are singleton components only if other
    // patterns exist; constants never connect.
    let with_vars: Vec<Vec<&VarName>> = bgp
        .patterns
        .iter()
        .map(|pat| {
            [&pat.s, &pat.p, &pat.o]
                .into_iter()
                .filter_map(|t| match t {
                    TermPattern::Var(v) => Some(v),
                    TermPattern::Const(_) => None,
                })
                .collect()
        })
        .collect();
    let n = bgp.patterns.len();
    let mut comp: Vec<usize> = (0..n).collect();
    fn root(comp: &mut [usize], mut i: usize) -> usize {
        while comp[i] != i {
            comp[i] = comp[comp[i]];
            i = comp[i];
        }
        i
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if with_vars[i].iter().any(|v| with_vars[j].contains(v)) {
                let (a, b) = (root(&mut comp, i), root(&mut comp, j));
                comp[a] = b;
            }
        }
    }
    let mut roots: Vec<usize> = (0..n)
        .filter(|&i| !with_vars[i].is_empty())
        .map(|i| root(&mut comp, i))
        .collect();
    roots.sort_unstable();
    roots.dedup();
    if roots.len() > 1 {
        report.diagnostics.push(Diagnostic {
            severity: Severity::Warn,
            code: "cartesian-product",
            message: format!(
                "patterns form {} variable-disjoint groups; the answer is their cross product",
                roots.len()
            ),
            span: None,
        });
    }

    // Duplicate patterns.
    for i in 0..n {
        for j in (i + 1)..n {
            if bgp.patterns[i] == bgp.patterns[j] {
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Note,
                    code: "duplicate-pattern",
                    message: format!(
                        "pattern {} is listed twice; the duplicate is redundant",
                        pattern_text(st, &bgp.patterns[i])
                    ),
                    span: None,
                });
            }
        }
    }

    report
        .diagnostics
        .sort_by_key(|d| std::cmp::Reverse(d.severity));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TripleStore {
        let mut st = TripleStore::new();
        st.insert_strs("alice", "knows", "bob");
        st.insert_strs("bob", "knows", "carol");
        st.insert_strs("alice", "type", "Person");
        st
    }

    #[test]
    fn unsatisfiable_constant_is_denied() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "likes", "?y");
        let rep = analyze_bgp(&st, &q, None);
        assert!(rep.provably_empty);
        assert!(rep.denied());
        assert!(rep.render().contains("empty-pattern"));
    }

    #[test]
    fn unused_variable_warns_only_when_unprojected() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "knows", "?y");
        let projected = vec!["x".to_owned()];
        let rep = analyze_bgp(&st, &q, Some(&projected));
        assert!(rep
            .diagnostics
            .iter()
            .any(|d| d.code == "unused-variable" && d.message.contains("?y")));
        // Projecting ?y silences the warning.
        let both = vec!["x".to_owned(), "y".to_owned()];
        let rep2 = analyze_bgp(&st, &q, Some(&both));
        assert!(rep2.diagnostics.iter().all(|d| d.code != "unused-variable"));
        // Shared variables are never "unused".
        let mut q2 = Bgp::new();
        q2.add(&mut st, "?x", "knows", "?y");
        q2.add(&mut st, "?y", "type", "Person");
        let rep3 = analyze_bgp(&st, &q2, Some(&projected));
        assert!(rep3.diagnostics.iter().all(|d| d.code != "unused-variable"));
    }

    #[test]
    fn disjoint_groups_warn_as_cartesian() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "knows", "?y");
        q.add(&mut st, "?u", "type", "?t");
        let rep = analyze_bgp(&st, &q, None);
        assert!(rep
            .diagnostics
            .iter()
            .any(|d| d.code == "cartesian-product"));
        assert!(!rep.provably_empty);
    }

    #[test]
    fn duplicates_are_noted_and_clean_queries_are_clean() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "knows", "?y");
        q.add(&mut st, "?x", "knows", "?y");
        let rep = analyze_bgp(&st, &q, None);
        assert!(rep
            .diagnostics
            .iter()
            .any(|d| d.code == "duplicate-pattern"));

        let mut clean = Bgp::new();
        clean.add(&mut st, "?x", "knows", "?y");
        let rep2 = analyze_bgp(&st, &clean, None);
        assert!(rep2.diagnostics.is_empty());
        assert_eq!(rep2.render(), "(none)\n");
    }
}
