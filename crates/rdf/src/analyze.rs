//! Static analysis of basic graph patterns, in the spirit of
//! `kgq-core::analyze`'s RPQ checks: findings are typed
//! [`Diagnostic`]s with the same severity ladder, and a provably-empty
//! verdict short-circuits evaluation before the planner runs.
//!
//! Checks:
//!
//! * `empty-pattern` (deny) — a pattern's constant positions match no
//!   triple of this store, so the whole conjunction is empty. This is
//!   decided by the same exact prefix counts the planner uses.
//! * `unknown-predicate` (deny) — a constant predicate does not occur in
//!   the store vocabulary at all: the schema-level cause of emptiness,
//!   reported separately so typos are recognizable as typos.
//! * `unbound-projection` (deny) — a projected variable occurs in no
//!   pattern, so the query is unsafe (SPARQL's variable-safety rule).
//! * `unused-variable` (warn) — a variable occurs in exactly one pattern
//!   position and is not projected: it constrains nothing and usually
//!   indicates a typo.
//! * `cartesian-product` (warn) — the patterns fall into two or more
//!   variable-disjoint components, so the answer is a cross product.
//! * `unbounded-scan` (warn) — a pattern with no constant position joins
//!   against every triple of the store.
//! * `duplicate-pattern` (note) — a pattern repeats another one exactly
//!   or up to a renaming of its local variables; BGPs are conjunctions,
//!   so the duplicate is redundant.
//!
//! Besides the diagnostics, every report carries a [`BgpVerdict`]: the
//! join-structure verdict (α-acyclic by GYO reduction or cyclic) and an
//! AGM-bound exponent estimate (an integral edge cover, refined to n/2
//! on pure-cycle components), mirroring the complexity ladders of
//! *Complexity of Evaluating GQL Queries*.

use crate::bgp::{Bgp, TermPattern, TriplePattern, VarName};
use crate::store::TripleStore;
use kgq_core::analyze::{Diagnostic, Severity};

/// Structural complexity verdict for one BGP: join shape and the
/// worst-case output-size exponent of the AGM bound.
#[derive(Clone, Debug, PartialEq)]
pub struct BgpVerdict {
    /// Number of distinct variables joined.
    pub variables: usize,
    /// True when the variable hypergraph is α-acyclic (GYO-reducible);
    /// acyclic joins admit linear-time (Yannakakis-style) evaluation.
    pub acyclic: bool,
    /// Estimated AGM exponent ρ: answers are bounded by |store|^ρ.
    /// Computed as a minimum integral edge cover of the variable
    /// hypergraph, refined to n/2 on components that are a single cycle
    /// (so a triangle reports the tight 1.5).
    pub agm_exponent: f64,
    /// Sketch-estimated answer count, when a cost-model pass supplied
    /// one (the `--explain` path plans with [`crate::sketch`] statistics
    /// and records its final cumulative prefix estimate here). `None`
    /// when analysis ran without sketches.
    pub est_answers: Option<f64>,
}

impl Default for BgpVerdict {
    fn default() -> Self {
        BgpVerdict {
            variables: 0,
            acyclic: true,
            agm_exponent: 0.0,
            est_answers: None,
        }
    }
}

impl BgpVerdict {
    /// Renders the verdict one `key: value` per line (the `--explain`
    /// and `kgq analyze` surface).
    pub fn render(&self) -> String {
        let exp = if (self.agm_exponent - self.agm_exponent.round()).abs() < 1e-9 {
            format!("{}", self.agm_exponent.round() as u64)
        } else {
            format!("{:.1}", self.agm_exponent)
        };
        let mut out = format!(
            "join variables: {}\nstructure: {}\nagm exponent: {} (worst-case answers <= |store|^{})\n",
            self.variables,
            if self.acyclic {
                "acyclic (GYO-reducible)"
            } else {
                "cyclic"
            },
            exp,
            exp
        );
        if let Some(est) = self.est_answers {
            out.push_str(&format!("estimated answers: ~{est:.0} (cardinality sketch)\n"));
        }
        out
    }
}

/// The static verdict for one BGP against one store.
#[derive(Clone, Debug, Default)]
pub struct BgpReport {
    /// Findings, most severe first.
    pub diagnostics: Vec<Diagnostic>,
    /// True when some pattern provably matches nothing, so evaluation
    /// can return the empty answer without planning.
    pub provably_empty: bool,
    /// Join-structure and AGM-bound complexity verdict.
    pub verdict: BgpVerdict,
}

impl BgpReport {
    /// True when any finding is [`Severity::Deny`].
    pub fn denied(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// Renders the findings one per line (the `--explain` surface);
    /// `(none)` when the BGP is clean.
    pub fn render(&self) -> String {
        if self.diagnostics.is_empty() {
            return "(none)\n".to_owned();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
        }
        out
    }
}

fn term_text(st: &TripleStore, t: &TermPattern) -> String {
    match t {
        TermPattern::Const(s) => st.term_str(*s).to_owned(),
        TermPattern::Var(v) => format!("?{v}"),
    }
}

fn pattern_text(st: &TripleStore, p: &TriplePattern) -> String {
    format!(
        "({} {} {})",
        term_text(st, &p.s),
        term_text(st, &p.p),
        term_text(st, &p.o)
    )
}

/// True when the variable hypergraph is α-acyclic, decided by GYO ear
/// removal: repeatedly delete vertices private to one edge and edges
/// contained in another edge; acyclic iff everything vanishes.
fn gyo_acyclic(edges: &[Vec<usize>]) -> bool {
    let mut edges: Vec<Vec<usize>> = edges.iter().filter(|e| !e.is_empty()).cloned().collect();
    loop {
        let mut changed = false;
        // Vertices occurring in exactly one edge are ears: remove them.
        let mut occ: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for e in &edges {
            for &v in e {
                *occ.entry(v).or_insert(0) += 1;
            }
        }
        for e in &mut edges {
            let before = e.len();
            e.retain(|v| occ[v] > 1);
            changed |= e.len() != before;
        }
        // Edges contained in another edge (including duplicates, kept
        // once via index order) are absorbed: remove them.
        let snapshot = edges.clone();
        let mut keep = vec![true; snapshot.len()];
        for i in 0..snapshot.len() {
            if snapshot[i].is_empty() {
                keep[i] = false;
                changed = true;
                continue;
            }
            for (j, other) in snapshot.iter().enumerate() {
                if i == j || !keep[j] {
                    continue;
                }
                let subset = snapshot[i].iter().all(|v| other.contains(v));
                let proper = snapshot[i].len() < other.len();
                if subset && (proper || j < i) {
                    keep[i] = false;
                    changed = true;
                    break;
                }
            }
        }
        edges = snapshot
            .into_iter()
            .zip(keep)
            .filter_map(|(e, k)| k.then_some(e))
            .collect();
        if edges.is_empty() {
            return true;
        }
        if !changed {
            return false;
        }
    }
}

/// Minimum integral edge cover of `vars` vertices by `edges`, exact via
/// subset DP for up to 16 vertices, greedy beyond. Every vertex is
/// guaranteed to occur in some edge (variables come from patterns).
fn integral_cover(nvars: usize, edges: &[Vec<usize>]) -> usize {
    if nvars == 0 {
        return 0;
    }
    let masks: Vec<u32> = edges
        .iter()
        .filter(|e| !e.is_empty())
        .map(|e| e.iter().fold(0u32, |m, &v| m | (1 << v)))
        .collect();
    let full: u32 = if nvars >= 32 {
        u32::MAX
    } else {
        (1u32 << nvars) - 1
    };
    if nvars <= 16 {
        let mut dp = vec![usize::MAX; (full as usize) + 1];
        dp[0] = 0;
        for mask in 0..=full {
            let cost = dp[mask as usize];
            if cost == usize::MAX {
                continue;
            }
            for &em in &masks {
                let next = (mask | em) as usize;
                if dp[next] > cost + 1 {
                    dp[next] = cost + 1;
                }
            }
        }
        dp[full as usize]
    } else {
        // Greedy set cover: good enough as an estimate for very wide BGPs.
        let mut covered: u32 = 0;
        let mut picks = 0;
        while covered != full {
            let best = masks
                .iter()
                .max_by_key(|&&m| (m & !covered).count_ones())
                .copied()
                .unwrap_or(0);
            if best & !covered == 0 {
                break; // defensive: cannot make progress
            }
            covered |= best;
            picks += 1;
        }
        picks
    }
}

/// AGM exponent estimate: sum over connected components of the variable
/// hypergraph; a component that is exactly one cycle of binary edges
/// contributes n/2 (the tight fractional cover), anything else its
/// minimum integral edge cover.
fn agm_exponent(nvars: usize, edges: &[Vec<usize>]) -> f64 {
    if nvars == 0 {
        return 0.0;
    }
    // Connected components over variables (union-find).
    let mut comp: Vec<usize> = (0..nvars).collect();
    fn root(comp: &mut [usize], mut i: usize) -> usize {
        while comp[i] != i {
            comp[i] = comp[comp[i]];
            i = comp[i];
        }
        i
    }
    for e in edges {
        for w in e.windows(2) {
            let (a, b) = (root(&mut comp, w[0]), root(&mut comp, w[1]));
            comp[a] = b;
        }
    }
    let mut total = 0.0;
    let comp_roots: Vec<usize> = (0..nvars).map(|v| root(&mut comp, v)).collect();
    let mut distinct = comp_roots.clone();
    distinct.sort_unstable();
    distinct.dedup();
    for r in distinct {
        let vars: Vec<usize> = (0..nvars).filter(|&v| comp_roots[v] == r).collect();
        let local: Vec<Vec<usize>> = edges
            .iter()
            .filter(|e| !e.is_empty() && comp_roots[e[0]] == r)
            .map(|e| {
                e.iter()
                    .filter_map(|v| vars.iter().position(|x| x == v))
                    .collect()
            })
            .collect();
        // Single-cycle detection: all edges binary and distinct, every
        // vertex of degree exactly 2, as many edges as vertices.
        let mut deg = vec![0usize; vars.len()];
        let mut binary = true;
        let mut distinct_edges: Vec<Vec<usize>> = Vec::new();
        for e in &local {
            let mut s = e.clone();
            s.sort_unstable();
            s.dedup();
            if s.len() != 2 {
                binary = false;
            }
            if !distinct_edges.contains(&s) {
                distinct_edges.push(s.clone());
                for &v in &s {
                    deg[v] += 1;
                }
            }
        }
        let cycle = binary
            && vars.len() >= 3
            && distinct_edges.len() == vars.len()
            && deg.iter().all(|&d| d == 2);
        if cycle {
            total += vars.len() as f64 / 2.0;
        } else {
            total += integral_cover(vars.len(), &local) as f64;
        }
    }
    // A join has at least linear output potential whenever variables exist.
    total.max(1.0)
}

/// Runs the static checks. `projected` lists the variables the caller
/// will keep (e.g. the SELECT clause); `None` means all variables are
/// observed, which disables the unused-variable lint and restricts the
/// duplicate lint to byte-equal patterns (renaming a duplicate away
/// would change the visible bindings).
pub fn analyze_bgp(st: &TripleStore, bgp: &Bgp, projected: Option<&[VarName]>) -> BgpReport {
    let mut report = BgpReport::default();

    // Emptiness of each pattern's constant prefix — exact, via the same
    // binary-searched counts the planner uses. A constant predicate
    // missing from the vocabulary entirely gets the schema-level deny.
    for pat in &bgp.patterns {
        let bound = |t: &TermPattern| match t {
            TermPattern::Const(c) => Some(*c),
            TermPattern::Var(_) => None,
        };
        if let TermPattern::Const(p) = &pat.p {
            if st.count(None, Some(*p), None) == 0 {
                report.provably_empty = true;
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Deny,
                    code: "unknown-predicate",
                    message: format!(
                        "predicate {} occurs in no triple of this store's vocabulary; pattern {} is empty",
                        st.term_str(*p),
                        pattern_text(st, pat)
                    ),
                    span: None,
                });
            }
        }
        if st.count(bound(&pat.s), bound(&pat.p), bound(&pat.o)) == 0 {
            report.provably_empty = true;
            report.diagnostics.push(Diagnostic {
                severity: Severity::Deny,
                code: "empty-pattern",
                message: format!(
                    "pattern {} matches no triple of this store; the conjunction is empty",
                    pattern_text(st, pat)
                ),
                span: None,
            });
        }
    }

    // Variable occurrence counts across all pattern positions.
    let mut occurrences: Vec<(VarName, usize)> = Vec::new();
    for pat in &bgp.patterns {
        for term in [&pat.s, &pat.p, &pat.o] {
            if let TermPattern::Var(name) = term {
                match occurrences.iter_mut().find(|(v, _)| v == name) {
                    Some((_, n)) => *n += 1,
                    None => occurrences.push((name.clone(), 1)),
                }
            }
        }
    }
    if let Some(projected) = projected {
        for (name, n) in &occurrences {
            if *n == 1 && !projected.contains(name) {
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Warn,
                    code: "unused-variable",
                    message: format!(
                        "variable ?{name} occurs once and is not projected; it constrains nothing"
                    ),
                    span: None,
                });
            }
        }
        // Variable safety: every projected variable must occur somewhere.
        for name in projected {
            if !occurrences.iter().any(|(v, _)| v == name) {
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Deny,
                    code: "unbound-projection",
                    message: format!(
                        "projected variable ?{name} occurs in no pattern; the query is unsafe"
                    ),
                    span: None,
                });
            }
        }
    }

    // Connectivity: union-find over variables shared between patterns.
    // Patterns without variables are singleton components only if other
    // patterns exist; constants never connect.
    let with_vars: Vec<Vec<&VarName>> = bgp
        .patterns
        .iter()
        .map(|pat| {
            [&pat.s, &pat.p, &pat.o]
                .into_iter()
                .filter_map(|t| match t {
                    TermPattern::Var(v) => Some(v),
                    TermPattern::Const(_) => None,
                })
                .collect()
        })
        .collect();
    let n = bgp.patterns.len();
    let mut comp: Vec<usize> = (0..n).collect();
    fn root(comp: &mut [usize], mut i: usize) -> usize {
        while comp[i] != i {
            comp[i] = comp[comp[i]];
            i = comp[i];
        }
        i
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if with_vars[i].iter().any(|v| with_vars[j].contains(v)) {
                let (a, b) = (root(&mut comp, i), root(&mut comp, j));
                comp[a] = b;
            }
        }
    }
    let mut roots: Vec<usize> = (0..n)
        .filter(|&i| !with_vars[i].is_empty())
        .map(|i| root(&mut comp, i))
        .collect();
    roots.sort_unstable();
    roots.dedup();
    if roots.len() > 1 {
        report.diagnostics.push(Diagnostic {
            severity: Severity::Warn,
            code: "cartesian-product",
            message: format!(
                "patterns form {} variable-disjoint groups; the answer is their cross product",
                roots.len()
            ),
            span: None,
        });
    }

    // Unbounded scans: a pattern with no constant position joins against
    // every triple of the store. Only meaningful inside a join — a lone
    // all-variable pattern is a legitimate dump.
    if n > 1 {
        for (i, pat) in bgp.patterns.iter().enumerate() {
            let all_vars = [&pat.s, &pat.p, &pat.o]
                .into_iter()
                .all(|t| matches!(t, TermPattern::Var(_)));
            if all_vars && !with_vars[i].is_empty() {
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Warn,
                    code: "unbounded-scan",
                    message: format!(
                        "pattern {} has no constant position; every triple of the store joins here",
                        pattern_text(st, pat)
                    ),
                    span: None,
                });
            }
        }
    }

    // Duplicate patterns: byte-equal always, and — when a projection
    // tells us which variables are observable — equal up to a renaming
    // of variables local to the duplicate.
    for i in 0..n {
        for j in (i + 1)..n {
            let exact = bgp.patterns[i] == bgp.patterns[j];
            let renamed = !exact
                && renaming_duplicate(&bgp.patterns[i], &bgp.patterns[j], |v| {
                    // Frozen: observable elsewhere. With no projection
                    // every variable is observable.
                    match projected {
                        None => true,
                        Some(proj) => {
                            proj.contains(v)
                                || bgp
                                    .patterns
                                    .iter()
                                    .enumerate()
                                    .any(|(k, p)| k != j && pattern_mentions(p, v))
                        }
                    }
                });
            if exact || renamed {
                report.diagnostics.push(Diagnostic {
                    severity: Severity::Note,
                    code: "duplicate-pattern",
                    message: if exact {
                        format!(
                            "pattern {} is listed twice; the duplicate is redundant",
                            pattern_text(st, &bgp.patterns[i])
                        )
                    } else {
                        format!(
                            "pattern {} equals pattern {} up to renaming of its local variables; the duplicate is redundant",
                            pattern_text(st, &bgp.patterns[j]),
                            pattern_text(st, &bgp.patterns[i])
                        )
                    },
                    span: None,
                });
            }
        }
    }

    // Structural verdict: hypergraph of variables, one edge per pattern.
    let mut vars: Vec<&VarName> = Vec::new();
    for vs in &with_vars {
        for v in vs {
            if !vars.contains(v) {
                vars.push(v);
            }
        }
    }
    let edges: Vec<Vec<usize>> = with_vars
        .iter()
        .map(|vs| {
            let mut ids: Vec<usize> = vs
                .iter()
                .filter_map(|v| vars.iter().position(|x| x == v))
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        })
        .collect();
    report.verdict = BgpVerdict {
        variables: vars.len(),
        acyclic: gyo_acyclic(&edges),
        agm_exponent: agm_exponent(vars.len(), &edges),
        est_answers: None,
    };

    report
        .diagnostics
        .sort_by_key(|d| std::cmp::Reverse(d.severity));
    report
}

fn pattern_mentions(p: &TriplePattern, v: &VarName) -> bool {
    [&p.s, &p.p, &p.o]
        .into_iter()
        .any(|t| matches!(t, TermPattern::Var(name) if name == v))
}

/// True when `b` maps onto `a` by a bijective renaming of its variables
/// that is the identity on every variable `frozen` says is observable.
fn renaming_duplicate(
    a: &TriplePattern,
    b: &TriplePattern,
    frozen: impl Fn(&VarName) -> bool,
) -> bool {
    let mut theta: Vec<(&VarName, &VarName)> = Vec::new();
    for (ta, tb) in [(&a.s, &b.s), (&a.p, &b.p), (&a.o, &b.o)] {
        match (ta, tb) {
            (TermPattern::Const(x), TermPattern::Const(y)) => {
                if x != y {
                    return false;
                }
            }
            (TermPattern::Var(va), TermPattern::Var(vb)) => {
                if frozen(vb) {
                    if va != vb {
                        return false;
                    }
                    continue;
                }
                match theta.iter().find(|(from, _)| *from == vb) {
                    Some((_, to)) => {
                        if *to != va {
                            return false;
                        }
                    }
                    None => {
                        // Injectivity: no other source maps to va.
                        if theta.iter().any(|(_, to)| *to == va) {
                            return false;
                        }
                        theta.push((vb, va));
                    }
                }
            }
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TripleStore {
        let mut st = TripleStore::new();
        st.insert_strs("alice", "knows", "bob");
        st.insert_strs("bob", "knows", "carol");
        st.insert_strs("alice", "type", "Person");
        st
    }

    #[test]
    fn unsatisfiable_constant_is_denied() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "likes", "?y");
        let rep = analyze_bgp(&st, &q, None);
        assert!(rep.provably_empty);
        assert!(rep.denied());
        assert!(rep.render().contains("empty-pattern"));
        // `likes` is not in the vocabulary at all: the schema-level deny
        // names the predicate.
        assert!(rep.render().contains("unknown-predicate"));
        assert!(rep.render().contains("likes"));
    }

    #[test]
    fn known_predicate_empty_prefix_is_not_unknown() {
        let mut st = sample();
        let mut q = Bgp::new();
        // `carol knows ?y` is empty, but `knows` is in the vocabulary.
        q.add(&mut st, "carol", "knows", "?y");
        let rep = analyze_bgp(&st, &q, None);
        assert!(rep.provably_empty);
        assert!(rep.render().contains("empty-pattern"));
        assert!(!rep.render().contains("unknown-predicate"));
    }

    #[test]
    fn unused_variable_warns_only_when_unprojected() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "knows", "?y");
        let projected = vec!["x".to_owned()];
        let rep = analyze_bgp(&st, &q, Some(&projected));
        assert!(rep
            .diagnostics
            .iter()
            .any(|d| d.code == "unused-variable" && d.message.contains("?y")));
        // Projecting ?y silences the warning.
        let both = vec!["x".to_owned(), "y".to_owned()];
        let rep2 = analyze_bgp(&st, &q, Some(&both));
        assert!(rep2.diagnostics.iter().all(|d| d.code != "unused-variable"));
        // Shared variables are never "unused".
        let mut q2 = Bgp::new();
        q2.add(&mut st, "?x", "knows", "?y");
        q2.add(&mut st, "?y", "type", "Person");
        let rep3 = analyze_bgp(&st, &q2, Some(&projected));
        assert!(rep3.diagnostics.iter().all(|d| d.code != "unused-variable"));
    }

    #[test]
    fn unbound_projection_is_denied() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "knows", "?y");
        let projected = vec!["x".to_owned(), "ghost".to_owned()];
        let rep = analyze_bgp(&st, &q, Some(&projected));
        assert!(rep.denied());
        assert!(rep
            .diagnostics
            .iter()
            .any(|d| d.code == "unbound-projection" && d.message.contains("?ghost")));
        assert!(!rep.provably_empty);
    }

    #[test]
    fn disjoint_groups_warn_as_cartesian() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "knows", "?y");
        q.add(&mut st, "?u", "type", "?t");
        let rep = analyze_bgp(&st, &q, None);
        assert!(rep
            .diagnostics
            .iter()
            .any(|d| d.code == "cartesian-product"));
        assert!(!rep.provably_empty);
    }

    #[test]
    fn all_variable_pattern_warns_in_joins_only() {
        let mut st = sample();
        let mut lone = Bgp::new();
        lone.add(&mut st, "?s", "?p", "?o");
        let rep = analyze_bgp(&st, &lone, None);
        assert!(rep.diagnostics.iter().all(|d| d.code != "unbounded-scan"));

        let mut joined = Bgp::new();
        joined.add(&mut st, "?s", "?p", "?o");
        joined.add(&mut st, "?s", "type", "Person");
        let rep2 = analyze_bgp(&st, &joined, None);
        assert!(rep2.diagnostics.iter().any(|d| d.code == "unbounded-scan"));
    }

    #[test]
    fn duplicates_are_noted_and_clean_queries_are_clean() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "knows", "?y");
        q.add(&mut st, "?x", "knows", "?y");
        let rep = analyze_bgp(&st, &q, None);
        assert!(rep
            .diagnostics
            .iter()
            .any(|d| d.code == "duplicate-pattern"));

        let mut clean = Bgp::new();
        clean.add(&mut st, "?x", "knows", "?y");
        let rep2 = analyze_bgp(&st, &clean, None);
        assert!(rep2.diagnostics.is_empty());
        assert_eq!(rep2.render(), "(none)\n");
    }

    #[test]
    fn renamed_duplicate_is_flagged_when_local() {
        let mut st = sample();
        // ?a/?b are local (unprojected, mentioned nowhere else): the
        // second pattern is the first one renamed.
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "knows", "?y");
        q.add(&mut st, "?a", "knows", "?b");
        let projected = vec!["x".to_owned(), "y".to_owned()];
        let rep = analyze_bgp(&st, &q, Some(&projected));
        assert!(rep
            .diagnostics
            .iter()
            .any(|d| d.code == "duplicate-pattern" && d.message.contains("renaming")));
        // With no projection every variable is observable — renaming a
        // pattern away would change the bindings, so it is not flagged.
        let rep_none = analyze_bgp(&st, &q, None);
        assert!(rep_none
            .diagnostics
            .iter()
            .all(|d| d.code != "duplicate-pattern"));
        // Mutual knows is NOT a duplicate: ?x/?y occur in both patterns,
        // so they are frozen and (?y knows ?x) differs semantically.
        let mut mutual = Bgp::new();
        mutual.add(&mut st, "?x", "knows", "?y");
        mutual.add(&mut st, "?y", "knows", "?x");
        let rep2 = analyze_bgp(&st, &mutual, Some(&projected));
        assert!(rep2
            .diagnostics
            .iter()
            .all(|d| d.code != "duplicate-pattern"));
    }

    #[test]
    fn verdict_reports_acyclicity_and_agm_exponent() {
        let mut st = sample();
        // Path join: acyclic, integral cover 2.
        let mut path = Bgp::new();
        path.add(&mut st, "?x", "knows", "?y");
        path.add(&mut st, "?y", "knows", "?z");
        let rep = analyze_bgp(&st, &path, None);
        assert!(rep.verdict.acyclic);
        assert_eq!(rep.verdict.variables, 3);
        assert_eq!(rep.verdict.agm_exponent, 2.0);

        // Triangle: cyclic, tight AGM exponent 1.5.
        let mut tri = Bgp::new();
        tri.add(&mut st, "?a", "knows", "?b");
        tri.add(&mut st, "?b", "knows", "?c");
        tri.add(&mut st, "?c", "knows", "?a");
        let rep2 = analyze_bgp(&st, &tri, None);
        assert!(!rep2.verdict.acyclic);
        assert_eq!(rep2.verdict.agm_exponent, 1.5);
        assert!(rep2.verdict.render().contains("cyclic"));
        assert!(rep2.verdict.render().contains("1.5"));

        // Single pattern: acyclic, exponent 1.
        let mut one = Bgp::new();
        one.add(&mut st, "?x", "knows", "?y");
        let rep3 = analyze_bgp(&st, &one, None);
        assert!(rep3.verdict.acyclic);
        assert_eq!(rep3.verdict.agm_exponent, 1.0);
    }
}
