//! Cardinality sketches and universal-hash approximate counting for the
//! LFTJ engine — the statistics plane behind sketch-driven join planning
//! and the governed approximate `COUNT(*)` surface.
//!
//! Two independent capabilities share one hashing substrate
//! ([`splitmix64`]):
//!
//! * [`StoreSketch`] — per-ordering statistics computed in one pass over
//!   each of the six sorted triple orderings: exact distinct counts and
//!   max-run degrees for the first one and two key columns, heavy-hitter
//!   buckets (per-value row and distinct-second-column counts for the
//!   highest-degree first-column values), and a linear-probabilistic
//!   distinct-count bitmap over the leading column. The planner
//!   ([`crate::lftj::plan_sketched`]) combines these into a two-level
//!   cost model; the sketches never affect *answers*, only elimination
//!   order — `verify_plan` still re-derives exact cardinalities.
//! * [`approx_count_bgp_governed`] — an (ε, δ) approximate counter for
//!   BGP result sizes in the ApproxMC lineage: random XOR (parity)
//!   constraints over pairwise-independent 64-bit prefix hashes halve
//!   the surviving answer set per constraint, so `survivors · 2^m` is an
//!   unbiased estimate once `m` constraints shrink the count under a
//!   pivot. This is the FPRAS degradation path for
//!   `SELECT (COUNT(*) AS ?v)` when the exact count trips its budget.
//!
//! The XOR-hash idiom, spelled out (ROADMAP item 4): draw a uniform
//! 64-bit `mask` and a uniform `target` bit; a hash `h` satisfies the
//! constraint iff `popcount(mask & h) mod 2 == target`, i.e. the parity
//! of the masked bits equals the target. Each constraint passes with
//! probability exactly ½ and distinct constraints are independent, so
//! stacking `m` of them keeps each answer with probability `2^-m`;
//! constraints are pushed down to the elimination level whose prefix
//! hash they test, pruning whole subtrees of the trie join instead of
//! filtering materialized rows.

use crate::bgp::Bgp;
use crate::lftj::{self, LevelConstraints, SketchPlan};
use crate::store::{IndexOrder, TripleStore};
use kgq_core::govern::{Completion, EvalError, Governed, Governor, Interrupt};
use kgq_graph::Sym;

/// Bits in a [`DistinctSketch`] bitmap. 4096 bits keep the
/// linear-counting estimate within a few percent up to ~2800 distinct
/// values — far past the regime where order choice is sensitive to the
/// exact figure — in 512 bytes per ordering.
const SKETCH_BITS: usize = 4096;

/// Heavy-hitter buckets kept per ordering. Predicate-led orderings
/// (`Pso`/`Pos`) rarely have more than a handful of distinct leading
/// values, so 24 buckets usually means *exact* per-predicate statistics.
const HEAVY_K: usize = 24;

/// SplitMix64 finalizer: the standard 64-bit avalanche permutation.
/// Cheap, stateless, and good enough to treat distinct inputs as
/// pairwise-independent hash values for both the bitmap sketches and
/// the XOR constraint family.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic stream of 64-bit values seeded by the caller; used to
/// sample XOR constraints so every run with the same seed draws the
/// same constraint family.
struct SeedStream {
    state: u64,
}

impl SeedStream {
    fn new(seed: u64) -> SeedStream {
        SeedStream {
            state: splitmix64(seed ^ 0x243f_6a88_85a3_08d3),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }
}

/// Root value for the per-level prefix-hash chain ([`chain_hash`]).
pub(crate) const ROOT_HASH: u64 = 0x1319_8a2e_0370_7344;

/// Extend a prefix hash with the binding chosen at `level`. The chain
/// folds every earlier binding in, so two full rows that differ in any
/// variable have distinct final-level hashes (up to 64-bit collisions),
/// while rows sharing a prefix share the prefix hash — which is what
/// lets XOR constraints prune whole subtrees during the counting
/// recursion.
#[inline]
pub(crate) fn chain_hash(prev: u64, level: usize, value: Sym) -> u64 {
    splitmix64(prev ^ splitmix64(((level as u64) << 32) ^ u64::from(value.0)))
}

/// Linear-probabilistic distinct counter: a fixed bitmap indexed by the
/// low bits of a hash. The estimate is `-m·ln(z/m)` for `m` bits with
/// `z` still zero; unions are bitwise OR, which gives intersection
/// estimates by inclusion–exclusion.
#[derive(Clone, Debug)]
pub struct DistinctSketch {
    words: Vec<u64>,
}

impl Default for DistinctSketch {
    fn default() -> DistinctSketch {
        DistinctSketch::new()
    }
}

impl DistinctSketch {
    fn new() -> DistinctSketch {
        DistinctSketch {
            words: vec![0u64; SKETCH_BITS / 64],
        }
    }

    /// Inserts a raw value, hashed through splitmix64 before indexing
    /// — the public entry for callers outside the store builder.
    pub fn insert(&mut self, value: u64) {
        self.insert_hash(splitmix64(value));
    }

    #[inline]
    fn insert_hash(&mut self, h: u64) {
        let bit = (h as usize) & (SKETCH_BITS - 1);
        self.words[bit >> 6] |= 1u64 << (bit & 63);
    }

    fn ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    fn estimate_from_ones(ones: u32) -> f64 {
        let m = SKETCH_BITS as f64;
        let zeros = f64::from(SKETCH_BITS as u32 - ones);
        if zeros < 1.0 {
            // Saturated: every bit set. Report the asymptote rather
            // than infinity; callers treat this as "very many".
            return m * m.ln();
        }
        -m * (zeros / m).ln()
    }

    /// Estimated number of distinct values inserted.
    pub fn estimate(&self) -> f64 {
        Self::estimate_from_ones(self.ones())
    }

    /// Estimated size of the intersection of the two inserted value
    /// sets, via `|A ∩ B| ≈ |A| + |B| − |A ∪ B|` with the union
    /// estimated from the OR of the bitmaps. Clamped at zero — the
    /// subtraction can go slightly negative on disjoint sets.
    pub fn intersect_estimate(&self, other: &DistinctSketch) -> f64 {
        let union_ones: u32 = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones())
            .sum();
        let union = Self::estimate_from_ones(union_ones);
        (self.estimate() + other.estimate() - union).max(0.0)
    }
}

/// Exact statistics for one prefix depth of a sorted ordering.
#[derive(Clone, Copy, Debug, Default)]
pub struct LevelStats {
    /// Distinct prefixes at this depth.
    pub distinct: usize,
    /// Rows under the largest single prefix (max "out-degree").
    pub max_run: usize,
}

/// Exact statistics for one heavy (high-degree) leading value.
#[derive(Clone, Copy, Debug)]
pub struct HeavyBucket {
    /// The leading-column value.
    pub value: Sym,
    /// Rows whose leading column equals `value`.
    pub rows: usize,
    /// Distinct second-column values under `value`.
    pub distinct2: usize,
}

/// One ordering's statistics: depth-1/depth-2 exact stats, heavy-hitter
/// buckets for the top-[`HEAVY_K`] leading values by row count, and a
/// distinct-count bitmap over the leading column (for cross-ordering
/// intersection estimates).
#[derive(Clone, Debug)]
pub struct OrderingSketch {
    /// Total rows (triples) in the ordering.
    pub rows: usize,
    /// Depth-1 (first key column) statistics.
    pub l1: LevelStats,
    /// Depth-2 (first two key columns) statistics.
    pub l2: LevelStats,
    /// Top leading values by row count, descending.
    pub heavy: Vec<HeavyBucket>,
    /// Bitmap sketch of the leading column's value set.
    pub col0: DistinctSketch,
}

impl OrderingSketch {
    /// The heavy bucket for `value`, if it made the top-K cut.
    pub fn heavy(&self, value: Sym) -> Option<&HeavyBucket> {
        self.heavy.iter().find(|b| b.value == value)
    }

    /// Average rows per distinct leading value.
    pub fn avg1(&self) -> f64 {
        self.rows as f64 / self.l1.distinct.max(1) as f64
    }
}

fn build_ordering(rows: &[[Sym; 3]]) -> OrderingSketch {
    let mut l1 = LevelStats::default();
    let mut l2 = LevelStats::default();
    let mut heavy: Vec<HeavyBucket> = Vec::new();
    let mut col0 = DistinctSketch::new();

    let mut i = 0usize;
    while i < rows.len() {
        let v0 = rows[i][0];
        let mut j = i;
        let mut distinct2 = 0usize;
        while j < rows.len() && rows[j][0] == v0 {
            let v1 = rows[j][1];
            let mut k = j;
            while k < rows.len() && rows[k][0] == v0 && rows[k][1] == v1 {
                k += 1;
            }
            distinct2 += 1;
            l2.max_run = l2.max_run.max(k - j);
            j = k;
        }
        let run = j - i;
        l1.distinct += 1;
        l1.max_run = l1.max_run.max(run);
        l2.distinct += distinct2;
        col0.insert_hash(splitmix64(u64::from(v0.0)));
        let bucket = HeavyBucket {
            value: v0,
            rows: run,
            distinct2,
        };
        if heavy.len() < HEAVY_K {
            heavy.push(bucket);
            heavy.sort_by(|a, b| b.rows.cmp(&a.rows));
        } else if let Some(last) = heavy.last_mut() {
            if bucket.rows > last.rows {
                *last = bucket;
                heavy.sort_by(|a, b| b.rows.cmp(&a.rows));
            }
        }
        i = j;
    }

    OrderingSketch {
        rows: rows.len(),
        l1,
        l2,
        heavy,
        col0,
    }
}

/// Per-ordering statistics for a whole store, computed once per store
/// generation (the serve layer caches an `Arc<StoreSketch>` stamped with
/// the snapshot generation, exactly like the schema summary).
#[derive(Clone, Debug)]
pub struct StoreSketch {
    /// Triples in the store when the sketch was built.
    pub triples: usize,
    /// One sketch per [`IndexOrder::ALL`] slot.
    pub orderings: [OrderingSketch; 6],
}

impl StoreSketch {
    /// Build all six ordering sketches in one O(n) pass each over the
    /// already-sorted orderings.
    pub fn build(st: &TripleStore) -> StoreSketch {
        let orderings = IndexOrder::ALL.map(|o| build_ordering(st.order(o)));
        StoreSketch {
            triples: st.len(),
            orderings,
        }
    }

    /// The sketch for a given ordering.
    pub fn ordering(&self, o: IndexOrder) -> &OrderingSketch {
        let slot = IndexOrder::ALL
            .iter()
            .position(|x| *x == o)
            .unwrap_or_default();
        &self.orderings[slot]
    }

    /// The canonical ordering whose *first* key column is triple
    /// position `pos` (0 = subject, 1 = predicate, 2 = object).
    pub fn by_first(&self, pos: usize) -> &OrderingSketch {
        let o = match pos {
            0 => IndexOrder::Spo,
            1 => IndexOrder::Pso,
            _ => IndexOrder::Osp,
        };
        self.ordering(o)
    }

    /// Estimated extensions per already-bound prefix when the next key
    /// column of `order` is eliminated at `depth` bound columns.
    /// `bound0` is the leading column's value when it is a known
    /// constant — heavy-bucket statistics make that case exact for
    /// high-degree values (e.g. per-predicate stats).
    pub fn ext_estimate(&self, order: IndexOrder, depth: usize, bound0: Option<Sym>) -> f64 {
        let os = self.ordering(order);
        match depth {
            0 => (os.l1.distinct as f64).max(1.0),
            1 => {
                if let Some(v) = bound0 {
                    if let Some(b) = os.heavy(v) {
                        return (b.distinct2 as f64).max(1.0);
                    }
                }
                (os.l2.distinct as f64 / os.l1.distinct.max(1) as f64).max(1.0)
            }
            _ => {
                if let Some(v) = bound0 {
                    if let Some(b) = os.heavy(v) {
                        return (b.rows as f64 / b.distinct2.max(1) as f64).max(1.0);
                    }
                }
                (os.rows as f64 / os.l2.distinct.max(1) as f64).max(1.0)
            }
        }
    }
}

/// One XOR (parity) constraint over 64-bit prefix hashes: `h` passes
/// iff the parity of `mask & h` equals `target`. Drawn uniformly, each
/// constraint keeps any fixed hash with probability exactly ½.
#[derive(Clone, Copy, Debug)]
pub struct XorConstraint {
    mask: u64,
    target: u64,
}

impl XorConstraint {
    fn sample(rng: &mut SeedStream) -> XorConstraint {
        XorConstraint {
            mask: rng.next(),
            target: rng.next() & 1,
        }
    }

    /// Does `h` satisfy this constraint?
    #[inline]
    pub fn passes(&self, h: u64) -> bool {
        u64::from((self.mask & h).count_ones()) & 1 == self.target
    }
}

/// Parameters for [`approx_count_bgp_governed`]: relative error bound
/// ε, failure probability δ, and the seed that makes a run replayable.
#[derive(Clone, Copy, Debug)]
pub struct BgpCountParams {
    /// Target relative error (0 < ε < 1).
    pub epsilon: f64,
    /// Failure probability for the ε bound (0 < δ < 1).
    pub delta: f64,
    /// Seed for the XOR constraint family; round `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for BgpCountParams {
    fn default() -> BgpCountParams {
        BgpCountParams {
            epsilon: 0.25,
            delta: 0.05,
            seed: 0x5eed_0b9b,
        }
    }
}

impl BgpCountParams {
    /// The exact-path threshold these parameters imply: counts at or
    /// below it are returned exactly, complete and not degraded.
    pub fn pivot(&self) -> u64 {
        pivot(self.epsilon)
    }
}

/// The ApproxMC pivot: counts at or below this are resolved exactly,
/// and each round searches for the constraint count that shrinks the
/// survivor set under it.
fn pivot(epsilon: f64) -> u64 {
    let e = epsilon.clamp(1e-3, 0.999);
    (9.84 * (1.0 + 1.0 / e) * (1.0 + 1.0 / e)).ceil() as u64
}

/// Median-amplification rounds: odd, growing as ln(1/δ).
fn rounds(delta: f64) -> usize {
    let d = delta.clamp(1e-9, 0.5);
    let t = (2.0 * (1.0 / d).ln()).ceil() as usize;
    t.max(1) | 1
}

/// Deepest constraint index usable; beyond this `2^m` overflows any
/// realistic count anyway.
const MAX_M: usize = 60;

/// Distribute the first `m` sampled constraints across elimination
/// levels. Constraints are pinned deepest-first — the final level's
/// hash distinguishes every full row, which keeps the estimator's
/// variance near the idealized pairwise-independent case — and only
/// spill toward shallower levels (where they prune whole subtrees but
/// correlate rows sharing a prefix) once a level's headroom
/// (`log2` of its estimated extensions) is spent.
fn schedule(nlevels: usize, exts: &[f64], cons: &[XorConstraint]) -> LevelConstraints {
    let mut lc = LevelConstraints::none(nlevels);
    if nlevels == 0 {
        return lc;
    }
    let caps: Vec<usize> = (0..nlevels)
        .map(|l| {
            let e = exts.get(l).copied().unwrap_or(f64::INFINITY).max(1.0);
            (e.log2().floor() as usize).min(MAX_M)
        })
        .collect();
    let mut idx = 0usize;
    'fill: loop {
        let mut placed = false;
        for l in (0..nlevels).rev() {
            if idx >= cons.len() {
                break 'fill;
            }
            if lc.per_level[l].len() < caps[l] {
                lc.per_level[l].push(cons[idx]);
                idx += 1;
                placed = true;
            }
        }
        if !placed {
            break;
        }
    }
    // Headroom exhausted: the remainder goes to the deepest level,
    // where per-row hashes keep the estimate unbiased regardless.
    while idx < cons.len() {
        lc.per_level[nlevels - 1].push(cons[idx]);
        idx += 1;
    }
    lc
}

/// One estimation round: sample a full constraint family, then find the
/// smallest `m` whose first-`m` survivor count fits under the pivot.
/// Because round `r`'s survivor sets are nested in `m` (constraint `m+1`
/// only removes survivors), the search is a plain binary search.
fn round_estimate(
    st: &TripleStore,
    bgp: &Bgp,
    sp: &SketchPlan,
    thresh: u64,
    seed: u64,
    gov: &Governor,
) -> Result<(u64, Option<Interrupt>), EvalError> {
    let nlevels = sp.plan.vars.len();
    let exts: Vec<f64> = sp.estimates.iter().map(|e| e.ext).collect();
    let mut rng = SeedStream::new(seed);
    let cons: Vec<XorConstraint> = (0..MAX_M).map(|_| XorConstraint::sample(&mut rng)).collect();

    let survivors = |m: usize| -> Result<(u64, Option<Interrupt>), EvalError> {
        let lc = schedule(nlevels, &exts, &cons[..m]);
        lftj::count_planned_capped(st, bgp, &sp.plan, &lc, thresh + 1, Some(gov))
    };

    let (mut lo, mut hi) = (1usize, MAX_M);
    let mut best: Option<(usize, u64)> = None;
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        let (n, tripped) = survivors(mid)?;
        if let Some(why) = tripped {
            return Ok((best.map(|(m, n)| n.saturating_shl(m)).unwrap_or(n), Some(why)));
        }
        if n <= thresh {
            best = Some((mid, n));
            if mid == 1 {
                break;
            }
            hi = mid - 1;
        } else {
            lo = mid + 1;
        }
    }
    let (m, n) = best.unwrap_or((MAX_M, thresh + 1));
    Ok((n.saturating_shl(m), None))
}

trait SaturatingShl {
    fn saturating_shl(self, m: usize) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, m: usize) -> u64 {
        if self == 0 {
            0
        } else if m as u32 >= self.leading_zeros() {
            u64::MAX
        } else {
            self << m
        }
    }
}

/// Approximate the number of BGP answers under an unlimited governor.
/// Convenience wrapper over [`approx_count_bgp_governed`]; the result's
/// `degraded` flag still distinguishes an exact small count from a
/// hash-based estimate.
pub fn approx_count_bgp(
    st: &TripleStore,
    sk: &StoreSketch,
    bgp: &Bgp,
    params: BgpCountParams,
) -> Result<Governed<u64>, EvalError> {
    approx_count_bgp_governed(st, sk, bgp, params, &Governor::unlimited())
}

/// Approximate `|answers(bgp)|` to within a factor `1 + ε` with
/// probability `1 − δ`, under a governor.
///
/// The exact path is tried first: if the true count is at most the
/// pivot `⌈9.84 (1 + 1/ε)²⌉`, the exact value is returned with
/// `degraded: false` — byte-identical to what the exact counter would
/// produce. Otherwise `⌈2 ln(1/δ)⌉`-odd rounds each binary-search the
/// smallest XOR-constraint count `m` with at most pivot survivors and
/// report `survivors · 2^m`; the median of rounds is returned with
/// `degraded: true`. A budget trip mid-way yields a `Partial` carrying
/// the best estimate so far (or the probed lower bound when no round
/// finished).
pub fn approx_count_bgp_governed(
    st: &TripleStore,
    sk: &StoreSketch,
    bgp: &Bgp,
    params: BgpCountParams,
    gov: &Governor,
) -> Result<Governed<u64>, EvalError> {
    let sp = lftj::plan_sketched(st, sk, bgp);
    let thresh = pivot(params.epsilon);
    let none = LevelConstraints::none(sp.plan.vars.len());
    let (probe, tripped) =
        lftj::count_planned_capped(st, bgp, &sp.plan, &none, thresh + 1, Some(gov))?;
    if tripped.is_none() && probe <= thresh {
        // Small count: exact, complete, not degraded.
        return Ok(Governed::complete(probe));
    }
    if let Some(why) = tripped {
        if probe <= thresh {
            // The budget died before we even knew whether the count is
            // large; report the exact prefix count as a lower bound.
            let mut g = Governed::partial(probe, why);
            g.degraded = true;
            return Ok(g);
        }
    }

    let t = rounds(params.delta);
    let mut estimates: Vec<u64> = Vec::with_capacity(t);
    let mut interrupted: Option<Interrupt> = None;
    for r in 0..t {
        match round_estimate(st, bgp, &sp, thresh, params.seed.wrapping_add(r as u64), gov)? {
            (est, None) => estimates.push(est),
            (est, Some(why)) => {
                estimates.push(est);
                interrupted = Some(why);
                break;
            }
        }
    }
    estimates.sort_unstable();
    let median = estimates[estimates.len() / 2];
    let mut g = match interrupted {
        None => Governed::complete(median),
        Some(why) => Governed::partial(median, why),
    };
    g.degraded = true;
    Ok(g)
}

/// Did this governed count come back complete? (Helper for callers that
/// only need a yes/no before formatting.)
pub fn is_complete<T>(g: &Governed<T>) -> bool {
    matches!(g.completion, Completion::Complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp::Bgp;
    use crate::store::TripleStore;

    fn star_store() -> TripleStore {
        // One hub with many spokes plus a few cold nodes.
        let mut st = TripleStore::new();
        for i in 0..50 {
            st.insert_strs("hub", "spoke", &format!("n{i}"));
        }
        for i in 0..5 {
            st.insert_strs(&format!("c{i}"), "near", "hub");
        }
        st
    }

    #[test]
    fn ordering_stats_are_exact_on_star() {
        let st = star_store();
        let sk = StoreSketch::build(&st);
        let pso = sk.ordering(IndexOrder::Pso);
        // Two predicates; "spoke" has one subject with 50 objects.
        assert_eq!(pso.l1.distinct, 2);
        assert_eq!(pso.rows, 55);
        let spo = sk.ordering(IndexOrder::Spo);
        assert_eq!(spo.l1.max_run, 50);
        let spoke = st.get_term("spoke").unwrap_or(Sym(u32::MAX));
        let b = pso.heavy(spoke);
        assert!(matches!(b, Some(b) if b.rows == 50 && b.distinct2 == 1));
    }

    #[test]
    fn distinct_sketch_tracks_cardinality() {
        let mut a = DistinctSketch::new();
        for i in 0..500u64 {
            a.insert_hash(splitmix64(i));
        }
        let est = a.estimate();
        assert!((est - 500.0).abs() < 75.0, "estimate {est} too far from 500");
        // Intersection of overlapping sets.
        let mut b = DistinctSketch::new();
        for i in 250..750u64 {
            b.insert_hash(splitmix64(i));
        }
        let inter = a.intersect_estimate(&b);
        assert!(
            (inter - 250.0).abs() < 120.0,
            "intersection estimate {inter} too far from 250"
        );
    }

    #[test]
    fn xor_constraints_halve() {
        let mut rng = SeedStream::new(7);
        let c = XorConstraint::sample(&mut rng);
        let passing = (0..4096u64).filter(|&i| c.passes(splitmix64(i))).count();
        assert!(
            (1600..=2500).contains(&passing),
            "pass rate {passing}/4096 not near half"
        );
    }

    #[test]
    fn schedule_prefers_deep_levels() {
        let mut rng = SeedStream::new(1);
        let cons: Vec<XorConstraint> = (0..8).map(|_| XorConstraint::sample(&mut rng)).collect();
        let lc = schedule(3, &[2.0, 4.0, 1024.0], &cons);
        assert_eq!(lc.per_level.len(), 3);
        assert_eq!(lc.total(), 8);
        // The deep level (headroom 10) soaks up most constraints.
        assert!(lc.per_level[2].len() >= 5);
        assert!(lc.per_level[0].len() <= 1);
    }

    #[test]
    fn small_counts_are_exact_and_not_degraded() {
        let mut st = star_store();
        let mut bgp = Bgp::new();
        bgp.add(&mut st, "?c", "near", "?h");
        let sk = StoreSketch::build(&st);
        let g = match approx_count_bgp(&st, &sk, &bgp, BgpCountParams::default()) {
            Ok(g) => g,
            Err(e) => panic!("approx count failed: {e:?}"),
        };
        assert_eq!(g.value, 5);
        assert!(!g.degraded);
        assert!(is_complete(&g));
    }

    #[test]
    fn large_counts_estimate_within_epsilon() {
        // Cross product of edges: (40·39)² answers — far above the
        // pivot, forcing the XOR-constraint path.
        let mut st = TripleStore::new();
        for i in 0..40 {
            for j in 0..40 {
                if i != j {
                    st.insert_strs(&format!("n{i}"), "e", &format!("n{j}"));
                }
            }
        }
        let mut bgp = Bgp::new();
        bgp.add(&mut st, "?a", "e", "?b");
        bgp.add(&mut st, "?c", "e", "?d");
        let sk = StoreSketch::build(&st);
        let exact = (40u64 * 39) * (40 * 39);
        let params = BgpCountParams::default();
        let g = match approx_count_bgp(&st, &sk, &bgp, params) {
            Ok(g) => g,
            Err(e) => panic!("approx count failed: {e:?}"),
        };
        assert!(g.degraded);
        assert!(is_complete(&g));
        let lo = (exact as f64 / (1.0 + params.epsilon)) as u64;
        let hi = (exact as f64 * (1.0 + params.epsilon)) as u64;
        assert!(
            (lo..=hi).contains(&g.value),
            "estimate {} outside [{lo}, {hi}] (exact {exact})",
            g.value
        );
    }
}
