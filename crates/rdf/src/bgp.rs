//! Basic graph pattern matching — the conjunctive core of SPARQL \[38\].
//!
//! A [`Bgp`] is a set of triple patterns whose positions are constants or
//! variables; an answer is a binding of variables to terms under which
//! every pattern is a triple of the store ("pattern matching … usually
//! approached with logical methods", paper §2.1). Evaluation is
//! backtracking search with a greedy join order: at each step the
//! pattern with the most bound positions (fewest expected matches) runs
//! next, using the store's index-selected scans.

use crate::store::{Triple, TripleStore};
use kgq_graph::Sym;
use std::collections::HashMap;

/// A variable name (e.g. `"x"` for `?x`).
pub type VarName = String;

/// A position in a triple pattern: constant term or variable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TermPattern {
    /// A fixed term.
    Const(Sym),
    /// A variable to bind.
    Var(VarName),
}

impl TermPattern {
    fn as_const(&self, env: &Binding) -> Option<Sym> {
        match self {
            TermPattern::Const(s) => Some(*s),
            TermPattern::Var(v) => env.get(v).copied(),
        }
    }
}

/// One triple pattern.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TriplePattern {
    /// Subject position.
    pub s: TermPattern,
    /// Predicate position.
    pub p: TermPattern,
    /// Object position.
    pub o: TermPattern,
}

impl TriplePattern {
    fn bound_count(&self, env: &Binding) -> usize {
        [&self.s, &self.p, &self.o]
            .iter()
            .filter(|t| t.as_const(env).is_some())
            .count()
    }

    fn matches_into(&self, t: Triple, env: &mut Binding) -> bool {
        // Bind or check each position; record which vars we bound so the
        // caller can undo. We instead clone-on-write at the call site.
        for (pat, val) in [(&self.s, t.s), (&self.p, t.p), (&self.o, t.o)] {
            match pat {
                TermPattern::Const(c) => {
                    if *c != val {
                        return false;
                    }
                }
                TermPattern::Var(v) => match env.get(v) {
                    Some(&bound) => {
                        if bound != val {
                            return false;
                        }
                    }
                    None => {
                        env.insert(v.clone(), val);
                    }
                },
            }
        }
        true
    }
}

/// A variable binding.
pub type Binding = HashMap<VarName, Sym>;

/// A basic graph pattern: a conjunction of triple patterns.
#[derive(Clone, Debug, Default)]
pub struct Bgp {
    /// The patterns (order does not affect semantics).
    pub patterns: Vec<TriplePattern>,
}

impl Bgp {
    /// Creates an empty pattern.
    pub fn new() -> Bgp {
        Bgp::default()
    }

    /// Adds a pattern; positions starting with `?` are variables, other
    /// strings are interned as constants.
    pub fn add(&mut self, st: &mut TripleStore, s: &str, p: &str, o: &str) -> &mut Self {
        let mk = |st: &mut TripleStore, t: &str| -> TermPattern {
            match t.strip_prefix('?') {
                Some(v) => TermPattern::Var(v.to_owned()),
                None => TermPattern::Const(st.term(t)),
            }
        };
        let pat = TriplePattern {
            s: mk(st, s),
            p: mk(st, p),
            o: mk(st, o),
        };
        self.patterns.push(pat);
        self
    }

    /// All bindings under which every pattern matches, evaluated by the
    /// worst-case optimal leapfrog triejoin ([`crate::lftj`]).
    /// Deterministic order: lexicographic in the planner's variable
    /// elimination order, identical at any thread count.
    pub fn solve(&self, st: &TripleStore) -> Vec<Binding> {
        crate::lftj::solve(st, self).bindings()
    }

    /// The original backtracking matcher (greedy most-bound-first pattern
    /// order). Kept as the oracle baseline: the proptests assert it
    /// agrees with [`Bgp::solve`] as a multiset, and `exp_bgp` measures
    /// the speedup against it.
    pub fn solve_baseline(&self, st: &TripleStore) -> Vec<Binding> {
        let mut results = Vec::new();
        let mut remaining: Vec<&TriplePattern> = self.patterns.iter().collect();
        let mut env = Binding::new();
        backtrack(st, &mut remaining, &mut env, &mut results);
        results
    }
}

fn backtrack(
    st: &TripleStore,
    remaining: &mut Vec<&TriplePattern>,
    env: &mut Binding,
    out: &mut Vec<Binding>,
) {
    if remaining.is_empty() {
        out.push(env.clone());
        return;
    }
    // Greedy: most-bound pattern next.
    let (idx, _) = remaining
        .iter()
        .enumerate()
        .max_by_key(|(_, p)| p.bound_count(env))
        .expect("non-empty");
    let pattern = remaining.remove(idx);
    let s = pattern.s.as_const(env);
    let p = pattern.p.as_const(env);
    let o = pattern.o.as_const(env);
    // Collect matches first (the scan borrows the store immutably; env
    // mutation happens per candidate).
    let candidates: Vec<Triple> = st.scan(s, p, o).collect();
    for t in candidates {
        let mut child = env.clone();
        if pattern.matches_into(t, &mut child) {
            let mut env2 = child;
            backtrack(st, remaining, &mut env2, out);
        }
    }
    remaining.insert(idx, pattern);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TripleStore {
        let mut st = TripleStore::new();
        st.insert_strs("alice", "knows", "bob");
        st.insert_strs("bob", "knows", "carol");
        st.insert_strs("carol", "knows", "alice");
        st.insert_strs("alice", "type", "Person");
        st.insert_strs("bob", "type", "Person");
        st.insert_strs("carol", "type", "Robot");
        st
    }

    #[test]
    fn single_pattern_binds_all_matches() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "knows", "?y");
        let res = q.solve(&st);
        assert_eq!(res.len(), 3);
        for b in &res {
            assert!(b.contains_key("x") && b.contains_key("y"));
        }
    }

    #[test]
    fn join_across_patterns() {
        // ?x knows ?y . ?y type Person — knowers of persons.
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "knows", "?y");
        q.add(&mut st, "?y", "type", "Person");
        let res = q.solve(&st);
        let mut xs: Vec<&str> = res.iter().map(|b| st.term_str(b["x"])).collect();
        xs.sort_unstable();
        assert_eq!(xs, vec!["alice", "carol"]);
    }

    #[test]
    fn shared_variable_within_one_pattern() {
        let mut st = sample();
        st.insert_strs("n", "knows", "n"); // self-knower
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "knows", "?x");
        let res = q.solve(&st);
        assert_eq!(res.len(), 1);
        assert_eq!(st.term_str(res[0]["x"]), "n");
    }

    #[test]
    fn triangle_pattern() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?a", "knows", "?b");
        q.add(&mut st, "?b", "knows", "?c");
        q.add(&mut st, "?c", "knows", "?a");
        let res = q.solve(&st);
        // The 3-cycle matches in 3 rotations.
        assert_eq!(res.len(), 3);
    }

    #[test]
    fn unsatisfiable_pattern_is_empty() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "?x", "likes", "?y");
        assert!(q.solve(&st).is_empty());
    }

    #[test]
    fn constant_only_pattern_checks_membership() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "alice", "knows", "bob");
        assert_eq!(q.solve(&st).len(), 1);
        let mut q2 = Bgp::new();
        q2.add(&mut st, "alice", "knows", "carol");
        assert!(q2.solve(&st).is_empty());
    }

    #[test]
    fn variable_predicate() {
        let mut st = sample();
        let mut q = Bgp::new();
        q.add(&mut st, "alice", "?p", "?o");
        let res = q.solve(&st);
        assert_eq!(res.len(), 2); // knows bob, type Person
    }
}
