//! Property paths over RDF: evaluate the §4 path language directly on a
//! triple store (SPARQL 1.1 property paths \[8, 38, 44\] are the practical
//! face of this feature). The store is viewed as a labeled graph
//! (predicates = edge labels, `rdf:type` = node labels) and handed to
//! the `kgq-core` product engine.

use crate::convert::rdf_to_labeled;
use crate::store::TripleStore;
use kgq_core::analyze::analyze_expr;
use kgq_core::eval::Evaluator;
use kgq_core::model::LabeledView;
use kgq_core::parser::{parse_expr, ParseError};
use kgq_graph::{GraphError, SchemaSummary};
use std::fmt;

/// Errors from RDF path queries.
#[derive(Clone, Debug)]
pub enum RpqError {
    /// The expression text failed to parse.
    Parse(ParseError),
    /// The store could not be viewed as a labeled graph.
    Graph(GraphError),
}

impl fmt::Display for RpqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpqError::Parse(e) => write!(f, "path expression: {e}"),
            RpqError::Graph(e) => write!(f, "store conversion: {e}"),
        }
    }
}

impl std::error::Error for RpqError {}

impl From<ParseError> for RpqError {
    fn from(e: ParseError) -> Self {
        RpqError::Parse(e)
    }
}

impl From<GraphError> for RpqError {
    fn from(e: GraphError) -> Self {
        RpqError::Graph(e)
    }
}

/// All `(start, end)` term pairs connected by a path matching
/// `expr_text`, as term strings, sorted. The static analyzer runs first:
/// a provably empty language (e.g. a predicate missing from the store
/// vocabulary) short-circuits to the empty answer before evaluation.
pub fn rpq_pairs(st: &TripleStore, expr_text: &str) -> Result<Vec<(String, String)>, RpqError> {
    let mut g = rdf_to_labeled(st)?;
    let expr = parse_expr(expr_text, g.consts_mut())?;
    let schema = SchemaSummary::from_labeled(&g);
    if analyze_expr(&expr, &schema, Some((expr_text, g.consts()))).provably_empty {
        return Ok(Vec::new());
    }
    let view = LabeledView::new(&g);
    let ev = Evaluator::new(&view, &expr);
    let mut pairs: Vec<(String, String)> = ev
        .pairs()
        .into_iter()
        .map(|(a, b)| (g.node_name(a).to_owned(), g.node_name(b).to_owned()))
        .collect();
    pairs.sort();
    Ok(pairs)
}

/// All terms starting a matching path, as term strings, sorted. Consults
/// the static analyzer first, like [`rpq_pairs`].
pub fn rpq_starts(st: &TripleStore, expr_text: &str) -> Result<Vec<String>, RpqError> {
    let mut g = rdf_to_labeled(st)?;
    let expr = parse_expr(expr_text, g.consts_mut())?;
    let schema = SchemaSummary::from_labeled(&g);
    if analyze_expr(&expr, &schema, Some((expr_text, g.consts()))).provably_empty {
        return Ok(Vec::new());
    }
    let view = LabeledView::new(&g);
    let ev = Evaluator::new(&view, &expr);
    let mut starts: Vec<String> = ev
        .matching_starts()
        .into_iter()
        .map(|n| g.node_name(n).to_owned())
        .collect();
    starts.sort();
    Ok(starts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::RDF_TYPE;
    use crate::reason::{materialize_rdfs, RDFS_SUBPROPERTY};

    fn family() -> TripleStore {
        let mut st = TripleStore::new();
        st.insert_strs("ana", RDF_TYPE, "person");
        st.insert_strs("ben", RDF_TYPE, "person");
        st.insert_strs("cal", RDF_TYPE, "person");
        st.insert_strs("ana", "parentOf", "ben");
        st.insert_strs("ben", "parentOf", "cal");
        st
    }

    #[test]
    fn transitive_property_path() {
        let st = family();
        let pairs = rpq_pairs(&st, "parentOf/(parentOf)*").unwrap();
        assert_eq!(
            pairs,
            vec![
                ("ana".to_owned(), "ben".to_owned()),
                ("ana".to_owned(), "cal".to_owned()),
                ("ben".to_owned(), "cal".to_owned()),
            ]
        );
    }

    #[test]
    fn inverse_and_node_tests() {
        let st = family();
        let starts = rpq_starts(&st, "?person/parentOf^-/?person").unwrap();
        assert_eq!(starts, vec!["ben".to_owned(), "cal".to_owned()]);
    }

    #[test]
    fn inference_feeds_property_paths() {
        let mut st = family();
        st.insert_strs("parentOf", RDFS_SUBPROPERTY, "ancestorOf");
        materialize_rdfs(&mut st);
        let pairs = rpq_pairs(&st, "(ancestorOf)*").unwrap();
        // Reflexive pairs for every node + the two derived edges + chain.
        assert!(pairs.contains(&("ana".to_owned(), "cal".to_owned())));
    }

    #[test]
    fn parse_errors_surface() {
        let st = family();
        let err = rpq_pairs(&st, "parentOf/").unwrap_err();
        assert!(matches!(err, RpqError::Parse(_)));
        assert!(err.to_string().contains("path expression"));
    }
}
