//! # kgq-rdf — an RDF triple store with pattern matching
//!
//! Section 3 of the reproduced paper singles out RDF as "a class of
//! labeled graphs that is widely used in practice": edges are replaced by
//! triples `(s, p, o)` without edge identifiers, and constants are IRIs
//! with a universal interpretation. This crate provides:
//!
//! * [`store`] — a [`store::TripleStore`] keeping every triple in all
//!   six sorted orderings (SPO, POS, OSP, SOP, PSO, OPS), with
//!   index-selected scans, binary-search lookups, exact prefix counts
//!   and bulk [`store::TripleStore::extend`] loading;
//! * [`ntriples`] — a reader/writer for an N-Triples subset;
//! * [`bgp`] — basic graph pattern matching (the conjunctive core of
//!   SPARQL \[38\]); [`bgp::Bgp::solve`] runs on the worst-case optimal
//!   leapfrog triejoin in [`lftj`], with the original backtracking
//!   matcher kept as [`bgp::Bgp::solve_baseline`], the testing oracle;
//! * [`lftj`] — the triejoin itself: cardinality-driven variable
//!   elimination order, galloping trie cursors over the sorted
//!   orderings, deterministic partitioned parallelism, and governed
//!   execution yielding exact-prefix partial answers;
//! * [`analyze`] — static BGP checks (provable emptiness, unused
//!   variables, cartesian products) surfaced by `kgq sparql --explain`
//!   and short-circuited before planning;
//! * [`convert`] — the correspondence with labeled graphs used throughout
//!   the paper: predicates become edge labels, `rdf:type` triples become
//!   node labels, so the path-query machinery of `kgq-core` applies to
//!   RDF data directly;
//! * [`reason`] — RDFS forward chaining (§2.3: knowledge graphs "produce"
//!   knowledge by deduction), materializing subclass/subproperty/domain/
//!   range entailments into the store.

//! ```
//! use kgq_rdf::{TripleStore, Bgp, rpq_pairs};
//!
//! let mut st = TripleStore::new();
//! st.insert_strs("ana", "knows", "ben");
//! st.insert_strs("ben", "knows", "cal");
//! let mut q = Bgp::new();
//! q.add(&mut st, "?x", "knows", "?y");
//! assert_eq!(q.solve(&st).len(), 2);
//! // Property paths via the §4 machinery:
//! let closure = rpq_pairs(&st, "knows/(knows)*").unwrap();
//! assert!(closure.contains(&("ana".to_string(), "cal".to_string())));
//! ```

pub mod analyze;
pub mod bgp;
pub mod convert;
pub mod lftj;
pub mod ntriples;
pub mod query;
pub mod reason;
pub mod sketch;
pub mod sparql;
pub mod store;

pub use analyze::{analyze_bgp, BgpReport, BgpVerdict};
pub use bgp::{Bgp, Binding, TermPattern, TriplePattern};
pub use convert::{labeled_to_rdf, rdf_to_labeled, RDF_TYPE};
pub use lftj::{
    count, count_planned, count_planned_governed, plan_best, plan_sketched, verify_plan,
    LevelConstraints, LevelEstimate, Plan, SketchPlan, Solution,
};
pub use ntriples::{parse_ntriples, write_ntriples};
pub use query::{rpq_pairs, rpq_starts, RpqError};
pub use reason::{
    materialize_rdfs, InferenceStats, RDFS_DOMAIN, RDFS_RANGE, RDFS_SUBCLASS, RDFS_SUBPROPERTY,
};
pub use sketch::{
    approx_count_bgp, approx_count_bgp_governed, BgpCountParams, StoreSketch,
};
pub use sparql::{
    explain_parsed, explain_select, parse_select, select, select_governed, select_governed_with,
    SelectOutcome, SelectQuery, SparqlParseError,
};
pub use store::{IndexOrder, Triple, TripleStore};
