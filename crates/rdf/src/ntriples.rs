//! A reader/writer for an N-Triples subset.
//!
//! Supported terms: IRIs `<...>`, simple literals `"..."` (with `\"` and
//! `\\` escapes), and blank nodes `_:name`. Each line is
//! `subject predicate object .`; `#` starts a comment.

use crate::store::TripleStore;
use kgq_graph::GraphError;

fn parse_term(input: &str, pos: &mut usize, line: usize) -> Result<String, GraphError> {
    let bytes = input.as_bytes();
    while *pos < bytes.len() && (bytes[*pos] == b' ' || bytes[*pos] == b'\t') {
        *pos += 1;
    }
    let err = |message: String| GraphError::Parse { line, message };
    if *pos >= bytes.len() {
        return Err(err("unexpected end of line".into()));
    }
    match bytes[*pos] {
        b'<' => {
            let start = *pos + 1;
            let end = input[start..]
                .find('>')
                .ok_or_else(|| err("unterminated IRI".into()))?;
            *pos = start + end + 1;
            Ok(input[start..start + end].to_owned())
        }
        b'"' => {
            let mut out = String::new();
            let mut i = *pos + 1;
            loop {
                if i >= bytes.len() {
                    return Err(err("unterminated literal".into()));
                }
                match bytes[i] {
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\\' => {
                        if i + 1 >= bytes.len() {
                            return Err(err("dangling escape".into()));
                        }
                        match bytes[i + 1] {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            c => return Err(err(format!("unknown escape \\{}", c as char))),
                        }
                        i += 2;
                    }
                    _ => {
                        // Copy one UTF-8 code point.
                        let ch = input[i..].chars().next().expect("in bounds");
                        out.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
            *pos = i;
            Ok(format!("\"{out}\""))
        }
        b'_' => {
            if *pos + 1 >= bytes.len() || bytes[*pos + 1] != b':' {
                return Err(err("blank node must start with _:".into()));
            }
            let start = *pos;
            let mut i = *pos + 2;
            while i < bytes.len() && !(bytes[i] as char).is_whitespace() {
                i += 1;
            }
            *pos = i;
            Ok(input[start..i].to_owned())
        }
        c => Err(err(format!("unexpected character `{}`", c as char))),
    }
}

/// Parses N-Triples text into a store.
pub fn parse_ntriples(input: &str) -> Result<TripleStore, GraphError> {
    let mut st = TripleStore::new();
    let mut batch = Vec::new();
    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut pos = 0;
        let s = parse_term(line, &mut pos, lineno)?;
        let p = parse_term(line, &mut pos, lineno)?;
        let o = parse_term(line, &mut pos, lineno)?;
        let rest = line[pos..].trim();
        if rest != "." {
            return Err(GraphError::Parse {
                line: lineno,
                message: format!("expected terminating `.`, found `{rest}`"),
            });
        }
        batch.push(crate::store::Triple {
            s: st.term(&s),
            p: st.term(&p),
            o: st.term(&o),
        });
    }
    // One bulk sort per ordering instead of a point insert per line.
    st.extend(batch);
    Ok(st)
}

fn write_term(term: &str, out: &mut String) {
    if let Some(lit) = term.strip_prefix('"') {
        // Stored literals keep their quotes; re-escape on output.
        let body = lit.strip_suffix('"').unwrap_or(lit);
        out.push('"');
        for c in body.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c => out.push(c),
            }
        }
        out.push('"');
    } else if term.starts_with("_:") {
        out.push_str(term);
    } else {
        out.push('<');
        out.push_str(term);
        out.push('>');
    }
}

/// Serializes a store as N-Triples (sorted for determinism).
pub fn write_ntriples(st: &TripleStore) -> String {
    let mut out = String::new();
    for t in st.iter() {
        write_term(st.term_str(t.s), &mut out);
        out.push(' ');
        write_term(st.term_str(t.p), &mut out);
        out.push(' ');
        write_term(st.term_str(t.o), &mut out);
        out.push_str(" .\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_iris_literals_and_blanks() {
        let text = r#"
# a comment
<http://ex.org/alice> <http://ex.org/knows> <http://ex.org/bob> .
<http://ex.org/alice> <http://ex.org/name> "Alice \"A\"" .
_:b0 <http://ex.org/age> "33" .
"#;
        let st = parse_ntriples(text).unwrap();
        assert_eq!(st.len(), 3);
        assert!(st.get_term("http://ex.org/alice").is_some());
        assert!(st.get_term("\"Alice \"A\"\"").is_some());
        assert!(st.get_term("_:b0").is_some());
    }

    #[test]
    fn round_trip() {
        let text = "<a> <p> <b> .\n<a> <name> \"x y\" .\n_:n <p> <b> .\n";
        let st = parse_ntriples(text).unwrap();
        let out = write_ntriples(&st);
        let st2 = parse_ntriples(&out).unwrap();
        assert_eq!(st.len(), st2.len());
        for t in st.iter() {
            let s = st.term_str(t.s);
            let p = st.term_str(t.p);
            let o = st.term_str(t.o);
            let t2 = crate::store::Triple {
                s: st2.get_term(s).unwrap(),
                p: st2.get_term(p).unwrap(),
                o: st2.get_term(o).unwrap(),
            };
            assert!(st2.contains(t2), "missing {s} {p} {o}");
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_ntriples("<a> <p> .\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = parse_ntriples("<a> <p> <b>\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = parse_ntriples("<a> <p> \"unterminated .\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = parse_ntriples("<a> <p> <b> .\nbogus\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn duplicate_lines_collapse() {
        let st = parse_ntriples("<a> <p> <b> .\n<a> <p> <b> .\n").unwrap();
        assert_eq!(st.len(), 1);
    }
}
