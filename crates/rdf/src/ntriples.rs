//! A reader/writer for an N-Triples subset.
//!
//! Supported terms: IRIs `<...>`, simple literals `"..."`, and blank
//! nodes `_:name`. Each line is `subject predicate object .`; `#` starts
//! a comment. Literals decode the full W3C N-Triples string escape set:
//! the `ECHAR` escapes `\t \b \n \r \f \" \' \\` and the `UCHAR` forms
//! `\uXXXX` / `\UXXXXXXXX`; the writer re-encodes the characters the
//! grammar forbids raw inside a literal (`"`, `\`, LF, CR) plus the
//! remaining single-character `ECHAR`s, so every parsed store
//! round-trips byte-exactly through [`write_ntriples`].

use crate::store::TripleStore;
use kgq_graph::GraphError;

/// Decodes a `\uXXXX` (`digits == 4`) or `\UXXXXXXXX` (`digits == 8`)
/// escape starting at the first hex digit. Returns the scalar value and
/// the number of bytes consumed.
fn parse_uchar(input: &str, start: usize, digits: usize) -> Result<(char, usize), String> {
    let hex = input
        .get(start..start + digits)
        .ok_or_else(|| format!("truncated \\{} escape", if digits == 4 { 'u' } else { 'U' }))?;
    let code = u32::from_str_radix(hex, 16)
        .map_err(|_| format!("invalid hex in unicode escape `\\u{hex}`"))?;
    let ch =
        char::from_u32(code).ok_or_else(|| format!("`\\u{hex}` is not a Unicode scalar value"))?;
    Ok((ch, digits))
}

fn parse_term(input: &str, pos: &mut usize, line: usize) -> Result<String, GraphError> {
    let bytes = input.as_bytes();
    while *pos < bytes.len() && (bytes[*pos] == b' ' || bytes[*pos] == b'\t') {
        *pos += 1;
    }
    let err = |message: String| GraphError::Parse { line, message };
    if *pos >= bytes.len() {
        return Err(err("unexpected end of line".into()));
    }
    match bytes[*pos] {
        b'<' => {
            let start = *pos + 1;
            let end = input[start..]
                .find('>')
                .ok_or_else(|| err("unterminated IRI".into()))?;
            *pos = start + end + 1;
            Ok(input[start..start + end].to_owned())
        }
        b'"' => {
            let mut out = String::new();
            let mut i = *pos + 1;
            loop {
                if i >= bytes.len() {
                    return Err(err("unterminated literal".into()));
                }
                match bytes[i] {
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\\' => {
                        if i + 1 >= bytes.len() {
                            return Err(err("dangling escape".into()));
                        }
                        // ECHAR and UCHAR productions of the W3C
                        // N-Triples grammar.
                        match bytes[i + 1] {
                            b'"' => out.push('"'),
                            b'\'' => out.push('\''),
                            b'\\' => out.push('\\'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'b' => out.push('\u{0008}'),
                            b'f' => out.push('\u{000C}'),
                            u @ (b'u' | b'U') => {
                                let digits = if u == b'u' { 4 } else { 8 };
                                let (ch, used) = parse_uchar(input, i + 2, digits).map_err(&err)?;
                                out.push(ch);
                                i += used;
                            }
                            c => return Err(err(format!("unknown escape \\{}", c as char))),
                        }
                        i += 2;
                    }
                    _ => {
                        // Copy one UTF-8 code point.
                        let ch = input[i..].chars().next().expect("in bounds");
                        out.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
            *pos = i;
            Ok(format!("\"{out}\""))
        }
        b'_' => {
            if *pos + 1 >= bytes.len() || bytes[*pos + 1] != b':' {
                return Err(err("blank node must start with _:".into()));
            }
            let start = *pos;
            let mut i = *pos + 2;
            while i < bytes.len() && !(bytes[i] as char).is_whitespace() {
                i += 1;
            }
            *pos = i;
            Ok(input[start..i].to_owned())
        }
        c => Err(err(format!("unexpected character `{}`", c as char))),
    }
}

/// Parses N-Triples text into a store.
pub fn parse_ntriples(input: &str) -> Result<TripleStore, GraphError> {
    let mut st = TripleStore::new();
    let mut batch = Vec::new();
    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut pos = 0;
        let s = parse_term(line, &mut pos, lineno)?;
        let p = parse_term(line, &mut pos, lineno)?;
        let o = parse_term(line, &mut pos, lineno)?;
        let rest = line[pos..].trim();
        if rest != "." {
            return Err(GraphError::Parse {
                line: lineno,
                message: format!("expected terminating `.`, found `{rest}`"),
            });
        }
        batch.push(crate::store::Triple {
            s: st.term(&s),
            p: st.term(&p),
            o: st.term(&o),
        });
    }
    // One bulk sort per ordering instead of a point insert per line.
    st.extend(batch);
    Ok(st)
}

fn write_term(term: &str, out: &mut String) {
    if let Some(lit) = term.strip_prefix('"') {
        // Stored literals keep their quotes; re-escape on output.
        let body = lit.strip_suffix('"').unwrap_or(lit);
        out.push('"');
        for c in body.chars() {
            match c {
                // The grammar forbids these four raw inside a literal…
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                // …and these ECHARs are escaped for line-safe output.
                '\t' => out.push_str("\\t"),
                '\u{0008}' => out.push_str("\\b"),
                '\u{000C}' => out.push_str("\\f"),
                c => out.push(c),
            }
        }
        out.push('"');
    } else if term.starts_with("_:") {
        out.push_str(term);
    } else {
        out.push('<');
        out.push_str(term);
        out.push('>');
    }
}

/// Serializes a store as N-Triples (sorted for determinism).
pub fn write_ntriples(st: &TripleStore) -> String {
    let mut out = String::new();
    for t in st.iter() {
        write_term(st.term_str(t.s), &mut out);
        out.push(' ');
        write_term(st.term_str(t.p), &mut out);
        out.push(' ');
        write_term(st.term_str(t.o), &mut out);
        out.push_str(" .\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_iris_literals_and_blanks() {
        let text = r#"
# a comment
<http://ex.org/alice> <http://ex.org/knows> <http://ex.org/bob> .
<http://ex.org/alice> <http://ex.org/name> "Alice \"A\"" .
_:b0 <http://ex.org/age> "33" .
"#;
        let st = parse_ntriples(text).unwrap();
        assert_eq!(st.len(), 3);
        assert!(st.get_term("http://ex.org/alice").is_some());
        assert!(st.get_term("\"Alice \"A\"\"").is_some());
        assert!(st.get_term("_:b0").is_some());
    }

    #[test]
    fn round_trip() {
        let text = "<a> <p> <b> .\n<a> <name> \"x y\" .\n_:n <p> <b> .\n";
        let st = parse_ntriples(text).unwrap();
        let out = write_ntriples(&st);
        let st2 = parse_ntriples(&out).unwrap();
        assert_eq!(st.len(), st2.len());
        for t in st.iter() {
            let s = st.term_str(t.s);
            let p = st.term_str(t.p);
            let o = st.term_str(t.o);
            let t2 = crate::store::Triple {
                s: st2.get_term(s).unwrap(),
                p: st2.get_term(p).unwrap(),
                o: st2.get_term(o).unwrap(),
            };
            assert!(st2.contains(t2), "missing {s} {p} {o}");
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_ntriples("<a> <p> .\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = parse_ntriples("<a> <p> <b>\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = parse_ntriples("<a> <p> \"unterminated .\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = parse_ntriples("<a> <p> <b> .\nbogus\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn decodes_all_w3c_string_escapes() {
        let text = "<a> <p> \"tab:\\t cr:\\r lf:\\n bs:\\b ff:\\f sq:\\' dq:\\\" bsl:\\\\\" .\n\
                    <a> <q> \"e-acute:\\u00E9 snowman:\\u2603 rocket:\\U0001F680\" .\n";
        let st = parse_ntriples(text).unwrap();
        assert!(st
            .get_term("\"tab:\t cr:\r lf:\n bs:\u{0008} ff:\u{000C} sq:' dq:\" bsl:\\\"")
            .is_some());
        assert!(st
            .get_term("\"e-acute:\u{00E9} snowman:\u{2603} rocket:\u{1F680}\"")
            .is_some());
    }

    #[test]
    fn escape_round_trip_is_byte_exact() {
        // Unicode and CR-bearing literals survive parse → write → parse,
        // and the second write is byte-identical to the first (the
        // writer is a fixed point).
        let text =
            "<a> <p> \"line1\\nline2\\rcr\\ttab \\u00E9\\U0001F600 quote:\\\" back:\\\\\" .\n\
                    <a> <q> \"\\b\\f\\u0007bell\" .\n";
        let st = parse_ntriples(text).unwrap();
        let out1 = write_ntriples(&st);
        let st2 = parse_ntriples(&out1).unwrap();
        assert_eq!(st.len(), st2.len());
        let out2 = write_ntriples(&st2);
        assert_eq!(out1, out2);
        // The decoded content is the real characters, not the escapes.
        assert!(st2
            .get_term("\"line1\nline2\rcr\ttab \u{00E9}\u{1F600} quote:\" back:\\\"")
            .is_some());
    }

    #[test]
    fn writer_escapes_grammar_forbidden_characters() {
        let mut st = TripleStore::new();
        st.insert_strs("a", "p", "\"cr\rlf\nquote\"backslash\\\"");
        let out = write_ntriples(&st);
        // One triple, one line: CR and LF must have been escaped.
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("\\r") && out.contains("\\n"));
        assert!(out.contains("\\\"") && out.contains("\\\\"));
        let st2 = parse_ntriples(&out).unwrap();
        assert!(st2.get_term("\"cr\rlf\nquote\"backslash\\\"").is_some());
    }

    #[test]
    fn invalid_unicode_escapes_are_rejected_with_line_numbers() {
        for bad in [
            "<a> <p> \"\\uZZZZ\" .\n",     // non-hex digits
            "<a> <p> \"\\u12\" .\n",       // truncated
            "<a> <p> \"\\UDEADBEEF\" .\n", // beyond the scalar range
            "<a> <p> \"\\uD800\" .\n",     // lone surrogate
            "<a> <p> \"\\x41\" .\n",       // unknown escape letter
        ] {
            let err = parse_ntriples(bad).unwrap_err();
            assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{bad}");
        }
    }

    #[test]
    fn duplicate_lines_collapse() {
        let st = parse_ntriples("<a> <p> <b> .\n<a> <p> <b> .\n").unwrap();
        assert_eq!(st.len(), 1);
    }
}
