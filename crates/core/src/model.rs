//! Uniform evaluation interface over the three data models.
//!
//! The paper defines the semantics of path regular expressions separately
//! for labeled graphs, property graphs and vector-labeled graphs, noting
//! that the definitions only differ in how *tests* are interpreted. The
//! [`PathGraph`] trait captures exactly that interface: adjacency plus the
//! interpretation of a [`Test`] on a node or an edge. Every algorithm in
//! this crate (evaluation, counting, generation, enumeration) is written
//! once against `PathGraph` and works on all three models.

use crate::expr::Test;
use kgq_graph::{Csr, EdgeId, LabeledGraph, NodeId, PropertyGraph, Sym, VectorGraph};

/// A graph that path expressions can be evaluated on.
pub trait PathGraph {
    /// Number of nodes.
    fn node_count(&self) -> usize;
    /// Number of edges.
    fn edge_count(&self) -> usize;
    /// `ρ(e)` — endpoints of edge `e`.
    fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId);
    /// Outgoing `(edge, target)` pairs of `n`.
    fn out(&self, n: NodeId) -> &[(EdgeId, NodeId)];
    /// Incoming `(edge, source)` pairs of `n`.
    fn inc(&self, n: NodeId) -> &[(EdgeId, NodeId)];
    /// Does node `n` satisfy `test`?
    fn node_test(&self, n: NodeId, test: &Test) -> bool;
    /// Does edge `e` satisfy `test`?
    fn edge_test(&self, e: EdgeId, test: &Test) -> bool;
}

fn eval_bool<F>(test: &Test, atom: &F) -> bool
where
    F: Fn(&Test) -> bool,
{
    match test {
        Test::Not(t) => !eval_bool(t, atom),
        Test::And(a, b) => eval_bool(a, atom) && eval_bool(b, atom),
        Test::Or(a, b) => eval_bool(a, atom) || eval_bool(b, atom),
        leaf => atom(leaf),
    }
}

/// Evaluation view over a [`LabeledGraph`].
///
/// Label tests compare against `λ`; property and feature tests are false
/// (a labeled graph has no `σ` and no feature vectors).
pub struct LabeledView<'a> {
    g: &'a LabeledGraph,
    csr: Csr,
}

impl<'a> LabeledView<'a> {
    /// Builds the view (snapshots adjacency into CSR form).
    pub fn new(g: &'a LabeledGraph) -> Self {
        LabeledView {
            csr: Csr::build(g.base()),
            g,
        }
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &LabeledGraph {
        self.g
    }
}

impl PathGraph for LabeledView<'_> {
    fn node_count(&self) -> usize {
        self.g.node_count()
    }
    fn edge_count(&self) -> usize {
        self.g.edge_count()
    }
    fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.g.base().endpoints(e)
    }
    fn out(&self, n: NodeId) -> &[(EdgeId, NodeId)] {
        self.csr.out(n)
    }
    fn inc(&self, n: NodeId) -> &[(EdgeId, NodeId)] {
        self.csr.inc(n)
    }
    fn node_test(&self, n: NodeId, test: &Test) -> bool {
        eval_bool(test, &|leaf| match leaf {
            Test::Label(l) => self.g.node_label(n) == *l,
            _ => false,
        })
    }
    fn edge_test(&self, e: EdgeId, test: &Test) -> bool {
        eval_bool(test, &|leaf| match leaf {
            Test::Label(l) => self.g.edge_label(e) == *l,
            _ => false,
        })
    }
}

/// Evaluation view over a [`PropertyGraph`].
///
/// Label tests compare against `λ`; `(p = v)` tests consult `σ`; feature
/// tests are false.
///
/// The CSR adjacency snapshot is built **lazily**, on the first
/// adjacency access: callers that end up on a cached product (a
/// [`crate::cache::QueryCache`] hit never touches the view) or on an
/// analyzer short-circuit skip the O(E) build entirely. The lazy cell is
/// thread-safe, so one view can be probed from concurrent workers.
pub struct PropertyView<'a> {
    g: &'a PropertyGraph,
    csr: std::sync::OnceLock<Csr>,
}

impl<'a> PropertyView<'a> {
    /// Builds the view (the CSR snapshot is deferred to first use).
    pub fn new(g: &'a PropertyGraph) -> Self {
        PropertyView {
            csr: std::sync::OnceLock::new(),
            g,
        }
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &PropertyGraph {
        self.g
    }

    fn csr(&self) -> &Csr {
        self.csr.get_or_init(|| Csr::build(self.g.labeled().base()))
    }
}

impl PathGraph for PropertyView<'_> {
    fn node_count(&self) -> usize {
        self.g.node_count()
    }
    fn edge_count(&self) -> usize {
        self.g.edge_count()
    }
    fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.g.labeled().base().endpoints(e)
    }
    fn out(&self, n: NodeId) -> &[(EdgeId, NodeId)] {
        self.csr().out(n)
    }
    fn inc(&self, n: NodeId) -> &[(EdgeId, NodeId)] {
        self.csr().inc(n)
    }
    fn node_test(&self, n: NodeId, test: &Test) -> bool {
        eval_bool(test, &|leaf| match leaf {
            Test::Label(l) => self.g.labeled().node_label(n) == *l,
            Test::Prop(p, v) => self.g.node_prop(n, *p) == Some(*v),
            _ => false,
        })
    }
    fn edge_test(&self, e: EdgeId, test: &Test) -> bool {
        eval_bool(test, &|leaf| match leaf {
            Test::Label(l) => self.g.labeled().edge_label(e) == *l,
            Test::Prop(p, v) => self.g.edge_prop(e, *p) == Some(*v),
            _ => false,
        })
    }
}

/// Evaluation view over a [`VectorGraph`].
///
/// `(f_i = v)` tests compare feature `i` (1-based); a plain label test `ℓ`
/// is interpreted as `(f_1 = ℓ)`, matching the paper's convention that the
/// first feature row plays the role of the label in Figure 2(c).
pub struct VectorView<'a> {
    g: &'a VectorGraph,
    csr: Csr,
}

impl<'a> VectorView<'a> {
    /// Builds the view.
    pub fn new(g: &'a VectorGraph) -> Self {
        VectorView {
            csr: Csr::build(g.base()),
            g,
        }
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &VectorGraph {
        self.g
    }

    fn feature_eq(&self, vec_of: Option<NodeId>, edge: Option<EdgeId>, i: usize, v: Sym) -> bool {
        if i == 0 || i > self.g.dim() {
            return false;
        }
        match (vec_of, edge) {
            (Some(n), None) => self.g.node_feature(n, i - 1) == v,
            (None, Some(e)) => self.g.edge_feature(e, i - 1) == v,
            _ => false,
        }
    }
}

impl PathGraph for VectorView<'_> {
    fn node_count(&self) -> usize {
        self.g.node_count()
    }
    fn edge_count(&self) -> usize {
        self.g.edge_count()
    }
    fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.g.base().endpoints(e)
    }
    fn out(&self, n: NodeId) -> &[(EdgeId, NodeId)] {
        self.csr.out(n)
    }
    fn inc(&self, n: NodeId) -> &[(EdgeId, NodeId)] {
        self.csr.inc(n)
    }
    fn node_test(&self, n: NodeId, test: &Test) -> bool {
        eval_bool(test, &|leaf| match leaf {
            Test::Feature(i, v) => self.feature_eq(Some(n), None, *i, *v),
            Test::Label(l) => self.feature_eq(Some(n), None, 1, *l),
            _ => false,
        })
    }
    fn edge_test(&self, e: EdgeId, test: &Test) -> bool {
        eval_bool(test, &|leaf| match leaf {
            Test::Feature(i, v) => self.feature_eq(None, Some(e), *i, *v),
            Test::Label(l) => self.feature_eq(None, Some(e), 1, *l),
            _ => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgq_graph::figures::{figure2_labeled, figure2_property, figure2_vector};

    #[test]
    fn labeled_view_tests_labels_only() {
        let g = figure2_labeled();
        let view = LabeledView::new(&g);
        let n1 = g.node_named("n1").unwrap();
        let person = g.sym("person").unwrap();
        assert!(view.node_test(n1, &Test::Label(person)));
        // Property tests are vacuously false on a labeled graph.
        let name = g.sym("n1").unwrap();
        assert!(!view.node_test(n1, &Test::Prop(name, person)));
        // But a negated property test is true.
        assert!(view.node_test(n1, &Test::Prop(name, person).not()));
    }

    #[test]
    fn property_view_checks_sigma() {
        let g = figure2_property();
        let view = PropertyView::new(&g);
        let lg = g.labeled();
        let e2 = lg.edge_named("e2").unwrap();
        let date = lg.sym("date").unwrap();
        let d = lg.sym("3/4/21").unwrap();
        let rides = lg.sym("rides").unwrap();
        assert!(view.edge_test(e2, &Test::Label(rides).and(Test::Prop(date, d))));
        let e1 = lg.edge_named("e1").unwrap();
        assert!(!view.edge_test(e1, &Test::Prop(date, d))); // e1 is 3/3/21
    }

    #[test]
    fn vector_view_uses_features() {
        let g = figure2_vector();
        let view = VectorView::new(&g);
        let n3 = g.node_named("n3").unwrap();
        let bus = g.consts().get("bus").unwrap();
        // f1 = bus (feature indices are 1-based).
        assert!(view.node_test(n3, &Test::Feature(1, bus)));
        // Bare label tests fall back to f1.
        assert!(view.node_test(n3, &Test::Label(bus)));
        // Out-of-range feature indices are simply false.
        assert!(!view.node_test(n3, &Test::Feature(99, bus)));
    }

    #[test]
    fn boolean_connectives_evaluate() {
        let g = figure2_labeled();
        let view = LabeledView::new(&g);
        let n3 = g.node_named("n3").unwrap();
        let person = g.sym("person").unwrap();
        let bus = g.sym("bus").unwrap();
        let t = Test::Label(person).or(Test::Label(bus));
        assert!(view.node_test(n3, &t));
        let t = Test::Label(person).and(Test::Label(bus));
        assert!(!view.node_test(n3, &t));
        let t = Test::Label(person).not();
        assert!(view.node_test(n3, &t));
    }

    #[test]
    fn adjacency_matches_base_graph() {
        let g = figure2_labeled();
        let view = LabeledView::new(&g);
        let n3 = g.node_named("n3").unwrap();
        // n3 (the bus) has three riders and one owner: 4 incoming edges.
        assert_eq!(view.inc(n3).len(), 4);
        assert!(view.out(n3).is_empty());
        assert_eq!(view.node_count(), 8);
        assert_eq!(view.edge_count(), 8);
    }
}
