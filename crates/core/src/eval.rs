//! Regular path query evaluation: reachability, node extraction, witnesses.
//!
//! These are the "local properties" and "connectivity" functionalities of
//! the paper's Section 2.1 / 4: which nodes start a matching path, which
//! pairs `(start, end)` are connected by one, and a concrete shortest
//! witness path. All run over the nondeterministic [`Product`] in time
//! polynomial in the product size (no determinization needed, since only
//! existence — not counting — is asked).
//!
//! Multi-source scans ([`Evaluator::pairs`], [`Evaluator::matching_starts`])
//! run on the bit-parallel [`ReachKernel`]: each pass advances 64 BFS
//! sources at once (see [`crate::bitkernel`]), and batches fan out across
//! threads (see [`crate::parallel`]). Batch results are concatenated in
//! source order, so the output is byte-identical to the per-source
//! sequential references ([`Evaluator::pairs_sequential`],
//! [`Evaluator::matching_starts_sequential`]) regardless of thread count.
//! Point lookups ([`Evaluator::check`], [`Evaluator::shortest_witness`])
//! instead search bidirectionally — forward from the source's initial
//! states, backward from the accepting states at the target over the
//! `preds` CSR — meeting in the middle.
//!
//! Expressions are compiled through [`Nfa::compile_min`]: the minimized
//! automaton has no ε-skeleton and (usually) fewer states, which shrinks
//! the product every scan runs over.

use crate::analyze::PlanAdvice;
use crate::automata::Nfa;
use crate::bitkernel::{ReachKernel, BATCH};
use crate::expr::PathExpr;
use crate::govern::{fault_point, isolate, EvalError, Governed, Governor, Interrupt, Ticker};
use crate::model::PathGraph;
use crate::path::Path;
use crate::product::{PState, Product};
use kgq_graph::{EdgeId, NodeId};
use rayon::prelude::*;
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

/// Compiled evaluator for one expression over one graph.
///
/// Holds the product behind an [`Arc`] so a [`crate::cache::QueryCache`]
/// hit can share an already-built product without copying it. The
/// reachability kernel is derived lazily on first multi-source scan and
/// reused afterwards.
pub struct Evaluator {
    product: Arc<Product>,
    kernel: OnceLock<ReachKernel>,
}

impl Evaluator {
    /// Compiles `expr` (through minimization) and builds the product
    /// with `g`.
    pub fn new<G: PathGraph>(g: &G, expr: &PathExpr) -> Evaluator {
        let nfa = Nfa::compile_min(expr).nfa;
        Evaluator::from_product(Arc::new(Product::build(g, &nfa)))
    }

    /// Compiles `expr` and builds the product under `gov`'s budget.
    pub fn new_governed<G: PathGraph>(
        g: &G,
        expr: &PathExpr,
        gov: &Governor,
    ) -> Result<Evaluator, Interrupt> {
        let nfa = Nfa::compile_min(expr).nfa;
        Ok(Evaluator::from_product(Arc::new(Product::build_governed(
            g, &nfa, gov,
        )?)))
    }

    /// Wraps an already-built (possibly cached) product.
    pub fn from_product(product: Arc<Product>) -> Evaluator {
        Evaluator {
            product,
            kernel: OnceLock::new(),
        }
    }

    /// Access to the underlying product automaton.
    pub fn product(&self) -> &Product {
        &self.product
    }

    /// The bit-parallel reachability kernel, built on first use.
    pub fn kernel(&self) -> &ReachKernel {
        self.kernel
            .get_or_init(|| ReachKernel::build(&self.product))
    }

    /// Product states reachable (by any number of edge symbols) from the
    /// initial states of `start`.
    fn reachable_from(&self, start: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.product.state_count()];
        let mut queue: VecDeque<PState> = VecDeque::new();
        for &s in self.product.initial(start) {
            if !seen[s as usize] {
                seen[s as usize] = true;
                queue.push_back(s);
            }
        }
        while let Some(s) = queue.pop_front() {
            for &(_, s2) in self.product.out(s) {
                if !seen[s2 as usize] {
                    seen[s2 as usize] = true;
                    queue.push_back(s2);
                }
            }
        }
        seen
    }

    /// Governed [`Evaluator::reachable_from`]: ticks per frontier
    /// expansion and charges the visited bitmap (released by the caller).
    fn reachable_from_governed(
        &self,
        start: NodeId,
        gov: &Governor,
    ) -> Result<Vec<bool>, Interrupt> {
        let mut ticker = Ticker::new(gov);
        gov.charge_memory(self.product.state_count() as u64)?;
        let mut seen = vec![false; self.product.state_count()];
        let mut queue: VecDeque<PState> = VecDeque::new();
        for &s in self.product.initial(start) {
            if !seen[s as usize] {
                seen[s as usize] = true;
                queue.push_back(s);
            }
        }
        while let Some(s) = queue.pop_front() {
            for &(_, s2) in self.product.out(s) {
                ticker.tick()?;
                if !seen[s2 as usize] {
                    seen[s2 as usize] = true;
                    queue.push_back(s2);
                }
            }
        }
        ticker.flush()?;
        Ok(seen)
    }

    /// Governed [`Evaluator::ends_from`]; identical output when the
    /// budget is not exhausted.
    pub fn ends_from_governed(
        &self,
        start: NodeId,
        gov: &Governor,
    ) -> Result<Vec<NodeId>, Interrupt> {
        let seen = self.reachable_from_governed(start, gov)?;
        let mut ends: Vec<NodeId> = seen
            .iter()
            .enumerate()
            .filter(|&(s, &r)| r && self.product.is_accepting(s as PState))
            .map(|(s, _)| self.product.node_of(s as PState))
            .collect();
        gov.release_memory(seen.len() as u64);
        ends.sort_unstable();
        ends.dedup();
        Ok(ends)
    }

    /// End nodes `b` such that some path `p ∈ ⟦r⟧` has
    /// `start(p) = start ∧ end(p) = b`. Sorted, deduplicated.
    pub fn ends_from(&self, start: NodeId) -> Vec<NodeId> {
        let seen = self.reachable_from(start);
        let mut ends: Vec<NodeId> = seen
            .iter()
            .enumerate()
            .filter(|&(s, &r)| r && self.product.is_accepting(s as PState))
            .map(|(s, _)| self.product.node_of(s as PState))
            .collect();
        ends.sort_unstable();
        ends.dedup();
        ends
    }

    /// True if some matching path runs from `a` to `b`.
    ///
    /// Searches bidirectionally over the product — forward from `a`'s
    /// initial states, backward from the accepting states at `b` — and
    /// answers as soon as the frontiers meet.
    pub fn check(&self, a: NodeId, b: NodeId) -> bool {
        self.kernel().check(&self.product, a, b)
    }

    /// All `(start, end)` pairs connected by a matching path.
    ///
    /// Runs on the bit-parallel kernel: 64 sources per sweep, sweeps
    /// fanned out across threads when available. The result is identical
    /// to [`Evaluator::pairs_sequential`] for every thread count.
    pub fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        let kernel = self.kernel();
        let nodes = self.all_nodes();
        let nb = nodes.len().div_ceil(BATCH);
        let chunk_of = |i: usize| &nodes[i * BATCH..((i + 1) * BATCH).min(nodes.len())];
        if crate::parallel::effective_threads() <= 1 || nb < 2 {
            // Fused sequential path: each batch appends straight into the
            // accumulator through reusable pre-sized buckets, so the
            // multi-million-pair answers are written once, not copied
            // batch-by-batch.
            let mut scratch: Vec<Vec<NodeId>> = Vec::new();
            let mut out = Vec::new();
            for i in 0..nb {
                let chunk = chunk_of(i);
                let visited = kernel.sweep(&self.product, chunk);
                kernel.append_batch_pairs(chunk, &visited, &mut scratch, &mut out);
            }
            out
        } else {
            let per_batch: Vec<Vec<(NodeId, NodeId)>> = (0..nb)
                .into_par_iter()
                .map(|i| {
                    let chunk = chunk_of(i);
                    let visited = kernel.sweep(&self.product, chunk);
                    let mut scratch = Vec::new();
                    let mut out = Vec::new();
                    kernel.append_batch_pairs(chunk, &visited, &mut scratch, &mut out);
                    out
                })
                .collect();
            let mut result = Vec::with_capacity(per_batch.iter().map(Vec::len).sum());
            for chunk in per_batch {
                result.extend(chunk);
            }
            result
        }
    }

    /// All source nodes the product covers, in id order.
    fn all_nodes(&self) -> Vec<NodeId> {
        (0..self.product.node_count() as u32).map(NodeId).collect()
    }

    /// Runs `run` over every [`BATCH`]-sized chunk of `nodes` — in
    /// parallel when threads are available — and concatenates the chunk
    /// results in source order (deterministic at every thread count).
    fn map_batches<T: Send>(
        &self,
        nodes: &[NodeId],
        run: impl Fn(&[NodeId]) -> Vec<T> + Sync,
    ) -> Vec<T> {
        let nb = nodes.len().div_ceil(BATCH);
        let chunk_of = |i: usize| &nodes[i * BATCH..((i + 1) * BATCH).min(nodes.len())];
        let per_batch: Vec<Vec<T>> = if crate::parallel::effective_threads() <= 1 || nb < 2 {
            (0..nb).map(|i| run(chunk_of(i))).collect()
        } else {
            (0..nb).into_par_iter().map(|i| run(chunk_of(i))).collect()
        };
        let mut result = Vec::with_capacity(per_batch.iter().map(Vec::len).sum());
        for chunk in per_batch {
            result.extend(chunk);
        }
        result
    }

    /// Governed [`Evaluator::pairs`]: every 64-source sweep runs under
    /// `gov` with its panics isolated, and exhaustion yields a *prefix*
    /// of the full answer (every included batch completed its sweep)
    /// tagged [`crate::govern::Completion::Partial`] with the reason.
    ///
    /// With an unlimited governor the value is byte-identical to
    /// [`Evaluator::pairs`] at every thread count.
    pub fn pairs_governed(
        &self,
        gov: &Governor,
    ) -> Result<Governed<Vec<(NodeId, NodeId)>>, EvalError> {
        let kernel = self.kernel();
        let nodes = self.all_nodes();
        let nb = nodes.len().div_ceil(BATCH);
        if crate::parallel::effective_threads() > 1 && nb >= 2 {
            let per_batch = self.scan_governed(gov, |chunk| {
                let visited = kernel.sweep_governed(&self.product, chunk, gov)?;
                let mut out = Vec::new();
                let mut scratch = Vec::new();
                kernel.append_batch_pairs(chunk, &visited, &mut scratch, &mut out);
                kernel.release_sweep(gov);
                Ok(out)
            });
            return assemble_prefix(per_batch, gov, true);
        }
        // Fused sequential path mirroring [`Evaluator::pairs`]: one
        // accumulator, scratch reused across batches (so governance adds
        // no per-batch allocations), results charged as each batch lands
        // with the same per-item cut point as `assemble_prefix`.
        let chunk_of = |i: usize| &nodes[i * BATCH..((i + 1) * BATCH).min(nodes.len())];
        let mut out: Vec<(NodeId, NodeId)> = Vec::new();
        let mut scratch: Vec<Vec<NodeId>> = Vec::new();
        for i in 0..nb {
            let before = out.len();
            let step = isolate(|| {
                fault_point!("eval::bfs");
                // An already-tripped governor stops remaining batches
                // immediately instead of letting them finish a sweep.
                if let Some(why) = gov.trip_state() {
                    return Err(why);
                }
                let chunk = chunk_of(i);
                let visited = kernel.sweep_governed(&self.product, chunk, gov)?;
                kernel.append_batch_pairs(chunk, &visited, &mut scratch, &mut out);
                kernel.release_sweep(gov);
                Ok(())
            });
            match step {
                Ok(()) => {
                    for idx in before..out.len() {
                        if let Err(why) = gov.charge_results(1) {
                            out.truncate(idx);
                            return Ok(Governed::partial(out, why));
                        }
                    }
                }
                Err(EvalError::Interrupted(why)) => {
                    out.truncate(before);
                    return Ok(Governed::partial(out, why));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(Governed::complete(out))
    }

    /// Governed [`Evaluator::matching_starts`]; same partial-prefix
    /// contract as [`Evaluator::pairs_governed`].
    pub fn matching_starts_governed(
        &self,
        gov: &Governor,
    ) -> Result<Governed<Vec<NodeId>>, EvalError> {
        self.starts_governed_impl(gov, true)
    }

    /// [`Evaluator::matching_starts_governed`] without result-budget
    /// charging: for *internal* scans (e.g. a Cypher prefilter) whose
    /// output is not a user-visible answer. Steps, memory, deadline and
    /// cancellation are still enforced.
    pub fn matching_starts_governed_unmetered(
        &self,
        gov: &Governor,
    ) -> Result<Governed<Vec<NodeId>>, EvalError> {
        self.starts_governed_impl(gov, false)
    }

    fn starts_governed_impl(
        &self,
        gov: &Governor,
        meter_results: bool,
    ) -> Result<Governed<Vec<NodeId>>, EvalError> {
        let kernel = self.kernel();
        let per_batch = self.scan_governed(gov, |chunk| {
            let visited = kernel.sweep_governed(&self.product, chunk, gov)?;
            let matched = kernel.batch_matches(&visited);
            kernel.release_sweep(gov);
            Ok(chunk
                .iter()
                .enumerate()
                .filter(|&(j, _)| matched >> j & 1 == 1)
                .map(|(_, &v)| v)
                .collect())
        });
        assemble_prefix(per_batch, gov, meter_results)
    }

    /// Runs `run` for every [`BATCH`]-sized source chunk, in parallel
    /// when threads are available, isolating worker panics. Results stay
    /// in source order.
    fn scan_governed<T: Send>(
        &self,
        gov: &Governor,
        run: impl Fn(&[NodeId]) -> Result<Vec<T>, Interrupt> + Sync,
    ) -> Vec<Result<Vec<T>, EvalError>> {
        let nodes = self.all_nodes();
        let nb = nodes.len().div_ceil(BATCH);
        let governed_run = |i: usize| {
            isolate(|| {
                fault_point!("eval::bfs");
                // An already-tripped governor stops remaining batches
                // immediately instead of letting them finish a sweep.
                if let Some(why) = gov.trip_state() {
                    return Err(why);
                }
                run(&nodes[i * BATCH..((i + 1) * BATCH).min(nodes.len())])
            })
        };
        if crate::parallel::effective_threads() <= 1 || nb < 2 {
            (0..nb).map(governed_run).collect()
        } else {
            (0..nb).into_par_iter().map(governed_run).collect()
        }
    }

    /// Single-threaded [`Evaluator::pairs`] (reference implementation).
    pub fn pairs_sequential(&self) -> Vec<(NodeId, NodeId)> {
        let n = self.product.node_count();
        let mut result = Vec::new();
        for v in 0..n as u32 {
            let v = NodeId(v);
            for b in self.ends_from(v) {
                result.push((v, b));
            }
        }
        result
    }

    /// [`Evaluator::pairs`] routed through the static analyzer's
    /// [`PlanAdvice`]: a `Sequential` recommendation takes the fused
    /// sequential scan (skipping kernel setup), everything else the
    /// bit-parallel sweep. Every plan produces byte-identical output —
    /// advice only moves work, never answers.
    pub fn pairs_planned(&self, advice: PlanAdvice) -> Vec<(NodeId, NodeId)> {
        match advice {
            PlanAdvice::Sequential => self.pairs_sequential(),
            PlanAdvice::BitParallel | PlanAdvice::Bidirectional => self.pairs(),
        }
    }

    /// [`Evaluator::matching_starts`] routed through [`PlanAdvice`]; see
    /// [`Evaluator::pairs_planned`] for the guarantees.
    pub fn matching_starts_planned(&self, advice: PlanAdvice) -> Vec<NodeId> {
        match advice {
            PlanAdvice::Sequential => self.matching_starts_sequential(),
            PlanAdvice::BitParallel | PlanAdvice::Bidirectional => self.matching_starts(),
        }
    }

    /// Node extraction (§4.3): all nodes that *start* a matching path.
    ///
    /// Runs on the bit-parallel kernel, with output identical to
    /// [`Evaluator::matching_starts_sequential`].
    pub fn matching_starts(&self) -> Vec<NodeId> {
        let kernel = self.kernel();
        let nodes = self.all_nodes();
        self.map_batches(&nodes, |chunk| {
            let visited = kernel.sweep(&self.product, chunk);
            let matched = kernel.batch_matches(&visited);
            chunk
                .iter()
                .enumerate()
                .filter(|&(j, _)| matched >> j & 1 == 1)
                .map(|(_, &v)| v)
                .collect()
        })
    }

    /// Single-threaded [`Evaluator::matching_starts`].
    pub fn matching_starts_sequential(&self) -> Vec<NodeId> {
        let n = self.product.node_count();
        (0..n as u32)
            .map(NodeId)
            .filter(|&v| !self.ends_from(v).is_empty())
            .collect()
    }

    /// A shortest matching path from `a` to `b`, if any — minimal in the
    /// number of edges, like [`Evaluator::shortest_witness_sequential`]
    /// (the witness itself may differ when several shortest paths exist).
    ///
    /// Searches bidirectionally: forward BFS layers from `a`'s initial
    /// states meet backward BFS layers grown from the accepting states at
    /// `b` over the `preds` CSR, expanding the cheaper frontier each
    /// round, so the explored region is roughly two half-depth balls
    /// instead of one full-depth ball.
    pub fn shortest_witness(&self, a: NodeId, b: NodeId) -> Option<Path> {
        let p = &*self.product;
        // Length-0 path: an accepting initial state of `a` at node `b`.
        for &s in p.initial(a) {
            if p.is_accepting(s) && p.node_of(s) == b {
                return Some(Path {
                    start: a,
                    edges: Vec::new(),
                });
            }
        }
        let n = p.state_count();
        let targets: Vec<PState> = (0..n as PState)
            .filter(|&s| p.is_accepting(s) && p.node_of(s) == b)
            .collect();
        if targets.is_empty() || p.initial(a).is_empty() {
            return None;
        }
        // Distances and parent links for both directions; `fpar` points
        // one step toward `a`, `bpar` one step toward the target.
        let mut fdist: Vec<u32> = vec![u32::MAX; n];
        let mut bdist: Vec<u32> = vec![u32::MAX; n];
        let mut fpar: Vec<Option<(PState, EdgeId)>> = vec![None; n];
        let mut bpar: Vec<Option<(PState, EdgeId)>> = vec![None; n];
        let mut ffr: Vec<PState> = Vec::new();
        let mut bfr: Vec<PState> = Vec::new();
        for &s in &targets {
            bdist[s as usize] = 0;
            bfr.push(s);
        }
        for &s in p.initial(a) {
            if fdist[s as usize] == u32::MAX {
                fdist[s as usize] = 0;
                ffr.push(s);
            }
        }
        // Initial-state targets were the length-0 case above; any other
        // meet is found when the second side discovers the state.
        let mut best: Option<(u32, PState)> = None;
        while !ffr.is_empty() && !bfr.is_empty() {
            // A future meet is discovered by one side expanding past its
            // current layer, so it costs at least one more than that
            // layer's depth; once the best found path is no longer
            // beatable, stop.
            if let Some((d, _)) = best {
                let fl = fdist[ffr[0] as usize];
                let bl = bdist[bfr[0] as usize];
                if d <= fl.min(bl) + 1 {
                    break;
                }
            }
            let fcost: usize = ffr.iter().map(|&s| p.out(s).len()).sum();
            let bcost: usize = bfr.iter().map(|&s| p.preds(s).len()).sum();
            if fcost <= bcost {
                let mut next = Vec::new();
                for &s in &ffr {
                    for &(e, s2) in p.out(s) {
                        if fdist[s2 as usize] == u32::MAX {
                            fdist[s2 as usize] = fdist[s as usize] + 1;
                            fpar[s2 as usize] = Some((s, e));
                            if bdist[s2 as usize] != u32::MAX {
                                let total = fdist[s2 as usize] + bdist[s2 as usize];
                                if best.is_none_or(|(d, _)| total < d) {
                                    best = Some((total, s2));
                                }
                            }
                            next.push(s2);
                        }
                    }
                }
                ffr = next;
            } else {
                let mut next = Vec::new();
                for &s in &bfr {
                    for &(s2, e) in p.preds(s) {
                        if bdist[s2 as usize] == u32::MAX {
                            bdist[s2 as usize] = bdist[s as usize] + 1;
                            bpar[s2 as usize] = Some((s, e));
                            if fdist[s2 as usize] != u32::MAX {
                                let total = fdist[s2 as usize] + bdist[s2 as usize];
                                if best.is_none_or(|(d, _)| total < d) {
                                    best = Some((total, s2));
                                }
                            }
                            next.push(s2);
                        }
                    }
                }
                bfr = next;
            }
        }
        let (_, meet) = best?;
        let mut edges = Vec::new();
        let mut cur = meet;
        while let Some((prev, e)) = fpar[cur as usize] {
            edges.push(e);
            cur = prev;
        }
        edges.reverse();
        let mut cur = meet;
        while let Some((next, e)) = bpar[cur as usize] {
            edges.push(e);
            cur = next;
        }
        Some(Path { start: a, edges })
    }

    /// Reference [`Evaluator::shortest_witness`]: plain forward BFS over
    /// the product. Used to validate the bidirectional search (both must
    /// agree on existence and length; the concrete witness may differ).
    pub fn shortest_witness_sequential(&self, a: NodeId, b: NodeId) -> Option<Path> {
        let mut parent: Vec<Option<(PState, EdgeId)>> = vec![None; self.product.state_count()];
        let mut seen = vec![false; self.product.state_count()];
        let mut queue: VecDeque<PState> = VecDeque::new();
        for &s in self.product.initial(a) {
            if !seen[s as usize] {
                seen[s as usize] = true;
                queue.push_back(s);
            }
        }
        let mut found: Option<PState> = None;
        // Check immediate acceptance (length-0 path).
        for &s in self.product.initial(a) {
            if self.product.is_accepting(s) && self.product.node_of(s) == b {
                found = Some(s);
            }
        }
        while found.is_none() {
            let s = queue.pop_front()?;
            for &(e, s2) in self.product.out(s) {
                if !seen[s2 as usize] {
                    seen[s2 as usize] = true;
                    parent[s2 as usize] = Some((s, e));
                    if self.product.is_accepting(s2) && self.product.node_of(s2) == b {
                        found = Some(s2);
                        break;
                    }
                    queue.push_back(s2);
                }
            }
        }
        let mut edges = Vec::new();
        let mut cur = found?;
        while let Some((p, e)) = parent[cur as usize] {
            edges.push(e);
            cur = p;
        }
        edges.reverse();
        Some(Path { start: a, edges })
    }
}

/// Concatenates per-source scan results in source order, cutting at the
/// first interrupted source so the value is an exact prefix of the full
/// answer. Result-budget charging happens here, sequentially, so the
/// prefix length under a result budget is deterministic. Worker panics
/// (`EvalError::Panic`) propagate as errors.
fn assemble_prefix<T>(
    per_source: Vec<Result<Vec<T>, EvalError>>,
    gov: &Governor,
    meter_results: bool,
) -> Result<Governed<Vec<T>>, EvalError> {
    let mut out = Vec::new();
    for chunk in per_source {
        match chunk {
            Ok(items) => {
                for item in items {
                    if meter_results {
                        if let Err(why) = gov.charge_results(1) {
                            return Ok(Governed::partial(out, why));
                        }
                    }
                    out.push(item);
                }
            }
            Err(EvalError::Interrupted(why)) => return Ok(Governed::partial(out, why)),
            Err(e) => return Err(e),
        }
    }
    Ok(Governed::complete(out))
}

/// All matching paths from `a` to `b` of length at most `max_len`,
/// shortest first (then lexicographic) — the "witness paths" view of a
/// query answer.
pub fn paths_between<G: PathGraph>(
    g: &G,
    expr: &PathExpr,
    a: NodeId,
    b: NodeId,
    max_len: usize,
) -> Vec<Path> {
    crate::enumerate::enumerate_paths_upto(g, expr, max_len)
        .into_iter()
        .filter(|p| p.start == a && p.end(g) == Some(b))
        .collect()
}

/// Convenience: all `(start, end)` pairs for `expr` over `g`.
pub fn eval_pairs<G: PathGraph>(g: &G, expr: &PathExpr) -> Vec<(NodeId, NodeId)> {
    Evaluator::new(g, expr).pairs()
}

/// Convenience: nodes starting a matching path (node extraction).
pub fn matching_starts<G: PathGraph>(g: &G, expr: &PathExpr) -> Vec<NodeId> {
    Evaluator::new(g, expr).matching_starts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LabeledView, PropertyView};
    use crate::parser::parse_expr;
    use kgq_graph::figures::{figure2_labeled, figure2_property};

    #[test]
    fn paper_query_finds_possibly_infected_riders() {
        // ?person/rides/?bus/rides⁻/?infected — people sharing a bus with
        // an infected person. In Figure 2: n1 and n4 ride bus n3, and the
        // infected n2 also rides n3.
        let mut g = figure2_labeled();
        let expr = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let starts = ev.matching_starts();
        let names: Vec<_> = starts.iter().map(|&n| g.node_name(n)).collect();
        assert_eq!(names, vec!["n1", "n4"]);
    }

    #[test]
    fn property_dated_contact_query() {
        // Expression (3): contact on 3/4/21 between a person and infected.
        let mut g = figure2_property();
        let expr = parse_expr(
            "?person/{contact & [date='3/4/21']}/?infected",
            g.labeled_mut().consts_mut(),
        )
        .unwrap();
        let view = PropertyView::new(&g);
        let pairs = eval_pairs(&view, &expr);
        // The only person→infected contact dated 3/4/21 is n4 -e5-> n6
        // (e4 is person→person).
        let lg = g.labeled();
        let rendered: Vec<_> = pairs
            .iter()
            .map(|&(a, b)| (lg.node_name(a), lg.node_name(b)))
            .collect();
        assert_eq!(rendered, vec![("n4", "n6")]);
        // A date with no matching contact yields the empty answer.
        let mut g = figure2_property();
        let expr2 = parse_expr(
            "?person/{contact & [date='3/9/21']}/?infected",
            g.labeled_mut().consts_mut(),
        )
        .unwrap();
        let view = PropertyView::new(&g);
        assert!(eval_pairs(&view, &expr2).is_empty());
    }

    #[test]
    fn star_reaches_transitively() {
        let mut g = figure2_labeled();
        // From n1, follow contact edges any number of times.
        let expr = parse_expr("(contact)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let n1 = g.node_named("n1").unwrap();
        let ends = ev.ends_from(n1);
        let names: Vec<_> = ends.iter().map(|&n| g.node_name(n)).collect();
        // n1 itself (0 steps), n4 (1 step), n6 (2 steps).
        assert_eq!(names, vec!["n1", "n4", "n6"]);
    }

    #[test]
    fn shortest_witness_is_minimal_and_valid() {
        let mut g = figure2_labeled();
        let expr = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let n1 = g.node_named("n1").unwrap();
        let n2 = g.node_named("n2").unwrap();
        let p = ev.shortest_witness(n1, n2).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.end(&view), Some(n2));
        assert!(ev.product().accepts(p.start, &p.edges));
        // No witness from the company n7.
        let n7 = g.node_named("n7").unwrap();
        assert!(ev.shortest_witness(n7, n2).is_none());
    }

    #[test]
    fn zero_length_witness() {
        let mut g = figure2_labeled();
        let expr = parse_expr("?bus", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let n3 = g.node_named("n3").unwrap();
        let p = ev.shortest_witness(n3, n3).unwrap();
        assert!(p.is_empty());
        assert_eq!(ev.matching_starts(), vec![n3]);
    }

    #[test]
    fn check_agrees_with_pairs() {
        let mut g = figure2_labeled();
        let expr = parse_expr("rides/rides^-", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let pairs = ev.pairs();
        for &(a, b) in &pairs {
            assert!(ev.check(a, b));
        }
        // rides/rides⁻ relates co-riders (including self-pairs).
        let n1 = g.node_named("n1").unwrap();
        let n4 = g.node_named("n4").unwrap();
        assert!(ev.check(n1, n4));
        let n7 = g.node_named("n7").unwrap();
        assert!(!ev.check(n1, n7));
    }

    #[test]
    fn paths_between_lists_witnesses_in_order() {
        let mut g = figure2_labeled();
        let expr = parse_expr("(contact)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let n1 = g.node_named("n1").unwrap();
        let n6 = g.node_named("n6").unwrap();
        let paths = super::paths_between(&view, &expr, n1, n6, 4);
        // Unique contact chain n1 -e4-> n4 -e5-> n6.
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 2);
        // Same node to itself: the trivial path plus nothing longer.
        let loops = super::paths_between(&view, &expr, n1, n1, 3);
        assert_eq!(loops.len(), 1);
        assert!(loops[0].is_empty());
    }

    #[test]
    fn epidemic_r1_expression_runs() {
        let mut g = figure2_labeled();
        let expr = parse_expr(
            "?infected/rides/?bus/rides^-/(?person/(lives+contact))*/?person",
            g.consts_mut(),
        )
        .unwrap();
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let starts = ev.matching_starts();
        let names: Vec<_> = starts.iter().map(|&n| g.node_name(n)).collect();
        // Only the infected rider n2 can start such a path.
        assert_eq!(names, vec!["n2"]);
        let n2 = g.node_named("n2").unwrap();
        let ends = ev.ends_from(n2);
        let names: Vec<_> = ends.iter().map(|&n| g.node_name(n)).collect();
        // n2 shares bus n3 with n1 and n4; from n4, lives/contact chains
        // reach n8 (shared address) — wait: lives goes person->address, so
        // ?person/lives ends at an address, not a person; the star only
        // continues from *person* nodes, so valid ends are the co-riders.
        assert!(names.contains(&"n1"));
        assert!(names.contains(&"n4"));
    }
}
