//! Regular path query evaluation: reachability, node extraction, witnesses.
//!
//! These are the "local properties" and "connectivity" functionalities of
//! the paper's Section 2.1 / 4: which nodes start a matching path, which
//! pairs `(start, end)` are connected by one, and a concrete shortest
//! witness path. All run over the nondeterministic [`Product`] in time
//! polynomial in the product size (no determinization needed, since only
//! existence — not counting — is asked).
//!
//! Multi-source scans ([`Evaluator::pairs`], [`Evaluator::matching_starts`])
//! fan the per-source BFS out across threads (see [`crate::parallel`]):
//! each source node's reachability pass is independent, and the per-source
//! results are concatenated in source order, so the output is byte-identical
//! to the sequential scan regardless of thread count.

use crate::automata::Nfa;
use crate::expr::PathExpr;
use crate::govern::{fault_point, isolate, EvalError, Governed, Governor, Interrupt, Ticker};
use crate::model::PathGraph;
use crate::path::Path;
use crate::product::{PState, Product};
use kgq_graph::{EdgeId, NodeId};
use rayon::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

/// Compiled evaluator for one expression over one graph.
///
/// Holds the product behind an [`Arc`] so a [`crate::cache::QueryCache`]
/// hit can share an already-built product without copying it.
pub struct Evaluator {
    product: Arc<Product>,
}

impl Evaluator {
    /// Compiles `expr` and builds the product with `g`.
    pub fn new<G: PathGraph>(g: &G, expr: &PathExpr) -> Evaluator {
        let nfa = Nfa::compile(expr);
        Evaluator {
            product: Arc::new(Product::build(g, &nfa)),
        }
    }

    /// Compiles `expr` and builds the product under `gov`'s budget.
    pub fn new_governed<G: PathGraph>(
        g: &G,
        expr: &PathExpr,
        gov: &Governor,
    ) -> Result<Evaluator, Interrupt> {
        let nfa = Nfa::compile(expr);
        Ok(Evaluator {
            product: Arc::new(Product::build_governed(g, &nfa, gov)?),
        })
    }

    /// Wraps an already-built (possibly cached) product.
    pub fn from_product(product: Arc<Product>) -> Evaluator {
        Evaluator { product }
    }

    /// Access to the underlying product automaton.
    pub fn product(&self) -> &Product {
        &self.product
    }

    /// Product states reachable (by any number of edge symbols) from the
    /// initial states of `start`.
    fn reachable_from(&self, start: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.product.state_count()];
        let mut queue: VecDeque<PState> = VecDeque::new();
        for &s in self.product.initial(start) {
            if !seen[s as usize] {
                seen[s as usize] = true;
                queue.push_back(s);
            }
        }
        while let Some(s) = queue.pop_front() {
            for &(_, s2) in self.product.out(s) {
                if !seen[s2 as usize] {
                    seen[s2 as usize] = true;
                    queue.push_back(s2);
                }
            }
        }
        seen
    }

    /// Governed [`Evaluator::reachable_from`]: ticks per frontier
    /// expansion and charges the visited bitmap (released by the caller).
    fn reachable_from_governed(
        &self,
        start: NodeId,
        gov: &Governor,
    ) -> Result<Vec<bool>, Interrupt> {
        let mut ticker = Ticker::new(gov);
        gov.charge_memory(self.product.state_count() as u64)?;
        let mut seen = vec![false; self.product.state_count()];
        let mut queue: VecDeque<PState> = VecDeque::new();
        for &s in self.product.initial(start) {
            if !seen[s as usize] {
                seen[s as usize] = true;
                queue.push_back(s);
            }
        }
        while let Some(s) = queue.pop_front() {
            for &(_, s2) in self.product.out(s) {
                ticker.tick()?;
                if !seen[s2 as usize] {
                    seen[s2 as usize] = true;
                    queue.push_back(s2);
                }
            }
        }
        ticker.flush()?;
        Ok(seen)
    }

    /// Governed [`Evaluator::ends_from`]; identical output when the
    /// budget is not exhausted.
    pub fn ends_from_governed(
        &self,
        start: NodeId,
        gov: &Governor,
    ) -> Result<Vec<NodeId>, Interrupt> {
        let seen = self.reachable_from_governed(start, gov)?;
        let mut ends: Vec<NodeId> = seen
            .iter()
            .enumerate()
            .filter(|&(s, &r)| r && self.product.is_accepting(s as PState))
            .map(|(s, _)| self.product.node_of(s as PState))
            .collect();
        gov.release_memory(seen.len() as u64);
        ends.sort_unstable();
        ends.dedup();
        Ok(ends)
    }

    /// End nodes `b` such that some path `p ∈ ⟦r⟧` has
    /// `start(p) = start ∧ end(p) = b`. Sorted, deduplicated.
    pub fn ends_from(&self, start: NodeId) -> Vec<NodeId> {
        let seen = self.reachable_from(start);
        let mut ends: Vec<NodeId> = seen
            .iter()
            .enumerate()
            .filter(|&(s, &r)| r && self.product.is_accepting(s as PState))
            .map(|(s, _)| self.product.node_of(s as PState))
            .collect();
        ends.sort_unstable();
        ends.dedup();
        ends
    }

    /// True if some matching path runs from `a` to `b`.
    pub fn check(&self, a: NodeId, b: NodeId) -> bool {
        self.ends_from(a).binary_search(&b).is_ok()
    }

    /// All `(start, end)` pairs connected by a matching path.
    ///
    /// Sources are scanned in parallel when more than one thread is
    /// available; the result is identical to [`Evaluator::pairs_sequential`]
    /// for every thread count.
    pub fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        let n = self.product.node_count();
        if crate::parallel::effective_threads() <= 1 || n < 2 {
            return self.pairs_sequential();
        }
        let per_source: Vec<Vec<(NodeId, NodeId)>> = (0..n)
            .into_par_iter()
            .map(|v| {
                let v = NodeId(v as u32);
                self.ends_from(v).into_iter().map(|b| (v, b)).collect()
            })
            .collect();
        let mut result = Vec::with_capacity(per_source.iter().map(Vec::len).sum());
        for chunk in per_source {
            result.extend(chunk);
        }
        result
    }

    /// Governed [`Evaluator::pairs`]: every per-source BFS runs under
    /// `gov` with its panics isolated, and exhaustion yields a *prefix*
    /// of the full answer (every included source completed its scan)
    /// tagged [`crate::govern::Completion::Partial`] with the reason.
    ///
    /// With an unlimited governor the value is byte-identical to
    /// [`Evaluator::pairs`] at every thread count.
    pub fn pairs_governed(
        &self,
        gov: &Governor,
    ) -> Result<Governed<Vec<(NodeId, NodeId)>>, EvalError> {
        let per_source = self.scan_governed(gov, |v| {
            Ok(self
                .ends_from_governed(v, gov)?
                .into_iter()
                .map(|b| (v, b))
                .collect())
        });
        assemble_prefix(per_source, gov, true)
    }

    /// Governed [`Evaluator::matching_starts`]; same partial-prefix
    /// contract as [`Evaluator::pairs_governed`].
    pub fn matching_starts_governed(
        &self,
        gov: &Governor,
    ) -> Result<Governed<Vec<NodeId>>, EvalError> {
        self.starts_governed_impl(gov, true)
    }

    /// [`Evaluator::matching_starts_governed`] without result-budget
    /// charging: for *internal* scans (e.g. a Cypher prefilter) whose
    /// output is not a user-visible answer. Steps, memory, deadline and
    /// cancellation are still enforced.
    pub fn matching_starts_governed_unmetered(
        &self,
        gov: &Governor,
    ) -> Result<Governed<Vec<NodeId>>, EvalError> {
        self.starts_governed_impl(gov, false)
    }

    fn starts_governed_impl(
        &self,
        gov: &Governor,
        meter_results: bool,
    ) -> Result<Governed<Vec<NodeId>>, EvalError> {
        let per_source = self.scan_governed(gov, |v| {
            Ok(if self.ends_from_governed(v, gov)?.is_empty() {
                Vec::new()
            } else {
                vec![v]
            })
        });
        assemble_prefix(per_source, gov, meter_results)
    }

    /// Runs `run` for every source node, in parallel when threads are
    /// available, isolating worker panics. Results stay in source order.
    fn scan_governed<T: Send>(
        &self,
        gov: &Governor,
        run: impl Fn(NodeId) -> Result<Vec<T>, Interrupt> + Sync,
    ) -> Vec<Result<Vec<T>, EvalError>> {
        let n = self.product.node_count();
        let governed_run = |v: usize| {
            isolate(|| {
                fault_point!("eval::bfs");
                // An already-tripped governor stops remaining sources
                // immediately instead of letting them finish a full BFS.
                if let Some(why) = gov.trip_state() {
                    return Err(why);
                }
                run(NodeId(v as u32))
            })
        };
        if crate::parallel::effective_threads() <= 1 || n < 2 {
            (0..n).map(governed_run).collect()
        } else {
            (0..n).into_par_iter().map(governed_run).collect()
        }
    }

    /// Single-threaded [`Evaluator::pairs`] (reference implementation).
    pub fn pairs_sequential(&self) -> Vec<(NodeId, NodeId)> {
        let n = self.product.node_count();
        let mut result = Vec::new();
        for v in 0..n as u32 {
            let v = NodeId(v);
            for b in self.ends_from(v) {
                result.push((v, b));
            }
        }
        result
    }

    /// Node extraction (§4.3): all nodes that *start* a matching path.
    ///
    /// Parallel over sources, with output identical to
    /// [`Evaluator::matching_starts_sequential`].
    pub fn matching_starts(&self) -> Vec<NodeId> {
        let n = self.product.node_count();
        if crate::parallel::effective_threads() <= 1 || n < 2 {
            return self.matching_starts_sequential();
        }
        let matches: Vec<bool> = (0..n)
            .into_par_iter()
            .map(|v| !self.ends_from(NodeId(v as u32)).is_empty())
            .collect();
        matches
            .into_iter()
            .enumerate()
            .filter(|&(_, m)| m)
            .map(|(v, _)| NodeId(v as u32))
            .collect()
    }

    /// Single-threaded [`Evaluator::matching_starts`].
    pub fn matching_starts_sequential(&self) -> Vec<NodeId> {
        let n = self.product.node_count();
        (0..n as u32)
            .map(NodeId)
            .filter(|&v| !self.ends_from(v).is_empty())
            .collect()
    }

    /// A shortest matching path from `a` to `b`, if any (BFS over the
    /// product, so minimal in the number of edges).
    pub fn shortest_witness(&self, a: NodeId, b: NodeId) -> Option<Path> {
        let mut parent: Vec<Option<(PState, EdgeId)>> = vec![None; self.product.state_count()];
        let mut seen = vec![false; self.product.state_count()];
        let mut queue: VecDeque<PState> = VecDeque::new();
        for &s in self.product.initial(a) {
            if !seen[s as usize] {
                seen[s as usize] = true;
                queue.push_back(s);
            }
        }
        let mut found: Option<PState> = None;
        // Check immediate acceptance (length-0 path).
        for &s in self.product.initial(a) {
            if self.product.is_accepting(s) && self.product.node_of(s) == b {
                found = Some(s);
            }
        }
        while found.is_none() {
            let s = queue.pop_front()?;
            for &(e, s2) in self.product.out(s) {
                if !seen[s2 as usize] {
                    seen[s2 as usize] = true;
                    parent[s2 as usize] = Some((s, e));
                    if self.product.is_accepting(s2) && self.product.node_of(s2) == b {
                        found = Some(s2);
                        break;
                    }
                    queue.push_back(s2);
                }
            }
        }
        let mut edges = Vec::new();
        let mut cur = found?;
        while let Some((p, e)) = parent[cur as usize] {
            edges.push(e);
            cur = p;
        }
        edges.reverse();
        Some(Path { start: a, edges })
    }
}

/// Concatenates per-source scan results in source order, cutting at the
/// first interrupted source so the value is an exact prefix of the full
/// answer. Result-budget charging happens here, sequentially, so the
/// prefix length under a result budget is deterministic. Worker panics
/// (`EvalError::Panic`) propagate as errors.
fn assemble_prefix<T>(
    per_source: Vec<Result<Vec<T>, EvalError>>,
    gov: &Governor,
    meter_results: bool,
) -> Result<Governed<Vec<T>>, EvalError> {
    let mut out = Vec::new();
    for chunk in per_source {
        match chunk {
            Ok(items) => {
                for item in items {
                    if meter_results {
                        if let Err(why) = gov.charge_results(1) {
                            return Ok(Governed::partial(out, why));
                        }
                    }
                    out.push(item);
                }
            }
            Err(EvalError::Interrupted(why)) => return Ok(Governed::partial(out, why)),
            Err(e) => return Err(e),
        }
    }
    Ok(Governed::complete(out))
}

/// All matching paths from `a` to `b` of length at most `max_len`,
/// shortest first (then lexicographic) — the "witness paths" view of a
/// query answer.
pub fn paths_between<G: PathGraph>(
    g: &G,
    expr: &PathExpr,
    a: NodeId,
    b: NodeId,
    max_len: usize,
) -> Vec<Path> {
    crate::enumerate::enumerate_paths_upto(g, expr, max_len)
        .into_iter()
        .filter(|p| p.start == a && p.end(g) == Some(b))
        .collect()
}

/// Convenience: all `(start, end)` pairs for `expr` over `g`.
pub fn eval_pairs<G: PathGraph>(g: &G, expr: &PathExpr) -> Vec<(NodeId, NodeId)> {
    Evaluator::new(g, expr).pairs()
}

/// Convenience: nodes starting a matching path (node extraction).
pub fn matching_starts<G: PathGraph>(g: &G, expr: &PathExpr) -> Vec<NodeId> {
    Evaluator::new(g, expr).matching_starts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LabeledView, PropertyView};
    use crate::parser::parse_expr;
    use kgq_graph::figures::{figure2_labeled, figure2_property};

    #[test]
    fn paper_query_finds_possibly_infected_riders() {
        // ?person/rides/?bus/rides⁻/?infected — people sharing a bus with
        // an infected person. In Figure 2: n1 and n4 ride bus n3, and the
        // infected n2 also rides n3.
        let mut g = figure2_labeled();
        let expr = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let starts = ev.matching_starts();
        let names: Vec<_> = starts.iter().map(|&n| g.node_name(n)).collect();
        assert_eq!(names, vec!["n1", "n4"]);
    }

    #[test]
    fn property_dated_contact_query() {
        // Expression (3): contact on 3/4/21 between a person and infected.
        let mut g = figure2_property();
        let expr = parse_expr(
            "?person/{contact & [date='3/4/21']}/?infected",
            g.labeled_mut().consts_mut(),
        )
        .unwrap();
        let view = PropertyView::new(&g);
        let pairs = eval_pairs(&view, &expr);
        // The only person→infected contact dated 3/4/21 is n4 -e5-> n6
        // (e4 is person→person).
        let lg = g.labeled();
        let rendered: Vec<_> = pairs
            .iter()
            .map(|&(a, b)| (lg.node_name(a), lg.node_name(b)))
            .collect();
        assert_eq!(rendered, vec![("n4", "n6")]);
        // A date with no matching contact yields the empty answer.
        let mut g = figure2_property();
        let expr2 = parse_expr(
            "?person/{contact & [date='3/9/21']}/?infected",
            g.labeled_mut().consts_mut(),
        )
        .unwrap();
        let view = PropertyView::new(&g);
        assert!(eval_pairs(&view, &expr2).is_empty());
    }

    #[test]
    fn star_reaches_transitively() {
        let mut g = figure2_labeled();
        // From n1, follow contact edges any number of times.
        let expr = parse_expr("(contact)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let n1 = g.node_named("n1").unwrap();
        let ends = ev.ends_from(n1);
        let names: Vec<_> = ends.iter().map(|&n| g.node_name(n)).collect();
        // n1 itself (0 steps), n4 (1 step), n6 (2 steps).
        assert_eq!(names, vec!["n1", "n4", "n6"]);
    }

    #[test]
    fn shortest_witness_is_minimal_and_valid() {
        let mut g = figure2_labeled();
        let expr = parse_expr("?person/rides/?bus/rides^-/?infected", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let n1 = g.node_named("n1").unwrap();
        let n2 = g.node_named("n2").unwrap();
        let p = ev.shortest_witness(n1, n2).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.end(&view), Some(n2));
        assert!(ev.product().accepts(p.start, &p.edges));
        // No witness from the company n7.
        let n7 = g.node_named("n7").unwrap();
        assert!(ev.shortest_witness(n7, n2).is_none());
    }

    #[test]
    fn zero_length_witness() {
        let mut g = figure2_labeled();
        let expr = parse_expr("?bus", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let n3 = g.node_named("n3").unwrap();
        let p = ev.shortest_witness(n3, n3).unwrap();
        assert!(p.is_empty());
        assert_eq!(ev.matching_starts(), vec![n3]);
    }

    #[test]
    fn check_agrees_with_pairs() {
        let mut g = figure2_labeled();
        let expr = parse_expr("rides/rides^-", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let pairs = ev.pairs();
        for &(a, b) in &pairs {
            assert!(ev.check(a, b));
        }
        // rides/rides⁻ relates co-riders (including self-pairs).
        let n1 = g.node_named("n1").unwrap();
        let n4 = g.node_named("n4").unwrap();
        assert!(ev.check(n1, n4));
        let n7 = g.node_named("n7").unwrap();
        assert!(!ev.check(n1, n7));
    }

    #[test]
    fn paths_between_lists_witnesses_in_order() {
        let mut g = figure2_labeled();
        let expr = parse_expr("(contact)*", g.consts_mut()).unwrap();
        let view = LabeledView::new(&g);
        let n1 = g.node_named("n1").unwrap();
        let n6 = g.node_named("n6").unwrap();
        let paths = super::paths_between(&view, &expr, n1, n6, 4);
        // Unique contact chain n1 -e4-> n4 -e5-> n6.
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 2);
        // Same node to itself: the trivial path plus nothing longer.
        let loops = super::paths_between(&view, &expr, n1, n1, 3);
        assert_eq!(loops.len(), 1);
        assert!(loops[0].is_empty());
    }

    #[test]
    fn epidemic_r1_expression_runs() {
        let mut g = figure2_labeled();
        let expr = parse_expr(
            "?infected/rides/?bus/rides^-/(?person/(lives+contact))*/?person",
            g.consts_mut(),
        )
        .unwrap();
        let view = LabeledView::new(&g);
        let ev = Evaluator::new(&view, &expr);
        let starts = ev.matching_starts();
        let names: Vec<_> = starts.iter().map(|&n| g.node_name(n)).collect();
        // Only the infected rider n2 can start such a path.
        assert_eq!(names, vec!["n2"]);
        let n2 = g.node_named("n2").unwrap();
        let ends = ev.ends_from(n2);
        let names: Vec<_> = ends.iter().map(|&n| g.node_name(n)).collect();
        // n2 shares bus n3 with n1 and n4; from n4, lives/contact chains
        // reach n8 (shared address) — wait: lives goes person->address, so
        // ?person/lives ends at an address, not a person; the star only
        // continues from *person* nodes, so valid ends are the co-riders.
        assert!(names.contains(&"n1"));
        assert!(names.contains(&"n4"));
    }
}
